"""F6 — partial adoption: guarantees for "a group or the whole overlay".

The paper promises satisfaction guarantees to "peers that follow
[the method] (either a group or the whole overlay)".  This experiment
mixes LID adopters with *legacy* peers that speak the same PROP/REJ
protocol but rank neighbours by arbitrary private orders (ignoring the
eq.-9 convention), and sweeps the adopter fraction.

Measured shape (the two headline findings):

1. *Lemma 5's convention is load-bearing*: with 100% adoption no run
   ever stalls; below ~90% adoption communication cycles appear and the
   protocol can quiesce with unfinished nodes — termination is a
   property of the shared weight order, not of the message pattern.
2. *Adopter advantage*: in every mixed regime, adopters' mean
   satisfaction strictly exceeds legacy peers' (e.g. ≈0.77 vs ≈0.55 at
   90% adoption), and adopting is beneficial at every fraction.
"""

import numpy as np

from repro.core.mixed import run_mixed_adoption
from repro.core.weights import satisfaction_weights
from repro.experiments import random_preference_instance


def test_f6_partial_adoption(report, benchmark):
    ps = random_preference_instance(30, 0.3, 3, seed=1)
    wt = satisfaction_weights(ps)
    n = ps.n
    runs = 8
    rows = []
    for f in (1.0, 0.9, 0.75, 0.5, 0.25, 0.0):
        stalls = 0
        stalled_nodes = 0
        ad_sat, lg_sat = [], []
        for s in range(runs):
            rng = np.random.default_rng(1000 * s + 7)
            k = int(round(f * n))
            adopters = {int(x) for x in rng.choice(n, size=k, replace=False)}
            res = run_mixed_adoption(
                wt, ps.quotas, adopters=adopters, legacy_seed=s
            )
            if res.deadlocked:
                stalls += 1
            stalled_nodes += len(res.deadlocked_nodes)
            v = res.matching.satisfaction_vector(ps)
            if adopters:
                ad_sat.append(float(np.mean([v[i] for i in adopters])))
            legacy = [i for i in range(n) if i not in adopters]
            if legacy:
                lg_sat.append(float(np.mean([v[i] for i in legacy])))
        rows.append(
            {
                "adoption": f,
                "stalled_runs": f"{stalls}/{runs}",
                "stalled_nodes_avg": stalled_nodes / runs,
                "adopter_sat": float(np.mean(ad_sat)) if ad_sat else float("nan"),
                "legacy_sat": float(np.mean(lg_sat)) if lg_sat else float("nan"),
                "advantage": (
                    float(np.mean(ad_sat)) - float(np.mean(lg_sat))
                    if ad_sat and lg_sat
                    else float("nan")
                ),
            }
        )
    report(
        rows,
        ["adoption", "stalled_runs", "stalled_nodes_avg", "adopter_sat",
         "legacy_sat", "advantage"],
        title="F6  partial adoption: termination and the adopter advantage",
        csv_name="f6_partial_adoption.csv",
    )
    # full adoption never stalls (Lemma 5)
    assert rows[0]["stalled_runs"] == f"0/{runs}"
    # adopters beat legacy peers wherever both exist
    for r in rows:
        if not np.isnan(r["advantage"]):
            assert r["advantage"] > 0, r
    # satisfaction of adopters degrades monotonically-ish with adoption
    ad = [r["adopter_sat"] for r in rows if not np.isnan(r["adopter_sat"])]
    assert ad[0] == max(ad)

    adopters = set(range(0, n, 2))
    benchmark(
        lambda: run_mixed_adoption(wt, ps.quotas, adopters=adopters, legacy_seed=0)
    )
