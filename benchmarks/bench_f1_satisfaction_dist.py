"""F1 — satisfaction distributions: LID vs the baseline landscape.

Regenerates the motivating comparison of §1/§3: per-node satisfaction
statistics (mean / p10 / p50 / min) for LID against the natural
comparators on each overlay scenario:

- random maximal matching (weight-blind control),
- best-response dynamics (Gai et al. [3]; snapshot if oscillating),
- stable fixtures hybrid (when a stable matching is found),
- exact optimum (MILP).

Expected shape: OPT ≥ LID > best-response snapshot ≥ random in mean
satisfaction; LID captures most of OPT (≥ ~80%) on every scenario,
while the weight-blind control loses 15–40%.
"""

import numpy as np

from repro.baselines import (
    best_response_dynamics,
    max_satisfaction_bmatching_milp,
    random_bmatching,
    stable_fixtures_matching,
)
from repro.core.lid import solve_lid
from repro.overlay import SCENARIOS, build_scenario

N = 40


def _stats(name, scenario, matching):
    from repro.core.analysis import jain_fairness

    ps = scenario.ps
    v = matching.satisfaction_vector(ps)
    return {
        "scenario": scenario.name,
        "algorithm": name,
        "total": float(v.sum()),
        "mean": float(v.mean()),
        "p10": float(np.percentile(v, 10)),
        "median": float(np.median(v)),
        "min": float(v.min()),
        "jain": jain_fairness(v),
    }


def test_f1_satisfaction_distributions(report, emit, benchmark):
    rows = []
    totals = {}
    for name in sorted(SCENARIOS):
        sc = build_scenario(name, N, seed=4)
        ps = sc.ps

        lid, _ = solve_lid(ps)
        rows.append(_stats("LID", sc, lid.matching))

        rnd = random_bmatching(ps, np.random.default_rng(0))
        rows.append(_stats("random", sc, rnd))

        br = best_response_dynamics(ps, max_steps=4000)
        label = "best-response" if br.converged else "best-response*"
        rows.append(_stats(label, sc, br.matching))

        sf = stable_fixtures_matching(ps, max_exhaustive_edges=0)
        if sf.matching is not None:
            rows.append(_stats(f"stable-fixtures({sf.method})", sc, sf.matching))

        opt = max_satisfaction_bmatching_milp(ps)
        rows.append(_stats("OPT", sc, opt))
        totals[name] = {
            "lid": lid.matching.total_satisfaction(ps),
            "rnd": rnd.total_satisfaction(ps),
            "opt": opt.total_satisfaction(ps),
        }

    report(
        rows,
        ["scenario", "algorithm", "total", "mean", "p10", "median", "min", "jain"],
        title="F1  per-node satisfaction distribution by algorithm"
              " (* = oscillating snapshot)",
        csv_name="f1_satisfaction_dist.csv",
    )
    # the shape, not just the moments: satisfaction histogram of the
    # cyclic-preference scenario where the baselines struggle most
    from repro.experiments.reporting import ascii_histogram

    sc = build_scenario("heterogeneous", N, seed=4)
    lid_v = solve_lid(sc.ps)[0].matching.satisfaction_vector(sc.ps)
    rnd_v = random_bmatching(
        sc.ps, np.random.default_rng(0)
    ).satisfaction_vector(sc.ps)
    emit(ascii_histogram(lid_v, bins=8, lo=0, hi=1,
                         title="heterogeneous: per-node satisfaction (LID)"))
    emit(ascii_histogram(rnd_v, bins=8, lo=0, hi=1,
                         title="heterogeneous: per-node satisfaction (random)"))

    for name, t in totals.items():
        assert t["opt"] >= t["lid"] - 1e-9
        assert t["lid"] >= 0.7 * t["opt"], name  # comfortably above ¼(1+1/b)
        assert t["lid"] >= t["rnd"] - 1e-9, name

    sc = build_scenario("file_sharing", N, seed=4)
    benchmark(lambda: solve_lid(sc.ps))
