"""A3 — churn: incremental repair vs full re-matching (future work §7).

The extension the paper's conclusion calls for.  A 40-event churn
session on a live overlay; after every event the matching is repaired
incrementally (weighted blocking-edge resolution radiating from the
changed region).  Reported per event-batch:

- connection changes and dirty-region size (repair locality),
- verified equality with a from-scratch greedy recomputation (the
  repair is *exact*, because the greedy fixpoint is unique),
- satisfaction drift of the living overlay.

Expected shape: a handful of connection changes per event touching a
small node region, 100% equality with from-scratch, satisfaction stays
near the static-instance level.
"""

import numpy as np

from repro.core.lic import lic_matching
from repro.core.weights import satisfaction_weights
from repro.overlay import DynamicOverlay, Peer, build_scenario


def test_a3_churn_repair(report, benchmark):
    sc = build_scenario("geo_latency", 50, seed=13)
    overlay = DynamicOverlay(sc.topology, sc.peers, sc.metric)
    rng = np.random.default_rng(99)

    rows = []
    for batch in range(4):
        res_total = dirty_total = 0
        equal = True
        for _ in range(10):
            if rng.random() < 0.5 and overlay.n > 20:
                stats = overlay.leave(int(rng.choice(overlay.active_ids())))
            else:
                ids = overlay.active_ids()
                k = min(int(rng.integers(2, 6)), len(ids))
                neigh = [int(x) for x in rng.choice(ids, size=k, replace=False)]
                _, stats = overlay.join(
                    Peer(peer_id=-1, position=rng.uniform(0, 1, 2),
                         quota=int(rng.integers(2, 5))),
                    neigh,
                )
            res_total += stats.resolutions
            dirty_total += stats.dirty_nodes
            ps, matching = overlay.instance()
            full = lic_matching(satisfaction_weights(ps), ps.quotas)
            equal = equal and matching.edge_set() == full.edge_set()
        ps, matching = overlay.instance()
        rows.append(
            {
                "events": f"{10 * batch + 1}-{10 * (batch + 1)}",
                "peers": overlay.n,
                "links": ps.m,
                "changes_per_event": res_total / 10,
                "dirty_nodes_per_event": dirty_total / 10,
                "repair==scratch": equal,
                "satisfaction": matching.total_satisfaction(ps),
                "sat_per_peer": matching.total_satisfaction(ps) / overlay.n,
            }
        )
    report(
        rows,
        ["events", "peers", "links", "changes_per_event",
         "dirty_nodes_per_event", "repair==scratch", "satisfaction",
         "sat_per_peer"],
        title="A3  churn session: exact incremental repair",
        csv_name="a3_churn.csv",
    )
    assert all(r["repair==scratch"] for r in rows)
    assert all(r["changes_per_event"] < 15 for r in rows)
    assert all(r["sat_per_peer"] > 0.5 for r in rows)

    def _one_event():
        ids = overlay.active_ids()
        pid, _ = overlay.join(
            Peer(peer_id=-1, position=rng.uniform(0, 1, 2), quota=3),
            [int(x) for x in rng.choice(ids, size=4, replace=False)],
        )
        overlay.leave(pid)

    benchmark(_one_event)
