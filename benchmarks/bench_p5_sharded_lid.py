"""P5 — performance: the sharded multiprocessing LID engine.

Engineering companion (not a paper claim).  Three measurements:

1. **Parallel speedup** — ``lid_matching_fast`` (single-process,
   round-batched numpy) vs ``sharded_lid_matching`` with four shards in
   four worker processes at n = 200000.  Both engines produce the
   identical matching (schedule invariance, Lemmas 3–6); the point of
   the sharded engine is wall-clock, and the CI gate requires a 2x
   speedup at this size.  The in-bench assert only fires on machines
   with >= 4 cores *and* numba available — on a laptop without either
   the row is still written, and ``benchmarks/gate.py`` enforces the
   bound from the CSV in CI (where the jit leg installs ``.[dev,jit]``).

2. **k=1 overhead** — the sharded engine collapsed to one shard is the
   same wave schedule as the fast engine (bit-identical, asserted), so
   the k=1 wall-clock gap is exactly the cost of the sharding machinery
   (mailbox indirection + per-shard state).  Reported as
   ``k1_overhead_pct`` and CI-gated with a direct ``--max`` bound.

3. **Million-node trajectory** — one sharded run at n = 10^6 under a
   :class:`ResourceSampler`: peak RSS, edges/s throughput, cut-edge
   traffic.  This is the scale row docs/performance.md tracks; the CI
   gate asserts the row exists (the fast engine's F2 series stops at
   10^5).

Instances at these sizes are built synthetically — vectorised random
edge arrays straight into :class:`FastInstance` — because lowering a
dict-based ``PreferenceSystem`` dominates the runtime long before the
engines do.  Results land in ``benchmarks/results/p5_sharded_lid.csv``
and ``p5_scale.csv``.
"""

import gc
import os
import time

import numpy as np

from repro.core.fast import FastInstance
from repro.core.fast_lid import lid_matching_fast
from repro.core.sharded_lid import NUMBA_AVAILABLE, sharded_lid_matching
from repro.telemetry.resources import ResourceSampler

SPEEDUP_GATE_N = 200_000
SPEEDUP_GATE = 2.0
SPEEDUP_WORKERS = 4
K1_N = 50_000
K1_OVERHEAD_GATE_PCT = 100.0  # k=1 sharding machinery must stay < 2x fast
SCALE_N = 1_000_000


def _best_of(fn, k=3):
    """Minimum wall time of k cold runs (gc off) and the last result."""
    best = float("inf")
    out = None
    gc.disable()
    try:
        for _ in range(k):
            t0 = time.perf_counter()
            out = fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        gc.enable()
    return out, best


def synthetic_instance(n, avg_deg, seed, quota=3):
    """A random ``FastInstance`` built vectorised, no dict detour.

    Draws ``n * avg_deg / 2`` endpoint pairs, drops loops and duplicate
    edges via the canonical ``min*n + max`` code, and hands the arrays
    to :class:`FastInstance` in the ascending ``(i, j)`` order its
    invariant requires.  Weights are iid uniform (ties measure-zero),
    standing in for the eq.-9 satisfaction weights whose exact values
    do not matter to engine timing.
    """
    rng = np.random.default_rng(seed)
    draws = int(n * avg_deg / 2)
    a = rng.integers(0, n, draws, dtype=np.int64)
    b = rng.integers(0, n, draws, dtype=np.int64)
    keep = a != b
    a, b = a[keep], b[keep]
    code = np.minimum(a, b) * n + np.maximum(a, b)
    code = np.unique(code)
    i, j = code // n, code % n
    w = rng.random(len(code)) + 1e-9  # positive, effectively tie-free
    quotas = np.full(n, quota, dtype=np.int64)
    return FastInstance(n, i, j, w, quotas, ri=None, rj=None, ell=None)


def test_p5_sharded_speedup(report, benchmark, bench_seed):
    rows = []

    # -- k=1 overhead: same schedule, so the gap is pure machinery -----
    fi = synthetic_instance(K1_N, 6, bench_seed)
    k = 3
    t_fast = t_k1 = float("inf")
    overhead = float("inf")
    for _ in range(k):
        # interleaved pairs: adjacent timings share the machine's slow
        # drift, so the per-pair ratio is stabler than a quotient of
        # independently-taken minima (same idiom as bench_p4)
        fast, tf = _best_of(lambda: lid_matching_fast(fi), k=1)
        sh, ts = _best_of(lambda: sharded_lid_matching(fi, shards=1), k=1)
        t_fast, t_k1 = min(t_fast, tf), min(t_k1, ts)
        overhead = min(overhead, 100.0 * (ts / max(tf, 1e-9) - 1.0))
    assert sh.matching.edge_set() == fast.matching.edge_set()
    assert np.array_equal(sh.props_sent, fast.props_sent)
    assert np.array_equal(sh.rejs_sent, fast.rejs_sent)
    assert sh.metrics.events == fast.metrics.events
    rows.append(
        {
            "n": K1_N,
            "m": fi.m,
            "shards": 1,
            "workers": 0,
            "jit": sh.jit,
            "fast_ms": 1e3 * t_fast,
            "sharded_ms": 1e3 * t_k1,
            "k1_overhead_pct": overhead,
            "identical": True,
        }
    )
    if NUMBA_AVAILABLE:
        assert overhead <= K1_OVERHEAD_GATE_PCT, (
            f"k=1 sharding machinery costs {overhead:.1f}%"
            f" > {K1_OVERHEAD_GATE_PCT:.0f}% over lid_matching_fast"
        )

    # -- 4-shard / 4-worker speedup at the gate size -------------------
    fi = synthetic_instance(SPEEDUP_GATE_N, 6, bench_seed)
    t_fast = t_sh = float("inf")
    speedup = 0.0
    for _ in range(2):
        fast, tf = _best_of(lambda: lid_matching_fast(fi), k=1)
        sh, ts = _best_of(
            lambda: sharded_lid_matching(
                fi, shards=4, workers=SPEEDUP_WORKERS
            ),
            k=1,
        )
        t_fast, t_sh = min(t_fast, tf), min(t_sh, ts)
        speedup = max(speedup, tf / max(ts, 1e-9))
    assert sh.matching.edge_set() == fast.matching.edge_set()
    rows.append(
        {
            "n": SPEEDUP_GATE_N,
            "m": fi.m,
            "shards": 4,
            "workers": SPEEDUP_WORKERS,
            "jit": sh.jit,
            "fast_ms": 1e3 * t_fast,
            "sharded_ms": 1e3 * t_sh,
            "speedup": speedup,
            "cut_messages": sh.cut_messages,
            "identical": True,
        }
    )

    report(
        rows,
        ["n", "m", "shards", "workers", "jit", "fast_ms", "sharded_ms",
         "speedup", "k1_overhead_pct", "cut_messages", "identical"],
        title="P5  sharded multiprocessing LID vs single-process fast engine"
              " (identical = same matching; k=1 additionally bit-identical)",
        csv_name="p5_sharded_lid.csv",
    )
    # the 2x bound needs real cores and the compiled kernel; CI enforces
    # it from the CSV on the jit leg, laptops just record the row
    if os.cpu_count() >= 4 and NUMBA_AVAILABLE:
        assert speedup >= SPEEDUP_GATE, (
            f"sharded engine regressed: {speedup:.2f}x < {SPEEDUP_GATE}x"
            f" at n={SPEEDUP_GATE_N} with {SPEEDUP_WORKERS} workers"
        )

    fi_small = synthetic_instance(20_000, 6, bench_seed)
    benchmark(lambda: sharded_lid_matching(fi_small, shards=4))


def test_p5_million_node_trajectory(report, benchmark, bench_seed):
    """One n = 10^6 sharded run under the resource profiler.

    No timing gate — the figure of merit is that the run *completes*
    with a bounded memory footprint; CI asserts the row's presence and
    positive throughput.  The peak-RSS and edges/s columns are the
    numbers docs/performance.md and docs/observability.md quote.
    """
    fi = synthetic_instance(SCALE_N, 4, bench_seed)
    workers = min(4, os.cpu_count() or 1)
    sampler = ResourceSampler().start()
    res = sharded_lid_matching(fi, shards=4, workers=workers)
    sampler.stop()
    profile = sampler.profile(events=res.metrics.events, edges=fi.m)
    assert res.matching.size() > 0
    assert len(res.shard_stats) == 4
    rows = [
        {
            "n": SCALE_N,
            "m": fi.m,
            "shards": res.shards,
            "workers": workers,
            "jit": res.jit,
            "wall_s": profile["wall_ms"] / 1e3,
            "peak_rss_kb": profile["peak_rss_kb"],
            "edges_per_s": profile["edges_per_s"],
            "rounds": res.rounds,
            "cut_messages": res.cut_messages,
            "matched": res.matching.size(),
        }
    ]
    report(
        rows,
        ["n", "m", "shards", "workers", "jit", "wall_s", "peak_rss_kb",
         "edges_per_s", "rounds", "cut_messages", "matched"],
        title="P5  million-node sharded LID trajectory (resource profile)",
        csv_name="p5_scale.csv",
    )

    fi_small = synthetic_instance(20_000, 4, bench_seed)
    benchmark(lambda: sharded_lid_matching(fi_small, shards=4, workers=0))
