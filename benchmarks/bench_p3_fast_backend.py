"""P3 — performance: the array-backed fast matching backend.

Engineering companion (not a paper claim).  Two comparisons:

1. **End-to-end LIC pipeline** — reference path
   (:func:`satisfaction_weights` + :func:`lic_matching`) vs fast path
   (:class:`FastInstance` lowering + :func:`lic_matching_fast`) at
   n ∈ {1000, 5000, 20000}.  Each repetition runs the *cold* pipeline —
   no caches survive between repetitions, matching how the backend is
   used (`lower once, solve once`).  The edge sets are asserted
   identical (the fast scan is an exact LIC execution, not an
   approximation) and the 20k point must clear a 5x speedup — the
   regression gate this bench exists for.

2. **Churn repair weight reuse** — :class:`DynamicOverlay` with
   ``backend="fast"`` serves eq.-9 weights from the incremental
   :class:`WeightCache` instead of rebuilding the table per event; the
   trajectories are asserted identical to ``backend="reference"``.

Timings use best-of-k with gc disabled (the CI smoke job passes
``--benchmark-disable-gc`` for the same reason: collector pauses are
noise, not signal).  Results land in
``benchmarks/results/p3_fast_backend.csv``.
"""

import gc
import time

from repro.core.fast import FastInstance, lic_matching_fast
from repro.core.lic import lic_matching
from repro.core.weights import satisfaction_weights
from repro.experiments import random_preference_instance
from repro.overlay import DynamicOverlay, Peer, build_scenario
from repro.utils.rng import spawn_rng

SPEEDUP_GATE_N = 20000
SPEEDUP_GATE = 5.0


def _best_of(fn, k=3):
    """Minimum wall time of k cold runs (gc off) and the last result."""
    best = float("inf")
    out = None
    gc.disable()
    try:
        for _ in range(k):
            t0 = time.perf_counter()
            out = fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        gc.enable()
    return out, best


def _reference_pipeline(ps):
    wt = satisfaction_weights(ps)
    return lic_matching(wt, ps.quotas)


def _fast_pipeline(ps):
    return lic_matching_fast(FastInstance.from_preference_system(ps))


def test_p3_fast_backend(report, benchmark, bench_seed):
    rows = []
    for n in (1000, 5000, 20000):
        ps = random_preference_instance(n, 12.0 / n, 3, seed=bench_seed)
        m_ref, t_ref = _best_of(lambda: _reference_pipeline(ps))
        m_fast, t_fast = _best_of(lambda: _fast_pipeline(ps))
        rows.append(
            {
                "n": n,
                "m": ps.m,
                "ref_ms": 1e3 * t_ref,
                "fast_ms": 1e3 * t_fast,
                "speedup": t_ref / max(t_fast, 1e-9),
                "equal": m_ref.edge_set() == m_fast.edge_set(),
            }
        )
    report(
        rows,
        ["n", "m", "ref_ms", "fast_ms", "speedup", "equal"],
        title="P3  fast LIC backend, cold pipeline best-of-3"
              " (equal = identical edge sets)",
        csv_name="p3_fast_backend.csv",
    )
    assert all(r["equal"] for r in rows)
    gate = next(r for r in rows if r["n"] == SPEEDUP_GATE_N)
    assert gate["speedup"] >= SPEEDUP_GATE, (
        f"fast backend regressed: {gate['speedup']:.2f}x < {SPEEDUP_GATE}x"
        f" at n={SPEEDUP_GATE_N}"
    )

    ps = random_preference_instance(20000, 12.0 / 20000, 3, seed=bench_seed)
    benchmark(lambda: _fast_pipeline(ps))


def _churn_session(backend, n, events, seed):
    sc = build_scenario("geo_latency", n, seed=seed)
    dyn = DynamicOverlay(sc.topology, sc.peers, sc.metric, backend=backend)
    rng = spawn_rng(seed, "p3-churn")
    reused = recomputed = 0
    t0 = time.perf_counter()
    for _ in range(events):
        if rng.random() < 0.5 and dyn.n > n // 2:
            stats = dyn.leave(int(rng.choice(dyn.active_ids())))
        else:
            ids = dyn.active_ids()
            k = min(int(rng.integers(2, 6)), len(ids))
            neigh = [int(x) for x in rng.choice(ids, size=k, replace=False)]
            _, stats = dyn.join(
                Peer(peer_id=-1, position=rng.uniform(0, 1, 2), quota=3), neigh
            )
        reused += stats.weights_reused
        recomputed += stats.weights_recomputed
    elapsed = time.perf_counter() - t0
    state = {pid: dyn.partners(pid) for pid in dyn.active_ids()}
    return state, elapsed, reused, recomputed


def test_p3_churn_weight_cache(report, benchmark, bench_seed):
    rows = []
    events = 30
    for n in (100, 300):
        ref_state, t_ref, _, _ = _churn_session("reference", n, events, bench_seed)
        fast_state, t_fast, reused, recomputed = _churn_session(
            "fast", n, events, bench_seed
        )
        assert ref_state == fast_state  # cache must not change any matching
        rows.append(
            {
                "n": n,
                "events": events,
                "ref_ms_per_event": 1e3 * t_ref / events,
                "fast_ms_per_event": 1e3 * t_fast / events,
                "speedup": t_ref / max(t_fast, 1e-9),
                "weight_reuse": reused / max(reused + recomputed, 1),
            }
        )
    report(
        rows,
        ["n", "events", "ref_ms_per_event", "fast_ms_per_event",
         "speedup", "weight_reuse"],
        title="P3  churn repair with the incremental WeightCache",
        csv_name="p3_churn_weight_cache.csv",
    )
    assert all(r["weight_reuse"] > 0.3 for r in rows)

    sc = build_scenario("geo_latency", 200, seed=bench_seed)
    dyn = DynamicOverlay(sc.topology, sc.peers, sc.metric, backend="fast")
    rng = spawn_rng(bench_seed, "p3-churn-bench")

    def _one_event():
        victim = int(rng.choice(dyn.active_ids()))
        dyn.leave(victim)
        neigh = [int(x) for x in rng.choice(dyn.active_ids(), size=3, replace=False)]
        dyn.join(Peer(peer_id=-1, position=rng.uniform(0, 1, 2), quota=3), neigh)

    benchmark(_one_event)
