"""P4 — performance: the round-batched fast LID engine.

Engineering companion (not a paper claim).  Three comparisons:

1. **Differential speedup sweep** — the cold reference pipeline
   (:func:`satisfaction_weights` + event-by-event :func:`run_lid`) vs
   the cold fast pipeline (:class:`FastInstance` lowering +
   round-batched :func:`lid_matching_fast`) at n ∈ {1000, 5000,
   20000}: exactly the two ``solve_lid`` backends.  Every row asserts
   the engines are *bit-identical*: same matching, same per-node
   PROP/REJ counts, same round counts.  The 20k point must clear a
   10x speedup — the regression gate this bench exists for.

2. **Scalability row** — the fast engine alone at n = 100000 (the
   simulator needs minutes there; the fast engine seconds), extending
   the F2 series to a new workload scale.

3. **Scheduler queue disciplines** — the general simulator's
   ``calendar`` (bucket) queue vs the plain ``heap`` on the same LID
   run (informational; the calendar queue is the default for
   constant-latency networks).

Timings use best-of-k with gc disabled.  Results land in
``benchmarks/results/p4_fast_lid.csv`` (the queue comparison in
``p4_queue_disciplines.csv``); the CI bench-smoke job archives both
and independently re-asserts the gate from the CSV.
"""

import gc
import time

from repro.core.fast import FastInstance
from repro.core.fast_lid import lid_matching_fast
from repro.core.lid import LidNode, run_lid
from repro.core.weights import satisfaction_weights
from repro.distsim.network import Network
from repro.distsim.scheduler import Simulator
from repro.experiments import random_preference_instance

SPEEDUP_GATE_N = 20000
SPEEDUP_GATE = 10.0
SCALE_N = 100000
TELEMETRY_RATIO_GATE = 0.98  # disabled telemetry must cost < 2%


def _best_of(fn, k=3):
    """Minimum wall time of k cold runs (gc off) and the last result."""
    best = float("inf")
    out = None
    gc.disable()
    try:
        for _ in range(k):
            t0 = time.perf_counter()
            out = fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        gc.enable()
    return out, best


def _instance(n, seed):
    return random_preference_instance(n, p=8.0 / n, quota=3, seed=seed)


def _reference_pipeline(ps):
    wt = satisfaction_weights(ps)
    return run_lid(wt, ps.quotas)


def _fast_pipeline(ps):
    return lid_matching_fast(FastInstance.from_preference_system(ps))


def _assert_bit_identical(ref, fast):
    assert fast.matching.edge_set() == ref.matching.edge_set()
    assert list(fast.props_sent) == [node.props_sent for node in ref.nodes]
    assert list(fast.rejs_sent) == [node.rejs_sent for node in ref.nodes]
    assert fast.rounds == ref.rounds
    assert fast.causal_rounds == ref.causal_rounds
    assert fast.late_messages == ref.late_messages


def test_p4_fast_lid_speedup(report, benchmark, bench_seed):
    rows = []
    for n in (1000, 5000, SPEEDUP_GATE_N):
        ps = _instance(n, bench_seed)
        # measure in interleaved (ref, fast) pairs and gate on the best
        # per-pair ratio: adjacent timings share the machine's slow
        # drift (thermal/frequency state), so the ratio is far stabler
        # than a quotient of independently-taken minima
        k = 3
        t_ref = t_fast = float("inf")
        speedup = 0.0
        for _ in range(k):
            ref, r = _best_of(lambda: _reference_pipeline(ps), k=1)
            fast, f = _best_of(lambda: _fast_pipeline(ps), k=1)
            t_ref = min(t_ref, r)
            t_fast = min(t_fast, f)
            speedup = max(speedup, r / max(f, 1e-9))
        _assert_bit_identical(ref, fast)
        rows.append(
            {
                "n": n,
                "m": ps.m,
                "ref_ms": 1e3 * t_ref,
                "fast_ms": 1e3 * t_fast,
                "speedup": speedup,
                "rounds": fast.rounds,
                "identical": True,
            }
        )

    # scalability row: fast engine only — the reference simulator is
    # impractical at this size, which is the point of the fast engine
    ps = _instance(SCALE_N, bench_seed)
    fast, t_fast = _best_of(lambda: _fast_pipeline(ps), k=2)
    rows.append(
        {
            "n": SCALE_N,
            "m": ps.m,
            "fast_ms": 1e3 * t_fast,
            "rounds": fast.rounds,
            "identical": True,  # pinned by the differential suite at small n
        }
    )

    report(
        rows,
        ["n", "m", "ref_ms", "fast_ms", "speedup", "rounds", "identical"],
        title="P4  round-batched fast LID vs event-by-event simulator"
              " (identical = same matching + per-node message counts)",
        csv_name="p4_fast_lid.csv",
    )
    gate = next(r for r in rows if r["n"] == SPEEDUP_GATE_N)
    assert gate["speedup"] >= SPEEDUP_GATE, (
        f"fast LID engine regressed: {gate['speedup']:.2f}x < {SPEEDUP_GATE}x"
        f" at n={SPEEDUP_GATE_N}"
    )

    ps = _instance(SPEEDUP_GATE_N, bench_seed)
    fi = FastInstance.from_preference_system(ps)
    benchmark(lambda: lid_matching_fast(fi))


def test_p4_telemetry_overhead(report, benchmark, bench_seed):
    """Disabled telemetry is free: NULL-instrumented run within 2%.

    The engines accept ``telemetry=NULL`` to switch phase timing off
    entirely (the default instruments three spans per run).  The gate
    asserts the fully-disabled path keeps at least
    ``TELEMETRY_RATIO_GATE`` of the default path's throughput —
    interleaved pairs, best per-pair ratio, like the speedup gate.
    """
    from repro.telemetry.spans import NULL

    ps = _instance(SPEEDUP_GATE_N, bench_seed)
    fi = FastInstance.from_preference_system(ps)
    t_default = t_disabled = float("inf")
    ratio = 0.0
    for _ in range(5):
        res_d, d = _best_of(lambda: lid_matching_fast(fi), k=1)
        res_n, nl = _best_of(lambda: lid_matching_fast(fi, telemetry=NULL), k=1)
        t_default = min(t_default, d)
        t_disabled = min(t_disabled, nl)
        ratio = max(ratio, d / max(nl, 1e-9))
    # instrumentation must not perturb the run
    assert res_n.matching.edge_set() == res_d.matching.edge_set()
    assert res_d.metrics.phase_seconds  # default path attributes phases
    assert not res_n.metrics.phase_seconds  # NULL path records nothing
    rows = [
        {
            "n": ps.n,
            "m": ps.m,
            "default_ms": 1e3 * t_default,
            "disabled_ms": 1e3 * t_disabled,
            "throughput_ratio": ratio,
            # the same best-pair measurement expressed as a direct cost:
            # how much slower the NULL run was than default, in percent —
            # what the CI `--max` gate bounds (can be negative)
            "overhead_pct": 100.0 * (1.0 / max(ratio, 1e-9) - 1.0),
        }
    ]
    report(
        rows,
        ["n", "m", "default_ms", "disabled_ms", "throughput_ratio",
         "overhead_pct"],
        title="P4  telemetry overhead on the fast LID engine"
              " (throughput_ratio = default / telemetry-disabled, best pair)",
        csv_name="p4_telemetry.csv",
    )
    assert ratio >= TELEMETRY_RATIO_GATE, (
        f"disabled-telemetry run regressed: ratio {ratio:.3f}"
        f" < {TELEMETRY_RATIO_GATE} at n={SPEEDUP_GATE_N}"
    )

    benchmark(lambda: lid_matching_fast(fi, telemetry=NULL))


def _simulate_with_queue(wt, quotas, queue):
    nodes = [LidNode(wt.weight_list(i), quotas[i]) for i in range(wt.n)]
    sim = Simulator(Network(wt.n), nodes, queue=queue)
    t0 = time.perf_counter()
    metrics = sim.run()
    elapsed = time.perf_counter() - t0
    return metrics, elapsed


def test_p4_queue_disciplines(report, benchmark, bench_seed):
    ps = _instance(8000, bench_seed)
    wt = FastInstance.from_preference_system(ps).weight_table()
    quotas = list(ps.quotas)
    rows = []
    sent = {}
    gc.disable()
    try:
        for queue in ("heap", "calendar"):
            best = float("inf")
            for _ in range(2):
                metrics, elapsed = _simulate_with_queue(wt, quotas, queue)
                best = min(best, elapsed)
            sent[queue] = (dict(metrics.sent_by_kind), metrics.events)
            rows.append({"queue": queue, "n": ps.n, "sim_loop_ms": 1e3 * best})
    finally:
        gc.enable()
    assert sent["heap"] == sent["calendar"]  # identical event sequence
    rows[1]["speedup_vs_heap"] = rows[0]["sim_loop_ms"] / rows[1]["sim_loop_ms"]
    report(
        rows,
        ["queue", "n", "sim_loop_ms", "speedup_vs_heap"],
        title="P4  scheduler queue disciplines on one LID run (informational)",
        csv_name="p4_queue_disciplines.csv",
    )

    ps_small = _instance(2000, bench_seed)
    wt_small = FastInstance.from_preference_system(ps_small).weight_table()
    quotas_small = list(ps_small.quotas)
    benchmark(lambda: _simulate_with_queue(wt_small, quotas_small, "calendar"))
