"""T6 — round-truncated almost-stable LID: quality vs round budget k.

Sweeps the ``max_rounds`` budget at n = 20 000 (constant average degree
~10, the F2 regime) through the fast engine and records, per k, the
two instability measures and the satisfaction earned:

- ``blocking_pairs`` — the rank-based almost-stability measure of
  Theorem 3.  Truncated matchings are nested (locks are permanent), so
  this is monotone non-increasing in k; ``bp_delta_vs_prev`` encodes
  the monotonicity as a gateable column (``--max 0``).
- ``weighted_blocking_pairs`` — the eq.-9 weight-order notion, exactly
  0 iff the run reached the LIC fixpoint.  The CI gate pins this to 0
  on the k=∞ row (``--where k_label=inf --max 0``).
- ``satisfaction_ratio`` — truncated total satisfaction over the
  converged LIC optimum-within-LID.  Theorem 3 guarantees the converged
  matching earns ≥ ¼(1+1/b_max) of the global optimum, so a truncated
  run still carries the floor ``satisfaction_ratio × ¼(1+1/b_max)``
  (the ``theorem3_floor`` column); the table shows how fast the knee
  approaches the full guarantee — most of the satisfaction is earned in
  the first few proposal waves, long before quiescence.

Expected shape: blocking pairs fall steeply then plateau at the
almost-stable residual; weighted blocking pairs hit exactly 0 at
convergence; the ratio knee sits around k ≈ 4–6 at this degree.
"""

import time

from repro.core.analysis import theorem3_bound
from repro.core.lid import solve_lid
from repro.experiments import random_preference_instance

N = 20_000
DEGREE = 10.0
#: budgets spanning empty → knee → safely past quiescence
KS = (0, 1, 2, 3, 4, 6, 8, 12, 1 << 30)
INF = 1 << 30


def _k_label(k: int) -> str:
    return "inf" if k >= INF else str(k)


def test_t6_truncation_sweep(report, benchmark, bench_seed):
    ps = random_preference_instance(N, DEGREE / N, 3, seed=bench_seed)
    bound = theorem3_bound(ps.b_max)

    rows = []
    prev_bp = None
    for k in KS:
        t0 = time.perf_counter()
        res, _wt = solve_lid(ps, backend="fast", max_rounds=k)
        solve_ms = (time.perf_counter() - t0) * 1e3
        t = res.truncation
        rows.append(
            {
                "k_label": _k_label(k),
                "k": k,
                "n": ps.n,
                "m": ps.m,
                "rounds": t.rounds,
                "converged": t.converged,
                "released_locks": t.released_locks,
                "blocking_pairs": t.blocking_pairs,
                "bp_delta_vs_prev": (
                    0 if prev_bp is None else t.blocking_pairs - prev_bp
                ),
                "weighted_blocking_pairs": t.weighted_blocking_pairs,
                "satisfaction_ratio": round(t.satisfaction_ratio, 6),
                "theorem3_floor": round(t.satisfaction_ratio * bound, 6),
                "solve_ms": round(solve_ms, 1),
            }
        )
        prev_bp = t.blocking_pairs

    report(
        rows,
        ["k_label", "k", "n", "m", "rounds", "converged", "released_locks",
         "blocking_pairs", "bp_delta_vs_prev", "weighted_blocking_pairs",
         "satisfaction_ratio", "theorem3_floor", "solve_ms"],
        title=f"T6  almost-stable truncation sweep at n={N}"
              f" (Theorem 3 bound = {bound:.4f})",
        csv_name="t6_truncation.csv",
    )

    by_label = {r["k_label"]: r for r in rows}
    inf = by_label["inf"]
    # the k=∞ row is the untruncated fixpoint: exactly weight-stable
    assert inf["converged"]
    assert inf["weighted_blocking_pairs"] == 0
    assert inf["released_locks"] == 0
    assert inf["satisfaction_ratio"] == 1.0
    # nestedness ⇒ both instability measures monotone non-increasing
    assert all(r["bp_delta_vs_prev"] <= 0 for r in rows)
    wbps = [r["weighted_blocking_pairs"] for r in rows]
    assert wbps == sorted(wbps, reverse=True)
    # k=0 is the empty matching: blocked by every edge
    assert by_label["0"]["blocking_pairs"] == ps.m

    benchmark(lambda: solve_lid(ps, backend="fast", max_rounds=4))
