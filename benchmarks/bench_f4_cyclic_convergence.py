"""F4 — cyclic preferences: where stabilisation fails, LID terminates.

Regenerates the paper's core positioning argument (§1): prior work [3]
guarantees stabilisation only for *acyclic* preference systems, while a
fully distributed overlay with private metrics is naturally cyclic.  On
the canonical odd-ring family and on the heterogeneous scenario:

- best-response dynamics provably cycle (state recurrence detected) or
  a stable matching does not even exist (exhaustive proof, small k);
- LID terminates in a handful of rounds regardless, with a certified
  greedy matching.

Expected shape: every odd ring row shows ``br_cycles=yes`` /
``stable_exists=no``, every LID column terminates.
"""


from repro.baselines import best_response_dynamics, stable_fixtures_matching
from repro.core.lid import solve_lid
from repro.experiments import cyclic_roommates
from repro.overlay import build_scenario


def _ring_row(k: int) -> dict:
    ps = cyclic_roommates(k)
    br = best_response_dynamics(ps, max_steps=5000)
    sf = stable_fixtures_matching(ps)
    lid, _ = solve_lid(ps)
    return {
        "instance": f"odd-ring k={k}",
        "acyclic": ps.is_acyclic(),
        "br_converged": br.converged,
        "br_cycles": br.cycled,
        "stable_exists": {True: "yes", False: "no", None: "unknown"}[sf.exists],
        "lid_terminated": all(n.finished for n in lid.nodes),
        "lid_rounds": lid.rounds,
        "lid_matched": lid.matching.size(),
    }


def _scenario_row(seed: int) -> dict:
    sc = build_scenario("heterogeneous", 30, seed=seed)
    ps = sc.ps
    br = best_response_dynamics(ps, max_steps=4000)
    lid, _ = solve_lid(ps)
    return {
        "instance": f"heterogeneous seed={seed}",
        "acyclic": ps.is_acyclic(),
        "br_converged": br.converged,
        "br_cycles": br.cycled,
        "stable_exists": "unknown",
        "lid_terminated": all(n.finished for n in lid.nodes),
        "lid_rounds": lid.rounds,
        "lid_matched": lid.matching.size(),
    }


def test_f4_cyclic_convergence_table(report, benchmark):
    rows = [_ring_row(k) for k in (3, 5, 7, 9, 15)]
    rows += [_scenario_row(seed) for seed in (0, 1, 2)]
    report(
        rows,
        ["instance", "acyclic", "br_converged", "br_cycles", "stable_exists",
         "lid_terminated", "lid_rounds", "lid_matched"],
        title="F4  cyclic preferences: best-response vs LID",
        csv_name="f4_cyclic_convergence.csv",
    )
    for row in rows:
        assert row["lid_terminated"]
        if row["instance"].startswith("odd-ring"):
            assert not row["acyclic"]
            assert not row["br_converged"] and row["br_cycles"]
            assert row["stable_exists"] == "no" or row["stable_exists"] == "unknown"

    ps = cyclic_roommates(15)
    benchmark(lambda: solve_lid(ps))
