"""P1 — performance: vectorised kernels vs scalar references.

Engineering companion (not a paper claim): following the scientific-
Python optimisation workflow, the two measured hot spots — eq.-9 weight
construction and whole-matching satisfaction evaluation — have NumPy
formulations in :mod:`repro.core.fast`.  This bench reports the
speedups at n ∈ {500, 2000} and asserts the vectorised results equal
the scalar ones (correctness is re-checked here, not assumed).
"""

import time

import numpy as np

from repro.core.fast import satisfaction_profile_fast, satisfaction_weights_fast
from repro.core.lic import lic_matching
from repro.core.weights import satisfaction_weights
from repro.experiments import random_preference_instance


def _time(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def test_p1_vectorised_kernels(report, benchmark):
    rows = []
    for n in (500, 2000):
        ps = random_preference_instance(n, 10.0 / n, 3, seed=2)
        wt_s, t_ws = _time(lambda: satisfaction_weights(ps))
        wt_f, t_wf = _time(lambda: satisfaction_weights_fast(ps))
        matching = lic_matching(wt_s, ps.quotas)
        prof_s, t_ss = _time(lambda: matching.satisfaction_vector(ps))
        prof_f, t_sf = _time(lambda: satisfaction_profile_fast(ps, matching))

        same_weights = all(
            abs(wt_s.weight(i, j) - wt_f.weight(i, j)) < 1e-12
            for i, j in ps.edges()
        )
        same_profile = bool(np.allclose(prof_s, prof_f, atol=1e-12))
        rows.append(
            {
                "n": n,
                "m": ps.m,
                "weights_scalar_ms": 1e3 * t_ws,
                "weights_fast_ms": 1e3 * t_wf,
                "weights_speedup": t_ws / max(t_wf, 1e-9),
                "sat_scalar_ms": 1e3 * t_ss,
                "sat_fast_ms": 1e3 * t_sf,
                "sat_speedup": t_ss / max(t_sf, 1e-9),
                "equal": same_weights and same_profile,
            }
        )
    report(
        rows,
        ["n", "m", "weights_scalar_ms", "weights_fast_ms", "weights_speedup",
         "sat_scalar_ms", "sat_fast_ms", "sat_speedup", "equal"],
        title="P1  vectorised kernels (equal = bit-level agreement)",
        csv_name="p1_vectorised.csv",
    )
    assert all(r["equal"] for r in rows)

    ps = random_preference_instance(2000, 10.0 / 2000, 3, seed=2)
    matching = lic_matching(satisfaction_weights_fast(ps), ps.quotas)
    benchmark(lambda: satisfaction_profile_fast(ps, matching))
