"""F3 — the approximation band as a function of b_max (Theorems 1 & 3).

Regenerates the bound curve: for uniform quotas b = 1..6, the measured
LID satisfaction ratio against the exact optimum, alongside the
guaranteed floor ¼(1+1/b) and the intermediate Theorem-1 factor
½(1+1/b).  Expected shape: the guarantee decreases from 0.5 towards
0.25 as b grows, while the *measured* ratio stays high (≈0.85+) —
i.e. the analysis is worst-case, and its slack grows with b.
"""


from repro.core.analysis import theorem1_bound, theorem3_bound
from repro.core.lid import solve_lid
from repro.experiments import (
    aggregate,
    random_preference_instance,
    satisfaction_ratio_record,
    sweep,
)


def _run(b: int, seed: int) -> dict:
    ps = random_preference_instance(24, p=0.35, quota=b, seed=seed)
    rec = satisfaction_ratio_record(ps)
    return {
        "ratio": rec["ratio"],
        "bound_ok": rec["bound_ok"],
    }


def test_f3_ratio_vs_b_series(report, benchmark):
    rows = sweep(_run, {"b": [1, 2, 3, 4, 5, 6], "seed": [0]}, repeats=3)
    agg = aggregate(rows, ["b"], ["ratio", "bound_ok"], reducers={"ratio": min})
    for r in agg:
        r["thm3_floor"] = theorem3_bound(r["b"])
        r["thm1_factor"] = theorem1_bound(r["b"])
        r["slack"] = r["ratio"] - r["thm3_floor"]
    report(
        agg,
        ["b", "count", "ratio", "thm3_floor", "thm1_factor", "slack", "bound_ok"],
        title="F3  measured satisfaction ratio vs the ¼(1+1/b) guarantee",
        csv_name="f3_ratio_vs_b.csv",
    )
    assert all(r["bound_ok"] == 1.0 for r in agg)
    floors = [r["thm3_floor"] for r in agg]
    assert floors == sorted(floors, reverse=True)  # floor decreases in b
    assert all(r["slack"] > 0.2 for r in agg)  # analysis is pessimistic

    ps = random_preference_instance(24, 0.35, 3, seed=0)
    benchmark(lambda: solve_lid(ps))
