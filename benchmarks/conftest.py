"""Shared fixtures for the benchmark harness.

Each bench file regenerates one experiment (T1–T5, F1–F4, A1–A3 in
DESIGN.md §2): it computes the experiment's table, prints it through the
``report`` fixture (bypassing pytest's capture so ``bench_output.txt``
contains the rows), writes a CSV next to the benchmarks, and times the
core operation with pytest-benchmark.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.reporting import print_table, write_csv

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--repro-backend",
        choices=("reference", "fast"),
        default=None,
        help="execution backend for backend-aware benches (F2, T4): the"
             " event-by-event reference simulator or the array-backed"
             " fast engine; defaults to REPRO_BENCH_BACKEND, else"
             " 'reference'",
    )


@pytest.fixture
def bench_backend(request) -> str:
    """Selected ``reference``/``fast`` backend for backend-aware benches.

    Priority: ``--repro-backend`` CLI option, then the
    ``REPRO_BENCH_BACKEND`` environment variable, then ``reference``.
    Backend-aware benches cross-check the fast engine against the
    reference on a small subsample either way, so a fast sweep stays
    pinned to the simulator's semantics.
    """
    opt = request.config.getoption("--repro-backend")
    return opt or os.environ.get("REPRO_BENCH_BACKEND", "reference")


@pytest.fixture
def bench_seed() -> int:
    """Deterministic base seed for benchmark instances.

    CI pins ``REPRO_BENCH_SEED=0`` so the bench-smoke job regenerates
    identical instances run to run (timings stay comparable across the
    uploaded ``BENCH_ci.json`` artifacts); set the variable locally to
    explore other draws.
    """
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


@pytest.fixture
def report(capsys):
    """Print an experiment table to the real stdout and persist a CSV."""

    def _report(rows, columns=None, title="", csv_name=None):
        with capsys.disabled():
            print_table(rows, columns, title)
        if csv_name:
            RESULTS_DIR.mkdir(exist_ok=True)
            write_csv(rows, RESULTS_DIR / csv_name)

    return _report


@pytest.fixture
def emit(capsys):
    """Print raw text (histograms, notes) past pytest's capture."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print(text)

    return _emit
