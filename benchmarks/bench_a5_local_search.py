"""A5 — ablation: how much does greedy leave on the table?

LIC/LID guarantee ½ of the optimal weight; local search with 2-for-1
moves is the classic way to push past greedy.  For each family this
experiment reports greedy weight, local-search-improved weight, and the
exact optimum.  Expected shape: because the greedy certificate rules
out add/swap improvements, only 2-for-1 moves fire, and the measured
gain is small (≈0–3%) — empirical backing for why the paper stops at
greedy: the distributed simplicity costs very little weight.
"""


from repro.baselines.exact import max_weight_bmatching_milp
from repro.baselines.local_search import local_search_bmatching
from repro.core.lic import lic_matching
from repro.core.weights import satisfaction_weights
from repro.experiments import FAMILIES, family_instance


def test_a5_local_search_headroom(report, benchmark):
    rows = []
    for family in FAMILIES:
        for seed in (0, 1):
            ps = family_instance(family, 30, 3, seed=seed)
            wt = satisfaction_weights(ps)
            greedy = lic_matching(wt, ps.quotas)
            ls = local_search_bmatching(wt, list(ps.quotas), greedy)
            opt = max_weight_bmatching_milp(wt, ps.quotas)
            w_g = greedy.total_weight(wt)
            w_l = ls.matching.total_weight(wt)
            w_o = opt.total_weight(wt)
            rows.append(
                {
                    "family": family,
                    "seed": seed,
                    "greedy": w_g,
                    "local_search": w_l,
                    "optimum": w_o,
                    "ls_gain_pct": 100.0 * (w_l - w_g) / w_g if w_g else 0.0,
                    "greedy_ratio": w_g / w_o if w_o else 1.0,
                    "ls_ratio": w_l / w_o if w_o else 1.0,
                    "first_moves_2for1": ls.add_moves == 0 and ls.swap_moves == 0
                    if ls.moves == 0
                    else True,
                    "moves": ls.moves,
                }
            )
    report(
        rows,
        ["family", "seed", "greedy", "local_search", "optimum",
         "ls_gain_pct", "greedy_ratio", "ls_ratio", "moves"],
        title="A5  local-search head-room over greedy (gain expected small)",
        csv_name="a5_local_search.csv",
    )
    for r in rows:
        assert r["greedy"] <= r["local_search"] + 1e-9 <= r["optimum"] + 1e-6
        assert r["greedy_ratio"] >= 0.5
        assert r["ls_gain_pct"] < 15.0  # greedy is near-locally-optimal

    ps = family_instance("er", 30, 3, seed=0)
    wt = satisfaction_weights(ps)
    greedy = lic_matching(wt, ps.quotas)
    benchmark(lambda: local_search_bmatching(wt, list(ps.quotas), greedy))
