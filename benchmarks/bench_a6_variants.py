"""A6 — variants ablation: weight design vs individual satisfaction (§7).

The paper's future work asks for "minimum satisfaction guarantees
individually to each collaborating peer".  Two concrete levers are
implemented in :mod:`repro.core.variants`:

- the rank-emphasis exponent α in the generalised weight family
  ``w_α`` (α = 1 is exactly eq. 9),
- the two-phase reservation scheme (``two_phase_lid``).

This ablation sweeps both on a contention-heavy scenario and reports
total satisfaction, the minimum per-node satisfaction, the 10th
percentile and Jain's fairness index.

Measured shape (see EXPERIMENTS.md): all variants land within ~5% of
the eq.-9 total, and *increasing* α strictly hurts both the total and
the fairness index — i.e. the paper's linear static term is already on
the efficient frontier, and per-node floors are limited by degree/
contention (poorly connected peers score 0 under every weight design),
not by the weight exponent.  A useful negative result for the
future-work question: individual guarantees will need mechanism changes
(reservations, quotas on the *receiving* side), not weight re-shaping.
"""

import numpy as np

from repro.core.analysis import jain_fairness
from repro.core.lic import lic_matching
from repro.core.variants import alpha_weight_table, two_phase_lid
from repro.overlay import build_scenario


def _row(label, ps, matching):
    v = matching.satisfaction_vector(ps)
    return {
        "variant": label,
        "total": float(v.sum()),
        "min": float(v.min()),
        "p10": float(np.percentile(v, 10)),
        "jain": jain_fairness(v),
    }


def test_a6_variants_ablation(report, benchmark):
    sc = build_scenario("file_sharing", 60, seed=3)
    ps = sc.ps
    rows = []
    for alpha in (0.5, 1.0, 2.0, 4.0):
        wt = alpha_weight_table(ps, alpha)
        m = lic_matching(wt, ps.quotas)
        m.validate(ps)
        rows.append(_row(f"alpha={alpha}", ps, m))
    for frac in (0.25, 0.5):
        m = two_phase_lid(ps, top_fraction=frac)
        rows.append(_row(f"two-phase({frac})", ps, m))

    report(
        rows,
        ["variant", "total", "min", "p10", "jain"],
        title="A6  weight-design / reservation ablation (contended scenario)",
        csv_name="a6_variants.csv",
    )
    by = {r["variant"]: r for r in rows}
    base = by["alpha=1.0"]
    # eq. 9 is the best (or tied) TOTAL among the alpha family
    for alpha in (0.5, 2.0, 4.0):
        assert by[f"alpha={alpha}"]["total"] <= base["total"] * 1.05
    # all variants stay within a reasonable band of the eq.-9 total
    for r in rows:
        assert r["total"] >= 0.7 * base["total"], r["variant"]

    benchmark(lambda: two_phase_lid(ps, top_fraction=0.5))
