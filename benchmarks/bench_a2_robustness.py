"""A2 — robustness under loss and Byzantine peers (future work §7).

The paper's conclusion asks how the algorithm copes with disruptions.
Two sub-experiments:

1. *Message loss*: LID as published assumes reliable channels; with
   i.i.d. loss it stalls.  The timeout-retransmission wrapper restores
   termination, at a measured message overhead, and — because the
   underlying greedy fixpoint is unique — recovers the *exact* loss-free
   matching.  Expected shape: overhead grows with the loss rate;
   matching equality 100%.

2. *Byzantine reject-all peers*: disruptive nodes that reject every
   proposal.  Honest nodes still terminate and keep a feasible certified
   matching; total satisfaction degrades gracefully with the number of
   disruptors (they effectively remove themselves from the overlay).

3. *Fault campaign*: the resilient runtime (reliable channels +
   heartbeat failure detector) swept over the full fault matrix —
   loss × crashes × a partition/heal cycle × Byzantine peers.  Every
   cell must terminate with zero invariant violations, a valid
   live-honest matching and no weighted blocking edge on the clean
   subgraph; degradation is reported per cell.
"""


from repro.core.lic import lic_matching
from repro.core.lid import LidNode, run_lid
from repro.core.weights import satisfaction_weights
from repro.distsim import BernoulliLoss, Network, Simulator
from repro.distsim.failures import make_byzantine
from repro.experiments import CampaignConfig, random_preference_instance, run_campaign


def test_a2_loss_retransmission(report, benchmark):
    ps = random_preference_instance(50, 0.2, 3, seed=3)
    wt = satisfaction_weights(ps)
    baseline = run_lid(wt, ps.quotas)
    reference = baseline.matching.edge_set()

    rows = []
    for loss in (0.0, 0.05, 0.15, 0.30):
        res = run_lid(
            wt,
            ps.quotas,
            drop_filter=BernoulliLoss(loss) if loss else None,
            retransmit_timeout=5.0,
            seed=17,
        )
        rows.append(
            {
                "loss_rate": loss,
                "messages": res.metrics.total_sent,
                "dropped": res.metrics.dropped,
                "overhead_x": res.metrics.total_sent / baseline.metrics.total_sent,
                "virtual_time": res.metrics.end_time,
                "terminated": all(n.finished for n in res.nodes),
                "matching_equal": res.matching.edge_set() == reference,
            }
        )
    report(
        rows,
        ["loss_rate", "messages", "dropped", "overhead_x", "virtual_time",
         "terminated", "matching_equal"],
        title="A2a  LID + retransmission under message loss",
        csv_name="a2_loss.csv",
    )
    for r in rows:
        assert r["terminated"] and r["matching_equal"]
    overheads = [r["overhead_x"] for r in rows]
    assert overheads == sorted(overheads)  # monotone in loss rate

    benchmark(
        lambda: run_lid(
            wt, ps.quotas, drop_filter=BernoulliLoss(0.1),
            retransmit_timeout=5.0, seed=17,
        )
    )


def test_a2_byzantine_rejectors(report, benchmark):
    ps = random_preference_instance(40, 0.25, 3, seed=5)
    wt = satisfaction_weights(ps)
    honest_full = lic_matching(wt, ps.quotas)
    base_sat = honest_full.total_satisfaction(ps)

    rows = []
    for n_byz in (0, 2, 5, 10):
        byz = set(range(n_byz))  # ids 0..n_byz-1 turn disruptive
        nodes = [LidNode(wt.weight_list(i), ps.quota(i)) for i in range(ps.n)]
        for b in byz:
            make_byzantine(nodes[b], "reject_all")
        sim = Simulator(Network(ps.n, links=wt.edges(), seed=1), nodes)
        sim.run()
        honest_ok = all(
            nodes[i].finished for i in range(ps.n) if i not in byz
        )
        # matching among honest nodes
        from repro.core.matching import Matching

        m = Matching(ps.n)
        for i in range(ps.n):
            if i in byz:
                continue
            for j in nodes[i].locked:
                if j not in byz and i < j and i in nodes[j].locked:
                    m.add(i, j)
        m.validate(ps)
        rows.append(
            {
                "byzantine": n_byz,
                "honest_terminated": honest_ok,
                "matched_edges": m.size(),
                "satisfaction": m.total_satisfaction(ps),
                "vs_clean": m.total_satisfaction(ps) / base_sat,
            }
        )
    report(
        rows,
        ["byzantine", "honest_terminated", "matched_edges", "satisfaction",
         "vs_clean"],
        title="A2b  reject-all Byzantine peers: graceful degradation",
        csv_name="a2_byzantine.csv",
    )
    assert all(r["honest_terminated"] for r in rows)
    sats = [r["satisfaction"] for r in rows]
    assert sats[0] >= sats[-1]  # degradation, not collapse
    assert rows[-1]["vs_clean"] > 0.5  # 25% disruptors cost < half the welfare

    def _byzantine_round():
        nodes = [LidNode(wt.weight_list(i), ps.quota(i)) for i in range(ps.n)]
        for b in range(5):
            make_byzantine(nodes[b], "reject_all")
        Simulator(Network(ps.n, links=wt.edges(), seed=1), nodes).run()

    benchmark(_byzantine_round)


def test_a2_fault_campaign(report, benchmark):
    config = CampaignConfig(n=60, seeds=(0, 1))
    result = run_campaign(config)

    report(
        result.rows(),
        ["cell", "ok", "live", "clean", "edges", "degrade", "retx", "viol"],
        title="A2c  fault campaign: loss x crash x partition x Byzantine",
        csv_name="a2_campaign.csv",
    )
    for cell in result.cells:
        assert cell.terminated, f"cell [{cell.label()}] did not terminate"
        assert not cell.violations, (
            f"cell [{cell.label()}] violated invariants: {cell.violations[:3]}"
        )
        assert cell.valid, f"cell [{cell.label()}] produced an infeasible matching"
        assert cell.blocking_edges == 0, (
            f"cell [{cell.label()}] left {cell.blocking_edges} weighted "
            "blocking edges on the clean subgraph"
        )
    # the fault-free-ish corner keeps nearly all welfare; the worst
    # corner (30% loss + crashes + partition + Byzantine) degrades but
    # never collapses
    assert result.worst_degradation() > 0.4
    benign = [c for c in result.cells
              if not c.crash_frac and not c.partitioned and not c.byzantine_frac]
    assert min(c.degradation for c in benign) > 0.9

    single = CampaignConfig(
        n=40, loss_rates=(0.15,), crash_fracs=(0.05,), partition=(True,),
        byzantine_fracs=(0.1,), seeds=(0,),
    )
    benchmark(lambda: run_campaign(single))
