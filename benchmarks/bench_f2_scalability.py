"""F2 — scalability: runtime and protocol cost vs overlay size.

Regenerates the "local communication scales" claim of §5: wall-clock
time of the centralised LIC, wall-clock of the LID execution, and
protocol metrics (messages, rounds) as n doubles from 100 to 800 at
constant average degree.  Expected shape: near-linear growth of LIC
time and of total messages in m; rounds grow roughly logarithmically /
stay flat, since proposal waves are local.

Since the grid migration the sweep itself is a declarative
:class:`~repro.experiments.gridspec.GridSpec` executed by
:func:`~repro.experiments.grid.run_grid` — the ``lic-*`` and ``lid-*``
engines run as separate grid cells over bit-identical instances (cell
seeding is engine-independent) and this file only pivots the records
into the F2 table.

Backend-aware (``--repro-backend`` / ``REPRO_BENCH_BACKEND``): the
``reference`` backend drives the event-by-event simulator, the ``fast``
backend the round-batched engine — which also extends the series to
n = 12800 (and bench_p4 to n = 100000), sizes the simulator cannot
reach in a smoke run.  Whichever backend runs the sweep, the smallest
size is cross-checked between both engines.
"""

from repro.core.fast import FastInstance
from repro.core.fast_lid import lid_matching_fast
from repro.core.lic import lic_matching
from repro.core.lid import run_lid
from repro.core.weights import satisfaction_weights
from repro.experiments import GridSpec, random_preference_instance, run_grid

SIZES = (100, 200, 400, 800)
FAST_EXTRA_SIZES = (3200, 12800)


def f2_spec(backend: str, sizes=None) -> GridSpec:
    """The F2 grid: both pipelines of one backend at constant degree 10."""
    sizes = sizes or (SIZES + (FAST_EXTRA_SIZES if backend == "fast" else ()))
    return GridSpec(
        name=f"f2-{backend}",
        engines=(f"lic-{backend}", f"lid-{backend}"),
        families=("er",),
        sizes=tuple(sizes),
        quotas=(3,),
        seeds=(1,),
        degree=10.0,
    )


def test_f2_scalability_series(report, benchmark, bench_backend):
    spec = f2_spec(bench_backend)
    result = run_grid(spec)
    assert result.ok, [r for r in result.failures]
    by = {(r["engine"], r["n"]): r for r in result.records}

    rows = []
    for n in spec.sizes:
        lic = by[(f"lic-{bench_backend}", n)]
        lid = by[(f"lid-{bench_backend}", n)]
        assert lid["m"] == lic["m"]  # engine-independent instances
        assert lid["lid_equals_lic"]  # Lemmas 4/6 per cell
        assert lid["edges"] == lic["edges"]
        rows.append(
            {
                "n": n,
                "m": lic["m"],
                "backend": bench_backend,
                "lic_ms": lic["lic_ms"],
                "lid_ms": lid["lid_ms"],
                "messages": lid["messages"],
                "msgs_per_edge": lid["msgs_per_edge"],
                "rounds": lid["rounds"],
            }
        )
    report(
        rows,
        ["n", "m", "backend", "lic_ms", "lid_ms", "messages",
         "msgs_per_edge", "rounds"],
        title="F2  scalability at constant average degree (~10)"
              f" — backend={bench_backend}",
        csv_name="f2_scalability.csv",
    )
    # message cost is linear in m: per-edge cost stays bounded
    assert max(r["msgs_per_edge"] for r in rows) <= 4.0
    # rounds stay far below n (locality)
    assert all(r["rounds"] < r["n"] / 4 for r in rows)

    # cross-check subsample: whichever backend ran the sweep, both
    # engines must agree on the smallest instance — matching, message
    # statistics AND the whole convergence trajectory (the fast engine
    # replays the simulator tick for tick)
    from repro.telemetry.probes import ConvergenceProbe, convergence_summary

    ps = random_preference_instance(SIZES[0], 10.0 / SIZES[0], 3, seed=1)
    ref_probe, fast_probe = ConvergenceProbe(), ConvergenceProbe()
    ref = run_lid(satisfaction_weights(ps), ps.quotas, probe=ref_probe)
    fast = lid_matching_fast(FastInstance.from_preference_system(ps),
                             probe=fast_probe)
    assert fast.matching.edge_set() == ref.matching.edge_set()
    assert fast.metrics.total_sent == ref.metrics.total_sent
    assert fast.rounds == ref.rounds
    assert fast_probe.samples == ref_probe.samples
    conv = convergence_summary(ref_probe.samples)
    report(
        [conv],
        ["ticks", "t_final", "t50", "t90", "t99", "locks",
         "outstanding_peak", "quota_fill"],
        title=f"F2  convergence landmarks at n={SIZES[0]}"
              " (identical between both engines)",
        csv_name="f2_convergence.csv",
    )

    ps = random_preference_instance(400, 10.0 / 400, 3, seed=1)
    wt = satisfaction_weights(ps)
    benchmark(lambda: lic_matching(wt, ps.quotas))
