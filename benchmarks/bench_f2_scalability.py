"""F2 — scalability: runtime and protocol cost vs overlay size.

Regenerates the "local communication scales" claim of §5: wall-clock
time of the centralised LIC, wall-clock of the LID execution, and
protocol metrics (messages, rounds) as n doubles from 100 to 800 at
constant average degree.  Expected shape: near-linear growth of LIC
time and of total messages in m; rounds grow roughly logarithmically /
stay flat, since proposal waves are local.

Backend-aware (``--repro-backend`` / ``REPRO_BENCH_BACKEND``): the
``reference`` backend drives the event-by-event simulator, the ``fast``
backend the round-batched engine — which also extends the series to
n = 12800 (and bench_p4 to n = 100000), sizes the simulator cannot
reach in a smoke run.  Whichever backend runs the sweep, the smallest
size is cross-checked between both engines.
"""

import time

from repro.core.fast import FastInstance, lic_matching_fast
from repro.core.fast_lid import lid_matching_fast
from repro.core.lic import lic_matching
from repro.core.lid import run_lid
from repro.core.weights import satisfaction_weights
from repro.experiments import random_preference_instance

SIZES = (100, 200, 400, 800)
FAST_EXTRA_SIZES = (3200, 12800)


def _measure(ps, backend):
    """Return ``(lic_matching_result, lid_result, t_lic, t_lid)``."""
    if backend == "fast":
        fi = FastInstance.from_preference_system(ps)
        t0 = time.perf_counter()
        lic = lic_matching_fast(fi)
        t_lic = time.perf_counter() - t0
        t0 = time.perf_counter()
        res = lid_matching_fast(fi)
        t_lid = time.perf_counter() - t0
    else:
        wt = satisfaction_weights(ps)
        t0 = time.perf_counter()
        lic = lic_matching(wt, ps.quotas)
        t_lic = time.perf_counter() - t0
        t0 = time.perf_counter()
        res = run_lid(wt, ps.quotas)
        t_lid = time.perf_counter() - t0
    return lic, res, t_lic, t_lid


def test_f2_scalability_series(report, benchmark, bench_backend):
    sizes = SIZES + (FAST_EXTRA_SIZES if bench_backend == "fast" else ())
    rows = []
    for n in sizes:
        ps = random_preference_instance(n, p=10.0 / n, quota=3, seed=1)
        lic, res, t_lic, t_lid = _measure(ps, bench_backend)
        assert res.matching.edge_set() == lic.edge_set()
        rows.append(
            {
                "n": n,
                "m": ps.m,
                "backend": bench_backend,
                "lic_ms": 1e3 * t_lic,
                "lid_ms": 1e3 * t_lid,
                "messages": res.metrics.total_sent,
                "msgs_per_edge": res.metrics.total_sent / max(ps.m, 1),
                "rounds": res.rounds,
            }
        )
    report(
        rows,
        ["n", "m", "backend", "lic_ms", "lid_ms", "messages",
         "msgs_per_edge", "rounds"],
        title="F2  scalability at constant average degree (~10)"
              f" — backend={bench_backend}",
        csv_name="f2_scalability.csv",
    )
    # message cost is linear in m: per-edge cost stays bounded
    assert max(r["msgs_per_edge"] for r in rows) <= 4.0
    # rounds stay far below n (locality)
    assert all(r["rounds"] < r["n"] / 4 for r in rows)

    # cross-check subsample: whichever backend ran the sweep, both
    # engines must agree on the smallest instance — matching AND
    # message statistics (the fast engine replays the simulator)
    ps = random_preference_instance(SIZES[0], 10.0 / SIZES[0], 3, seed=1)
    ref = run_lid(satisfaction_weights(ps), ps.quotas)
    fast = lid_matching_fast(FastInstance.from_preference_system(ps))
    assert fast.matching.edge_set() == ref.matching.edge_set()
    assert fast.metrics.total_sent == ref.metrics.total_sent
    assert fast.rounds == ref.rounds

    ps = random_preference_instance(400, 10.0 / 400, 3, seed=1)
    wt = satisfaction_weights(ps)
    benchmark(lambda: lic_matching(wt, ps.quotas))
