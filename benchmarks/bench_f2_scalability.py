"""F2 — scalability: runtime and protocol cost vs overlay size.

Regenerates the "local communication scales" claim of §5: wall-clock
time of the centralised LIC, wall-clock of the simulated LID, and
protocol metrics (messages, rounds) as n doubles from 100 to 800 at
constant average degree.  Expected shape: near-linear growth of LIC
time and of total messages in m; rounds grow roughly logarithmically /
stay flat, since proposal waves are local.
"""

import time


from repro.core.lic import lic_matching
from repro.core.lid import run_lid
from repro.core.weights import satisfaction_weights
from repro.experiments import random_preference_instance


def test_f2_scalability_series(report, benchmark):
    rows = []
    for n in (100, 200, 400, 800):
        ps = random_preference_instance(n, p=10.0 / n, quota=3, seed=1)
        wt = satisfaction_weights(ps)

        t0 = time.perf_counter()
        lic = lic_matching(wt, ps.quotas)
        t_lic = time.perf_counter() - t0

        t0 = time.perf_counter()
        res = run_lid(wt, ps.quotas)
        t_lid = time.perf_counter() - t0

        assert res.matching.edge_set() == lic.edge_set()
        rows.append(
            {
                "n": n,
                "m": ps.m,
                "lic_ms": 1e3 * t_lic,
                "lid_sim_ms": 1e3 * t_lid,
                "messages": res.metrics.total_sent,
                "msgs_per_edge": res.metrics.total_sent / max(ps.m, 1),
                "rounds": res.rounds,
            }
        )
    report(
        rows,
        ["n", "m", "lic_ms", "lid_sim_ms", "messages", "msgs_per_edge", "rounds"],
        title="F2  scalability at constant average degree (~10)",
        csv_name="f2_scalability.csv",
    )
    # message cost is linear in m: per-edge cost stays bounded
    assert max(r["msgs_per_edge"] for r in rows) <= 4.0
    # rounds stay far below n (locality)
    assert all(r["rounds"] < r["n"] / 4 for r in rows)

    ps = random_preference_instance(400, 10.0 / 400, 3, seed=1)
    wt = satisfaction_weights(ps)
    benchmark(lambda: lic_matching(wt, ps.quotas))
