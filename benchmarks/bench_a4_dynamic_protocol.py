"""A4 — the distributed dynamic LID protocol under churn (future work §7).

Companion to A3: where A3 repairs centrally, this experiment runs the
fully distributed dynamic protocol (`repro.core.dynamic_lid`) through a
churn session and reports per-event message costs, verifying after each
event that the quiescent mutual-lock state equals the centralised
greedy matching of the current overlay.

Expected shape: start-up costs O(m) messages (weight exchange +
negotiation); each churn event costs a small fraction of start-up
(locality), and equality with LIC holds after 100% of events — the
distributed realisation of the exact incremental repair.
"""

import numpy as np

from repro.core.dynamic_lid import DynamicLidHarness
from repro.core.lic import lic_matching
from repro.core.weights import WeightTable


def _random_pref_orders(n, p, rng):
    adj = [[] for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                adj[i].append(j)
                adj[j].append(i)
    orders = []
    for i in range(n):
        neigh = list(adj[i])
        rng.shuffle(neigh)
        orders.append(neigh)
    return orders


def _reference(harness):
    nodes = harness.nodes
    weights = {}
    for i in sorted(harness.alive):
        for j in nodes[i].pref_order:
            if i < j and j in harness.alive:
                weights[(i, j)] = nodes[i].my_delta(j) + nodes[j].my_delta(i)
    wt = WeightTable(weights, len(nodes))
    quotas = [nodes[k].quota if k in harness.alive else 0 for k in range(len(nodes))]
    return lic_matching(wt, quotas)


def test_a4_dynamic_protocol_churn(report, benchmark):
    rng = np.random.default_rng(31)
    n0 = 24
    orders = _random_pref_orders(n0, 0.3, rng)
    h = DynamicLidHarness(orders, [2] * n0, seed=31)
    startup = h.run_to_quiescence()
    assert h.matching().edge_set() == _reference(h).edge_set()

    rows = [
        {
            "event": "startup",
            "alive": len(h.alive),
            "messages": startup.messages,
            "msgs_vs_startup": 1.0,
            "equals_lic": True,
        }
    ]
    for k in range(12):
        alive = sorted(h.alive)
        if rng.random() < 0.5 and len(alive) > 8:
            stats = h.leave(int(rng.choice(alive)))
        else:
            deg = min(int(rng.integers(2, 6)), len(alive))
            neigh = [int(x) for x in rng.choice(alive, size=deg, replace=False)]
            positions = {
                j: int(rng.integers(0, len(h.nodes[j].pref_order) + 1))
                for j in neigh
            }
            _, stats = h.join(neigh, quota=2, positions=positions)
        equal = h.matching().edge_set() == _reference(h).edge_set()
        rows.append(
            {
                "event": f"{stats.event} #{k}",
                "alive": len(h.alive),
                "messages": stats.messages,
                "msgs_vs_startup": stats.messages / max(startup.messages, 1),
                "equals_lic": equal,
            }
        )
    report(
        rows,
        ["event", "alive", "messages", "msgs_vs_startup", "equals_lic"],
        title="A4  distributed dynamic LID: per-event cost and exactness",
        csv_name="a4_dynamic_protocol.csv",
    )
    assert all(r["equals_lic"] for r in rows)
    churn_rows = rows[1:]
    # locality: the mean churn event costs well below a full restart
    mean_frac = sum(r["msgs_vs_startup"] for r in churn_rows) / len(churn_rows)
    assert mean_frac < 0.8

    def _one_cycle():
        alive = sorted(h.alive)
        neigh = [int(x) for x in rng.choice(alive, size=3, replace=False)]
        positions = {
            j: int(rng.integers(0, len(h.nodes[j].pref_order) + 1)) for j in neigh
        }
        new_id, _ = h.join(neigh, quota=2, positions=positions)
        h.leave(new_id)

    benchmark(_one_cycle)
