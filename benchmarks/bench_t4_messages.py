"""T4 — Lemma 5 + §5: termination and message complexity of LID.

Regenerates the protocol-cost claim ("a small amount of local
communication"): message counts and asynchronous rounds as n and the
quota grow.  Expected shape:

- LID always terminates (Lemma 5) — every row completes;
- PROP ≤ 2m and REJ ≤ 2m (each node contacts each neighbour at most
  once per message type), so total messages grow linearly in m;
- rounds grow slowly (the proposal wave is locally bounded), far below n.

Backend-aware (``--repro-backend`` / ``REPRO_BENCH_BACKEND``): the
sweep runs on the event-by-event simulator or the round-batched fast
engine — the message statistics are identical by construction, and the
smallest grid point is cross-checked between both engines every run.
"""


from repro.core.fast import FastInstance
from repro.core.fast_lid import lid_matching_fast
from repro.core.lid import run_lid
from repro.core.weights import satisfaction_weights
from repro.experiments import aggregate, random_preference_instance, sweep


def _run(n: int, b: int, seed: int, backend: str = "reference") -> dict:
    ps = random_preference_instance(n, p=min(0.3, 12.0 / n), quota=b, seed=seed)
    if backend == "fast":
        res = lid_matching_fast(FastInstance.from_preference_system(ps))
        # the fast engine raises ProtocolError on any unfinished node,
        # so reaching this line is the termination witness
        terminated = True
    else:
        res = run_lid(satisfaction_weights(ps), ps.quotas)
        terminated = all(node.finished for node in res.nodes)
    m = ps.m
    return {
        "m": m,
        "prop": res.prop_messages,
        "rej": res.rej_messages,
        "total": res.metrics.total_sent,
        "rounds": res.rounds,
        "msgs_per_edge": res.metrics.total_sent / max(m, 1),
        "prop_bound_ok": res.prop_messages <= 2 * m,
        "rej_bound_ok": res.rej_messages <= 2 * m,
        "terminated": terminated,
    }


def test_t4_message_complexity_table(report, benchmark, bench_backend):
    rows = sweep(
        _run,
        {"n": [50, 100, 200, 400], "b": [2, 4], "seed": [0]},
        repeats=2,
        backend=bench_backend,
    )
    agg = aggregate(
        rows,
        ["n", "b", "backend"],
        ["m", "prop", "rej", "total", "rounds", "msgs_per_edge",
         "prop_bound_ok", "rej_bound_ok", "terminated"],
    )
    report(
        agg,
        ["n", "b", "backend", "m", "prop", "rej", "total", "msgs_per_edge",
         "rounds", "prop_bound_ok", "rej_bound_ok", "terminated"],
        title="T4  LID message complexity (PROP ≤ 2m, REJ ≤ 2m, linear in m)",
        csv_name="t4_messages.csv",
    )
    for r in agg:
        assert r["terminated"] == 1.0
        assert r["prop_bound_ok"] == 1.0 and r["rej_bound_ok"] == 1.0
        assert r["msgs_per_edge"] <= 4.0

    # cross-check subsample: the two engines must report identical
    # message statistics on the smallest grid point
    ref = _run(50, 2, seed=0, backend="reference")
    fast = _run(50, 2, seed=0, backend="fast")
    assert fast == ref

    ps = random_preference_instance(200, 12.0 / 200, 3, seed=9)
    wt = satisfaction_weights(ps)
    benchmark(lambda: run_lid(wt, ps.quotas))
