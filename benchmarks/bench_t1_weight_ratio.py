"""T1 — Theorem 2: LIC/LID weight is ≥ ½ of the optimal matching weight.

Regenerates the ½-approximation claim empirically: across five topology
families and two sizes, the greedy weight ratio against the exact MILP
optimum.  Expected shape: every ratio in [0.5, 1.0] (``bound_ok`` 100%),
typical ratios far above the bound (≈0.9+), LID always equal to LIC and
every output passing the locally-heaviest certificate.
"""


from repro.core.lic import lic_matching
from repro.experiments import (
    FAMILIES,
    aggregate,
    random_weighted_instance,
    sweep,
    topology_for_family,
    weight_ratio_record,
)
from repro.core.weights import WeightTable
from repro.utils.rng import spawn_rng


def _family_weighted_instance(family: str, n: int, seed: int):
    rng = spawn_rng(seed, "t1", family, str(n))
    topo = topology_for_family(family, n, rng)
    weights = {e: float(rng.uniform(1e-6, 1.0)) for e in topo.edges()}
    quotas = [int(rng.integers(1, 5)) for _ in range(n)]
    return WeightTable(weights, n), quotas


def _run(family: str, n: int, seed: int) -> dict:
    wt, quotas = _family_weighted_instance(family, n, seed)
    return weight_ratio_record(wt, quotas)


def test_t1_weight_ratio_table(report, benchmark):
    rows = sweep(
        _run,
        {"family": list(FAMILIES), "n": [30, 60], "seed": [0]},
        repeats=3,
    )
    agg = aggregate(
        rows,
        ["family", "n"],
        ["ratio", "bound_ok", "certificate", "lid_equals_lic", "messages"],
        reducers={"ratio": min},  # report the worst observed ratio
    )
    for row in agg:
        row["bound"] = 0.5
    report(
        agg,
        ["family", "n", "count", "ratio", "bound", "bound_ok", "certificate",
         "lid_equals_lic", "messages"],
        title="T1  LIC/LID weight vs exact optimum (ratio = worst over seeds)",
        csv_name="t1_weight_ratio.csv",
    )
    assert all(r["bound_ok"] == 1.0 for r in agg)
    assert all(r["certificate"] == 1.0 for r in agg)
    assert all(r["lid_equals_lic"] == 1.0 for r in agg)
    assert all(r["ratio"] >= 0.5 for r in agg)

    # timed kernel: the sorted-scan greedy on a mid-size instance
    wt, quotas = random_weighted_instance(300, 0.05, seed=1)
    benchmark(lambda: lic_matching(wt, quotas))
