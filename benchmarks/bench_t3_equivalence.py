"""T3 — Lemmas 4 & 6: LID selects exactly the LIC edge set, always.

Regenerates the equivalence the approximation proof rests on, across
adversarial schedules: unit-latency FIFO, uniform-latency FIFO,
exponential-latency non-FIFO — each must lock the identical edge set
that the centralised LIC selects.  Expected shape: 100% equality on
every instance/schedule pair (the paper proves it, we measure it).
"""


from repro.core.lic import lic_matching
from repro.core.lid import run_lid
from repro.distsim import ExponentialLatency, UniformLatency
from repro.experiments import FAMILIES, family_instance, sweep
from repro.core.weights import satisfaction_weights

SCHEDULES = {
    "unit-fifo": dict(latency=None, fifo=True),
    "uniform-fifo": dict(latency=UniformLatency(0.2, 4.0), fifo=True),
    "exp-nonfifo": dict(latency=ExponentialLatency(1.5), fifo=False),
}


def _run(family: str, seed: int) -> dict:
    ps = family_instance(family, 40, 3, seed=seed)
    wt = satisfaction_weights(ps)
    reference = lic_matching(wt, ps.quotas).edge_set()
    out = {"edges": len(reference)}
    for name, cfg in SCHEDULES.items():
        res = run_lid(wt, ps.quotas, seed=seed, **cfg)
        out[name] = res.matching.edge_set() == reference
    return out


def test_t3_lid_equals_lic_table(report, benchmark):
    rows = sweep(_run, {"family": list(FAMILIES), "seed": [0, 1, 2]})
    report(
        rows,
        ["family", "seed", "edges", *SCHEDULES],
        title="T3  LID edge set == LIC edge set under adversarial schedules",
        csv_name="t3_equivalence.csv",
    )
    for row in rows:
        for name in SCHEDULES:
            assert row[name] is True

    ps = family_instance("er", 40, 3, seed=0)
    wt = satisfaction_weights(ps)
    benchmark(lambda: run_lid(wt, ps.quotas))
