"""T2 — Theorem 3: LID satisfaction ≥ ¼(1+1/b_max) of the optimum.

Regenerates the headline approximation guarantee: LID's total eq.-1
satisfaction against the exact maximising-satisfaction b-matching (MILP
with the dynamic term linearised).  Expected shape: every ratio within
[¼(1+1/b_max), 1]; ratios in practice near 0.85–0.95, well above the
pessimistic bound, and increasing head-room as b grows.
"""


from repro.core.lid import solve_lid
from repro.experiments import (
    aggregate,
    random_preference_instance,
    satisfaction_ratio_record,
    sweep,
)


def _run(n: int, b: int, seed: int) -> dict:
    ps = random_preference_instance(n, p=0.3, quota=b, seed=seed)
    rec = satisfaction_ratio_record(ps)
    rec["b"] = b
    return rec


def test_t2_satisfaction_ratio_table(report, benchmark):
    rows = sweep(_run, {"n": [15, 25, 35], "b": [1, 2, 4], "seed": [0]}, repeats=3)
    agg = aggregate(
        rows,
        ["n", "b"],
        ["ratio", "bound", "bound_ok", "lid_sat", "opt_sat"],
        reducers={"ratio": min},
    )
    report(
        agg,
        ["n", "b", "count", "lid_sat", "opt_sat", "ratio", "bound", "bound_ok"],
        title="T2  LID satisfaction vs exact optimum (ratio = worst over seeds)",
        csv_name="t2_satisfaction_ratio.csv",
    )
    assert all(r["bound_ok"] == 1.0 for r in agg)
    for r in agg:
        assert r["ratio"] >= r["bound"] - 1e-9

    ps = random_preference_instance(60, 0.2, 3, seed=5)
    benchmark(lambda: solve_lid(ps))
