"""T2 — Theorem 3: LID satisfaction ≥ ¼(1+1/b_max) of the optimum.

Regenerates the headline approximation guarantee: LID's total eq.-1
satisfaction against the exact maximising-satisfaction b-matching (MILP
with the dynamic term linearised).  Expected shape: every ratio within
[¼(1+1/b_max), 1]; ratios in practice near 0.85–0.95, well above the
pessimistic bound, and increasing head-room as b grows.

Since the grid migration the (n × b × seed) sweep is a declarative
:class:`~repro.experiments.gridspec.GridSpec` with ``measure_ratio``
enabled — each cell solves the MILP optimum and records the Theorem-3
fields; this file only aggregates the records (worst ratio over seeds).
"""

from repro.core.lid import solve_lid
from repro.experiments import (
    GridSpec,
    aggregate,
    random_preference_instance,
    run_grid,
)


def t2_spec() -> GridSpec:
    """The T2 grid: LID vs the exact optimum on small dense instances."""
    return GridSpec(
        name="t2-ratio",
        engines=("lid-reference",),
        families=("er",),
        sizes=(15, 25, 35),
        quotas=(1, 2, 4),
        seeds=(0, 1, 2),
        density=0.3,
        measure_ratio=True,
    )


def test_t2_satisfaction_ratio_table(report, benchmark):
    result = run_grid(t2_spec())
    assert result.ok, [r for r in result.failures]
    agg = aggregate(
        result.records,
        ["n", "b"],
        ["ratio", "bound", "bound_ok", "lid_sat", "opt_sat"],
        reducers={"ratio": min},
    )
    report(
        agg,
        ["n", "b", "count", "lid_sat", "opt_sat", "ratio", "bound", "bound_ok"],
        title="T2  LID satisfaction vs exact optimum (ratio = worst over seeds)",
        csv_name="t2_satisfaction_ratio.csv",
    )
    assert all(r["bound_ok"] == 1.0 for r in agg)
    for r in agg:
        assert r["ratio"] >= r["bound"] - 1e-9

    # one instrumented solve: the pipeline attributes its wall time to
    # the three canonical phases and exposes the convergence trajectory
    from repro.telemetry.probes import ConvergenceProbe
    from repro.telemetry.spans import Telemetry

    ps = random_preference_instance(60, 0.2, 3, seed=5)
    tel, probe = Telemetry(), ConvergenceProbe()
    res, _ = solve_lid(ps, telemetry=tel, probe=probe)
    assert set(res.metrics.phase_seconds) == {
        "build_weights", "sim_loop", "extract",
    }
    assert probe.final().quota_fill > 0

    benchmark(lambda: solve_lid(ps))
