"""T5 — Lemma 1: the static part of satisfaction is ≥ ½(1+1/b) of the whole.

Two reproductions of eq. 8:

1. *Tightness*: the worst-case construction (all b connections drawn
   from the bottom of a length-L list) achieves S^s/(S^s+S^d) exactly
   equal to ½(1+1/b), for every (b, L).
2. *Validity*: across random instances and matchings, the per-node ratio
   never falls below the bound (minimum observed ratio ≥ bound), and the
   empirical minimum approaches the bound as quotas fill.

Expected shape: the tight column equals the bound to machine precision;
the empirical minimum column sits at or above it.
"""

import numpy as np

from repro.baselines.random_matching import random_bmatching
from repro.core.lic import solve_modified_bmatching
from repro.core.satisfaction import (
    full_satisfaction,
    lemma1_bound,
    lemma1_worst_case,
    static_dynamic_split,
)
from repro.experiments import random_preference_instance


def _empirical_min_ratio(b: int, seeds=range(4)) -> float:
    worst = 1.0
    for seed in seeds:
        ps = random_preference_instance(30, 0.4, b, seed=seed)
        for matching in (
            solve_modified_bmatching(ps)[0],
            random_bmatching(ps, np.random.default_rng(seed)),
        ):
            for i in ps.nodes():
                conns = matching.connections(i)
                s = full_satisfaction(ps, i, conns)
                if s > 0:
                    s_static, _ = static_dynamic_split(ps, i, conns)
                    worst = min(worst, s_static / s)
    return worst


def test_t5_lemma1_bound_table(report, benchmark):
    rows = []
    for b in (1, 2, 3, 4, 6, 8):
        ell = 4 * b
        s_static, s_dynamic = lemma1_worst_case(b, ell)
        tight = s_static / (s_static + s_dynamic)
        bound = lemma1_bound(b)
        emp = _empirical_min_ratio(b)
        rows.append(
            {
                "b": b,
                "L": ell,
                "bound": bound,
                "tight_construction": tight,
                "tight_matches_bound": abs(tight - bound) < 1e-12,
                "empirical_min_ratio": emp,
                "empirical_ok": emp >= bound - 1e-9,
            }
        )
    report(
        rows,
        ["b", "L", "bound", "tight_construction", "tight_matches_bound",
         "empirical_min_ratio", "empirical_ok"],
        title="T5  Lemma 1: static/total satisfaction ratio vs ½(1+1/b)",
        csv_name="t5_static_bound.csv",
    )
    assert all(r["tight_matches_bound"] for r in rows)
    assert all(r["empirical_ok"] for r in rows)

    ps = random_preference_instance(60, 0.3, 4, seed=1)
    matching, _ = solve_modified_bmatching(ps)
    adjacency = matching.adjacency()
    benchmark(
        lambda: [full_satisfaction(ps, i, adjacency[i]) for i in ps.nodes()]
    )
