"""P2 — performance/correctness: the from-scratch blossom matcher.

Engineering companion: our blossom implementation
(:mod:`repro.baselines.blossom`) against the networkx reference on
random graphs — optimal weights must agree exactly; wall-clock is
reported for context.  Expected shape: identical optima at every size;
comparable or better runtime (both are pure-Python O(n³)).
"""

import time

import networkx as nx
import numpy as np

from repro.baselines.blossom import max_weight_matching_blossom
from repro.core.weights import WeightTable


def _random_weighted(n: int, p: float, seed: int) -> WeightTable:
    rng = np.random.default_rng(seed)
    weights = {
        (i, j): float(rng.uniform(0.1, 10.0))
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < p
    }
    return WeightTable(weights, n)


def test_p2_blossom_vs_networkx(report, benchmark):
    rows = []
    for n in (40, 80, 160):
        wt = _random_weighted(n, p=min(0.5, 12.0 / n * 3), seed=n)
        t0 = time.perf_counter()
        ours = max_weight_matching_blossom(wt)
        t_ours = time.perf_counter() - t0

        G = nx.Graph()
        for (i, j), w in wt.items():
            G.add_edge(i, j, weight=w)
        t0 = time.perf_counter()
        ref = nx.max_weight_matching(G)
        t_nx = time.perf_counter() - t0
        ref_w = sum(wt.weight(a, b) for a, b in ref)

        rows.append(
            {
                "n": n,
                "m": wt.m,
                "our_weight": ours.total_weight(wt),
                "nx_weight": ref_w,
                "equal": abs(ours.total_weight(wt) - ref_w) < 1e-6,
                "our_ms": 1e3 * t_ours,
                "nx_ms": 1e3 * t_nx,
                "speedup": t_nx / max(t_ours, 1e-9),
            }
        )
    report(
        rows,
        ["n", "m", "our_weight", "nx_weight", "equal", "our_ms", "nx_ms",
         "speedup"],
        title="P2  from-scratch blossom vs networkx (optima must agree)",
        csv_name="p2_blossom.csv",
    )
    assert all(r["equal"] for r in rows)

    wt = _random_weighted(80, 0.3, seed=80)
    benchmark(lambda: max_weight_matching_blossom(wt))
