"""CSV threshold gate for CI: fail when an archived metric regresses.

Replaces the inline heredoc that used to live in ``ci.yml`` so the gate
logic is unit-testable (``tests/experiments/test_gate.py``).  Reads an
archived benchmark CSV, selects rows with ``--where`` equality filters,
and requires the gated column to meet ``--min`` and/or stay within
``--max`` on every selected row; ``--require-row`` additionally asserts
that certain rows exist at all (guarding against silently dropped
scalability rows).

``--max`` exists so *overhead-style* gates (telemetry overhead < 2 %,
shard-reconciliation overhead) read as the bound they mean instead of
an inverted ``--min`` on a ratio column.

Usage (the bench-smoke job)::

    python benchmarks/gate.py benchmarks/results/p4_fast_lid.csv \
        --column speedup --min 10 --where n=20000 --require-row n=100000
    python benchmarks/gate.py benchmarks/results/p4_telemetry.csv \
        --column overhead_pct --max 2
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path
from typing import Mapping, Optional, Sequence

__all__ = ["GateError", "check_gate", "load_rows", "main", "parse_condition"]


class GateError(AssertionError):
    """The gate failed: a regression, or a required row went missing."""


def parse_condition(text: str) -> tuple[str, str]:
    """Parse a ``key=value`` filter; raises ``ValueError`` otherwise."""
    key, sep, value = text.partition("=")
    if not sep or not key:
        raise ValueError(f"condition {text!r} is not of the form key=value")
    return key.strip(), value.strip()


def load_rows(path: "str | Path") -> list[dict]:
    with open(path, newline="") as fh:
        return list(csv.DictReader(fh))


def _matches(row: Mapping[str, str], conds: Sequence[tuple[str, str]]) -> bool:
    return all(row.get(k) == v for k, v in conds)


def check_gate(
    rows: Sequence[Mapping[str, str]],
    column: str,
    minimum: Optional[float] = None,
    where: Sequence[tuple[str, str]] = (),
    require_rows: Sequence[Sequence[tuple[str, str]]] = (),
    maximum: Optional[float] = None,
) -> list[str]:
    """Apply the gate; returns human-readable pass messages.

    At least one bound is required: ``minimum`` (speedup-style gates),
    ``maximum`` (overhead-style gates), or both (a corridor).  Raises
    :class:`GateError` when no row matches ``where``, when any matching
    row's ``column`` falls below ``minimum`` / exceeds ``maximum`` (or
    is missing / non-numeric), or when any ``require_rows`` condition
    set matches no row.
    """
    if minimum is None and maximum is None:
        raise ValueError("check_gate needs a minimum and/or a maximum bound")
    if minimum is not None and maximum is not None and maximum < minimum:
        raise ValueError(
            f"empty gate corridor: --max {maximum:g} < --min {minimum:g}"
        )
    gated = [r for r in rows if _matches(r, where)]
    label = " and ".join(f"{k}={v}" for k, v in where) or "any row"
    if not gated:
        raise GateError(f"no row matches {label} — the gate row was dropped")
    messages = []
    for row in gated:
        raw = row.get(column)
        try:
            value = float(raw)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise GateError(
                f"row {label} has no numeric {column!r} (got {raw!r})"
            ) from None
        if minimum is not None and value < minimum:
            raise GateError(
                f"{column} regressed: {value:g} < {minimum:g} at {label}"
            )
        if maximum is not None and value > maximum:
            raise GateError(
                f"{column} exceeded its bound: {value:g} > {maximum:g}"
                f" at {label}"
            )
        if minimum is not None:
            messages.append(
                f"gate ok: {column}={value:g} >= {minimum:g} at {label}"
            )
        if maximum is not None:
            messages.append(
                f"gate ok: {column}={value:g} <= {maximum:g} at {label}"
            )
    for conds in require_rows:
        req_label = " and ".join(f"{k}={v}" for k, v in conds)
        if not any(_matches(r, conds) for r in rows):
            raise GateError(f"required row {req_label} is missing")
        messages.append(f"row present: {req_label}")
    return messages


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Gate an archived benchmark CSV against a threshold."
    )
    parser.add_argument("csv", help="path of the archived CSV")
    parser.add_argument("--column", required=True,
                        help="numeric column the threshold applies to")
    parser.add_argument("--min", type=float, dest="minimum", default=None,
                        help="minimum acceptable value of the column")
    parser.add_argument("--max", type=float, dest="maximum", default=None,
                        help="maximum acceptable value of the column"
                             " (overhead-style gates); at least one of"
                             " --min/--max is required")
    parser.add_argument("--where", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="row filter; repeatable (all must match)")
    parser.add_argument("--require-row", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="assert a row with KEY=VALUE exists; repeatable")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.minimum is None and args.maximum is None:
        parser.error("at least one of --min/--max is required")
    try:
        where = [parse_condition(c) for c in args.where]
        require = [[parse_condition(c)] for c in args.require_row]
        messages = check_gate(load_rows(args.csv), args.column, args.minimum,
                              where, require, maximum=args.maximum)
    except (GateError, ValueError, OSError) as exc:
        print(f"GATE FAILED: {exc}", file=sys.stderr)
        return 1
    for msg in messages:
        print(msg)
    return 0


if __name__ == "__main__":
    sys.exit(main())
