"""A1 — ablation: the unique-weights assumption (tie-breaking rule).

Section 4 assumes unique edge weights "since it is important for our
greedy algorithms to be able to recognise the locally heaviest edges in
an unambiguous way (ties can be broken using node identities)".  This
ablation quantifies what the device costs and what it protects:

- *id tie-break* (the paper's rule, our default total-order key),
- *jitter*: break ties by adding a tiny random perturbation per edge —
  an alternative a practitioner might try.

On tie-heavy instances (uniform quotas, regular-ish graphs produce many
exactly-equal eq.-9 weights) both rules yield valid greedy matchings
with near-identical total weight, but only a *consistent global* rule
keeps LID equal to LIC — the jitter rule is also consistent (same
perturbed table shared), illustrating that any global strict order
works, while per-node inconsistent orders would deadlock (not
implementable in our API by construction).

Expected shape: equal-weight groups abundant; both rules give the same
total weight within jitter noise; LID == LIC under both.
"""

from collections import Counter


from repro.core.lic import lic_matching
from repro.core.lid import run_lid
from repro.core.weights import WeightTable, satisfaction_weights
from repro.experiments import family_instance
from repro.utils.rng import spawn_rng


def _jittered(wt: WeightTable, seed: int) -> WeightTable:
    rng = spawn_rng(seed, "a1-jitter")
    return WeightTable(
        {e: w * (1.0 + 1e-9 * rng.random()) for e, w in wt.items()}, wt.n
    )


def test_a1_tiebreak_ablation(report, benchmark):
    rows = []
    for family in ("reg", "ws", "er"):
        for seed in (0, 1):
            ps = family_instance(family, 40, 2, seed=seed)
            wt = satisfaction_weights(ps)
            counts = Counter(round(w, 12) for _, w in wt.items())
            ties = sum(c for c in counts.values() if c > 1)

            m_id = lic_matching(wt, ps.quotas)
            lid_id = run_lid(wt, ps.quotas)
            wt_j = _jittered(wt, seed)
            m_j = lic_matching(wt_j, ps.quotas)
            lid_j = run_lid(wt_j, ps.quotas)

            w_id = m_id.total_weight(wt)
            w_j = m_j.total_weight(wt)
            rows.append(
                {
                    "family": family,
                    "seed": seed,
                    "edges": wt.m,
                    "tied_edges": ties,
                    "weight_id_rule": w_id,
                    "weight_jitter_rule": w_j,
                    "rel_diff": abs(w_id - w_j) / max(w_id, 1e-12),
                    "lid=lic (id)": lid_id.matching.edge_set() == m_id.edge_set(),
                    "lid=lic (jit)": lid_j.matching.edge_set() == m_j.edge_set(),
                }
            )
    report(
        rows,
        ["family", "seed", "edges", "tied_edges", "weight_id_rule",
         "weight_jitter_rule", "rel_diff", "lid=lic (id)", "lid=lic (jit)"],
        title="A1  tie-breaking ablation: id rule vs jittered weights",
        csv_name="a1_tiebreak.csv",
    )
    for r in rows:
        assert r["lid=lic (id)"] and r["lid=lic (jit)"]
        assert r["rel_diff"] < 0.02  # tie resolution barely moves total weight
    assert any(r["tied_edges"] > 0 for r in rows)  # the ablation is non-vacuous

    ps = family_instance("reg", 40, 2, seed=0)
    wt = satisfaction_weights(ps)
    benchmark(lambda: lic_matching(wt, ps.quotas))
