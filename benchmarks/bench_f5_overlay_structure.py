"""F5 — structure of the constructed overlay (the §1 end goal).

The algorithms exist to *construct overlays*; beyond satisfaction, a
constructed overlay must be usable: connected, short paths, no stranded
peers.  For each scenario this experiment fingerprints the matched
overlay produced by LID vs the random-matching control (equal edge
budget) and the potential graph, measuring connectivity, clustering and
path length.

Expected shape: LID uses the same per-node quota budget as random but
concentrates edges on mutually-preferred pairs; connectivity (largest-
component fraction) stays comparable to random while mean satisfaction
is much higher (cross-reference F1), showing preference-awareness does
not cost overlay usability.
"""

import numpy as np

from repro.baselines.random_matching import random_bmatching
from repro.core.lid import solve_lid
from repro.overlay import SCENARIOS, build_scenario
from repro.overlay.analysis import analyze_overlay, matching_adjacency


def test_f5_overlay_structure(report, benchmark):
    rows = []
    lid_rows = {}
    for name in sorted(SCENARIOS):
        sc = build_scenario(name, 60, seed=8)
        ps = sc.ps
        lid, _ = solve_lid(ps)
        rnd = random_bmatching(ps, np.random.default_rng(0))
        for label, matching in (("LID", lid.matching), ("random", rnd)):
            fp = analyze_overlay(
                matching_adjacency(matching),
                path_sample=None,
                rng=np.random.default_rng(1),
            )
            row = {"scenario": name, "overlay": label, **fp.as_row()}
            row["mean_sat"] = float(
                matching.satisfaction_vector(ps).mean()
            )
            rows.append(row)
            if label == "LID":
                lid_rows[name] = row
        pot = analyze_overlay(
            [list(ps.neighbors(i)) for i in ps.nodes()], path_sample=None
        )
        rows.append({"scenario": name, "overlay": "potential", **pot.as_row(),
                     "mean_sat": float("nan")})

    report(
        rows,
        ["scenario", "overlay", "edges", "mean_deg", "isolated", "lcc_frac",
         "components", "clustering", "avg_path", "mean_sat"],
        title="F5  structure of the constructed overlay",
        csv_name="f5_overlay_structure.csv",
    )
    # LID overlays must remain usable: dominant component, no mass stranding
    for name, row in lid_rows.items():
        assert row["lcc_frac"] >= 0.8, name
        assert row["isolated"] <= 0.1, name

    sc = build_scenario("geo_latency", 60, seed=8)
    lid, _ = solve_lid(sc.ps)
    adj = matching_adjacency(lid.matching)
    benchmark(lambda: analyze_overlay(adj, path_sample=16))
