#!/usr/bin/env python3
"""Interest-based social overlay with fully private, cyclic preferences.

Every peer follows its *own* metric (an idiosyncratic private taste —
the fully distributed scenario of §1).  Such preference systems are
almost always cyclic, so the best-response dynamics of Gai et al. [3]
may never stabilise, and a stable matching may not even exist.  LID
sidesteps both problems: it always terminates (Lemma 5) and guarantees
a ¼(1+1/b_max) fraction of the optimal satisfaction (Theorem 3).

Run:  python examples/interest_overlay.py
"""

from repro.baselines import (
    best_response_dynamics,
    count_blocking_pairs,
    stable_fixtures_matching,
)
from repro.core import solve_lid
from repro.overlay import build_scenario


def main() -> None:
    scenario = build_scenario("heterogeneous", n=60, seed=11)
    ps = scenario.ps
    print(f"Overlay: {ps.n} peers, {ps.m} links, b_max={ps.b_max}")
    print(f"Preferences acyclic: {ps.is_acyclic()}  "
          "(private metrics almost always create cycles)")

    # 1. the baseline the literature suggests: best-response dynamics
    br = best_response_dynamics(ps, max_steps=5000)
    status = "stabilised" if br.converged else (
        "entered a CYCLE" if br.cycled else "still churning at budget end"
    )
    print(f"\nBest-response dynamics: {status} after {br.steps} steps;"
          f" {count_blocking_pairs(ps, br.matching)} blocking pairs remain")

    # 2. a stable matching may simply not exist
    sf = stable_fixtures_matching(ps)
    exists = {True: "exists", False: "provably does not exist", None: "unknown"}
    print(f"Stable b-matching: {exists[sf.exists]} (method: {sf.method})")

    # 3. LID: unconditional termination with a satisfaction guarantee
    result, _ = solve_lid(ps)
    lid = result.matching
    print(f"\nLID: terminated in {result.rounds:.0f} rounds,"
          f" {result.metrics.total_sent} messages")
    print(f"  total satisfaction {lid.total_satisfaction(ps):.2f}"
          f" over {lid.size()} connections")
    if br.converged:
        print(f"  (best-response reached {br.matching.total_satisfaction(ps):.2f})")
    else:
        print(f"  (oscillating best-response snapshot:"
              f" {br.matching.total_satisfaction(ps):.2f})")


if __name__ == "__main__":
    main()
