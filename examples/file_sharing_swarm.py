#!/usr/bin/env python3
"""File-sharing swarm: bandwidth-driven preferences (paper §1 motivation).

A 120-peer swarm on a preferential-attachment overlay.  Peers have
Pareto-distributed upload capacity; everyone prefers high-bandwidth,
reliable neighbours, so the few seeds are heavily contended.  The
example compares LID against a random maximal overlay and against the
exact optimum on the *modified* objective, and shows how satisfaction
splits between hub and leaf peers.

Run:  python examples/file_sharing_swarm.py
"""

import numpy as np

from repro.baselines import random_bmatching
from repro.core import solve_lid
from repro.overlay import build_scenario


def main() -> None:
    scenario = build_scenario("file_sharing", n=120, seed=7)
    ps = scenario.ps
    print(f"Swarm: {ps.n} peers, {ps.m} potential links, b_max={ps.b_max}")

    result, wt = solve_lid(ps)
    lid = result.matching
    rnd = random_bmatching(ps, np.random.default_rng(0), wt)

    s_lid = lid.satisfaction_vector(ps)
    s_rnd = rnd.satisfaction_vector(ps)
    print(f"\nTotal satisfaction: LID {s_lid.sum():.1f}  vs  random {s_rnd.sum():.1f}"
          f"  (+{100 * (s_lid.sum() / s_rnd.sum() - 1):.0f}%)")
    print(f"Median satisfaction: LID {np.median(s_lid):.3f}  vs  random {np.median(s_rnd):.3f}")

    # contention analysis: how do the top-capacity seeds fare?
    bandwidth = np.array([p.bandwidth for p in scenario.peers])
    seeds = np.argsort(bandwidth)[-10:]
    print("\nTop-10 capacity seeds:")
    print(f"  mean matched degree {np.mean([lid.degree(int(i)) for i in seeds]):.2f}"
          f" (quota mean {np.mean([ps.quota(int(i)) for i in seeds]):.2f})")
    in_demand = sum(
        1 for i in seeds for j in ps.neighbors(int(i)) if ps.rank(j, int(i)) == 0
    )
    print(f"  ranked #1 by {in_demand} neighbour lists")

    print(f"\nProtocol cost: {result.metrics.total_sent} messages"
          f" ({result.prop_messages} PROP / {result.rej_messages} REJ),"
          f" {result.rounds:.0f} rounds, max node load"
          f" {result.metrics.max_node_load()} msgs")


if __name__ == "__main__":
    main()
