#!/usr/bin/env python3
"""Robustness demo: LID under loss, crashes and malicious peers (§7).

The paper's conclusion asks how the greedy strategy copes with hostile
conditions.  This demo runs the same 50-peer overlay through four
regimes and reports what survives:

1. ideal channels (the published setting),
2. 20% message loss with the retransmission extension,
3. five reject-all Byzantine disruptors,
4. loss + Byzantine at once.

Run:  python examples/robustness_demo.py
"""

from repro.core.lid import LidNode, run_lid
from repro.core.matching import Matching
from repro.core.weights import satisfaction_weights
from repro.distsim import BernoulliLoss, Network, Simulator
from repro.distsim.failures import make_byzantine
from repro.experiments import random_preference_instance


def byzantine_run(wt, ps, byz, drop=None, retransmit=None):
    """Run LID with `byz` disruptors and optional loss; return stats."""
    nodes = [
        LidNode(
            wt.weight_list(i),
            ps.quota(i),
            polite=retransmit is not None,
            retransmit_timeout=retransmit,
        )
        for i in range(ps.n)
    ]
    for b in byz:
        make_byzantine(nodes[b], "reject_all")
    net = Network(ps.n, links=wt.edges(), drop_filter=drop, seed=11)
    sim = Simulator(net, nodes)
    sim.run(max_events=500_000)
    matching = Matching(ps.n)
    for i in range(ps.n):
        if i in byz:
            continue
        for j in nodes[i].locked:
            if j not in byz and i < j and i in nodes[j].locked:
                matching.add(i, j)
    honest_done = all(
        nodes[i].finished for i in range(ps.n) if i not in byz
    )
    return matching, honest_done, sim.metrics


def main() -> None:
    ps = random_preference_instance(50, 0.25, 3, seed=9)
    wt = satisfaction_weights(ps)
    byz = set(range(5))  # ids 0-4 turn disruptive in regimes 3 and 4

    print(f"Overlay: {ps.n} peers, {ps.m} links, 5 designated disruptors\n")

    baseline = run_lid(wt, ps.quotas)
    sat0 = baseline.matching.total_satisfaction(ps)
    print(f"1. ideal channels:        satisfaction {sat0:6.2f},"
          f" {baseline.metrics.total_sent} msgs — the reference")

    lossy = run_lid(wt, ps.quotas, drop_filter=BernoulliLoss(0.2),
                    retransmit_timeout=5.0, seed=3)
    same = lossy.matching.edge_set() == baseline.matching.edge_set()
    print(f"2. 20% loss + retransmit: satisfaction"
          f" {lossy.matching.total_satisfaction(ps):6.2f},"
          f" {lossy.metrics.total_sent} msgs"
          f" ({lossy.metrics.dropped} lost) — identical matching: {same}")

    m3, done3, met3 = byzantine_run(wt, ps, byz)
    print(f"3. 5 reject-all peers:    satisfaction"
          f" {m3.total_satisfaction(ps):6.2f},"
          f" honest all terminated: {done3}")

    m4, done4, met4 = byzantine_run(
        wt, ps, byz, drop=BernoulliLoss(0.2), retransmit=5.0
    )
    print(f"4. loss + Byzantine:      satisfaction"
          f" {m4.total_satisfaction(ps):6.2f},"
          f" honest all terminated: {done4}")

    print("\nTakeaway: the matching quality degrades only with the welfare"
          " the disruptors withdraw; termination survives every regime"
          " (retransmission supplies what Lemma 5 assumes: reliable"
          " channels).")


if __name__ == "__main__":
    main()
