#!/usr/bin/env python3
"""Churn session: joins and leaves with exact incremental repair (§7).

The paper's published algorithm "does not handle dynamicity"; its
conclusion conjectures the greedy strategy can.  This example runs a
50-event churn session against a live overlay, repairing the matching
incrementally after every event, and verifies after each event that the
repaired matching equals a from-scratch recomputation — while costing a
fraction of the work.

Run:  python examples/churn_session.py
"""

import numpy as np

from repro.core.lic import lic_matching
from repro.core.weights import satisfaction_weights
from repro.overlay import DynamicOverlay, Peer, build_scenario


def main() -> None:
    scenario = build_scenario("geo_latency", n=60, seed=21)
    overlay = DynamicOverlay(scenario.topology, scenario.peers, scenario.metric)
    rng = np.random.default_rng(2026)

    print(f"Initial overlay: {overlay.n} peers,"
          f" satisfaction {overlay.total_satisfaction():.2f}")

    resolutions = scanned = checks_ok = dirty_total = 0
    joins = leaves = 0
    for event in range(50):
        if rng.random() < 0.45 and overlay.n > 20:
            victim = int(rng.choice(overlay.active_ids()))
            stats = overlay.leave(victim)
            leaves += 1
        else:
            ids = overlay.active_ids()
            k = min(int(rng.integers(2, 7)), len(ids))
            neighbours = [int(x) for x in rng.choice(ids, size=k, replace=False)]
            peer = Peer(peer_id=-1, position=rng.uniform(0, 1, 2),
                        quota=int(rng.integers(2, 5)))
            _, stats = overlay.join(peer, neighbours)
            joins += 1
        resolutions += stats.resolutions
        scanned += stats.edges_scanned
        dirty_total += stats.dirty_nodes

        # verify exactness: repaired matching == from-scratch greedy
        ps, matching = overlay.instance()
        full = lic_matching(satisfaction_weights(ps), ps.quotas)
        assert matching.edge_set() == full.edge_set()
        checks_ok += 1

    ps, _ = overlay.instance()
    print(f"\nProcessed {joins} joins + {leaves} leaves"
          f" -> {overlay.n} peers, {ps.m} links")
    print(f"Repair work: {resolutions} connection changes over 50 events"
          f" ({resolutions / 50:.1f} per event vs ~{ps.m // overlay.n * 2}"
          " connections a full re-match would renegotiate)")
    print(f"Locality: repair waves touched {dirty_total / 50:.1f} nodes per"
          f" event out of ~{overlay.n} — only that region would exchange"
          " messages in the distributed realisation")
    print(f"Exactness checks passed: {checks_ok}/50"
          " (repair == from-scratch greedy every time)")
    print(f"Final satisfaction: {overlay.total_satisfaction():.2f}")


if __name__ == "__main__":
    main()
