#!/usr/bin/env python3
"""Ad-hoc geographic overlay under realistic network conditions.

Peers on a random geometric graph prefer nearby neighbours (distance
metric).  The example runs LID over *lossy, reorderable, heavy-tailed
latency* channels using the retransmission extension, and verifies that
the matching is identical to the one computed over ideal channels — the
schedule-independence that Lemmas 3–6 imply.

Run:  python examples/geo_latency_overlay.py
"""

import numpy as np

from repro.core import run_lid, satisfaction_weights
from repro.distsim import BernoulliLoss, ExponentialLatency
from repro.overlay import build_scenario


def main() -> None:
    scenario = build_scenario("geo_latency", n=80, seed=5)
    ps = scenario.ps
    wt = satisfaction_weights(ps)
    print(f"Geometric overlay: {ps.n} peers, {ps.m} in-range links")

    # ideal channels (unit latency, FIFO, reliable)
    ideal = run_lid(wt, ps.quotas)
    print(f"\nIdeal channels:   {ideal.metrics.total_sent} msgs,"
          f" {ideal.rounds:.1f} rounds,"
          f" satisfaction {ideal.matching.total_satisfaction(ps):.2f}")

    # harsh channels: exponential latency, non-FIFO, 15% loss + retransmit
    harsh = run_lid(
        wt,
        ps.quotas,
        latency=ExponentialLatency(mean=2.0),
        fifo=False,
        drop_filter=BernoulliLoss(0.15),
        retransmit_timeout=8.0,
        seed=123,
    )
    print(f"Harsh channels:   {harsh.metrics.total_sent} msgs"
          f" ({harsh.metrics.dropped} lost),"
          f" virtual time {harsh.metrics.end_time:.1f},"
          f" satisfaction {harsh.matching.total_satisfaction(ps):.2f}")

    same = ideal.matching.edge_set() == harsh.matching.edge_set()
    print(f"\nSame matching under both schedules: {same}")
    assert same, "Lemmas 3-6 guarantee schedule independence"

    # locality: how far are matched peers on average vs. potential links?
    pos = scenario.topology.positions
    def mean_dist(edges):
        return float(np.mean([np.linalg.norm(pos[i] - pos[j]) for i, j in edges]))

    print(f"Mean link distance: matched {mean_dist(ideal.matching.edges()):.3f}"
          f" vs potential {mean_dist(ps.edges()):.3f}")


if __name__ == "__main__":
    main()
