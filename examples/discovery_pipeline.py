#!/usr/bin/env python3
"""The full §1 pipeline: bootstrap → gossip discovery → private ranking → LID.

The paper assumes peers "know part of the overlay network"; in practice
that knowledge comes from a peer-sampling service.  This example builds
the entire stack end to end:

1. 100 peers start knowing only a ring successor pair and one random
   tracker contact;
2. a Newscast-style gossip protocol (on the same message-passing
   simulator LID runs on) spreads peer knowledge for 8 rounds;
3. each peer ranks its discovered candidates with a composite private
   metric (70% interest similarity, 30% bandwidth);
4. LID matches the overlay with a guaranteed satisfaction level.

Run:  python examples/discovery_pipeline.py
"""

import numpy as np

from repro.core import solve_lid, theorem3_bound
from repro.overlay import (
    CompositeMetric,
    BandwidthMetric,
    InterestMetric,
    build_preference_system,
    discover_knowledge_graph,
    generate_peers,
)
from repro.overlay.analysis import analyze_overlay, matching_adjacency


def main() -> None:
    n = 100
    # 1-2. bootstrap + gossip discovery
    discovery = discover_knowledge_graph(
        n, rounds=8, view_size=10, bootstrap_degree=2, seed=17
    )
    topo = discovery.topology
    print(f"Discovery: {discovery.messages} gossip messages over"
          f" {discovery.rounds} rounds")
    print(f"  knowledge graph: {topo.m} potential links,"
          f" mean {discovery.mean_knowledge:.1f} candidates/peer"
          f" (bootstrap gave ~3)")

    # 3. private rankings over the discovered candidates
    peers = generate_peers(n, np.random.default_rng(17), quota_range=(2, 5))
    metric = CompositeMetric([(0.7, InterestMetric()), (0.3, BandwidthMetric())])
    ps = build_preference_system(topo, peers, metric)

    # 4. distributed matching
    result, _ = solve_lid(ps)
    matching = result.matching
    sat = matching.total_satisfaction(ps)
    print(f"\nLID: {matching.size()} connections,"
          f" {result.metrics.total_sent} matching messages,"
          f" {result.rounds:.0f} rounds")
    print(f"  total satisfaction {sat:.1f}"
          f" (per-peer mean {sat / n:.3f};"
          f" Theorem 3 floor factor {theorem3_bound(ps.b_max):.3f})")

    fp = analyze_overlay(matching_adjacency(matching), path_sample=None)
    print(f"\nConstructed overlay structure:"
          f" {fp.components} component(s),"
          f" largest covers {100 * fp.largest_component_frac:.0f}% of peers,"
          f" mean degree {fp.mean_degree:.2f},"
          f" avg path {fp.avg_path_length:.2f}")


if __name__ == "__main__":
    main()
