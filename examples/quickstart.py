#!/usr/bin/env python3
"""Quickstart: match ten peers with preference lists using LID.

Builds a small overlay by hand, runs the distributed LID algorithm on
the message-passing simulator, and prints the matching, each node's
satisfaction, and the message bill.

Run:  python examples/quickstart.py
"""

from repro import PreferenceSystem, solve_lid
from repro.baselines import optimal_satisfaction
from repro.core import theorem3_bound


def main() -> None:
    # Ten peers; each ranks its overlay neighbours (index 0 = favourite)
    # and is willing to keep at most two connections.
    rankings = {
        0: [3, 1, 4],
        1: [0, 2, 5],
        2: [5, 1, 6],
        3: [0, 7, 4],
        4: [3, 0, 8],
        5: [2, 1, 9],
        6: [2, 9],
        7: [3, 8],
        8: [7, 4, 9],
        9: [5, 8, 6],
    }
    ps = PreferenceSystem(rankings, quotas=2)

    result, weights = solve_lid(ps)
    matching = result.matching

    print("Matched connections:")
    for i, j in matching.edges():
        print(f"  {i:2d} -- {j:2d}   (edge weight {weights.weight(i, j):.3f})")

    print("\nPer-node satisfaction (eq. 1):")
    for i, s in enumerate(matching.satisfaction_vector(ps)):
        partners = sorted(matching.connections(i))
        print(f"  node {i}: S = {s:.3f}   partners {partners}")

    total = matching.total_satisfaction(ps)
    opt = optimal_satisfaction(ps)
    bound = theorem3_bound(ps.b_max)
    print(f"\nTotal satisfaction: {total:.3f}")
    print(f"Exact optimum:      {opt:.3f}  (ratio {total / opt:.3f},"
          f" guaranteed ≥ {bound:.3f} by Theorem 3)")
    print(f"\nMessages: {result.prop_messages} PROP + {result.rej_messages} REJ"
          f" in {result.rounds:.0f} asynchronous rounds")


if __name__ == "__main__":
    main()
