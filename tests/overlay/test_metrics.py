"""Tests for peer models and suitability metrics."""

import numpy as np
import pytest

from repro.overlay.metrics import (
    BandwidthMetric,
    CompositeMetric,
    DistanceMetric,
    InterestMetric,
    MetricAssignment,
    PrivateTasteMetric,
    ReliabilityMetric,
)
from repro.overlay.peer import Peer, generate_peers


def make_peer(pid, pos=(0, 0), interests=(1, 0), bw=1.0, rel=1.0):
    return Peer(
        peer_id=pid,
        position=np.array(pos, dtype=float),
        interests=np.array(interests, dtype=float),
        bandwidth=bw,
        reliability=rel,
    )


class TestPeer:
    def test_generate_population(self):
        peers = generate_peers(30, np.random.default_rng(0))
        assert len(peers) == 30
        assert all(2 <= p.quota <= 5 for p in peers)
        assert all(p.bandwidth >= 1.0 for p in peers)
        assert all(0.0 <= p.reliability <= 1.0 for p in peers)

    def test_quota_validation(self):
        with pytest.raises(ValueError):
            Peer(peer_id=0, quota=0)

    def test_generate_validation(self):
        with pytest.raises(ValueError):
            generate_peers(0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            generate_peers(5, np.random.default_rng(0), quota_range=(3, 2))


class TestMetrics:
    def test_distance_prefers_nearby(self):
        a = make_peer(0, pos=(0, 0))
        near = make_peer(1, pos=(0.1, 0))
        far = make_peer(2, pos=(0.9, 0.9))
        m = DistanceMetric()
        assert m(a, near) > m(a, far)

    def test_interest_cosine(self):
        a = make_peer(0, interests=(1, 0))
        same = make_peer(1, interests=(2, 0))
        ortho = make_peer(2, interests=(0, 1))
        m = InterestMetric()
        assert m(a, same) == pytest.approx(1.0)
        assert m(a, ortho) == pytest.approx(0.0)

    def test_interest_zero_vector_safe(self):
        a = make_peer(0, interests=(0, 0))
        b = make_peer(1, interests=(1, 0))
        assert InterestMetric()(a, b) == 0.0

    def test_bandwidth_and_reliability_rank_candidate(self):
        a = make_peer(0)
        big = make_peer(1, bw=10.0, rel=0.2)
        small = make_peer(2, bw=1.0, rel=0.9)
        assert BandwidthMetric()(a, big) > BandwidthMetric()(a, small)
        assert ReliabilityMetric()(a, small) > ReliabilityMetric()(a, big)

    def test_composite_weighted_sum(self):
        a = make_peer(0)
        b = make_peer(1, bw=4.0, rel=0.5)
        m = CompositeMetric([(0.5, BandwidthMetric()), (2.0, ReliabilityMetric())])
        assert m(a, b) == pytest.approx(0.5 * 4.0 + 2.0 * 0.5)

    def test_composite_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeMetric([])


class TestPrivateTaste:
    def test_deterministic_per_pair(self):
        m = PrivateTasteMetric(seed=5)
        a, b = make_peer(0), make_peer(1)
        assert m(a, b) == m(a, b)

    def test_asymmetric_across_direction(self):
        m = PrivateTasteMetric(seed=5)
        a, b = make_peer(0), make_peer(1)
        assert m(a, b) != m(b, a)

    def test_blend_requires_base(self):
        with pytest.raises(ValueError):
            PrivateTasteMetric(seed=1, blend=0.5)

    def test_blend_mixes(self):
        base = BandwidthMetric()
        m = PrivateTasteMetric(seed=1, base=base, blend=0.0)
        a, b = make_peer(0), make_peer(1, bw=7.0)
        assert m(a, b) == pytest.approx(7.0)


class TestMetricAssignment:
    def test_override_and_default(self):
        assign = MetricAssignment(
            default=BandwidthMetric(), overrides={1: ReliabilityMetric()}
        )
        a0, a1 = make_peer(0), make_peer(1)
        b = make_peer(2, bw=9.0, rel=0.1)
        assert assign.score(a0, b) == pytest.approx(9.0)
        assert assign.score(a1, b) == pytest.approx(0.1)
        assert isinstance(assign.metric_for(5), BandwidthMetric)
