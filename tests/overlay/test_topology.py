"""Structural tests for the topology generators (networkx as oracle)."""

import numpy as np
import pytest

from repro.overlay.topology import (
    Topology,
    barabasi_albert,
    complete_graph,
    erdos_renyi,
    grid_2d,
    random_geometric,
    random_regular,
    watts_strogatz,
)


def _check_simple_symmetric(topo: Topology):
    seen = set()
    for i, neigh in enumerate(topo.adjacency):
        assert len(set(neigh)) == len(neigh), "duplicate neighbour"
        assert i not in neigh, "self loop"
        assert neigh == sorted(neigh)
        for j in neigh:
            assert i in topo.adjacency[j], "asymmetric"
            seen.add((min(i, j), max(i, j)))
    assert len(seen) == topo.m


class TestErdosRenyi:
    def test_structure(self):
        topo = erdos_renyi(50, 0.2, np.random.default_rng(0))
        _check_simple_symmetric(topo)
        assert topo.n == 50

    def test_edge_count_near_expectation(self):
        n, p = 100, 0.1
        counts = [
            erdos_renyi(n, p, np.random.default_rng(s)).m for s in range(5)
        ]
        expected = p * n * (n - 1) / 2
        assert expected * 0.7 < np.mean(counts) < expected * 1.3

    def test_extremes(self):
        assert erdos_renyi(10, 0.0, np.random.default_rng(0)).m == 0
        assert erdos_renyi(10, 1.0, np.random.default_rng(0)).m == 45

    def test_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi(0, 0.5, np.random.default_rng(0))
        with pytest.raises(ValueError):
            erdos_renyi(5, 1.5, np.random.default_rng(0))


class TestRandomGeometric:
    def test_structure_and_positions(self):
        topo = random_geometric(40, 0.3, np.random.default_rng(1))
        _check_simple_symmetric(topo)
        assert topo.positions.shape == (40, 2)
        # every edge within radius, every in-radius pair an edge
        for i in range(topo.n):
            for j in range(i + 1, topo.n):
                d = np.linalg.norm(topo.positions[i] - topo.positions[j])
                assert (j in topo.adjacency[i]) == (d <= 0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_geometric(10, 0.0, np.random.default_rng(0))


class TestBarabasiAlbert:
    def test_structure_and_edge_count(self):
        n, m_attach = 60, 3
        topo = barabasi_albert(n, m_attach, np.random.default_rng(2))
        _check_simple_symmetric(topo)
        clique = m_attach * (m_attach + 1) // 2
        assert topo.m == clique + (n - m_attach - 1) * m_attach

    def test_heavy_tail(self):
        topo = barabasi_albert(300, 2, np.random.default_rng(3))
        degrees = sorted((topo.degree(i) for i in range(topo.n)), reverse=True)
        assert degrees[0] > 4 * np.median(degrees)  # hubs exist

    def test_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, 3, np.random.default_rng(0))
        with pytest.raises(ValueError):
            barabasi_albert(5, 0, np.random.default_rng(0))


class TestWattsStrogatz:
    def test_no_rewiring_is_ring_lattice(self):
        topo = watts_strogatz(20, 4, 0.0, np.random.default_rng(0))
        _check_simple_symmetric(topo)
        assert all(topo.degree(i) == 4 for i in range(20))
        assert topo.m == 40

    def test_rewiring_preserves_edge_count(self):
        topo = watts_strogatz(30, 6, 0.5, np.random.default_rng(1))
        _check_simple_symmetric(topo)
        assert topo.m == 90

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            watts_strogatz(10, 3, 0.1, rng)  # odd k
        with pytest.raises(ValueError):
            watts_strogatz(4, 4, 0.1, rng)  # k >= n


class TestRandomRegular:
    @pytest.mark.parametrize("n,d", [(10, 3), (20, 4), (15, 2)])
    def test_regularity(self, n, d):
        topo = random_regular(n, d, np.random.default_rng(4))
        _check_simple_symmetric(topo)
        assert all(topo.degree(i) == d for i in range(n))

    def test_parity_validation(self):
        with pytest.raises(ValueError, match="even"):
            random_regular(5, 3, np.random.default_rng(0))
        with pytest.raises(ValueError):
            random_regular(4, 4, np.random.default_rng(0))


class TestGrid:
    def test_open_grid(self):
        topo = grid_2d(3, 4)
        _check_simple_symmetric(topo)
        assert topo.n == 12
        assert topo.m == 3 * 3 + 2 * 4  # horizontal + vertical
        assert topo.positions is not None

    def test_torus_degrees(self):
        topo = grid_2d(4, 5, periodic=True)
        _check_simple_symmetric(topo)
        assert all(topo.degree(i) == 4 for i in range(topo.n))

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_2d(0, 3)


class TestComplete:
    def test_kn(self):
        topo = complete_graph(7)
        _check_simple_symmetric(topo)
        assert topo.m == 21
        assert all(topo.degree(i) == 6 for i in range(7))


class TestNetworkxOracle:
    def test_er_matches_networkx_statistics(self):
        """Degree distribution sanity against the networkx implementation."""
        import networkx as nx

        n, p = 80, 0.15
        ours = [
            np.mean([erdos_renyi(n, p, np.random.default_rng(s)).degree(i)
                     for i in range(n)])
            for s in range(4)
        ]
        theirs = [
            np.mean([d for _, d in nx.gnp_random_graph(n, p, seed=s).degree()])
            for s in range(4)
        ]
        assert abs(np.mean(ours) - np.mean(theirs)) < 1.5
