"""Tests for dynamic overlays and exact incremental repair."""

import numpy as np
import pytest

from repro.core.analysis import weighted_blocking_edges
from repro.core.lic import lic_matching
from repro.core.matching import Matching
from repro.core.weights import WeightTable, satisfaction_weights
from repro.overlay.churn import DynamicOverlay, WeightCache, greedy_repair
from repro.overlay.peer import Peer
from repro.overlay.scenario import build_scenario


def _dyn(n=24, seed=3, metric=None, backend="reference"):
    sc = build_scenario("geo_latency", n, seed=seed)
    return DynamicOverlay(sc.topology, sc.peers, metric or sc.metric, backend=backend)


def _assert_is_greedy_fixpoint(dyn: DynamicOverlay):
    ps, matching = dyn.instance()
    wt = satisfaction_weights(ps)
    full = lic_matching(wt, ps.quotas)
    assert matching.edge_set() == full.edge_set()
    assert weighted_blocking_edges(wt, list(ps.quotas), matching) == []


class TestGreedyRepair:
    def test_restores_fixpoint_from_scratch(self):
        wt = WeightTable({(0, 1): 3.0, (1, 2): 2.0, (2, 3): 2.5}, 4)
        m = Matching(4)
        stats = greedy_repair(wt, [1, 1, 1, 1], m, dirty={0, 1, 2, 3})
        assert m.edge_set() == lic_matching(wt, [1, 1, 1, 1]).edge_set()
        assert stats.resolutions == m.size()

    def test_swap_cascade(self):
        # path where a leave at one end cascades swaps down the line
        wt = WeightTable(
            {(0, 1): 5.0, (1, 2): 4.0, (2, 3): 3.0, (3, 4): 2.0}, 5
        )
        m = Matching(5, [(1, 2), (3, 4)])  # fixpoint if node 0 absent
        # node 0 appears: edge (0,1) becomes blocking
        stats = greedy_repair(wt, [1, 1, 1, 1, 1], m, dirty={0, 1})
        assert m.edge_set() == {(0, 1), (2, 3)}
        assert stats.resolutions == 2  # add (0,1); swap (2,3) in


class TestDynamicOverlay:
    def test_initial_state_is_fixpoint(self):
        dyn = _dyn()
        _assert_is_greedy_fixpoint(dyn)

    def test_leave_repair_equals_full_rerun(self):
        dyn = _dyn()
        rng = np.random.default_rng(0)
        for _ in range(5):
            victim = int(rng.choice(dyn.active_ids()))
            dyn.leave(victim)
            _assert_is_greedy_fixpoint(dyn)

    def test_join_repair_equals_full_rerun(self):
        dyn = _dyn()
        rng = np.random.default_rng(1)
        for k in range(4):
            ids = dyn.active_ids()
            neigh = [int(x) for x in rng.choice(ids, size=min(5, len(ids)), replace=False)]
            peer = Peer(peer_id=-1, position=rng.uniform(0, 1, 2), quota=3)
            pid, stats = dyn.join(peer, neigh)
            assert pid in dyn.active_ids()
            _assert_is_greedy_fixpoint(dyn)

    def test_mixed_churn_session(self):
        dyn = _dyn(n=20, seed=7)
        rng = np.random.default_rng(2)
        for step in range(10):
            if rng.random() < 0.5 and dyn.n > 5:
                dyn.leave(int(rng.choice(dyn.active_ids())))
            else:
                ids = dyn.active_ids()
                neigh = [int(x) for x in rng.choice(ids, size=min(4, len(ids)), replace=False)]
                dyn.join(Peer(peer_id=-1, position=rng.uniform(0, 1, 2), quota=2), neigh)
            _assert_is_greedy_fixpoint(dyn)

    def test_private_metric_survives_compaction(self):
        """A peer's preferences must not change when others leave."""
        sc = build_scenario("heterogeneous", 15, seed=4)
        dyn = DynamicOverlay(sc.topology, sc.peers, sc.metric)
        dyn.leave(dyn.active_ids()[0])
        _assert_is_greedy_fixpoint(dyn)

    def test_leave_unknown_peer(self):
        dyn = _dyn(n=10)
        with pytest.raises(KeyError):
            dyn.leave(999)

    def test_join_unknown_neighbour(self):
        dyn = _dyn(n=10)
        with pytest.raises(KeyError, match="unknown neighbours"):
            dyn.join(Peer(peer_id=-1, quota=2), [999])

    def test_partner_symmetry(self):
        dyn = _dyn()
        for pid in dyn.active_ids():
            for q in dyn.partners(pid):
                assert pid in dyn.partners(q)

    def test_repair_cheaper_than_scratch(self):
        """The point of A3: incremental repair does less work than
        recomputing with the same engine from scratch."""
        dyn = _dyn(n=60, seed=5)
        rng = np.random.default_rng(3)
        incremental = scratch = 0
        for _ in range(5):
            stats = dyn.leave(int(rng.choice(dyn.active_ids())))
            incremental += stats.edges_scanned
            # same engine, empty start, everything dirty
            ps, _ = dyn.instance()
            wt = satisfaction_weights(ps)
            from_scratch = greedy_repair(
                wt, list(ps.quotas), Matching(ps.n), set(range(ps.n))
            )
            scratch += from_scratch.edges_scanned
        assert incremental < scratch

    def test_total_satisfaction_positive(self):
        dyn = _dyn()
        assert dyn.total_satisfaction() > 0


class TestFastBackend:
    """backend="fast" must be an invisible engine swap for churn."""

    def test_backend_validation(self):
        sc = build_scenario("geo_latency", 10, seed=0)
        with pytest.raises(ValueError, match="unknown backend"):
            DynamicOverlay(sc.topology, sc.peers, sc.metric, backend="bogus")

    def test_initial_state_matches_reference(self):
        ref = _dyn(n=24, seed=3)
        fast = _dyn(n=24, seed=3, backend="fast")
        for pid in ref.active_ids():
            assert ref.partners(pid) == fast.partners(pid)

    def test_identical_trajectories_under_churn(self):
        ref = _dyn(n=24, seed=3)
        fast = _dyn(n=24, seed=3, backend="fast")
        rng_ref = np.random.default_rng(11)
        rng_fast = np.random.default_rng(11)
        for _ in range(12):
            for dyn, rng in ((ref, rng_ref), (fast, rng_fast)):
                if rng.random() < 0.5 and dyn.n > 8:
                    dyn.leave(int(rng.choice(dyn.active_ids())))
                else:
                    ids = dyn.active_ids()
                    neigh = [int(x) for x in
                             rng.choice(ids, size=min(4, len(ids)), replace=False)]
                    dyn.join(
                        Peer(peer_id=-1, position=rng.uniform(0, 1, 2), quota=2),
                        neigh,
                    )
            assert set(ref.active_ids()) == set(fast.active_ids())
            for pid in ref.active_ids():
                assert ref.partners(pid) == fast.partners(pid)

    def test_fast_stays_greedy_fixpoint(self):
        dyn = _dyn(n=20, seed=7, backend="fast")
        rng = np.random.default_rng(13)
        for _ in range(6):
            if rng.random() < 0.5 and dyn.n > 6:
                dyn.leave(int(rng.choice(dyn.active_ids())))
            else:
                ids = dyn.active_ids()
                neigh = [int(x) for x in
                         rng.choice(ids, size=min(3, len(ids)), replace=False)]
                dyn.join(Peer(peer_id=-1, position=rng.uniform(0, 1, 2), quota=2),
                         neigh)
            _assert_is_greedy_fixpoint(dyn)

    def test_cache_stats_reported(self):
        dyn = _dyn(n=30, seed=5, backend="fast")
        rng = np.random.default_rng(17)
        stats = dyn.leave(int(rng.choice(dyn.active_ids())))
        assert stats.weights_reused > 0  # most edges untouched by one leave
        assert stats.weights_reused + stats.weights_recomputed == dyn.instance()[0].m

    def test_reference_backend_reports_no_reuse(self):
        dyn = _dyn(n=20, seed=5)
        stats = dyn.leave(dyn.active_ids()[0])
        assert stats.weights_reused == 0 and stats.weights_recomputed == 0

    def test_cache_refresh_matches_reference_weights(self):
        """After any churn the cached table must equal a fresh eq.-9 build."""
        dyn = _dyn(n=25, seed=9, backend="fast")
        rng = np.random.default_rng(19)
        for _ in range(4):
            dyn.leave(int(rng.choice(dyn.active_ids())))
        ps, _ = dyn.instance()
        cached_wt, _, _ = dyn._weights(*dyn._compact_instance()[:2])
        fresh = satisfaction_weights(ps)
        for i, j in ps.edges():
            assert cached_wt.weight(i, j) == fresh.weight(i, j)  # bit-identical

    def test_unrepaired_events_mark_weights_dirty(self):
        """repair=False leaves stale weights; the next repair must not
        serve them from the cache."""
        dyn = _dyn(n=22, seed=6, backend="fast")
        rng = np.random.default_rng(23)
        dyn.leave(int(rng.choice(dyn.active_ids())), repair=False)
        ids = dyn.active_ids()
        neigh = [int(x) for x in rng.choice(ids, size=3, replace=False)]
        dyn.join(Peer(peer_id=-1, position=rng.uniform(0, 1, 2), quota=2), neigh)
        _assert_is_greedy_fixpoint(dyn)
        ps, _ = dyn.instance()
        cached_wt, _, _ = dyn._weights(*dyn._compact_instance()[:2])
        fresh = satisfaction_weights(ps)
        for i, j in ps.edges():
            assert cached_wt.weight(i, j) == fresh.weight(i, j)


class TestWeightCache:
    def test_cold_refresh_fills_cache(self):
        dyn = _dyn(n=15, seed=2)  # reference overlay: just a ps supplier
        ps, ids, _ = dyn._compact_instance()
        cache = WeightCache()
        wt, reused, recomputed = cache.refresh(ps, ids, set())
        assert reused == 0 and recomputed == len(cache) == ps.m
        fresh = satisfaction_weights(ps)
        for i, j in ps.edges():
            assert wt.weight(i, j) == fresh.weight(i, j)

    def test_warm_refresh_reuses_clean_entries(self):
        dyn = _dyn(n=15, seed=2)
        ps, ids, _ = dyn._compact_instance()
        cache = WeightCache()
        cache.refresh(ps, ids, set())
        wt, reused, recomputed = cache.refresh(ps, ids, set())
        assert recomputed == 0 and reused == ps.m
        assert wt.m == ps.m

    def test_dirty_nodes_force_recompute(self):
        dyn = _dyn(n=15, seed=2)
        ps, ids, _ = dyn._compact_instance()
        cache = WeightCache()
        cache.refresh(ps, ids, set())
        dirty_peer = ids[0]
        _, reused, recomputed = cache.refresh(ps, ids, {dirty_peer})
        touched = sum(1 for i, j in ps.edges() if 0 in (i, j))
        assert recomputed == touched and reused == ps.m - touched

    def test_clear(self):
        cache = WeightCache()
        assert len(cache) == 0
        cache.clear()
        assert len(cache) == 0


class TestGreedyRepairHardening:
    """Input validation, churn-race absorption and budget truncation."""

    def _chain(self):
        # 0-1-2-3 path, strictly decreasing weights
        wt = WeightTable({(0, 1): 5.0, (1, 2): 4.0, (2, 3): 3.0}, 4)
        return wt, [1, 1, 1, 1]

    def test_rejects_mismatched_quotas(self):
        from repro.utils.validation import InvalidInstanceError

        wt, _ = self._chain()
        with pytest.raises(InvalidInstanceError):
            greedy_repair(wt, [1, 1], Matching(4), dirty={0})

    def test_rejects_mismatched_matching(self):
        from repro.utils.validation import InvalidInstanceError

        wt, quotas = self._chain()
        with pytest.raises(InvalidInstanceError):
            greedy_repair(wt, quotas, Matching(3), dirty={0})

    def test_rejects_negative_quota(self):
        from repro.utils.validation import InvalidInstanceError

        wt, _ = self._chain()
        with pytest.raises(InvalidInstanceError):
            greedy_repair(wt, [1, -1, 1, 1], Matching(4), dirty={0})

    def test_rejects_negative_budget(self):
        from repro.utils.validation import InvalidInstanceError

        wt, quotas = self._chain()
        with pytest.raises(InvalidInstanceError):
            greedy_repair(wt, quotas, Matching(4), dirty={0}, budget=-1)

    def test_edgeless_instance_returns_clean_stats(self):
        # a fully-departed neighbourhood: nodes remain but no edges do
        stats = greedy_repair(
            WeightTable({}, 4), [1, 1, 1, 1], Matching(4), dirty={0, 1, 2, 3}
        )
        assert stats.resolutions == 0
        assert not stats.truncated
        assert stats.stale_dropped == 0

    def test_out_of_range_dirty_ids_are_absorbed(self):
        wt, quotas = self._chain()
        m = Matching(4)
        stats = greedy_repair(wt, quotas, m, dirty={-3, 0, 1, 2, 3, 7, 10**9})
        assert m.edge_set() == {(0, 1), (2, 3)}
        assert stats.resolutions == 2

    def test_stale_matched_edge_scrubbed(self):
        # a peer left while still listed as matched: the matching holds
        # (1, 2) but the instance no longer has that edge
        wt = WeightTable({(0, 1): 5.0, (2, 3): 3.0}, 4)
        m = Matching(4, [(1, 2)])
        stats = greedy_repair(wt, [1, 1, 1, 1], m, dirty=set())
        assert stats.stale_dropped == 1
        # the scrub dirties the freed endpoints, so repair completes
        assert m.edge_set() == {(0, 1), (2, 3)}

    def test_budget_zero_on_stable_matching_not_truncated(self):
        wt, quotas = self._chain()
        m = Matching(4, [(0, 1), (2, 3)])  # already the fixpoint
        stats = greedy_repair(wt, quotas, m, dirty={0, 1, 2, 3}, budget=0)
        assert not stats.truncated
        assert stats.resolutions == 0

    def test_budget_truncation_is_feasible_and_flagged(self):
        wt, quotas = self._chain()
        m = Matching(4)
        stats = greedy_repair(wt, quotas, m, dirty={0, 1, 2, 3}, budget=1)
        assert stats.truncated
        assert stats.resolutions == 1
        assert m.edge_set() == {(0, 1)}  # heaviest first; (2,3) still blocking
        # feasibility always holds even when truncated
        for v in range(4):
            assert m.degree(v) <= quotas[v]

    def test_sufficient_budget_completes_exactly(self):
        wt, quotas = self._chain()
        m = Matching(4)
        stats = greedy_repair(wt, quotas, m, dirty={0, 1, 2, 3}, budget=2)
        assert not stats.truncated
        assert m.edge_set() == lic_matching(wt, quotas).edge_set()


class TestOverlayChurnEdgeCases:
    """Leave/join edge cases the long-lived service depends on."""

    def test_drain_overlay_to_empty(self):
        dyn = _dyn(n=8, seed=5)
        for pid in list(dyn.active_ids()):
            stats = dyn.leave(pid)
            assert stats.resolutions >= 0  # well-formed, never raises
        assert dyn.n == 0
        assert dyn.active_ids() == []

    def test_join_into_empty_overlay(self):
        dyn = _dyn(n=4, seed=5)
        for pid in list(dyn.active_ids()):
            dyn.leave(pid)
        pid, stats = dyn.join(Peer(peer_id=-1, position=(0.5, 0.5)), [])
        assert dyn.n == 1
        assert dyn.partners(pid) == frozenset()
        assert stats.resolutions == 0

    def test_rebuild_after_drain_reaches_fixpoint(self):
        dyn = _dyn(n=6, seed=7, backend="fast")
        for pid in list(dyn.active_ids()):
            dyn.leave(pid)
        first, _ = dyn.join(Peer(peer_id=-1, position=(0.2, 0.2)), [])
        ids = [first]
        rng = np.random.default_rng(0)
        for k in range(5):
            neigh = [int(rng.choice(ids))]
            pid, _ = dyn.join(
                Peer(peer_id=-1, position=tuple(rng.uniform(0, 1, 2))), neigh
            )
            ids.append(pid)
        _assert_is_greedy_fixpoint(dyn)
