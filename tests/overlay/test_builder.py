"""Tests for the overlay -> PreferenceSystem builder and scenarios."""

import numpy as np
import pytest

from repro.overlay.builder import build_preference_system
from repro.overlay.metrics import BandwidthMetric, DistanceMetric, MetricAssignment
from repro.overlay.peer import Peer, generate_peers
from repro.overlay.scenario import SCENARIOS, build_scenario
from repro.overlay.topology import complete_graph, random_geometric
from repro.utils.validation import InvalidInstanceError


class TestBuilder:
    def test_ranks_by_metric(self):
        peers = [
            Peer(peer_id=0, bandwidth=1.0),
            Peer(peer_id=1, bandwidth=5.0),
            Peer(peer_id=2, bandwidth=3.0),
        ]
        ps = build_preference_system(complete_graph(3), peers, BandwidthMetric())
        assert ps.preference_list(0) == (1, 2)
        assert ps.preference_list(1) == (2, 0)

    def test_tie_break_by_peer_id(self):
        peers = [Peer(peer_id=i, bandwidth=2.0) for i in range(4)]
        ps = build_preference_system(complete_graph(4), peers, BandwidthMetric())
        assert ps.preference_list(3) == (0, 1, 2)

    def test_positions_synced_from_topology(self):
        rng = np.random.default_rng(0)
        topo = random_geometric(10, 0.5, rng)
        peers = generate_peers(10, rng)
        ps = build_preference_system(topo, peers, DistanceMetric())
        for i, p in enumerate(peers):
            assert np.allclose(p.position, topo.positions[i])
        # nearest neighbour is ranked first
        for i in range(10):
            lst = ps.preference_list(i)
            if len(lst) >= 2:
                d = [np.linalg.norm(topo.positions[i] - topo.positions[j]) for j in lst]
                assert d == sorted(d)

    def test_explicit_quotas_override_peer_quota(self):
        peers = [Peer(peer_id=i, quota=5) for i in range(3)]
        ps = build_preference_system(
            complete_graph(3), peers, BandwidthMetric(), quotas=[1, 1, 1]
        )
        assert ps.quotas == (1, 1, 1)

    def test_metric_assignment_per_peer(self):
        peers = [
            Peer(peer_id=0),
            Peer(peer_id=1, bandwidth=9.0, reliability=0.1),
            Peer(peer_id=2, bandwidth=1.0, reliability=0.9),
        ]
        from repro.overlay.metrics import ReliabilityMetric

        assign = MetricAssignment(
            default=BandwidthMetric(), overrides={0: ReliabilityMetric()}
        )
        ps = build_preference_system(complete_graph(3), peers, assign)
        assert ps.preference_list(0) == (2, 1)  # by reliability
        assert ps.preference_list(2) == (1, 0)  # by bandwidth

    def test_size_mismatch(self):
        with pytest.raises(InvalidInstanceError):
            build_preference_system(
                complete_graph(3), [Peer(peer_id=0)], BandwidthMetric()
            )

    def test_duplicate_ids(self):
        peers = [Peer(peer_id=0), Peer(peer_id=0), Peer(peer_id=2)]
        with pytest.raises(InvalidInstanceError, match="distinct"):
            build_preference_system(complete_graph(3), peers, BandwidthMetric())


class TestScenarios:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_all_scenarios_build(self, name):
        sc = build_scenario(name, 25, seed=1)
        assert sc.ps.n == 25
        assert sc.name == name
        # reproducible
        sc2 = build_scenario(name, 25, seed=1)
        assert sc2.ps == sc.ps

    def test_different_seeds_differ(self):
        a = build_scenario("heterogeneous", 20, seed=1)
        b = build_scenario("heterogeneous", 20, seed=2)
        assert a.ps != b.ps

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            build_scenario("nope", 10)

    def test_heterogeneous_tends_cyclic(self):
        # private tastes should produce preference cycles at this density
        sc = build_scenario("heterogeneous", 25, seed=0)
        assert not sc.ps.is_acyclic()
