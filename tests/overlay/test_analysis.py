"""Overlay structure metrics vs the networkx oracle."""

import networkx as nx
import numpy as np
import pytest

from repro.core.lic import solve_modified_bmatching
from repro.overlay.analysis import (
    analyze_overlay,
    average_path_length,
    clustering_coefficient,
    connected_components,
    degree_stats,
    largest_component_fraction,
    matching_adjacency,
)
from repro.overlay.topology import erdos_renyi

from repro.testing.strategies import random_ps


def _to_nx(adj):
    G = nx.Graph()
    G.add_nodes_from(range(len(adj)))
    for i, neigh in enumerate(adj):
        for j in neigh:
            G.add_edge(i, j)
    return G


class TestComponents:
    def test_simple(self):
        adj = [[1], [0], [3], [2], []]
        comps = connected_components(adj)
        assert comps == [[0, 1], [2, 3], [4]]
        assert largest_component_fraction(adj) == pytest.approx(0.4)

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_networkx(self, seed):
        topo = erdos_renyi(40, 0.05, np.random.default_rng(seed))
        ours = {frozenset(c) for c in connected_components(topo.adjacency)}
        theirs = {frozenset(c) for c in nx.connected_components(_to_nx(topo.adjacency))}
        assert ours == theirs


class TestClustering:
    def test_triangle(self):
        adj = [[1, 2], [0, 2], [0, 1]]
        assert clustering_coefficient(adj) == pytest.approx(1.0)

    def test_star_is_zero(self):
        adj = [[1, 2, 3], [0], [0], [0]]
        assert clustering_coefficient(adj) == pytest.approx(0.0)

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_networkx(self, seed):
        topo = erdos_renyi(30, 0.2, np.random.default_rng(seed))
        ours = clustering_coefficient(topo.adjacency)
        theirs = nx.average_clustering(_to_nx(topo.adjacency))
        assert ours == pytest.approx(theirs)


class TestPathLength:
    def test_path_graph(self):
        adj = [[1], [0, 2], [1, 3], [2]]
        # exact mean over ordered pairs of the path P4
        expected = nx.average_shortest_path_length(_to_nx(adj))
        assert average_path_length(adj) == pytest.approx(expected)

    def test_exact_matches_networkx_on_lcc(self):
        topo = erdos_renyi(25, 0.15, np.random.default_rng(1))
        comp = connected_components(topo.adjacency)[0]
        G = _to_nx(topo.adjacency).subgraph(comp)
        expected = nx.average_shortest_path_length(G)
        assert average_path_length(topo.adjacency) == pytest.approx(expected)

    def test_sampled_close_to_exact(self):
        topo = erdos_renyi(60, 0.1, np.random.default_rng(2))
        exact = average_path_length(topo.adjacency)
        sampled = average_path_length(
            topo.adjacency, sample=20, rng=np.random.default_rng(0)
        )
        assert abs(sampled - exact) < 0.5

    def test_singleton(self):
        assert average_path_length([[]]) == 0.0


class TestAnalyze:
    def test_full_fingerprint(self):
        ps = random_ps(30, 0.3, 3, seed=4, ensure_edges=True)
        matching, _ = solve_modified_bmatching(ps)
        adj = matching_adjacency(matching)
        fp = analyze_overlay(adj, path_sample=None)
        assert fp.n == 30
        assert fp.edges == matching.size()
        assert 0.0 <= fp.largest_component_frac <= 1.0
        assert fp.components >= 1
        row = fp.as_row()
        assert set(row) == {
            "n", "edges", "mean_deg", "isolated", "lcc_frac", "components",
            "clustering", "avg_path",
        }

    def test_degree_stats(self):
        stats = degree_stats([[1], [0], []])
        assert stats["mean"] == pytest.approx(2 / 3)
        assert stats["max"] == 1
        assert stats["isolated_frac"] == pytest.approx(1 / 3)
