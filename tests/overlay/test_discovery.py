"""Tests for the gossip peer-sampling discovery substrate."""

import numpy as np
import pytest

from repro.core import solve_lid
from repro.overlay.analysis import largest_component_fraction
from repro.overlay.builder import build_preference_system
from repro.overlay.discovery import discover_knowledge_graph
from repro.overlay.metrics import PrivateTasteMetric
from repro.overlay.peer import generate_peers


class TestDiscovery:
    def test_basic_run(self):
        res = discover_knowledge_graph(30, rounds=6, seed=1)
        assert res.topology.n == 30
        assert res.messages > 0
        assert res.mean_knowledge > 2  # learned more than the bootstrap

    def test_deterministic(self):
        a = discover_knowledge_graph(20, rounds=5, seed=7)
        b = discover_knowledge_graph(20, rounds=5, seed=7)
        assert a.topology.edges() == b.topology.edges()
        assert a.messages == b.messages

    def test_seeds_differ(self):
        a = discover_knowledge_graph(20, rounds=5, seed=1)
        b = discover_knowledge_graph(20, rounds=5, seed=2)
        assert a.topology.edges() != b.topology.edges()

    def test_knowledge_grows_with_rounds(self):
        few = discover_knowledge_graph(40, rounds=2, seed=3)
        many = discover_knowledge_graph(40, rounds=12, seed=3)
        assert many.mean_knowledge > few.mean_knowledge

    def test_connected_knowledge_graph(self):
        # the ring bootstrap alone is connected; gossip must keep it so
        res = discover_knowledge_graph(40, rounds=8, seed=4)
        assert largest_component_fraction(res.topology.adjacency) == 1.0

    def test_cap_degree(self):
        res = discover_knowledge_graph(30, rounds=8, seed=5, cap_degree=5)
        # symmetrisation can push a node above its own cap, but the mean
        # must stay near the cap
        assert res.mean_knowledge <= 2 * 5

    def test_validation(self):
        with pytest.raises(ValueError):
            discover_knowledge_graph(1)

    def test_symmetry_and_simplicity(self):
        res = discover_knowledge_graph(25, rounds=6, seed=6)
        adj = res.topology.adjacency
        for i, neigh in enumerate(adj):
            assert i not in neigh
            assert len(set(neigh)) == len(neigh)
            for j in neigh:
                assert i in adj[j]


class TestEndToEndPipeline:
    def test_discovery_to_matching(self):
        """The full §1 pipeline: bootstrap → gossip → rank → LID."""
        n = 35
        res = discover_knowledge_graph(n, rounds=8, seed=9)
        peers = generate_peers(n, np.random.default_rng(0))
        ps = build_preference_system(
            res.topology, peers, PrivateTasteMetric(seed=9)
        )
        result, _ = solve_lid(ps)
        result.matching.validate(ps)
        assert result.matching.size() > 0
        assert all(node.finished for node in result.nodes)
