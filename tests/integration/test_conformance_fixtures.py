"""Checked-in minimised counterexamples replay bit-for-bit.

Each fixture in ``tests/fixtures/conformance/`` is a minimised repro
captured from the mutation-smoke harness: a tiny instance, the planted
bug that broke it, and the divergence kinds observed at capture time.
Replaying them guards two things at once — the engine still *catches*
each class of bug (on the minimal instance, where there is nowhere to
hide), and the real pipelines still *agree* on those same instances.
"""

from pathlib import Path

import pytest

from repro.testing.conformance import replay_repro
from repro.testing.differential import DEFAULT_PIPELINES, run_differential
from repro.testing.minimise import load_repro

FIXTURE_DIR = Path(__file__).resolve().parents[1] / "fixtures" / "conformance"
FIXTURES = sorted(FIXTURE_DIR.glob("*.json"))


def test_fixture_corpus_present():
    assert len(FIXTURES) >= 3, "conformance fixture corpus went missing"


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_fixture_replays_recorded_divergence(path):
    repro = load_repro(path)
    assert repro.mutation, f"{path.name} lost its mutation tag"
    assert repro.divergence_kinds, f"{path.name} records no divergence"
    reproduces, report = replay_repro(repro)
    assert reproduces, (
        f"{path.name}: recorded kinds {list(repro.divergence_kinds)} but "
        f"replay gave {sorted({d.kind for d in report.divergences})}"
    )


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_fixture_instance_clean_on_every_backend(path):
    # without the planted bug, all five real pipelines must agree on the
    # minimised instance (it is an ordinary — if tiny — instance)
    repro = load_repro(path)
    report = run_differential(repro.instance, seed=repro.seed)
    assert report.ok, report.summary()
    assert set(report.runs) == set(DEFAULT_PIPELINES)
