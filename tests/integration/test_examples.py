"""Run every example script end-to-end as a subprocess."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), "example produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 3  # the deliverable: quickstart + 2 domain scripts
