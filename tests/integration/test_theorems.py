"""Integration tests: the paper's theorems measured end-to-end.

Each test runs the full pipeline (overlay → preferences → weights →
algorithm → certificates → exact optimum) on moderate instances and
asserts the theorem-level guarantees — the same checks the benchmark
harness reports as tables, here in pass/fail form.
"""

import pytest

from repro.baselines import (
    max_satisfaction_bmatching_milp,
    max_weight_bmatching_milp,
)
from repro.core import (
    greedy_certificate,
    lic_matching,
    run_lid,
    satisfaction_weights,
    solve_lid,
    theorem2_bound,
    theorem3_bound,
)
from repro.experiments import (
    family_instance,
    random_preference_instance,
    random_weighted_instance,
)
from repro.overlay import SCENARIOS, build_scenario


class TestTheorem2:
    """LIC/LID weight ≥ ½ · optimal many-to-many matching weight."""

    @pytest.mark.parametrize("seed", range(5))
    def test_half_bound_random_weights(self, seed):
        wt, quotas = random_weighted_instance(30, 0.25, seed=seed)
        greedy = lic_matching(wt, quotas)
        opt = max_weight_bmatching_milp(wt, quotas)
        assert greedy.total_weight(wt) >= theorem2_bound() * opt.total_weight(wt) - 1e-9
        assert greedy_certificate(wt, quotas, greedy)

    @pytest.mark.parametrize("family", ["er", "ba", "ws"])
    def test_half_bound_on_families(self, family):
        ps = family_instance(family, 35, 3, seed=2)
        wt = satisfaction_weights(ps)
        greedy = lic_matching(wt, ps.quotas)
        opt = max_weight_bmatching_milp(wt, ps.quotas)
        assert greedy.total_weight(wt) >= 0.5 * opt.total_weight(wt) - 1e-9


class TestTheorem3:
    """LID satisfaction ≥ ¼(1+1/b_max) · optimal satisfaction."""

    @pytest.mark.parametrize("b", [1, 2, 3, 5])
    def test_bound_across_quotas(self, b):
        ps = random_preference_instance(20, 0.35, b, seed=b)
        result, _ = solve_lid(ps)
        opt = max_satisfaction_bmatching_milp(ps)
        lhs = result.matching.total_satisfaction(ps)
        rhs = theorem3_bound(ps.b_max) * opt.total_satisfaction(ps)
        assert lhs >= rhs - 1e-9

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_bound_on_scenarios(self, name):
        sc = build_scenario(name, 25, seed=6)
        result, _ = solve_lid(sc.ps)
        opt = max_satisfaction_bmatching_milp(sc.ps)
        bound = theorem3_bound(sc.ps.b_max)
        assert (
            result.matching.total_satisfaction(sc.ps)
            >= bound * opt.total_satisfaction(sc.ps) - 1e-9
        )


class TestLemma5:
    """LID terminates under any schedule, including cyclic preferences."""

    def test_terminates_on_every_scenario(self):
        from repro.distsim import ExponentialLatency

        for name in sorted(SCENARIOS):
            sc = build_scenario(name, 30, seed=1)
            wt = satisfaction_weights(sc.ps)
            res = run_lid(
                wt, sc.ps.quotas, latency=ExponentialLatency(1.0), fifo=False
            )
            assert all(node.finished for node in res.nodes)


class TestEndToEnd:
    def test_full_pipeline_consistency(self):
        """Overlay → LID → certified matching → accounting identities."""
        sc = build_scenario("interest_social", 40, seed=9)
        ps = sc.ps
        result, wt = solve_lid(ps)
        m = result.matching
        m.validate(ps)
        assert m.is_maximal(ps)
        assert greedy_certificate(wt, list(ps.quotas), m)
        # static satisfaction total equals matched weight (eq. 9)
        assert m.total_satisfaction(ps, "static") == pytest.approx(
            m.total_weight(wt)
        )
        # full = static + count term
        count_term = sum(
            m.degree(i) * (m.degree(i) - 1) / (2 * ps.quota(i) * ps.list_length(i))
            for i in ps.nodes()
            if ps.quota(i)
        )
        assert m.total_satisfaction(ps) == pytest.approx(
            m.total_satisfaction(ps, "static") + count_term
        )

    def test_determinism_across_runs(self):
        sc = build_scenario("geo_latency", 30, seed=3)
        a, _ = solve_lid(sc.ps, seed=0)
        b, _ = solve_lid(sc.ps, seed=0)
        assert a.matching.edge_set() == b.matching.edge_set()
        assert a.metrics.total_sent == b.metrics.total_sent
