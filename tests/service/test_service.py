"""Tests for the self-healing :class:`MatchingService`.

Covers deterministic event application, the budget / on_budget modes,
the invariant → degraded-mode ladder (including unrecoverable
corruption), and exact snapshot/restore round-trips.
"""

import json

import pytest

from repro.service.guards import GuardReport, ServiceGuard
from repro.service.runner import (
    ServiceConfig,
    _matching_sha,
    build_service,
    run_service,
)
from repro.service.service import MatchingService, ServiceCorruption
from repro.telemetry.sink import canonical_fields


def _small(**over) -> ServiceConfig:
    base = dict(n=14, quota=2, seed=3, events=24, workload="poisson",
                differential_every=12)
    base.update(over)
    return ServiceConfig(**base)


class TestDeterminism:
    def test_replay_is_deterministic(self):
        a = run_service(_small()).report
        b = run_service(_small()).report
        assert canonical_fields(a) == canonical_fields(b)
        assert a["matching_sha"] == b["matching_sha"]

    def test_apply_resolves_events_against_state(self):
        config = _small(events=16, workload="storm")
        svc = build_service(config)
        for event in config.trace().events:
            outcome = svc.apply(event)
            assert outcome.seq == event.seq
            assert outcome.mode in ("incremental", "degraded")
            if outcome.applied and event.kind != "join":
                assert outcome.peer_id is not None
        counts = {k: svc.counters[k]
                  for k in ("joins", "leaves", "crashes", "updates")}
        trace_counts = config.trace().kind_counts()
        # every applied event lands in exactly one kind counter
        assert sum(counts.values()) + svc.counters["skipped"] == len(
            config.trace()
        )
        assert counts["joins"] == trace_counts["join"]

    def test_run_report_shape(self):
        report = run_service(_small()).report
        assert report["engine"] == "lid-service"
        assert report["completed"] is True
        assert report["trace_events"] == 24
        assert report["differential_ok"] is True
        assert report["oracle_violations"] == 0
        assert report["guard_violations"] == 0


class TestBudgetModes:
    def test_resolve_mode_repays_truncations_immediately(self):
        report = run_service(
            _small(repair_budget=0, on_budget="resolve")
        ).report
        assert report["truncated_repairs"] > 0
        assert report["full_resolves"] >= report["truncated_repairs"]
        assert report["truncation_debt"] == 0
        # exact mode: the served matching is always the LIC fixpoint
        assert report["differential_ok"] is True

    def test_defer_mode_serves_feasible_truncated_matching(self):
        result = run_service(_small(repair_budget=1, on_budget="defer"))
        report = result.report
        assert report["truncated_repairs"] > 0
        # debt is repaid only by full re-solves; oracle feasibility and
        # the bounded-gap acceptance must still hold throughout
        assert report["oracle_violations"] == 0
        assert report["differential_ok"] is True

    def test_on_budget_validation(self):
        config = _small()
        svc = build_service(config)
        with pytest.raises(ValueError, match="on_budget"):
            MatchingService(
                None, [], None, on_budget="panic"
            )
        with pytest.raises(ValueError, match="repair_budget"):
            MatchingService(None, [], None, repair_budget=-1)
        assert svc.on_budget == "resolve"


class _AlwaysViolated(ServiceGuard):
    def check_structure(self, service, report):
        report.violations.append("injected: permanent fault")


class TestDegradedLadder:
    @staticmethod
    def _poison_cache(svc):
        # drift every cached eq.-9 weight; repair heals only the entries
        # incident to the event's dirty set, the rest stay poisoned (the
        # ws family keeps neighbourhoods small enough for some to survive)
        for key in list(svc._wcache._w):
            svc._wcache._w[key] += 1.0

    def test_poisoned_weight_cache_trips_guard(self):
        config = _small(n=40, family="ws", events=8, degraded_recovery=3,
                        weight_check_every=1)
        svc = build_service(config)
        trace = config.trace().events
        svc.apply(trace[0])
        assert svc.mode == "incremental"
        self._poison_cache(svc)
        outcome = svc.apply(trace[1])
        assert outcome.guard_ok is False
        assert svc.mode == "degraded"
        assert svc.counters["guard_violations"] >= 1
        assert svc.counters["degraded_entries"] == 1
        # the full re-solve rebuilt the cache and healed the state
        report = GuardReport()
        svc.guard.check_structure(svc, report)
        svc.guard.check_weights(svc, report)
        assert report.ok

    def test_recovery_after_clean_cooldown(self):
        config = _small(n=40, family="ws", events=12, degraded_recovery=2,
                        weight_check_every=1)
        svc = build_service(config)
        trace = config.trace().events
        svc.apply(trace[0])
        self._poison_cache(svc)
        svc.apply(trace[1])
        assert svc.mode == "degraded"
        # degraded events answer with full re-solves until the ladder
        # releases after `degraded_recovery` consecutive clean passes
        before = svc.counters["full_resolves"]
        svc.apply(trace[2])
        assert svc.mode == "degraded"
        assert svc.counters["full_resolves"] > before
        svc.apply(trace[3])
        assert svc.mode == "incremental"
        assert svc.counters["degraded_entries"] == 1

    def test_unrecoverable_corruption_raises(self):
        config = _small(events=4)
        svc = build_service(config)
        svc.guard = _AlwaysViolated()
        with pytest.raises(ServiceCorruption, match="survived a full re-solve"):
            svc.apply(config.trace().events[0])


class TestSnapshotRestore:
    def test_snapshot_survives_json_exactly(self):
        config = _small(events=10, workload="flash")
        svc = build_service(config)
        for event in config.trace().events:
            svc.apply(event)
        snap = svc.snapshot()
        restored = MatchingService.restore(
            json.loads(json.dumps(snap)), config.metric()
        )
        assert restored.snapshot() == snap
        assert _matching_sha(restored) == _matching_sha(svc)

    def test_restored_service_replays_identically(self):
        config = _small(events=20)
        trace = config.trace().events
        svc = build_service(config)
        for event in trace[:10]:
            svc.apply(event)
        clone = MatchingService.restore(
            json.loads(json.dumps(svc.snapshot())), config.metric()
        )
        for event in trace[10:]:
            svc.apply(event)
            clone.apply(event)
        assert _matching_sha(clone) == _matching_sha(svc)
        assert clone.counters == svc.counters
        assert clone.mode == svc.mode

    def test_restore_rejects_unknown_mode(self):
        svc = build_service(_small(events=0))
        state = svc.snapshot()
        state["mode"] = "zombie"
        with pytest.raises(ValueError, match="unknown mode"):
            MatchingService.restore(state, _small().metric())
