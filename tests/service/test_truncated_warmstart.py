"""Truncated-LID warm-started full re-solves in the MatchingService.

With ``warmstart_rounds=k`` set, every full re-solve seeds
:func:`~repro.overlay.churn.greedy_repair` with the k-round truncated
LID matching instead of starting cold.  The served matching must be
*identical* to the cold solve (the no-weighted-blocking-edge fixpoint
is unique, and the truncated matching nests inside it), the closing
repair must do strictly less work than from-scratch, and the crash
consistency story must be untouched: a killed-and-resumed warm run is
byte-identical to an uninterrupted one.
"""

import json

import pytest

from repro.core.fast import FastInstance
from repro.core.matching import Matching
from repro.overlay.churn import greedy_repair
from repro.service import ServiceConfig, kill_and_resume_check, run_service
from repro.service.runner import build_service
from repro.telemetry.sink import canonical_fields


def _config(**overrides) -> ServiceConfig:
    base = dict(n=50, events=30, seed=3, family="geo",
                repair_budget=2, on_budget="resolve")
    base.update(overrides)
    return ServiceConfig(**base)


class TestWarmstartMatchesCold:
    def test_initial_matching_identical(self):
        cold = build_service(_config())
        warm = build_service(_config(warmstart_rounds=3))
        assert warm._partners == cold._partners
        assert warm.last_warmstart is not None
        assert not warm.last_warmstart.truncated

    @pytest.mark.parametrize("k", (0, 1, 4, 1 << 30))
    def test_full_run_report_identical_any_budget(self, k):
        cold = run_service(_config()).report
        warm = run_service(_config(warmstart_rounds=k)).report
        drop = ("differential_checks", "differential_ok", "oracle_violations")
        cb = canonical_fields(cold, drop=drop)
        wb = canonical_fields(warm, drop=drop)
        assert json.dumps(cb, sort_keys=True) == json.dumps(wb, sort_keys=True)
        assert cold["matching_sha"] == warm["matching_sha"]


class TestWarmstartSavesWork:
    def test_fewer_resolutions_than_cold_repair(self):
        result = run_service(_config(warmstart_rounds=3))
        svc = result.service
        ws = svc.last_warmstart
        assert ws is not None
        # the cold baseline on the same final instance: greedy repair
        # from the empty matching must resolve every LIC edge itself
        ps, _, _ = svc._compact_instance()
        fi = FastInstance.from_preference_system(ps)
        cold_stats = greedy_repair(
            fi.weight_table(), list(ps.quotas), Matching(ps.n), range(ps.n)
        )
        assert ws.resolutions < cold_stats.resolutions

    def test_converged_warmstart_needs_no_resolutions(self):
        # a budget past quiescence hands the exact fixpoint to the
        # repair, which then has nothing to do
        svc = build_service(_config(warmstart_rounds=1 << 30))
        assert svc.last_warmstart.resolutions == 0


class TestCrashConsistency:
    def test_kill_and_resume_identity_with_warmstart(self):
        out = kill_and_resume_check(_config(warmstart_rounds=3))
        assert out["identical"], out["mismatches"]
        assert out["guard_violations"] == 0
        assert out["differential_ok"]


class TestValidation:
    def test_config_rejects_negative(self):
        with pytest.raises(ValueError, match="warmstart_rounds"):
            _config(warmstart_rounds=-1)

    def test_service_rejects_bool(self):
        with pytest.raises(ValueError, match="max_rounds"):
            build_service(_config())  # sanity: cold build fine
            from repro.service.service import MatchingService

            svc = build_service(_config())
            MatchingService.restore(
                svc.snapshot(), _config().metric(), warmstart_rounds=True
            )
