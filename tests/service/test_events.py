"""Tests for the deterministic churn workload drivers."""

import pytest

from repro.service.events import (
    EVENT_KINDS,
    WORKLOADS,
    ChurnEvent,
    make_trace,
    poisson_trace,
    storm_trace,
)


class TestChurnEvent:
    def test_round_trip(self):
        ev = ChurnEvent(
            seq=3, t=1.5, kind="join", r=42, degree=4, quota=3,
            position=(0.25, 0.75),
        )
        assert ChurnEvent.from_record(ev.to_record()) == ev

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            ChurnEvent(seq=0, t=0.0, kind="explode")

    def test_entropy_bounds(self):
        with pytest.raises(ValueError, match="selector entropy"):
            ChurnEvent(seq=0, t=0.0, kind="leave", r=-1)
        with pytest.raises(ValueError, match="selector entropy"):
            ChurnEvent(seq=0, t=0.0, kind="leave", r=2**53)


class TestDrivers:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_deterministic_in_seed(self, name):
        a = make_trace(name, 60, seed=7)
        b = make_trace(name, 60, seed=7)
        other = make_trace(name, 60, seed=8)
        assert a.events == b.events
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != other.fingerprint()

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_length_kinds_and_monotone_time(self, name):
        trace = make_trace(name, 50, seed=1)
        assert len(trace) == 50
        assert sum(trace.kind_counts().values()) == 50
        for e in trace.events:
            assert e.kind in EVENT_KINDS
        times = [e.t for e in trace.events]
        assert times == sorted(times)
        seqs = [e.seq for e in trace.events]
        assert seqs == list(range(50))

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_json_round_trip_preserves_fingerprint(self, name):
        import json

        trace = make_trace(name, 30, seed=5)
        records = json.loads(json.dumps([e.to_record() for e in trace.events]))
        rebuilt = tuple(ChurnEvent.from_record(r) for r in records)
        assert rebuilt == trace.events

    def test_poisson_mix_validation(self):
        with pytest.raises(ValueError, match="exceed 1"):
            poisson_trace(10, 0, join_frac=0.6, leave_frac=0.5)
        with pytest.raises(ValueError, match="events"):
            poisson_trace(-1, 0)

    def test_storm_alternates_and_mixes_crashes(self):
        trace = storm_trace(64, seed=3, storm_len=16)
        kinds = [e.kind for e in trace.events]
        # first storm is pure joins, second pure departures
        assert set(kinds[:16]) == {"join"}
        assert set(kinds[16:32]) <= {"leave", "crash"}
        counts = trace.kind_counts()
        assert counts["crash"] > 0 and counts["leave"] > 0

    def test_storm_len_validation(self):
        with pytest.raises(ValueError, match="storm_len"):
            storm_trace(10, 0, storm_len=0)

    def test_make_trace_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            make_trace("tsunami", 10, 0)

    def test_gridspec_workload_names_stay_in_sync(self):
        # gridspec keeps a literal copy to avoid an import cycle; this
        # is the assertion that keeps the two lists from drifting
        from repro.experiments.gridspec import SERVICE_WORKLOADS

        assert tuple(sorted(WORKLOADS)) == tuple(sorted(SERVICE_WORKLOADS))
