"""Tests for crash-consistent checkpoints and kill-and-resume identity."""

import json

import pytest

from repro.service.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    latest_checkpoint,
    load_checkpoint,
    write_checkpoint,
)
from repro.service.runner import ServiceConfig, kill_and_resume_check


class TestCheckpointFiles:
    def test_round_trip(self, tmp_path):
        state = {"counters": {"events": 7}, "mode": "incremental"}
        path = write_checkpoint(tmp_path, 7, "fp123", state)
        assert path.name == "checkpoint-00000007.json"
        payload = load_checkpoint(path, fingerprint="fp123")
        assert payload["seq"] == 7
        assert payload["version"] == CHECKPOINT_VERSION
        assert payload["state"] == state

    def test_latest_skips_torn_files(self, tmp_path):
        good = write_checkpoint(tmp_path, 10, "fp", {"a": 1})
        torn = write_checkpoint(tmp_path, 20, "fp", {"a": 2})
        torn.write_text(torn.read_text()[: len(torn.read_text()) // 2])
        assert latest_checkpoint(tmp_path) == good

    def test_latest_skips_hash_mismatch(self, tmp_path):
        good = write_checkpoint(tmp_path, 1, "fp", {"a": 1})
        bad = write_checkpoint(tmp_path, 2, "fp", {"a": 2})
        payload = json.loads(bad.read_text())
        payload["state"]["a"] = 999  # tamper without updating the hash
        bad.write_text(json.dumps(payload))
        assert latest_checkpoint(tmp_path) == good

    def test_latest_ignores_tmp_turds_and_strangers(self, tmp_path):
        (tmp_path / "checkpoint-00000009.json.tmp").write_text("{trunc")
        (tmp_path / "notes.txt").write_text("hello")
        assert latest_checkpoint(tmp_path) is None
        good = write_checkpoint(tmp_path, 3, "fp", {})
        assert latest_checkpoint(tmp_path) == good

    def test_load_rejects_version_mismatch(self, tmp_path):
        path = write_checkpoint(tmp_path, 0, "fp", {"x": 1})
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_load_rejects_fingerprint_mismatch(self, tmp_path):
        path = write_checkpoint(tmp_path, 0, "trace-a", {"x": 1})
        load_checkpoint(path, fingerprint="trace-a")  # matching: fine
        with pytest.raises(CheckpointError, match="pins trace"):
            load_checkpoint(path, fingerprint="trace-b")

    def test_load_rejects_unreadable(self, tmp_path):
        path = tmp_path / "checkpoint-00000000.json"
        path.write_text("not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(path)

    def test_keep_prunes_oldest(self, tmp_path):
        for seq in range(5):
            write_checkpoint(tmp_path, seq, "fp", {"seq": seq}, keep=3)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            "checkpoint-00000002.json",
            "checkpoint-00000003.json",
            "checkpoint-00000004.json",
        ]

    def test_argument_validation(self, tmp_path):
        with pytest.raises(ValueError, match="seq"):
            write_checkpoint(tmp_path, -1, "fp", {})
        with pytest.raises(ValueError, match="keep"):
            write_checkpoint(tmp_path, 0, "fp", {}, keep=0)


class TestKillAndResume:
    def test_bit_identity_small_storm(self, tmp_path):
        config = ServiceConfig(
            n=12, quota=2, seed=5, events=24, workload="storm",
            checkpoint_every=5, differential_every=12,
        )
        result = kill_and_resume_check(config, workdir=tmp_path)
        assert result["identical"] is True
        assert result["mismatches"] == []
        assert result["guard_violations"] == 0
        assert result["differential_ok"] is True

    def test_resume_requires_checkpoint_dir(self):
        from repro.service.runner import run_service

        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_service(ServiceConfig(n=8, events=2), resume=True)

    def test_resume_rejects_foreign_trace(self, tmp_path):
        from repro.service.runner import run_service

        a = ServiceConfig(n=10, events=10, seed=1, checkpoint_every=5)
        run_service(a, checkpoint_dir=tmp_path)
        b = ServiceConfig(n=10, events=10, seed=2, checkpoint_every=5)
        with pytest.raises(CheckpointError, match="pins trace"):
            run_service(b, checkpoint_dir=tmp_path, resume=True)

    def test_kill_frac_validation(self):
        with pytest.raises(ValueError, match="kill_frac"):
            kill_and_resume_check(ServiceConfig(n=8, events=4), kill_frac=1.5)
