"""Tests for the local-search b-matching improver."""

from hypothesis import given, settings

from repro.baselines.exact import max_weight_bmatching_milp
from repro.baselines.local_search import local_search_bmatching
from repro.core.lic import lic_matching
from repro.core.matching import Matching
from repro.core.weights import WeightTable

from repro.testing.strategies import weighted_instances


class TestMoves:
    def test_add_from_empty(self):
        wt = WeightTable({(0, 1): 1.0, (2, 3): 2.0}, 4)
        res = local_search_bmatching(wt, [1] * 4, Matching(4))
        assert res.matching.edge_set() == {(0, 1), (2, 3)}
        assert res.add_moves == 2 and res.swap_moves == 0

    def test_swap_improves_bad_start(self):
        # start matched on the light edge of a path
        wt = WeightTable({(0, 1): 1.0, (1, 2): 5.0}, 3)
        start = Matching(3, [(0, 1)])
        res = local_search_bmatching(wt, [1, 1, 1], start)
        assert res.matching.edge_set() == {(1, 2)}
        assert res.swap_moves >= 1

    def test_two_for_one_fixes_greedy_trap(self):
        # greedy takes the middle edge; 2-for-1 recovers the outer pair
        wt = WeightTable({(0, 1): 2.0, (1, 2): 3.0, (2, 3): 2.0}, 4)
        greedy = lic_matching(wt, [1] * 4)
        assert greedy.edge_set() == {(1, 2)}
        res = local_search_bmatching(wt, [1] * 4, greedy)
        assert res.matching.edge_set() == {(0, 1), (2, 3)}
        assert res.two_for_one_moves == 1

    def test_input_not_mutated(self):
        wt = WeightTable({(0, 1): 1.0}, 2)
        start = Matching(2)
        local_search_bmatching(wt, [1, 1], start)
        assert start.size() == 0


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(weighted_instances())
    def test_never_worse_and_feasible(self, inst):
        wt, quotas = inst
        greedy = lic_matching(wt, quotas)
        res = local_search_bmatching(wt, quotas, greedy)
        assert res.matching.total_weight(wt) >= greedy.total_weight(wt) - 1e-12
        for v in range(wt.n):
            assert res.matching.degree(v) <= quotas[v]

    @settings(max_examples=25, deadline=None)
    @given(weighted_instances(max_n=6))
    def test_bounded_by_optimum(self, inst):
        wt, quotas = inst
        res = local_search_bmatching(wt, quotas, lic_matching(wt, quotas))
        opt = max_weight_bmatching_milp(wt, quotas).total_weight(wt)
        assert res.matching.total_weight(wt) <= opt + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(weighted_instances())
    def test_greedy_start_first_move_never_add_or_swap(self, inst):
        """LIC output has no weighted blocking edge, so the *first* move
        (if any) must be a 2-for-1 — the executable form of the greedy
        certificate.  (Later adds/swaps may fire on the modified
        matching.)"""
        wt, quotas = inst
        res = local_search_bmatching(
            wt, quotas, lic_matching(wt, quotas), max_moves=1
        )
        assert res.add_moves == 0
        assert res.swap_moves == 0
