"""Tests for the random maximal b-matching baseline."""

import numpy as np

from repro.baselines.random_matching import random_bmatching

from repro.testing.strategies import random_ps


class TestRandomBMatching:
    def test_feasible_and_maximal(self):
        ps = random_ps(20, 0.3, 2, seed=2, ensure_edges=True)
        m = random_bmatching(ps, np.random.default_rng(0))
        m.validate(ps)
        assert m.is_maximal(ps)

    def test_varies_with_rng(self):
        ps = random_ps(20, 0.4, 2, seed=2, ensure_edges=True)
        sets = {
            random_bmatching(ps, np.random.default_rng(s)).edge_set()
            for s in range(8)
        }
        assert len(sets) > 1  # genuinely random across seeds

    def test_reproducible_for_seed(self):
        ps = random_ps(15, 0.4, 2, seed=4, ensure_edges=True)
        a = random_bmatching(ps, np.random.default_rng(3))
        b = random_bmatching(ps, np.random.default_rng(3))
        assert a.edge_set() == b.edge_set()
