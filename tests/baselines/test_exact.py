"""Cross-validation of the exact solvers (MILP / gadget / brute force)."""

import pytest
from hypothesis import given, settings

from repro.baselines.exact import (
    brute_force_bmatching,
    max_satisfaction_bmatching_milp,
    max_weight_bmatching_gadget,
    max_weight_bmatching_milp,
    optimal_satisfaction,
    optimal_weight,
)
from repro.core.weights import WeightTable, satisfaction_weights

from repro.testing.strategies import preference_systems, random_ps, weighted_instances


class TestMaxWeightMILP:
    def test_simple_path(self):
        wt = WeightTable({(0, 1): 3.0, (1, 2): 2.0}, 3)
        m = max_weight_bmatching_milp(wt, [1, 1, 1])
        assert m.edge_set() == {(0, 1)}

    def test_beats_greedy_on_augmenting_path(self):
        # greedy takes the middle edge (weight 3) and loses 2+2=4
        wt = WeightTable({(0, 1): 2.0, (1, 2): 3.0, (2, 3): 2.0}, 4)
        m = max_weight_bmatching_milp(wt, [1, 1, 1, 1])
        assert m.edge_set() == {(0, 1), (2, 3)}

    def test_quota_respected(self):
        wt = WeightTable({(0, i): 1.0 + i for i in range(1, 5)}, 5)
        m = max_weight_bmatching_milp(wt, [2, 1, 1, 1, 1])
        assert m.degree(0) == 2
        assert m.edge_set() == {(0, 3), (0, 4)}

    def test_empty_graph(self):
        assert max_weight_bmatching_milp(WeightTable({}, 3), [1, 1, 1]).size() == 0


class TestCrossValidation:
    @settings(max_examples=25, deadline=None)
    @given(weighted_instances(max_n=6))
    def test_milp_equals_brute_force(self, inst):
        wt, quotas = inst
        if wt.m > 12:
            return
        milp = max_weight_bmatching_milp(wt, quotas)
        _, bf_val = brute_force_bmatching(wt, quotas, max_edges=12)
        assert milp.total_weight(wt) == pytest.approx(bf_val)

    @settings(max_examples=15, deadline=None)
    @given(weighted_instances(max_n=6))
    def test_gadget_equals_milp(self, inst):
        wt, quotas = inst
        if wt.m > 12:
            return
        milp = max_weight_bmatching_milp(wt, quotas)
        gadget = max_weight_bmatching_gadget(wt, quotas)
        assert gadget.total_weight(wt) == pytest.approx(milp.total_weight(wt))

    @settings(max_examples=15, deadline=None)
    @given(preference_systems(max_n=6))
    def test_satisfaction_milp_equals_brute_force(self, ps):
        if ps.m > 12:
            return
        wt = satisfaction_weights(ps) if ps.m else None
        milp = max_satisfaction_bmatching_milp(ps)
        if ps.m == 0:
            assert milp.size() == 0
            return
        _, bf_val = brute_force_bmatching(
            wt,
            list(ps.quotas),
            objective=lambda M: M.total_satisfaction(ps),
            max_edges=12,
        )
        assert milp.total_satisfaction(ps) == pytest.approx(bf_val)


class TestSatisfactionDecomposition:
    @settings(max_examples=20, deadline=None)
    @given(preference_systems(max_n=7))
    def test_objective_decomposition(self, ps):
        """Σ_i S_i == w(M) + Σ_i c_i(c_i-1)/(2 b_i ℓ_i) for any matching."""
        if ps.m == 0:
            return
        wt = satisfaction_weights(ps)
        m = max_satisfaction_bmatching_milp(ps)
        count_term = sum(
            m.degree(i) * (m.degree(i) - 1) / (2.0 * ps.quota(i) * ps.list_length(i))
            for i in ps.nodes()
            if ps.quota(i)
        )
        assert m.total_satisfaction(ps) == pytest.approx(
            m.total_weight(wt) + count_term
        )

    def test_satisfaction_opt_at_least_weight_opt_matching(self):
        ps = random_ps(10, 0.5, 2, seed=1, ensure_edges=True)
        wt = satisfaction_weights(ps)
        m_w = max_weight_bmatching_milp(wt, ps.quotas)
        s_opt = optimal_satisfaction(ps)
        assert s_opt >= m_w.total_satisfaction(ps) - 1e-9


class TestBruteForce:
    def test_refuses_large(self):
        wt = WeightTable({(i, i + 1): 1.0 for i in range(25)}, 26)
        with pytest.raises(ValueError, match="limited"):
            brute_force_bmatching(wt, [1] * 26)

    def test_custom_objective(self):
        wt = WeightTable({(0, 1): 10.0, (1, 2): 1.0}, 3)
        # objective favouring many edges regardless of weight
        m, val = brute_force_bmatching(
            wt, [2, 2, 2], objective=lambda M: M.size()
        )
        assert val == 2 and m.size() == 2


class TestHelpers:
    def test_optimal_weight(self):
        wt = WeightTable({(0, 1): 2.0, (1, 2): 3.0, (2, 3): 2.0}, 4)
        assert optimal_weight(wt, [1, 1, 1, 1]) == pytest.approx(4.0)


class TestGadgetEngines:
    @settings(max_examples=10, deadline=None)
    @given(weighted_instances(max_n=6))
    def test_blossom_engine_equals_networkx_engine(self, inst):
        wt, quotas = inst
        if wt.m == 0 or wt.m > 12:
            return
        a = max_weight_bmatching_gadget(wt, quotas, engine="blossom")
        b = max_weight_bmatching_gadget(wt, quotas, engine="networkx")
        assert a.total_weight(wt) == pytest.approx(b.total_weight(wt))

    def test_unknown_engine(self):
        wt = WeightTable({(0, 1): 1.0}, 2)
        with pytest.raises(ValueError, match="unknown engine"):
            max_weight_bmatching_gadget(wt, [1, 1], engine="magic")
