"""Tests for the stable-fixtures hybrid solver."""

from hypothesis import given, settings

from repro.baselines.stable_fixtures import (
    phase1,
    stable_fixtures_matching,
)
from repro.baselines.verify import is_stable
from repro.core.preferences import PreferenceSystem

from repro.testing.strategies import preference_systems, random_ps


class TestPhase1:
    def test_mutual_tops_hold(self):
        ps = PreferenceSystem({0: [1, 2], 1: [0, 2], 2: [0, 1]}, 1)
        state = phase1(ps)
        assert (0, 1) in state.mutual

    def test_holds_respect_quota(self):
        ps = random_ps(15, 0.4, 2, seed=3, ensure_edges=True)
        state = phase1(ps)
        for j in ps.nodes():
            assert len(state.holds[j]) <= ps.quota(j)
            assert len(state.proposed_to[j]) <= ps.quota(j)

    def test_better_proposal_bounces_worst(self):
        # star: centre 2 with quota 1; leaves 0,1 both propose to 2;
        # 2 prefers 0, so 1 is bounced and exhausts its list
        ps = PreferenceSystem({0: [2], 1: [2], 2: [0, 1]}, 1)
        state = phase1(ps)
        assert state.holds[2] == {0}
        assert 1 in state.exhausted

    def test_deterministic(self):
        ps = random_ps(12, 0.5, 2, seed=7, ensure_edges=True)
        a, b = phase1(ps), phase1(ps)
        assert a.mutual == b.mutual and a.holds == b.holds


class TestHybridSolver:
    def test_certified_when_found(self):
        for seed in range(8):
            ps = random_ps(8, 0.5, 2, seed=seed, ensure_edges=True)
            res = stable_fixtures_matching(ps)
            if res.matching is not None:
                assert is_stable(ps, res.matching)
                assert res.exists is True
                assert res.method in ("phase1", "dynamics", "exhaustive")

    def test_rotating_triangle_has_none(self, triangle_ps):
        res = stable_fixtures_matching(triangle_ps)
        assert res.matching is None
        assert res.exists is False  # proven by exhaustive search

    def test_trivial_instance(self):
        ps = PreferenceSystem({0: [1], 1: [0]}, 1)
        res = stable_fixtures_matching(ps)
        assert res.matching is not None
        assert res.matching.edge_set() == {(0, 1)}

    @settings(max_examples=25, deadline=None)
    @given(preference_systems(max_n=6))
    def test_answers_are_sound(self, ps):
        res = stable_fixtures_matching(ps)
        if res.matching is not None:
            assert is_stable(ps, res.matching)
        elif res.exists is False and ps.m <= 16:
            # exhaustive proof: verify a sample of matchings are blocked
            from repro.core.matching import Matching

            for edge in ps.edges():
                assert not is_stable(ps, Matching(ps.n, [edge]))
