"""Tests for Hoepman's distributed 1-1 matching (paper ref [6])."""

from hypothesis import given, settings

from repro.baselines.hoepman import run_hoepman
from repro.core.lic import lic_matching
from repro.core.weights import WeightTable
from repro.distsim import ExponentialLatency, UniformLatency

from repro.testing.strategies import weighted_instances


class TestHoepman:
    def test_two_nodes(self):
        wt = WeightTable({(0, 1): 1.0}, 2)
        res = run_hoepman(wt)
        assert res.matching.edge_set() == {(0, 1)}
        assert res.req_messages == 2 and res.drop_messages == 0

    def test_path_chain(self):
        wt = WeightTable({(0, 1): 3.0, (1, 2): 2.0, (2, 3): 1.5}, 4)
        res = run_hoepman(wt)
        # locally heaviest: (0,1) then (2,3)
        assert res.matching.edge_set() == {(0, 1), (2, 3)}

    def test_isolated_node(self):
        wt = WeightTable({(0, 1): 1.0}, 3)
        res = run_hoepman(wt)
        assert res.nodes[2].terminated and res.nodes[2].partner is None

    @settings(max_examples=30, deadline=None)
    @given(weighted_instances())
    def test_equals_unit_quota_greedy(self, inst):
        """Hoepman == LIC with quotas forced to 1 (the lineage claim)."""
        wt, _ = inst
        ones = [1] * wt.n
        reference = lic_matching(wt, ones).edge_set()
        assert run_hoepman(wt).matching.edge_set() == reference

    @settings(max_examples=15, deadline=None)
    @given(weighted_instances(max_n=7))
    def test_schedule_independence(self, inst):
        wt, _ = inst
        reference = lic_matching(wt, [1] * wt.n).edge_set()
        for seed, latency in enumerate(
            (UniformLatency(0.2, 3.0), ExponentialLatency(1.0))
        ):
            res = run_hoepman(wt, latency=latency, fifo=False, seed=seed)
            assert res.matching.edge_set() == reference

    @settings(max_examples=20, deadline=None)
    @given(weighted_instances())
    def test_message_bounds(self, inst):
        """Hoepman's bound: at most one REQ and one DROP per edge side."""
        wt, _ = inst
        res = run_hoepman(wt)
        assert res.req_messages <= 2 * wt.m
        assert res.drop_messages <= 2 * wt.m
        for i, node in enumerate(res.nodes):
            deg = len(wt.neighbors(i))
            assert node.reqs_sent <= deg
            assert node.drops_sent <= deg
