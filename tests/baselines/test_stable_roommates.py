"""Tests for Irving's stable roommates algorithm (exact 1-1 solver).

Cross-validated against exhaustive search on random complete and
incomplete instances, plus the classic textbook instances.
"""

from itertools import combinations

import numpy as np
import pytest

from repro.baselines.stable_roommates import stable_roommates
from repro.baselines.verify import is_stable
from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem

from repro.testing.strategies import random_ps


def exhaustive_stable_exists(ps: PreferenceSystem):
    """Ground truth: search all 1-1 matchings for a stable one."""
    edges = list(ps.edges())
    for r in range(len(edges), -1, -1):
        for subset in combinations(edges, r):
            used = set()
            ok = True
            for i, j in subset:
                if i in used or j in used:
                    ok = False
                    break
                used.add(i)
                used.add(j)
            if ok:
                m = Matching(ps.n, subset)
                if is_stable(ps, m):
                    return m
    return None


def complete_instance(n: int, seed: int) -> PreferenceSystem:
    rng = np.random.default_rng(seed)
    rankings = {}
    for i in range(n):
        others = [j for j in range(n) if j != i]
        rng.shuffle(others)
        rankings[i] = others
    return PreferenceSystem(rankings, 1)


class TestClassicInstances:
    def test_irving_no_stable_4(self):
        """The classic 4-person instance with no stable matching.

        0: 1 2 3 / 1: 2 0 3 / 2: 0 1 3 / 3: arbitrary — 3 is everyone's
        last choice and 0,1,2 form a rotating cycle.
        """
        ps = PreferenceSystem(
            {0: [1, 2, 3], 1: [2, 0, 3], 2: [0, 1, 3], 3: [0, 1, 2]}, 1
        )
        res = stable_roommates(ps)
        assert res.certain and res.exists is False
        assert exhaustive_stable_exists(ps) is None

    def test_solvable_4(self):
        ps = PreferenceSystem(
            {0: [1, 2, 3], 1: [0, 2, 3], 2: [3, 0, 1], 3: [2, 0, 1]}, 1
        )
        res = stable_roommates(ps)
        assert res.certain and res.exists
        assert is_stable(ps, res.matching)
        assert res.matching.edge_set() == {(0, 1), (2, 3)}

    def test_irving_6_person(self):
        """Irving's 6-person example (solvable; 1-indexed in the paper)."""
        prefs = {
            0: [3, 5, 1, 4, 2],
            1: [5, 2, 3, 0, 4],
            2: [1, 4, 0, 5, 3],
            3: [4, 2, 5, 0, 1],
            4: [2, 3, 1, 0, 5],
            5: [4, 0, 2, 3, 1],
        }
        ps = PreferenceSystem(prefs, 1)
        res = stable_roommates(ps)
        assert res.certain
        assert (res.exists is True) == (exhaustive_stable_exists(ps) is not None)
        if res.matching is not None:
            assert is_stable(ps, res.matching)

    def test_two_people(self):
        ps = PreferenceSystem({0: [1], 1: [0]}, 1)
        res = stable_roommates(ps)
        assert res.matching.edge_set() == {(0, 1)}

    def test_rejects_nonunit_quota(self):
        ps = PreferenceSystem({0: [1, 2], 1: [0, 2], 2: [0, 1]}, 2)
        with pytest.raises(ValueError, match="unit quotas"):
            stable_roommates(ps)


class TestAgainstExhaustive:
    @pytest.mark.parametrize("seed", range(20))
    def test_complete_even_instances(self, seed):
        """On complete even instances the solver must decide, correctly."""
        ps = complete_instance(6, seed)
        res = stable_roommates(ps)
        truth = exhaustive_stable_exists(ps)
        assert res.certain, "complete case must never abstain"
        assert res.exists == (truth is not None)
        if res.matching is not None:
            assert is_stable(ps, res.matching)
            # complete even solvable instances: everyone matched
            assert res.matching.size() == 3

    @pytest.mark.parametrize("seed", range(20))
    def test_incomplete_instances_sound(self, seed):
        """On SRI instances: certified answers must match ground truth."""
        ps = random_ps(7, 0.6, 1, seed=seed, ensure_edges=True)
        res = stable_roommates(ps)
        if not res.certain:
            return  # abstention is allowed for SRI
        truth = exhaustive_stable_exists(ps)
        if res.exists:
            assert is_stable(ps, res.matching)
            assert truth is not None
        else:
            assert truth is None

    def test_abstention_rate_is_low(self):
        """The solver should decide the vast majority of SRI instances."""
        decided = 0
        total = 30
        for seed in range(total):
            ps = random_ps(8, 0.5, 1, seed=100 + seed, ensure_edges=True)
            if stable_roommates(ps).certain:
                decided += 1
        assert decided >= total * 0.6
