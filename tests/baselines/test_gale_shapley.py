"""Tests for deferred acceptance on bipartite instances."""

import numpy as np
import pytest

from repro.baselines.gale_shapley import bipartition, gale_shapley
from repro.baselines.verify import is_stable
from repro.core.preferences import PreferenceSystem
from repro.utils.validation import InvalidInstanceError


def random_bipartite(na: int, nb: int, p: float, quota, seed: int) -> PreferenceSystem:
    """Random bipartite instance; side A = ids 0..na-1."""
    rng = np.random.default_rng(seed)
    adj = {i: [] for i in range(na + nb)}
    for a in range(na):
        for b in range(na, na + nb):
            if rng.random() < p:
                adj[a].append(b)
                adj[b].append(a)
    rankings = {}
    for v in range(na + nb):
        neigh = list(adj[v])
        rng.shuffle(neigh)
        rankings[v] = neigh
    return PreferenceSystem(rankings, quota)


class TestBipartition:
    def test_detects_sides(self):
        ps = random_bipartite(4, 5, 0.7, 2, seed=1)
        sides = bipartition(ps)
        assert sides is not None
        a, b = sides
        for i, j in ps.edges():
            assert (i in a) != (j in a)

    def test_rejects_odd_cycle(self):
        ps = PreferenceSystem({0: [1, 2], 1: [2, 0], 2: [0, 1]}, 1)
        assert bipartition(ps) is None

    def test_isolated_nodes_assigned(self):
        ps = PreferenceSystem({0: [1], 1: [0], 2: []}, 1)
        a, b = bipartition(ps)
        assert a | b == {0, 1, 2}


class TestGaleShapley:
    def test_classic_marriage(self):
        # men 0,1 / women 2,3 with crossed preferences
        ps = PreferenceSystem(
            {0: [2, 3], 1: [2, 3], 2: [1, 0], 3: [0, 1]}, 1
        )
        m = gale_shapley(ps, proposers=[0, 1])
        assert is_stable(ps, m)
        assert m.size() == 2

    def test_always_stable_on_random_instances(self):
        """The deferred-acceptance guarantee, property-style."""
        for seed in range(12):
            ps = random_bipartite(6, 6, 0.5, int(seed % 3) + 1, seed=seed)
            m = gale_shapley(ps)
            assert is_stable(ps, m), seed

    def test_proposer_optimality(self):
        """A-proposing yields A-satisfaction ≥ the B-proposing outcome."""
        better_or_equal = 0
        trials = 0
        for seed in range(10):
            na = nb = 5
            ps = random_bipartite(na, nb, 0.6, 1, seed=100 + seed)
            a_side = list(range(na))
            b_side = list(range(na, na + nb))
            m_a = gale_shapley(ps, proposers=a_side)
            m_b = gale_shapley(ps, proposers=b_side)
            sat_a_when_a = sum(m_a.satisfaction_vector(ps)[i] for i in a_side)
            sat_a_when_b = sum(m_b.satisfaction_vector(ps)[i] for i in a_side)
            trials += 1
            if sat_a_when_a >= sat_a_when_b - 1e-9:
                better_or_equal += 1
        assert better_or_equal == trials

    def test_quota_version(self):
        # one college (quota 2), three students
        ps = PreferenceSystem(
            {0: [3], 1: [3], 2: [3], 3: [0, 1, 2]},
            {0: 1, 1: 1, 2: 1, 3: 2},
        )
        m = gale_shapley(ps, proposers=[0, 1, 2])
        assert m.connections(3) == frozenset({0, 1})  # top-2 by 3's ranks
        assert is_stable(ps, m)

    def test_rejects_non_bipartite(self):
        ps = PreferenceSystem({0: [1, 2], 1: [2, 0], 2: [0, 1]}, 1)
        with pytest.raises(InvalidInstanceError, match="not bipartite"):
            gale_shapley(ps)

    def test_rejects_non_crossing_bipartition(self):
        ps = PreferenceSystem({0: [1], 1: [0]}, 1)
        with pytest.raises(InvalidInstanceError, match="does not cross"):
            gale_shapley(ps, proposers=[0, 1])

    def test_agrees_with_fixtures_hybrid_existence(self):
        """Bipartite instances always have stable matchings; the general
        hybrid must agree."""
        from repro.baselines.stable_fixtures import stable_fixtures_matching

        ps = random_bipartite(5, 5, 0.5, 2, seed=3)
        gs = gale_shapley(ps)
        hybrid = stable_fixtures_matching(ps)
        assert hybrid.exists is True
        assert is_stable(ps, gs) and is_stable(ps, hybrid.matching)
