"""Tests for greedy comparators."""

import numpy as np
from hypothesis import given, settings

from repro.baselines.exact import max_weight_bmatching_milp
from repro.baselines.greedy import (
    global_greedy_matching,
    path_growing_matching,
    random_order_greedy,
)
from repro.core.lic import lic_matching
from repro.core.weights import WeightTable

from repro.testing.strategies import weighted_instances


class TestGlobalGreedy:
    @settings(max_examples=25, deadline=None)
    @given(weighted_instances())
    def test_identical_to_lic(self, inst):
        wt, quotas = inst
        assert (
            global_greedy_matching(wt, quotas).edge_set()
            == lic_matching(wt, quotas).edge_set()
        )


class TestRandomOrderGreedy:
    def test_feasible_and_maximal(self):
        wt = WeightTable({(0, 1): 1.0, (1, 2): 2.0, (0, 2): 3.0}, 3)
        rng = np.random.default_rng(0)
        m = random_order_greedy(wt, [1, 1, 1], rng)
        assert m.size() == 1  # triangle with quota 1: any single edge is maximal

    def test_deterministic_given_rng(self):
        wt = WeightTable({(i, j): 1.0 + i + j for i in range(6) for j in range(i + 1, 6)}, 6)
        a = random_order_greedy(wt, [2] * 6, np.random.default_rng(5))
        b = random_order_greedy(wt, [2] * 6, np.random.default_rng(5))
        assert a.edge_set() == b.edge_set()

    @settings(max_examples=20, deadline=None)
    @given(weighted_instances())
    def test_respects_quotas(self, inst):
        wt, quotas = inst
        m = random_order_greedy(wt, quotas, np.random.default_rng(1))
        for v in range(wt.n):
            assert m.degree(v) <= quotas[v]


class TestPathGrowing:
    def test_simple_path(self):
        wt = WeightTable({(0, 1): 2.0, (1, 2): 3.0, (2, 3): 2.0}, 4)
        m = path_growing_matching(wt)
        # Path growing achieves >= 1/2 OPT (OPT = 4 here)
        assert m.total_weight(wt) >= 2.0

    @settings(max_examples=25, deadline=None)
    @given(weighted_instances(max_n=7))
    def test_half_approximation_one_to_one(self, inst):
        """Drake–Hougardy guarantee against the exact 1–1 optimum."""
        wt, _ = inst
        ones = [1] * wt.n
        m = path_growing_matching(wt)
        # it must be a valid 1-1 matching
        for v in range(wt.n):
            assert m.degree(v) <= 1
        opt = max_weight_bmatching_milp(wt, ones).total_weight(wt)
        assert m.total_weight(wt) >= 0.5 * opt - 1e-9
