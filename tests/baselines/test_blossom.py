"""Tests for the from-scratch blossom maximum-weight matching."""

import numpy as np
import networkx as nx
import pytest
from hypothesis import given, settings

from repro.baselines.blossom import blossom_mwm, max_weight_matching_blossom
from repro.baselines.exact import brute_force_bmatching
from repro.core.weights import WeightTable

from repro.testing.strategies import weighted_instances


class TestBasics:
    def test_empty(self):
        assert blossom_mwm([], 3) == [-1, -1, -1]

    def test_single_edge(self):
        assert blossom_mwm([(0, 1, 2.0)], 2) == [1, 0]

    def test_path_prefers_outer_edges(self):
        mate = blossom_mwm([(0, 1, 2.0), (1, 2, 3.0), (2, 3, 2.0)], 4)
        assert mate == [1, 0, 3, 2]  # 2+2 beats 3

    def test_triangle(self):
        mate = blossom_mwm([(0, 1, 5.0), (1, 2, 4.0), (0, 2, 3.0)], 3)
        assert mate[0] == 1 and mate[1] == 0 and mate[2] == -1

    def test_blossom_formation_pentagon(self):
        # odd cycle with a pendant: forces blossom shrink + expand
        edges = [
            (0, 1, 8.0), (1, 2, 9.0), (2, 3, 8.0), (3, 4, 9.0), (4, 0, 8.0),
            (4, 5, 6.0),
        ]
        mate = blossom_mwm(edges, 6)
        total = sum(
            w for (i, j, w) in edges if mate[i] == j
        )
        # optimum: (1,2) + (3,4)?? check against brute force below;
        # here just sanity: perfect-on-5-plus-pendant impossible, 3 pairs
        assert sum(1 for v in mate if v >= 0) in (4, 6)

    def test_zero_weight_rejected_negative(self):
        with pytest.raises(ValueError):
            blossom_mwm([(0, 1, -1.0)], 2)
        with pytest.raises(ValueError):
            blossom_mwm([(0, 0, 1.0)], 2)


class TestAgainstBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(weighted_instances(max_n=7))
    def test_matches_brute_force(self, inst):
        wt, _ = inst
        if wt.m > 12:
            return
        ours = max_weight_matching_blossom(wt).total_weight(wt)
        _, bf = brute_force_bmatching(wt, [1] * wt.n, max_edges=12)
        assert ours == pytest.approx(bf)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(10, 40))
        p = float(rng.uniform(0.1, 0.7))
        weights = {}
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < p:
                    weights[(i, j)] = float(rng.uniform(0.1, 10.0))
        if not weights:
            return
        wt = WeightTable(weights, n)
        ours = max_weight_matching_blossom(wt)
        G = nx.Graph()
        for (i, j), w in weights.items():
            G.add_edge(i, j, weight=w)
        ref = nx.max_weight_matching(G)
        ref_w = sum(weights[(min(a, b), max(a, b))] for a, b in ref)
        assert ours.total_weight(wt) == pytest.approx(ref_w)

    def test_tie_heavy_integer_weights(self):
        rng = np.random.default_rng(3)
        n = 20
        weights = {
            (i, j): float(rng.integers(1, 4))
            for i in range(n)
            for j in range(i + 1, n)
            if rng.random() < 0.5
        }
        wt = WeightTable(weights, n)
        ours = max_weight_matching_blossom(wt)
        G = nx.Graph()
        for (i, j), w in weights.items():
            G.add_edge(i, j, weight=w)
        ref_w = sum(
            weights[(min(a, b), max(a, b))] for a, b in nx.max_weight_matching(G)
        )
        assert ours.total_weight(wt) == pytest.approx(ref_w)


class TestValidMatching:
    @settings(max_examples=30, deadline=None)
    @given(weighted_instances())
    def test_output_is_matching(self, inst):
        wt, _ = inst
        m = max_weight_matching_blossom(wt)
        for v in range(wt.n):
            assert m.degree(v) <= 1
        for i, j in m.edges():
            assert wt.has_edge(i, j)
