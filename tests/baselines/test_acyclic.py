"""Tests for best-response b-matching dynamics (Gai et al. baseline)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.baselines.acyclic import best_response_dynamics
from repro.baselines.verify import is_stable
from repro.core.lic import solve_modified_bmatching
from repro.core.preferences import PreferenceSystem
from repro.experiments.instances import cyclic_roommates

from repro.testing.strategies import preference_systems, random_ps


class TestConvergence:
    def test_converges_on_mutual_tops(self):
        ps = PreferenceSystem({0: [1, 2], 1: [0, 2], 2: [0, 1]}, 1)
        res = best_response_dynamics(ps)
        assert res.converged
        assert is_stable(ps, res.matching)
        assert res.matching.edge_set() == {(0, 1)}

    def test_oscillates_on_rotating_triangle(self, triangle_ps):
        res = best_response_dynamics(triangle_ps)
        assert not res.converged
        assert res.cycled

    @pytest.mark.parametrize("k", [3, 5, 7])
    def test_oscillates_on_odd_rings(self, k):
        res = best_response_dynamics(cyclic_roommates(k))
        assert not res.converged and res.cycled

    def test_even_ring_converges(self):
        res = best_response_dynamics(cyclic_roommates(6))
        assert res.converged

    @settings(max_examples=25, deadline=None)
    @given(preference_systems(max_n=7))
    def test_converged_outputs_are_certified_stable(self, ps):
        res = best_response_dynamics(ps, max_steps=3000)
        if res.converged:
            assert is_stable(ps, res.matching)
        res.matching.validate(ps)  # feasible even when oscillating

    def test_weight_list_preferences_always_converge(self):
        """Preferences induced by symmetric weights are acyclic, so
        best-response must stabilise — and to the LIC matching (the
        unique stable state), the uniqueness the churn repair rests on."""
        for seed in range(5):
            ps = random_ps(12, 0.4, 2, seed=seed, ensure_edges=True)
            lic, wt = solve_modified_bmatching(ps)
            # rebuild a preference system ranked by the eq.-9 weights
            ranked = PreferenceSystem.from_scores(
                {i: list(wt.neighbors(i)) for i in range(ps.n)},
                lambda i, j: wt.weight(i, j) + 1e-9 * (min(i, j) * ps.n + max(i, j)),
                list(ps.quotas),
            )
            res = best_response_dynamics(ranked, max_steps=20_000)
            assert res.converged
            assert res.matching.edge_set() == lic.edge_set()


class TestRules:
    def test_rules_all_reach_stability_when_acyclic(self):
        ps = PreferenceSystem(
            {0: [1, 2, 3], 1: [0, 2], 2: [0, 1, 3], 3: [0, 2]},
            {0: 2, 1: 1, 2: 2, 3: 1},
        )
        rng = np.random.default_rng(0)
        for rule in ("first", "best", "random"):
            res = best_response_dynamics(ps, rule=rule, rng=rng, max_steps=5000)
            if res.converged:
                assert is_stable(ps, res.matching)

    def test_random_rule_requires_rng(self, small_ps):
        with pytest.raises(ValueError, match="rng"):
            best_response_dynamics(small_ps, rule="random")

    def test_budget_exhaustion_reports_not_converged(self, triangle_ps):
        res = best_response_dynamics(
            triangle_ps, max_steps=2, detect_cycles=False
        )
        assert not res.converged and not res.cycled
        assert res.steps == 2

    def test_initial_matching_respected(self, small_ps):
        from repro.core.matching import Matching

        init = Matching(5, [(0, 1)])
        res = best_response_dynamics(small_ps, initial=init)
        assert res.converged
        assert is_stable(small_ps, res.matching)
