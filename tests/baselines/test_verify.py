"""Tests for the blocking-pair / stability certifiers."""

import pytest

from repro.baselines.verify import (
    blocking_pairs,
    count_blocking_pairs,
    count_weighted_blocking_pairs,
    is_stable,
    weighted_blocking_pairs,
)
from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem


class TestBlockingPairs:
    def test_empty_matching_blocked_by_every_edge(self, small_ps):
        m = Matching(5)
        assert set(blocking_pairs(small_ps, m)) == set(small_ps.edges())

    def test_triangle_no_stable_matching(self, triangle_ps):
        # every feasible 1-matching of the rotating triangle is blocked
        for edge in triangle_ps.edges():
            m = Matching(3, [edge])
            assert blocking_pairs(triangle_ps, m)

    def test_mutually_top_pair_is_stable(self):
        ps = PreferenceSystem({0: [1, 2], 1: [0, 2], 2: [0, 1]}, 1)
        m = Matching(3, [(0, 1)])  # 0 and 1 are each other's top choice
        assert is_stable(ps, m)

    def test_quota_slack_creates_block(self):
        ps = PreferenceSystem({0: [1], 1: [0, 2], 2: [1]}, {0: 1, 1: 2, 2: 1})
        m = Matching(3, [(0, 1)])
        # node 1 has spare quota and 2 is unmatched -> (1,2) blocks
        assert blocking_pairs(ps, m) == [(1, 2)]
        m.add(1, 2)
        assert is_stable(ps, m)

    def test_preference_swap_creates_block(self):
        # 1 is matched to its worst choice while its best is available
        ps = PreferenceSystem({0: [1], 1: [2, 0], 2: [1]}, 1)
        m = Matching(3, [(0, 1)])
        assert blocking_pairs(ps, m) == [(1, 2)]

    def test_count(self, small_ps):
        assert count_blocking_pairs(small_ps, Matching(5)) == small_ps.m

    def test_regression_pin_on_conformance_instance(self):
        # pins the exact output of the hoisted worst-rank implementation
        # on the conformance mutation instance: a refactor that changes
        # tie-breaks, ordering or the rank comparison fails loudly here
        from repro.core.lid import solve_lid
        from repro.testing.strategies import InstanceSpec, generate_instance

        ps = generate_instance(InstanceSpec(
            family="er", n=18, preference_model="uniform",
            quota_model="constant", quota=3, seed=0,
        ))
        empty = blocking_pairs(ps, Matching(ps.n))
        assert empty == sorted(ps.edges())
        res, wt = solve_lid(ps, backend="fast")
        assert blocking_pairs(ps, res.matching) == [
            (0, 3), (0, 6), (1, 6), (1, 17), (5, 11), (8, 14), (11, 16),
        ]
        truncated, _ = solve_lid(ps, backend="fast", max_rounds=1)
        assert count_blocking_pairs(ps, truncated.matching) == 17

    def test_matches_naive_would_accept_recomputation(self, small_ps):
        # the hoisted worst-rank scan must agree with the per-pair
        # _would_accept definition on every candidate edge
        from repro.baselines.verify import _would_accept

        for m in (
            Matching(5),
            Matching(5, [(0, 1)]),
            Matching(5, [(0, 1), (1, 3), (2, 3)]),
        ):
            naive = [
                (i, j) for i, j in small_ps.edges()
                if not m.has_edge(i, j)
                and _would_accept(small_ps, m, i, j)
                and _would_accept(small_ps, m, j, i)
            ]
            assert blocking_pairs(small_ps, m) == naive


class TestWeightedBlockingPairs:
    def test_zero_exactly_at_the_lid_fixpoint(self):
        from repro.core.lid import solve_lid
        from repro.testing.strategies import random_ps

        for seed in (0, 1, 2):
            ps = random_ps(20, 0.3, 3, seed=seed, ensure_edges=True)
            res, wt = solve_lid(ps, backend="fast")
            assert count_weighted_blocking_pairs(ps, res.matching, wt) == 0
            # ... while the rank-based notion generally is not zero:
            # LID is almost-stable, not classically stable

    def test_empty_matching_blocked_by_every_edge(self):
        from repro.core.weights import satisfaction_weights
        from repro.testing.strategies import random_ps

        ps = random_ps(12, 0.4, 2, seed=3, ensure_edges=True)
        wt = satisfaction_weights(ps)
        assert weighted_blocking_pairs(ps, Matching(ps.n), wt) == sorted(ps.edges())

    def test_mismatched_table_rejected(self):
        from repro.core.weights import satisfaction_weights
        from repro.testing.strategies import random_ps

        ps = random_ps(10, 0.4, 2, seed=0, ensure_edges=True)
        other = random_ps(11, 0.4, 2, seed=0, ensure_edges=True)
        wt = satisfaction_weights(other)
        with pytest.raises(ValueError, match="sized for"):
            weighted_blocking_pairs(ps, Matching(ps.n), wt)


class TestIsStable:
    def test_infeasible_never_stable(self, small_ps):
        overfull = Matching(5, [(0, 1), (0, 2)])  # b_0 = 1
        assert not is_stable(small_ps, overfull)

    def test_stable_example(self, small_ps):
        # hand-checked stable configuration for the fixture:
        # 0-1 (mutual bests), 1-3, 2-3.  Node 2 has slack but its other
        # neighbours 0 and 1 are full with better partners; node 4's only
        # neighbour 3 is full and prefers 1,2 (ranks 0,1) to 4 (rank 2).
        m = Matching(5, [(0, 1), (1, 3), (2, 3)])
        assert is_stable(small_ps, m)
