"""Tests for the blocking-pair / stability certifiers."""

from repro.baselines.verify import blocking_pairs, count_blocking_pairs, is_stable
from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem


class TestBlockingPairs:
    def test_empty_matching_blocked_by_every_edge(self, small_ps):
        m = Matching(5)
        assert set(blocking_pairs(small_ps, m)) == set(small_ps.edges())

    def test_triangle_no_stable_matching(self, triangle_ps):
        # every feasible 1-matching of the rotating triangle is blocked
        for edge in triangle_ps.edges():
            m = Matching(3, [edge])
            assert blocking_pairs(triangle_ps, m)

    def test_mutually_top_pair_is_stable(self):
        ps = PreferenceSystem({0: [1, 2], 1: [0, 2], 2: [0, 1]}, 1)
        m = Matching(3, [(0, 1)])  # 0 and 1 are each other's top choice
        assert is_stable(ps, m)

    def test_quota_slack_creates_block(self):
        ps = PreferenceSystem({0: [1], 1: [0, 2], 2: [1]}, {0: 1, 1: 2, 2: 1})
        m = Matching(3, [(0, 1)])
        # node 1 has spare quota and 2 is unmatched -> (1,2) blocks
        assert blocking_pairs(ps, m) == [(1, 2)]
        m.add(1, 2)
        assert is_stable(ps, m)

    def test_preference_swap_creates_block(self):
        # 1 is matched to its worst choice while its best is available
        ps = PreferenceSystem({0: [1], 1: [2, 0], 2: [1]}, 1)
        m = Matching(3, [(0, 1)])
        assert blocking_pairs(ps, m) == [(1, 2)]

    def test_count(self, small_ps):
        assert count_blocking_pairs(small_ps, Matching(5)) == small_ps.m


class TestIsStable:
    def test_infeasible_never_stable(self, small_ps):
        overfull = Matching(5, [(0, 1), (0, 2)])  # b_0 = 1
        assert not is_stable(small_ps, overfull)

    def test_stable_example(self, small_ps):
        # hand-checked stable configuration for the fixture:
        # 0-1 (mutual bests), 1-3, 2-3.  Node 2 has slack but its other
        # neighbours 0 and 1 are full with better partners; node 4's only
        # neighbour 3 is full and prefers 1,2 (ranks 0,1) to 4 (rank 2).
        m = Matching(5, [(0, 1), (1, 3), (2, 3)])
        assert is_stable(small_ps, m)
