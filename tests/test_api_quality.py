"""Meta-tests over the public API surface.

Production-quality guards: every exported name resolves, every public
callable and class carries a docstring, and module ``__all__`` lists
stay free of duplicates and dead entries.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.distsim",
    "repro.baselines",
    "repro.overlay",
    "repro.experiments",
    "repro.utils",
]


def _all_modules():
    names = set(PACKAGES)
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                names.add(f"{pkg_name}.{info.name}")
    return sorted(names)


MODULES = _all_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports_and_has_docstring(module_name):
    mod = importlib.import_module(module_name)
    assert mod.__doc__ and mod.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_dunder_all_is_clean(module_name):
    mod = importlib.import_module(module_name)
    exported = getattr(mod, "__all__", None)
    if exported is None:
        return
    assert len(exported) == len(set(exported)), f"duplicates in {module_name}.__all__"
    for name in exported:
        assert hasattr(mod, name), f"{module_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_documented(module_name):
    mod = importlib.import_module(module_name)
    for name in getattr(mod, "__all__", []):
        obj = getattr(mod, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            # only enforce for objects defined inside this project
            if (getattr(obj, "__module__", "") or "").startswith("repro"):
                assert obj.__doc__ and obj.__doc__.strip(), (
                    f"{module_name}.{name} lacks a docstring"
                )


def test_version_is_exposed():
    assert isinstance(repro.__version__, str) and repro.__version__
