"""Round-trip tests for JSON serialisation."""

import pytest
from hypothesis import given, settings

from repro.core.lic import solve_modified_bmatching
from repro.serialization import from_dict, load_json, save_json, to_dict

from tests.conftest import preference_systems, weighted_instances


class TestRoundTrips:
    @settings(max_examples=30, deadline=None)
    @given(preference_systems())
    def test_preference_system(self, ps):
        assert from_dict(to_dict(ps)) == ps

    @settings(max_examples=30, deadline=None)
    @given(weighted_instances())
    def test_weight_table(self, inst):
        wt, _ = inst
        back = from_dict(to_dict(wt))
        assert back.n == wt.n and back.m == wt.m
        for i, j in wt.edges():
            assert back.weight(i, j) == wt.weight(i, j)  # exact floats

    @settings(max_examples=20, deadline=None)
    @given(preference_systems())
    def test_matching(self, ps):
        matching, _ = solve_modified_bmatching(ps)
        back = from_dict(to_dict(matching))
        assert back == matching

    def test_file_round_trip(self, tmp_path, small_ps):
        p = tmp_path / "ps.json"
        save_json(small_ps, p)
        assert load_json(p) == small_ps

    def test_self_describing_dispatch(self, small_ps):
        matching, wt = solve_modified_bmatching(small_ps)
        for obj in (small_ps, wt, matching):
            assert type(from_dict(to_dict(obj))) is type(obj)


class TestErrors:
    def test_unknown_type_tag(self):
        with pytest.raises(ValueError, match="unknown"):
            from_dict({"type": "sandwich"})

    def test_unserialisable_object(self):
        with pytest.raises(TypeError):
            to_dict(42)
