"""Round-trip tests for JSON serialisation."""

import pytest
from hypothesis import given, settings

from repro.core.lic import solve_modified_bmatching
from repro.core.preferences import PreferenceSystem
from repro.serialization import from_dict, load_json, save_json, to_dict
from repro.testing.minimise import ConformanceRepro
from repro.testing.strategies import preference_systems, weighted_instances


class TestRoundTrips:
    @settings(max_examples=30, deadline=None)
    @given(preference_systems())
    def test_preference_system(self, ps):
        assert from_dict(to_dict(ps)) == ps

    @settings(max_examples=30, deadline=None)
    @given(weighted_instances())
    def test_weight_table(self, inst):
        wt, _ = inst
        back = from_dict(to_dict(wt))
        assert back.n == wt.n and back.m == wt.m
        for i, j in wt.edges():
            assert back.weight(i, j) == wt.weight(i, j)  # exact floats

    @settings(max_examples=20, deadline=None)
    @given(preference_systems())
    def test_matching(self, ps):
        matching, _ = solve_modified_bmatching(ps)
        back = from_dict(to_dict(matching))
        assert back == matching

    def test_file_round_trip(self, tmp_path, small_ps):
        p = tmp_path / "ps.json"
        save_json(small_ps, p)
        assert load_json(p) == small_ps

    def test_self_describing_dispatch(self, small_ps):
        matching, wt = solve_modified_bmatching(small_ps)
        for obj in (small_ps, wt, matching):
            assert type(from_dict(to_dict(obj))) is type(obj)


class TestEdgeCases:
    def test_saturating_quotas(self):
        # b_i = |L_i| for every node (the "degree" quota model)
        ps = PreferenceSystem(
            {0: [1, 2], 1: [0], 2: [0]}, {0: 2, 1: 1, 2: 1}
        )
        back = from_dict(to_dict(ps))
        assert back == ps
        assert all(
            back.quota(i) == len(back.preference_list(i)) for i in back.nodes()
        )

    def test_isolated_nodes_and_empty_lists(self):
        # node 2 is isolated: empty list, quota normalised to 0
        ps = PreferenceSystem({0: [1], 1: [0], 2: []}, {0: 1, 1: 1, 2: 1})
        back = from_dict(to_dict(ps))
        assert back == ps
        assert not back.preference_list(2) and back.quota(2) == 0

    def test_edgeless_instance(self):
        ps = PreferenceSystem({0: [], 1: []}, 1)
        back = from_dict(to_dict(ps))
        assert back == ps and back.m == 0


class TestConformanceRepro:
    def _repro(self):
        ps = PreferenceSystem({0: [1], 1: [0]}, 1)
        return ConformanceRepro(
            instance=ps, seed=3, pipelines=("lic-reference", "lid-fast"),
            mutation="quota-inflate", description="unit fixture",
            divergence_kinds=("matching", "oracle"),
        )

    def test_dict_round_trip(self):
        repro = self._repro()
        back = from_dict(to_dict(repro))
        assert isinstance(back, ConformanceRepro)
        assert back == repro

    def test_file_round_trip(self, tmp_path):
        repro = self._repro()
        p = tmp_path / "repro.json"
        save_json(repro, p)
        assert load_json(p) == repro

    def test_organic_repro_defaults(self):
        # mutation=None (an organic divergence) survives the round trip
        ps = PreferenceSystem({0: [1], 1: [0]}, 1)
        repro = ConformanceRepro(instance=ps)
        back = from_dict(to_dict(repro))
        assert back.mutation is None and back.pipelines == ()

    def test_repro_must_embed_preference_system(self):
        data = to_dict(self._repro())
        data["instance"] = {"type": "matching", "n": 2, "edges": [[0, 1]]}
        with pytest.raises(ValueError, match="preference_system"):
            from_dict(data)

    @settings(max_examples=15, deadline=None)
    @given(preference_systems())
    def test_arbitrary_instances_embed(self, ps):
        repro = ConformanceRepro(instance=ps, divergence_kinds=("matching",))
        assert from_dict(to_dict(repro)) == repro


class TestErrors:
    def test_unknown_type_tag(self):
        with pytest.raises(ValueError, match="unknown"):
            from_dict({"type": "sandwich"})

    def test_unserialisable_object(self):
        with pytest.raises(TypeError):
            to_dict(42)
