"""Tests for rng management and validation helpers."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, spawn_rng
from repro.utils.validation import (
    check_nonnegative_int,
    check_positive_int,
    check_probability,
)


class TestRng:
    def test_same_labels_same_stream(self):
        a = spawn_rng(42, "x", "y").random(5)
        b = spawn_rng(42, "x", "y").random(5)
        assert np.array_equal(a, b)

    def test_different_labels_differ(self):
        a = spawn_rng(42, "x").random(5)
        b = spawn_rng(42, "y").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = spawn_rng(1, "x").random(5)
        b = spawn_rng(2, "x").random(5)
        assert not np.array_equal(a, b)

    def test_none_seed_gives_entropy(self):
        a = spawn_rng(None).random(3)
        b = spawn_rng(None).random(3)
        assert not np.array_equal(a, b)

    def test_factory_make_many(self):
        f = RngFactory(7)
        gens = f.make_many("node", ["a", "b"])
        assert set(gens) == {"a", "b"}
        assert gens["a"].random() != gens["b"].random()

    def test_factory_child_independent(self):
        f = RngFactory(7)
        c1, c2 = f.child("x"), f.child("y")
        assert c1.seed != c2.seed
        assert RngFactory(None).child("x").seed is None

    def test_repr(self):
        assert "7" in repr(RngFactory(7))


class TestValidation:
    def test_positive_int(self):
        assert check_positive_int(3, "x") == 3
        for bad in (0, -1, 1.5, True):
            with pytest.raises(ValueError):
                check_positive_int(bad, "x")

    def test_nonnegative_int(self):
        assert check_nonnegative_int(0, "x") == 0
        with pytest.raises(ValueError):
            check_nonnegative_int(-1, "x")

    def test_probability(self):
        assert check_probability(0.5, "p") == 0.5
        assert check_probability(0, "p") == 0.0
        with pytest.raises(ValueError):
            check_probability(1.01, "p")
