"""Unit and property tests for the satisfaction metric (paper §3)."""

import math

import pytest
from hypothesis import given, settings

from repro.core.lic import solve_modified_bmatching
from repro.core.satisfaction import (
    connection_list,
    delta_full,
    delta_static,
    full_satisfaction,
    lemma1_bound,
    lemma1_worst_case,
    static_dynamic_split,
    static_satisfaction,
)
from repro.core.preferences import PreferenceSystem

from repro.testing.strategies import preference_systems


class TestFormulas:
    def test_empty_connections(self, small_ps):
        assert full_satisfaction(small_ps, 1, []) == 0.0
        assert static_satisfaction(small_ps, 1, []) == 0.0

    def test_top_choices_give_satisfaction_one(self):
        # node 0: L=[1,2], b=2, connected to both -> S = 1
        ps = PreferenceSystem({0: [1, 2], 1: [0, 2], 2: [0, 1]}, 2)
        assert full_satisfaction(ps, 0, [1, 2]) == pytest.approx(1.0)

    def test_paper_example_figure1(self):
        """The worked example of Figure 1: b_i=4, ranks {0,1,4,6}, L_i=14.

        S_i = 1 - (1-1)/ (4*14) - ... = c/b - Σ(R-Q)/(bL)
            = 1 - (0-0 + 1-1 + 4-2 + 6-3)/(4*14) = 1 - 5/56 = 0.9107...

        The paper prints 0.893 for its (unshown) list; here we verify the
        formula against a hand computation with explicit ranks.
        """
        # Build: node 0 with 14 neighbours; connected to ranks 0,1,4,6
        n = 15
        rankings = {0: list(range(1, 15))}
        for j in range(1, 15):
            rankings[j] = [0]
        ps = PreferenceSystem(rankings, {0: 4, **{j: 1 for j in range(1, 15)}})
        conns = [rankings[0][r] for r in (0, 1, 4, 6)]
        expected = 1.0 - (0 - 0 + 1 - 1 + 4 - 2 + 6 - 3) / (4 * 14)
        assert full_satisfaction(ps, 0, conns) == pytest.approx(expected)

    def test_single_connection_rank_penalty(self):
        # node 0: L=[1,2,3], b=1; connecting to rank-2 neighbour
        rankings = {0: [1, 2, 3], 1: [0], 2: [0], 3: [0]}
        ps = PreferenceSystem(rankings, 1)
        # S = 1/1 + 0 - 2/(1*3)
        assert full_satisfaction(ps, 0, [3]) == pytest.approx(1 - 2 / 3)

    def test_rejects_overfull(self, small_ps):
        with pytest.raises(ValueError, match="quota"):
            full_satisfaction(small_ps, 0, [1, 2])  # b_0 = 1

    def test_isolated_node(self):
        ps = PreferenceSystem({0: [1], 1: [0], 2: []}, 1)
        assert full_satisfaction(ps, 2, []) == 0.0
        with pytest.raises(ValueError, match="isolated"):
            full_satisfaction(ps, 2, [0])


class TestDeltas:
    def test_delta_static_matches_formula(self, small_ps):
        # node 3: L=[1,2,4] (len 3), b=2; delta for j=2 (rank 1)
        assert delta_static(small_ps, 3, 2) == pytest.approx((1 - 1 / 3) / 2)

    def test_delta_full_adds_dynamic_term(self, small_ps):
        d0 = delta_full(small_ps, 3, 2, q=0)
        d1 = delta_full(small_ps, 3, 2, q=1)
        assert d1 - d0 == pytest.approx(1 / (2 * 3))
        assert d0 == pytest.approx(delta_static(small_ps, 3, 2))

    def test_delta_full_rank_range(self, small_ps):
        with pytest.raises(ValueError):
            delta_full(small_ps, 3, 2, q=2)  # b_3 = 2
        with pytest.raises(ValueError):
            delta_full(small_ps, 3, 2, q=-1)

    def test_connection_list_order(self, small_ps):
        assert connection_list(small_ps, 3, [4, 1]) == [1, 4]
        assert connection_list(small_ps, 3, [4, 2, 1]) == [1, 2, 4]


class TestLemma1:
    @pytest.mark.parametrize("b,ell", [(1, 1), (1, 5), (2, 5), (3, 7), (4, 4), (10, 30)])
    def test_worst_case_closed_forms(self, b, ell):
        s_static, s_dynamic = lemma1_worst_case(b, ell)
        assert s_static == pytest.approx((b + 1) / (2 * ell))
        assert s_dynamic == pytest.approx((b - 1) / (2 * ell))
        ratio = s_static / (s_static + s_dynamic)
        assert ratio == pytest.approx(lemma1_bound(b))

    def test_bound_decreasing_in_b(self):
        bounds = [lemma1_bound(b) for b in range(1, 10)]
        assert bounds == sorted(bounds, reverse=True)
        assert bounds[0] == pytest.approx(1.0)
        assert math.isclose(lemma1_bound(10**6), 0.5, rel_tol=1e-5)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            lemma1_worst_case(3, 2)
        with pytest.raises(ValueError):
            lemma1_bound(0)


@settings(max_examples=50, deadline=None)
@given(preference_systems())
def test_properties_on_greedy_matchings(ps):
    """Satisfaction identities on the LIC matching of random instances."""
    matching, wt = solve_modified_bmatching(ps)
    matching.validate(ps)
    total_static = 0.0
    for i in ps.nodes():
        conns = matching.connections(i)
        s = full_satisfaction(ps, i, conns)
        # range (eq. 1 analysis)
        assert -1e-12 <= s <= 1.0 + 1e-12
        # decomposition S = S^s + S^d  (eq. 7)
        s_static, s_dynamic = static_dynamic_split(ps, i, conns)
        assert s == pytest.approx(s_static + s_dynamic)
        assert s_static == pytest.approx(static_satisfaction(ps, i, conns))
        # S = Σ ΔS with final connection ranks (eq. 4 / eq. 1 derivation)
        ordered = connection_list(ps, i, conns)
        if ordered:
            recomposed = sum(delta_full(ps, i, j, q) for q, j in enumerate(ordered))
            assert s == pytest.approx(recomposed)
        # Lemma 1 per-node: static part is at least ½(1+1/b) of the total
        if s > 0:
            assert s_static / s >= lemma1_bound(ps.quota(i)) - 1e-9
        total_static += s_static
    # eq. 9 consistency: Σ_i S̄_i == total matched weight
    assert total_static == pytest.approx(matching.total_weight(wt))
