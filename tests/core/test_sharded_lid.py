"""The sharded LID engine: partitioned waves must replay the fast engine.

Three tiers of pinning, mirroring the module's correctness argument:

- ``shards=1`` is **bit-identical** to ``lid_matching_fast`` — matching,
  per-node message statistics, metric counters, probe trajectory;
- any ``shards=k`` produces the **identical matching** (the locked edge
  set is schedule-invariant, Lemmas 3–6), while message statistics may
  legitimately differ;
- the execution substrates are interchangeable: list kernel vs array
  kernel, serial executor vs multiprocessing workers — all bit-identical
  to each other for fixed ``(instance, shards)``.
"""

import warnings

import numpy as np
import pytest

from repro.core.backend import get_backend
from repro.core.fast import FastInstance
from repro.core.fast_lid import _directed_layout, lid_matching_fast
from repro.core.lid import run_lid, solve_lid
from repro.core.preferences import PreferenceSystem
from repro.core.sharded_lid import (
    NUMBA_AVAILABLE,
    ShardedLidResult,
    partition_nodes,
    sharded_lid_matching,
    warm_jit_kernels,
)
from repro.core.weights import satisfaction_weights
from repro.telemetry.probes import ConvergenceProbe
from repro.telemetry.spans import Telemetry
from repro.testing.strategies import random_ps


def _assert_bit_identical(ref, sharded):
    """Every observable of the fast engine, field for field."""
    assert sharded.matching.edge_set() == ref.matching.edge_set()
    assert np.array_equal(sharded.props_sent, ref.props_sent)
    assert np.array_equal(sharded.rejs_sent, ref.rejs_sent)
    assert sharded.late_messages == ref.late_messages
    assert sharded.metrics.sent_by_kind == ref.metrics.sent_by_kind
    assert sharded.metrics.delivered_by_kind == ref.metrics.delivered_by_kind
    assert sharded.metrics.sent_by_node == ref.metrics.sent_by_node
    assert sharded.metrics.received_by_node == ref.metrics.received_by_node
    assert sharded.metrics.events == ref.metrics.events
    assert sharded.metrics.end_time == ref.metrics.end_time
    assert sharded.metrics.max_depth == ref.metrics.max_depth


class TestSingleShardBitIdentity:
    @pytest.mark.parametrize("seed", range(4))
    def test_k1_replays_fast_engine(self, seed):
        ps = random_ps(60, 0.12, 3, seed=seed, ensure_edges=True)
        ref = lid_matching_fast(ps)
        res = sharded_lid_matching(ps, shards=1)
        assert isinstance(res, ShardedLidResult)
        assert res.shards == 1
        assert res.cut_messages == 0  # no boundary to cross
        _assert_bit_identical(ref, res)

    @pytest.mark.parametrize("interval", [1.0, 2.5])
    def test_k1_probe_trajectory_bit_identical(self, interval):
        ps = random_ps(50, 0.15, 3, seed=2, ensure_edges=True)
        p_ref = ConvergenceProbe(interval)
        p_sh = ConvergenceProbe(interval)
        lid_matching_fast(ps, probe=p_ref)
        sharded_lid_matching(ps, shards=1, probe=p_sh)
        assert p_sh.samples == p_ref.samples

    def test_k1_array_kernel_also_bit_identical(self):
        ps = random_ps(40, 0.2, 3, seed=7, ensure_edges=True)
        ref = lid_matching_fast(ps)
        res = sharded_lid_matching(ps, shards=1, _kernel="arrays")
        _assert_bit_identical(ref, res)


class TestMultiShardMatchingInvariance:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("shards", [2, 3, 5])
    def test_matching_equals_reference_lid(self, seed, shards):
        ps = random_ps(45, 0.15, 3, seed=seed, ensure_edges=True)
        wt = satisfaction_weights(ps)
        ref = run_lid(wt, ps.quotas)
        res = sharded_lid_matching(ps, shards=shards)
        assert res.shards == shards
        assert res.matching.edge_set() == ref.matching.edge_set()

    def test_cut_traffic_flows_on_connected_instances(self):
        ps = random_ps(60, 0.2, 3, seed=1, ensure_edges=True)
        res = sharded_lid_matching(ps, shards=3)
        assert res.cut_messages > 0
        # per-shard processed counts account for every delivery
        assert sum(s["processed"] for s in res.shard_stats) == sum(
            res.metrics.delivered_by_kind.values()
        )
        assert sum(s["late"] for s in res.shard_stats) == res.late_messages
        assert [s["shard"] for s in res.shard_stats] == [0, 1, 2]

    def test_shards_clamped_to_n(self):
        ps = random_ps(8, 0.5, 2, seed=0, ensure_edges=True)
        res = sharded_lid_matching(ps, shards=64)
        assert res.shards <= ps.n
        ref = lid_matching_fast(ps)
        assert res.matching.edge_set() == ref.matching.edge_set()


class TestKernelEquivalence:
    @pytest.mark.parametrize("shards", [1, 3])
    def test_array_kernel_matches_list_kernel(self, shards):
        ps = random_ps(55, 0.15, 3, seed=3, ensure_edges=True)
        a = sharded_lid_matching(ps, shards=shards, _kernel="arrays")
        b = sharded_lid_matching(ps, shards=shards, _kernel="list")
        _assert_bit_identical(b, a)
        assert a.cut_messages == b.cut_messages
        assert [s["processed"] for s in a.shard_stats] == [
            s["processed"] for s in b.shard_stats
        ]

    def test_jit_true_without_numba_warns_and_falls_back(self):
        if NUMBA_AVAILABLE:
            pytest.skip("numba installed: the jit path is exercised directly")
        ps = random_ps(20, 0.3, 2, seed=0, ensure_edges=True)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            res = sharded_lid_matching(ps, shards=2, jit=True)
        assert res.jit is False
        assert any(
            issubclass(w.category, RuntimeWarning) and "numba" in str(w.message)
            for w in caught
        )
        assert warm_jit_kernels() is False
        with pytest.raises(ValueError, match="requires numba"):
            sharded_lid_matching(ps, shards=2, _kernel="jit")

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
    def test_jit_kernel_bit_identical(self):
        assert warm_jit_kernels() is True
        ps = random_ps(55, 0.15, 3, seed=3, ensure_edges=True)
        a = sharded_lid_matching(ps, shards=3, _kernel="jit")
        b = sharded_lid_matching(ps, shards=3, _kernel="list")
        assert a.jit is True
        _assert_bit_identical(b, a)


class TestMultiprocessingExecutor:
    def test_workers_match_serial_bit_for_bit(self):
        ps = random_ps(80, 0.1, 3, seed=1, ensure_edges=True)
        serial = sharded_lid_matching(ps, shards=3, workers=0)
        parallel = sharded_lid_matching(ps, shards=3, workers=2)
        _assert_bit_identical(serial, parallel)
        assert parallel.cut_messages == serial.cut_messages
        assert [s["processed"] for s in parallel.shard_stats] == [
            s["processed"] for s in serial.shard_stats
        ]

    def test_workers_probe_matches_serial(self):
        ps = random_ps(40, 0.2, 2, seed=4, ensure_edges=True)
        p_ser = ConvergenceProbe(1.0)
        p_par = ConvergenceProbe(1.0)
        sharded_lid_matching(ps, shards=2, workers=0, probe=p_ser)
        sharded_lid_matching(ps, shards=2, workers=2, probe=p_par)
        assert p_par.samples == p_ser.samples


class TestProbeAndTelemetry:
    def test_multi_shard_probe_final_state_consistent(self):
        ps = random_ps(50, 0.15, 3, seed=6, ensure_edges=True)
        probe = ConvergenceProbe(1.0)
        res = sharded_lid_matching(ps, shards=3, probe=probe)
        final = probe.final()
        assert final.finished_nodes == ps.n
        assert final.outstanding_props == 0
        assert final.locks == 2 * res.matching.size()
        assert final.props_sent == int(res.props_sent.sum())
        assert final.rejs_sent == int(res.rejs_sent.sum())
        ticks = [s.t for s in probe.samples]
        assert ticks == sorted(ticks)

    def test_per_shard_spans_recorded(self):
        ps = random_ps(40, 0.2, 3, seed=0, ensure_edges=True)
        tel = Telemetry()
        with tel.span("cell"):
            res = sharded_lid_matching(ps, shards=2, telemetry=tel)
        paths = [r.path for r in tel.records()]
        assert "cell/partition" in paths
        assert "cell/sim_loop/shard0" in paths
        assert "cell/sim_loop/shard1" in paths
        assert "cell/sim_loop/reconcile" in paths
        # engine-level phase dict still reports the top-level phases
        assert {"build_weights", "partition", "sim_loop", "extract"} <= set(
            res.metrics.phase_seconds
        )
        assert len(res.shard_stats) == 2
        assert all("wave_ms" in s for s in res.shard_stats)


class TestEdgeCases:
    def test_isolated_nodes_and_empty_lists(self):
        ps = PreferenceSystem(
            {0: [1], 1: [0, 2], 2: [1], 3: []},
            quotas={0: 1, 1: 2, 2: 2, 3: 1},
        )
        ref = lid_matching_fast(ps)
        for k in (1, 2, 8):
            res = sharded_lid_matching(ps, shards=k)
            assert res.matching.edge_set() == ref.matching.edge_set()
        _assert_bit_identical(ref, sharded_lid_matching(ps, shards=1))

    def test_explicit_zero_quota(self):
        ps = PreferenceSystem(
            {0: [1, 2], 1: [0], 2: [0]}, quotas={0: 2, 1: 1, 2: 1}
        )
        ref = lid_matching_fast(ps, quotas=[0, 1, 1])
        for k in (1, 2):
            res = sharded_lid_matching(ps, quotas=[0, 1, 1], shards=k)
            assert res.matching.edge_set() == ref.matching.edge_set()
            assert not any(i == 0 or j == 0 for i, j in res.matching.edge_set())

    def test_edgeless_instance(self):
        ps = PreferenceSystem({0: [], 1: []}, quotas={0: 1, 1: 1})
        res = sharded_lid_matching(ps, shards=3)
        assert res.matching.edge_set() == frozenset()
        assert res.metrics.events == 0
        assert res.metrics.end_time == 0.0

    def test_bad_kernel_override_rejected(self):
        ps = random_ps(10, 0.3, 2, seed=0, ensure_edges=True)
        with pytest.raises(ValueError, match="unknown kernel"):
            sharded_lid_matching(ps, _kernel="cython")


class TestPartitionNodes:
    def test_balances_slots_not_nodes(self):
        # one hub with 12 slots, many leaves with 1 each
        deg = np.array([12] + [1] * 12, dtype=np.int64)
        start = np.zeros(14, dtype=np.int64)
        np.cumsum(deg, out=start[1:])
        bounds = partition_nodes(start, 2)
        assert bounds[0] == 0 and bounds[-1] == 13
        slots = np.diff(start[bounds])
        assert abs(int(slots[0]) - int(slots[1])) <= 12  # hub is indivisible

    @pytest.mark.parametrize("k", [1, 2, 5, 100])
    def test_bounds_are_monotone_and_cover(self, k):
        ps = random_ps(30, 0.2, 3, seed=0, ensure_edges=True)
        start, _, _, _ = _directed_layout(FastInstance.from_preference_system(ps))
        bounds = partition_nodes(start, k)
        assert bounds[0] == 0 and bounds[-1] == ps.n
        assert np.all(np.diff(bounds) >= 0)


class TestBackendWiring:
    def test_sharded_backend_lid(self):
        ps = random_ps(30, 0.2, 3, seed=2, ensure_edges=True)
        be = get_backend("sharded")
        wt = be.build_weights(ps)
        res = be.lid(wt, list(ps.quotas))
        assert isinstance(res, ShardedLidResult)
        assert res.matching.edge_set() == lid_matching_fast(ps).matching.edge_set()

    def test_solve_lid_sharded(self):
        ps = random_ps(30, 0.2, 3, seed=3, ensure_edges=True)
        fast, _ = solve_lid(ps, backend="fast")
        sharded, _ = solve_lid(ps, backend="sharded", shards=2)
        assert sharded.matching.edge_set() == fast.matching.edge_set()

    def test_solve_lid_rejects_shard_kwargs_on_other_backends(self):
        ps = random_ps(10, 0.3, 2, seed=0, ensure_edges=True)
        for kwargs in ({"shards": 2}, {"jit": True}, {"shard_workers": 2}):
            with pytest.raises(ValueError, match="backend='sharded'"):
                solve_lid(ps, backend="fast", **kwargs)
            with pytest.raises(ValueError, match="backend='sharded'"):
                solve_lid(ps, backend="reference", **kwargs)

    def test_solve_lid_sharded_rejects_faults(self):
        ps = random_ps(10, 0.3, 2, seed=0, ensure_edges=True)
        with pytest.raises(ValueError, match="fault-injected"):
            solve_lid(ps, backend="sharded", drop_filter=lambda *a: False)
