"""Unit and property tests for eq.-9 weight tables."""

import pytest
from hypothesis import given, settings

from repro.core.satisfaction import delta_static
from repro.core.weights import WeightTable, edge_key, satisfaction_weights
from repro.utils.validation import InvalidInstanceError

from repro.testing.strategies import preference_systems


class TestWeightTable:
    def test_symmetry_and_lookup(self):
        wt = WeightTable({(0, 1): 2.0, (1, 2): 1.0}, 3)
        assert wt.weight(0, 1) == wt.weight(1, 0) == 2.0
        assert wt.m == 2 and wt.n == 3
        assert wt.has_edge(2, 1) and not wt.has_edge(0, 2)

    def test_rejects_bad_edges(self):
        with pytest.raises(InvalidInstanceError, match="self-loop"):
            WeightTable({(1, 1): 1.0}, 3)
        with pytest.raises(InvalidInstanceError, match="outside"):
            WeightTable({(0, 5): 1.0}, 3)
        with pytest.raises(InvalidInstanceError, match="non-positive"):
            WeightTable({(0, 1): 0.0}, 3)
        with pytest.raises(InvalidInstanceError, match="duplicate"):
            WeightTable.from_edge_weights([(0, 1, 1.0), (1, 0, 2.0)], 2)

    def test_key_total_order_breaks_ties(self):
        wt = WeightTable({(0, 1): 1.0, (0, 2): 1.0, (1, 2): 1.0}, 3)
        keys = [wt.key(0, 1), wt.key(0, 2), wt.key(1, 2)]
        assert len(set(keys)) == 3  # strict order despite equal weights
        assert sorted(keys) == [(1.0, 0, 1), (1.0, 0, 2), (1.0, 1, 2)]

    def test_sorted_edges_descending(self):
        wt = WeightTable({(0, 1): 1.0, (1, 2): 3.0, (0, 2): 2.0}, 3)
        assert wt.sorted_edges() == [(1, 2), (0, 2), (0, 1)]

    def test_weight_list_order(self):
        wt = WeightTable({(0, 1): 1.0, (0, 2): 3.0, (0, 3): 2.0}, 4)
        assert wt.weight_list(0) == [2, 3, 1]
        assert wt.weight_list(1) == [0]

    def test_prefers(self):
        wt = WeightTable({(0, 1): 1.0, (0, 2): 3.0}, 3)
        assert wt.prefers(0, 2, 1)
        assert not wt.prefers(0, 1, 2)

    def test_total_weight(self):
        wt = WeightTable({(0, 1): 1.5, (1, 2): 2.5}, 3)
        assert wt.total_weight([(0, 1), (2, 1)]) == pytest.approx(4.0)

    def test_edge_key_helper(self):
        assert edge_key(2.0, 5, 3) == (2.0, 3, 5)


class TestSatisfactionWeights:
    def test_matches_eq9(self, small_ps):
        wt = satisfaction_weights(small_ps)
        for i, j in small_ps.edges():
            expected = delta_static(small_ps, i, j) + delta_static(small_ps, j, i)
            assert wt.weight(i, j) == pytest.approx(expected)

    def test_exact_mode_agrees(self, small_ps):
        wt_f = satisfaction_weights(small_ps, exact=False)
        wt_e = satisfaction_weights(small_ps, exact=True)
        for i, j in small_ps.edges():
            assert wt_f.weight(i, j) == pytest.approx(wt_e.weight(i, j), abs=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(preference_systems())
    def test_weights_positive_and_bounded(self, ps):
        wt = satisfaction_weights(ps)
        for (i, j), w in wt.items():
            assert w > 0.0
            # each side contributes at most 1/b_v
            assert w <= 1.0 / ps.quota(i) + 1.0 / ps.quota(j) + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(preference_systems())
    def test_top_rank_heaviest_side(self, ps):
        """A node's eq.-9 contribution is monotone in its own ranking."""
        wt = satisfaction_weights(ps)
        for i in ps.nodes():
            lst = ps.preference_list(i)
            contribs = [delta_static(ps, i, j) for j in lst]
            assert contribs == sorted(contribs, reverse=True)
            # wholly determined by rank: strict decrease
            assert all(a > b for a, b in zip(contribs, contribs[1:]))
        assert wt.m == ps.m
