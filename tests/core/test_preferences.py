"""Unit tests for the PreferenceSystem problem model."""

import pytest
from hypothesis import given, settings

from repro.core.preferences import PreferenceSystem
from repro.utils.validation import InvalidInstanceError

from repro.testing.strategies import preference_systems, random_ps


class TestConstruction:
    def test_basic(self, small_ps):
        assert small_ps.n == 5
        assert small_ps.m == 6
        assert small_ps.edges() == ((0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4))

    def test_sequence_rankings(self):
        ps = PreferenceSystem([[1], [0]], 1)
        assert ps.n == 2 and ps.m == 1

    def test_rank_lookup(self, small_ps):
        assert small_ps.rank(1, 0) == 0
        assert small_ps.rank(1, 3) == 1
        assert small_ps.rank(1, 2) == 2
        with pytest.raises(KeyError):
            small_ps.rank(0, 4)

    def test_quota_clamped_to_list_length(self):
        ps = PreferenceSystem({0: [1], 1: [0]}, 5)
        assert ps.quota(0) == 1

    def test_isolated_node_quota_zero(self):
        ps = PreferenceSystem({0: [1], 1: [0], 2: []}, 2)
        assert ps.quota(2) == 0
        assert ps.degree(2) == 0

    def test_uniform_mapping_and_sequence_quotas(self):
        r = {0: [1], 1: [0]}
        assert PreferenceSystem(r, 1).quotas == (1, 1)
        assert PreferenceSystem(r, [1, 1]).quotas == (1, 1)
        assert PreferenceSystem(r, {0: 1, 1: 1}).quotas == (1, 1)

    def test_from_scores(self):
        adj = {0: [1, 2], 1: [0, 2], 2: [0, 1]}
        ps = PreferenceSystem.from_scores(adj, lambda i, j: -abs(i - j), 1)
        # node 0 prefers 1 (closer) over 2
        assert ps.preference_list(0) == (1, 2)
        assert ps.preference_list(2) == (1, 0)

    def test_top(self, small_ps):
        assert small_ps.top(3, 2) == (1, 2)


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(InvalidInstanceError):
            PreferenceSystem({}, 1)

    def test_rejects_non_consecutive_nodes(self):
        with pytest.raises(InvalidInstanceError):
            PreferenceSystem({0: [5], 5: [0]}, 1)

    def test_rejects_self_ranking(self):
        with pytest.raises(InvalidInstanceError, match="ranks itself"):
            PreferenceSystem({0: [0, 1], 1: [0]}, 1)

    def test_rejects_duplicate_ranking(self):
        with pytest.raises(InvalidInstanceError, match="twice"):
            PreferenceSystem({0: [1, 1], 1: [0]}, 1)

    def test_rejects_asymmetric_adjacency(self):
        with pytest.raises(InvalidInstanceError, match="asymmetric"):
            PreferenceSystem({0: [1], 1: []}, 1)

    def test_rejects_unknown_node(self):
        with pytest.raises(InvalidInstanceError, match="unknown"):
            PreferenceSystem({0: [7], 1: [0]}, 1)

    def test_rejects_zero_quota_for_connected_node(self):
        with pytest.raises(InvalidInstanceError, match=">= 1"):
            PreferenceSystem({0: [1], 1: [0]}, {0: 0, 1: 1})

    def test_rejects_missing_quota(self):
        with pytest.raises(InvalidInstanceError, match="missing"):
            PreferenceSystem({0: [1], 1: [0]}, {0: 1})

    def test_rejects_bool_quota(self):
        with pytest.raises(InvalidInstanceError):
            PreferenceSystem({0: [1], 1: [0]}, True)


class TestAccessors:
    def test_b_max(self, small_ps):
        assert small_ps.b_max == 2

    def test_b_max_all_isolated(self):
        ps = PreferenceSystem({0: [], 1: []}, 1)
        assert ps.b_max == 1  # convention: bounds use b_max >= 1

    def test_has_edge_symmetry(self, small_ps):
        for i, j in small_ps.edges():
            assert small_ps.has_edge(i, j) and small_ps.has_edge(j, i)
        assert not small_ps.has_edge(0, 4)

    def test_len_iter(self, small_ps):
        assert len(small_ps) == 5
        assert list(small_ps) == [0, 1, 2, 3, 4]

    def test_equality_and_hash(self, small_ps):
        twin = PreferenceSystem(
            {0: [1, 2], 1: [0, 3, 2], 2: [3, 0, 1], 3: [1, 2, 4], 4: [3]},
            {0: 1, 1: 2, 2: 2, 3: 2, 4: 1},
        )
        assert twin == small_ps
        assert hash(twin) == hash(small_ps)
        other = PreferenceSystem({0: [1], 1: [0]}, 1)
        assert other != small_ps

    def test_repr(self, small_ps):
        assert "n=5" in repr(small_ps)


class TestAcyclicity:
    def test_triangle_rotation_is_cyclic(self, triangle_ps):
        assert not triangle_ps.is_acyclic()

    def test_globally_ranked_is_acyclic(self):
        # all nodes rank by a common global order -> acyclic
        ps = PreferenceSystem.from_scores(
            {0: [1, 2, 3], 1: [0, 2, 3], 2: [0, 1, 3], 3: [0, 1, 2]},
            lambda i, j: -j,  # everyone prefers lower ids
            2,
        )
        assert ps.is_acyclic()

    def test_path_graph_is_acyclic(self):
        ps = PreferenceSystem({0: [1], 1: [0, 2], 2: [1, 3], 3: [2]}, 1)
        assert ps.is_acyclic()

    @settings(max_examples=30, deadline=None)
    @given(preference_systems(max_n=6))
    def test_matches_networkx_oracle(self, ps):
        import networkx as nx

        arcs = ps.preference_cycles_digraph()
        G = nx.DiGraph()
        G.add_nodes_from(arcs)
        for v, outs in arcs.items():
            for w in outs:
                G.add_edge(v, w)
        assert ps.is_acyclic() == nx.is_directed_acyclic_graph(G)

    def test_weight_derived_preferences_acyclic(self):
        # ranking everyone by symmetric scores s(i,j)=s(j,i) cannot cycle
        import itertools

        scores = {}
        for i, j in itertools.combinations(range(6), 2):
            scores[(i, j)] = (i * 7 + j * 13) % 17 + (i + j) / 100.0
        ps = PreferenceSystem.from_scores(
            {i: [j for j in range(6) if j != i] for i in range(6)},
            lambda i, j: scores[(min(i, j), max(i, j))],
            2,
        )
        assert ps.is_acyclic()


class TestRandomHelper:
    def test_random_ps_valid(self):
        for seed in range(5):
            ps = random_ps(12, 0.4, 2, seed)
            assert ps.n == 12
            for i in ps.nodes():
                assert ps.quota(i) <= max(ps.degree(i), 1) or ps.degree(i) == 0
