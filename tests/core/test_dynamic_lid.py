"""Tests for the dynamic (churn-capable) distributed LID protocol.

The key property: after start-up and after *every* join/leave event the
protocol quiesces, locks are symmetric, and the mutual-lock matching
equals the centralised LIC matching of the current overlay.
"""

import numpy as np
import pytest

from repro.core.dynamic_lid import DynamicLidHarness
from repro.core.lic import lic_matching
from repro.core.weights import WeightTable
from repro.distsim import ExponentialLatency, UniformLatency


def random_pref_orders(n, p, rng):
    adj = [[] for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                adj[i].append(j)
                adj[j].append(i)
    orders = []
    for i in range(n):
        neigh = list(adj[i])
        rng.shuffle(neigh)
        orders.append(neigh)
    return orders


def reference_matching(harness: DynamicLidHarness):
    """Centralised LIC on the harness's current overlay (external ids)."""
    nodes = harness.nodes
    weights = {}
    for i in sorted(harness.alive):
        for j in nodes[i].pref_order:
            if i < j and j in harness.alive:
                weights[(i, j)] = nodes[i].my_delta(j) + nodes[j].my_delta(i)
    wt = WeightTable(weights, len(nodes))
    quotas = [
        nodes[k].quota if k in harness.alive else 0 for k in range(len(nodes))
    ]
    return lic_matching(wt, quotas)


def assert_converged_to_greedy(harness):
    assert harness.half_locks() == []
    assert harness.matching().edge_set() == reference_matching(harness).edge_set()


class TestStaticConvergence:
    @pytest.mark.parametrize("seed", range(4))
    def test_startup_reaches_lic(self, seed):
        rng = np.random.default_rng(seed)
        orders = random_pref_orders(14, 0.4, rng)
        h = DynamicLidHarness(orders, [2] * 14, seed=seed)
        h.run_to_quiescence()
        assert_converged_to_greedy(h)

    def test_startup_async_latency(self):
        rng = np.random.default_rng(7)
        orders = random_pref_orders(12, 0.5, rng)
        for latency in (UniformLatency(0.2, 3.0), ExponentialLatency(1.0)):
            h = DynamicLidHarness(orders, [2] * 12, latency=latency, seed=3)
            h.run_to_quiescence()
            assert_converged_to_greedy(h)

    def test_empty_and_tiny(self):
        h = DynamicLidHarness([[1], [0]], [1, 1])
        h.run_to_quiescence()
        assert h.matching().edge_set() == {(0, 1)}


class TestLeaves:
    def test_single_leave(self):
        rng = np.random.default_rng(1)
        orders = random_pref_orders(12, 0.5, rng)
        h = DynamicLidHarness(orders, [2] * 12, seed=1)
        h.run_to_quiescence()
        stats = h.leave(3)
        assert stats.event == "leave" and stats.node == 3
        assert 3 not in h.alive
        assert_converged_to_greedy(h)

    def test_sequential_leaves(self):
        rng = np.random.default_rng(2)
        orders = random_pref_orders(14, 0.45, rng)
        h = DynamicLidHarness(orders, [2] * 14, seed=2)
        h.run_to_quiescence()
        for victim in (0, 5, 9, 13):
            h.leave(victim)
            assert_converged_to_greedy(h)

    def test_leave_unknown_raises(self):
        h = DynamicLidHarness([[1], [0]], [1, 1])
        h.run_to_quiescence()
        with pytest.raises(KeyError):
            h.leave(77)
        h.leave(0)
        with pytest.raises(KeyError):
            h.leave(0)


class TestJoins:
    def test_single_join(self):
        rng = np.random.default_rng(3)
        orders = random_pref_orders(10, 0.5, rng)
        h = DynamicLidHarness(orders, [2] * 10, seed=3)
        h.run_to_quiescence()
        neighbours = [0, 2, 4]
        positions = {j: int(rng.integers(0, len(h.nodes[j].pref_order) + 1))
                     for j in neighbours}
        new_id, stats = h.join(neighbours, quota=2, positions=positions)
        assert new_id == 10 and stats.event == "join"
        assert_converged_to_greedy(h)

    def test_join_validation(self):
        h = DynamicLidHarness([[1], [0]], [1, 1])
        h.run_to_quiescence()
        with pytest.raises(KeyError):
            h.join([9], 1, {9: 0})
        with pytest.raises(ValueError):
            h.join([0], 1, {})


class TestChurnSessions:
    @pytest.mark.parametrize("seed", range(3))
    def test_randomised_session(self, seed):
        rng = np.random.default_rng(100 + seed)
        n0 = 12
        orders = random_pref_orders(n0, 0.45, rng)
        quotas = [int(rng.integers(1, 4)) for _ in range(n0)]
        h = DynamicLidHarness(orders, quotas, seed=seed)
        h.run_to_quiescence()
        assert_converged_to_greedy(h)
        for _ in range(12):
            alive = sorted(h.alive)
            if rng.random() < 0.45 and len(alive) > 4:
                h.leave(int(rng.choice(alive)))
            else:
                k = min(int(rng.integers(1, 5)), len(alive))
                neigh = [int(x) for x in rng.choice(alive, size=k, replace=False)]
                positions = {
                    j: int(rng.integers(0, len(h.nodes[j].pref_order) + 1))
                    for j in neigh
                }
                h.join(neigh, quota=int(rng.integers(1, 4)), positions=positions)
            assert_converged_to_greedy(h)

    def test_session_under_async_latency(self):
        rng = np.random.default_rng(42)
        orders = random_pref_orders(10, 0.5, rng)
        h = DynamicLidHarness(
            orders, [2] * 10, latency=UniformLatency(0.3, 2.5), seed=5
        )
        h.run_to_quiescence()
        h.leave(2)
        assert_converged_to_greedy(h)
        neigh = sorted(h.alive)[:3]
        positions = {j: 0 for j in neigh}
        h.join(neigh, quota=2, positions=positions)
        assert_converged_to_greedy(h)

    def test_message_accounting_per_event(self):
        rng = np.random.default_rng(8)
        orders = random_pref_orders(12, 0.4, rng)
        h = DynamicLidHarness(orders, [2] * 12, seed=8)
        startup = h.run_to_quiescence()
        assert startup.messages > 0
        stats = h.leave(1)
        # repair cost is local: far fewer messages than the full start-up
        assert 0 < stats.messages < startup.messages


class TestFuzzing:
    """Hypothesis-driven churn sessions: arbitrary event sequences and
    latency regimes must always quiesce to the LIC matching."""

    from hypothesis import given, settings, strategies as st

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(0, 2**31 - 1),
        st.lists(st.tuples(st.booleans(), st.integers(0, 2**31 - 1)),
                 min_size=1, max_size=6),
        st.sampled_from(["unit", "uniform", "exp"]),
    )
    def test_random_sessions_converge(self, seed, events, latency_kind):
        import numpy as np
        from repro.distsim import ExponentialLatency, UniformLatency

        latency = {
            "unit": None,
            "uniform": UniformLatency(0.3, 2.0),
            "exp": ExponentialLatency(0.8),
        }[latency_kind]
        rng = np.random.default_rng(seed)
        orders = random_pref_orders(8, 0.5, rng)
        quotas = [int(rng.integers(1, 3)) for _ in range(8)]
        h = DynamicLidHarness(orders, quotas, latency=latency, seed=seed % 1000)
        h.run_to_quiescence()
        assert_converged_to_greedy(h)
        for is_leave, evseed in events:
            ev_rng = np.random.default_rng(evseed)
            alive = sorted(h.alive)
            if is_leave and len(alive) > 3:
                h.leave(int(ev_rng.choice(alive)))
            else:
                k = min(int(ev_rng.integers(1, 4)), len(alive))
                neigh = [int(x) for x in ev_rng.choice(alive, size=k, replace=False)]
                positions = {
                    j: int(ev_rng.integers(0, len(h.nodes[j].pref_order) + 1))
                    for j in neigh
                }
                h.join(neigh, quota=int(ev_rng.integers(1, 3)), positions=positions)
            assert_converged_to_greedy(h)
