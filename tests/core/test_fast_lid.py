"""Differential suite: the round-batched LID engine vs the simulator.

``lid_matching_fast`` claims to replay the *exact* schedule of
``run_lid`` under the default channels (reliable FIFO unit latency) —
not just the same matching, but the same per-node message statistics
and round counts.  These tests pin that claim across hypothesis-
generated instances, a seeded random grid, and hand-built edge cases
(empty graphs, zero quotas, isolated nodes, tied weights).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fast_lid import FastLidResult, lid_matching_fast
from repro.core.lid import run_lid, solve_lid
from repro.core.weights import WeightTable, satisfaction_weights

from repro.testing.strategies import preference_systems, random_ps, weighted_instances


def assert_replays_reference(wt: WeightTable, quotas) -> FastLidResult:
    """Run both engines and require bit-identical observables."""
    ref = run_lid(wt, quotas)
    fast = lid_matching_fast(wt, quotas)
    assert fast.matching.edge_set() == ref.matching.edge_set()
    assert list(fast.props_sent) == [node.props_sent for node in ref.nodes]
    assert list(fast.rejs_sent) == [node.rejs_sent for node in ref.nodes]
    assert fast.prop_messages == ref.prop_messages
    assert fast.rej_messages == ref.rej_messages
    assert fast.rounds == ref.rounds
    assert fast.causal_rounds == ref.causal_rounds
    assert fast.late_messages == ref.late_messages
    assert fast.metrics.sent_by_kind == ref.metrics.sent_by_kind
    assert fast.metrics.delivered_by_kind == ref.metrics.delivered_by_kind
    assert fast.metrics.sent_by_node == ref.metrics.sent_by_node
    assert fast.metrics.received_by_node == ref.metrics.received_by_node
    assert fast.metrics.events == ref.metrics.events
    assert fast.metrics.end_time == ref.metrics.end_time
    assert fast.metrics.max_depth == ref.metrics.max_depth
    return fast


class TestHypothesisDifferential:
    @settings(max_examples=100, deadline=None)
    @given(weighted_instances())
    def test_arbitrary_weight_tables(self, inst):
        wt, quotas = inst
        assert_replays_reference(wt, quotas)

    @settings(max_examples=60, deadline=None)
    @given(preference_systems())
    def test_eq9_weight_tables(self, ps):
        assert_replays_reference(satisfaction_weights(ps), list(ps.quotas))

    @settings(max_examples=40, deadline=None)
    @given(weighted_instances(), st.lists(st.integers(0, 3), min_size=8, max_size=8))
    def test_zero_quotas(self, inst, raw_quotas):
        # quota 0 forces an immediate REJ broadcast in round 0 — the
        # trickiest schedule for late-message accounting.
        wt, _ = inst
        assert_replays_reference(wt, raw_quotas[: wt.n])


class TestSeededGridDifferential:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("p", [0.1, 0.4, 0.9])
    @pytest.mark.parametrize("quota", [1, 3])
    def test_random_grid(self, seed, p, quota):
        ps = random_ps(11, p, quota, seed=seed, ensure_edges=True)
        assert_replays_reference(satisfaction_weights(ps), list(ps.quotas))

    @pytest.mark.parametrize("n", [40, 90])
    def test_sparse_larger(self, n):
        ps = random_ps(n, 6.0 / n, 2, seed=n, ensure_edges=True)
        assert_replays_reference(satisfaction_weights(ps), list(ps.quotas))


class TestEdgeCases:
    def test_single_node(self):
        fast = assert_replays_reference(WeightTable({}, 1), [1])
        assert fast.matching.size() == 0
        assert fast.metrics.total_sent == 0

    def test_no_edges(self):
        assert_replays_reference(WeightTable({}, 4), [2, 1, 0, 3])

    def test_two_nodes_mutual(self):
        fast = assert_replays_reference(WeightTable({(0, 1): 1.0}, 2), [1, 1])
        assert fast.matching.edge_set() == {(0, 1)}
        assert fast.prop_messages == 2
        assert fast.rej_messages == 0

    def test_tied_weights(self):
        # all weights equal: the edge order falls back to id tie-breaks
        weights = {(i, j): 1.0 for i in range(5) for j in range(i + 1, 5)}
        assert_replays_reference(WeightTable(weights, 5), [2] * 5)

    def test_star_quota_bottleneck(self):
        weights = {(0, j): float(j) for j in range(1, 7)}
        fast = assert_replays_reference(WeightTable(weights, 7), [1] * 7)
        assert fast.matching.size() == 1

    def test_quota_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="quotas"):
            lid_matching_fast(WeightTable({(0, 1): 1.0}, 2), [1])


class TestSolveLidBackend:
    def test_fast_backend_matches_reference(self):
        ps = random_ps(15, 0.3, 2, seed=3, ensure_edges=True)
        ref, wt_ref = solve_lid(ps)
        fast, wt_fast = solve_lid(ps, backend="fast")
        assert fast.matching.edge_set() == ref.matching.edge_set()
        assert fast.rounds == ref.rounds
        assert fast.metrics.total_sent == ref.metrics.total_sent
        assert wt_fast.edges() == wt_ref.edges()
        for e in wt_ref.edges():
            assert wt_fast.weight(*e) == wt_ref.weight(*e)

    def test_fast_backend_rejects_simulator_knobs(self):
        from repro.distsim.network import UniformLatency
        from repro.distsim.tracing import Trace

        ps = random_ps(6, 0.5, 1, seed=0, ensure_edges=True)
        with pytest.raises(ValueError, match="fast"):
            solve_lid(ps, backend="fast", latency=UniformLatency())
        with pytest.raises(ValueError, match="fast"):
            solve_lid(ps, backend="fast", fifo=False)
        with pytest.raises(ValueError, match="fast"):
            solve_lid(ps, backend="fast", trace=Trace())

    def test_backend_object_api(self):
        from repro.core.backend import get_backend

        ps = random_ps(10, 0.4, 2, seed=7, ensure_edges=True)
        wt = satisfaction_weights(ps)
        ref = get_backend("reference").lid(wt, list(ps.quotas))
        fast = get_backend("fast").lid(wt, list(ps.quotas))
        assert fast.matching.edge_set() == ref.matching.edge_set()
        assert fast.prop_messages == ref.prop_messages
        assert fast.rej_messages == ref.rej_messages

    def test_phase_timers_populated(self):
        ps = random_ps(10, 0.4, 2, seed=1, ensure_edges=True)
        for backend in ("reference", "fast"):
            res, _ = solve_lid(ps, backend=backend)
            assert set(res.metrics.phase_seconds) == {
                "build_weights", "sim_loop", "extract",
            }
            assert all(v >= 0.0 for v in res.metrics.phase_seconds.values())
