"""Interleaved join/leave storms against the dynamic layers.

Two storm subjects, one property each:

- :class:`DynamicLidHarness` — after every burst the distributed
  protocol must still quiesce to the centralised LIC matching of the
  surviving overlay (checked differentially every 10th event and at the
  end of the session);
- :class:`DynamicOverlay` on the fast backend — the
  :class:`WeightCache` must keep *reusing* eq.-9 weights across storm
  events (the whole point of incremental repair), while the maintained
  matching stays equal to a from-scratch solve.
"""

import numpy as np
import pytest

from repro.core.analysis import weighted_blocking_edges
from repro.core.dynamic_lid import DynamicLidHarness
from repro.core.lic import lic_matching
from repro.core.weights import WeightTable, satisfaction_weights
from repro.overlay.peer import Peer
from repro.overlay.scenario import build_scenario


def _random_pref_orders(n, p, rng):
    adj = [[] for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                adj[i].append(j)
                adj[j].append(i)
    orders = []
    for i in range(n):
        neigh = list(adj[i])
        rng.shuffle(neigh)
        orders.append(neigh)
    return orders


def _reference_matching(harness: DynamicLidHarness):
    """Centralised LIC over the harness's surviving overlay."""
    nodes = harness.nodes
    weights = {}
    for i in sorted(harness.alive):
        for j in nodes[i].pref_order:
            if i < j and j in harness.alive:
                weights[(i, j)] = nodes[i].my_delta(j) + nodes[j].my_delta(i)
    wt = WeightTable(weights, len(nodes))
    quotas = [
        nodes[k].quota if k in harness.alive else 0 for k in range(len(nodes))
    ]
    return lic_matching(wt, quotas)


def _assert_harness_at_fixpoint(harness):
    assert harness.half_locks() == []
    assert (
        harness.matching().edge_set() == _reference_matching(harness).edge_set()
    )


class TestHarnessStorms:
    @pytest.mark.parametrize("seed", range(3))
    def test_alternating_storms_requiesce(self, seed):
        rng = np.random.default_rng(300 + seed)
        orders = _random_pref_orders(14, 0.45, rng)
        h = DynamicLidHarness(orders, [2] * 14, seed=seed)
        h.run_to_quiescence()
        _assert_harness_at_fixpoint(h)
        events = 0
        for storm in range(6):
            joining = storm % 2 == 0
            for _ in range(4):
                alive = sorted(h.alive)
                if joining or len(alive) <= 4:
                    k = min(int(rng.integers(2, 5)), len(alive))
                    neigh = [
                        int(x) for x in rng.choice(alive, size=k, replace=False)
                    ]
                    positions = {
                        j: int(rng.integers(0, len(h.nodes[j].pref_order) + 1))
                        for j in neigh
                    }
                    h.join(neigh, quota=2, positions=positions)
                else:
                    h.leave(int(rng.choice(alive)))
                events += 1
                # the protocol itself must quiesce every event; the
                # differential against centralised LIC samples every 10th
                assert h.half_locks() == []
                if events % 10 == 0:
                    _assert_harness_at_fixpoint(h)
        _assert_harness_at_fixpoint(h)


def _assert_overlay_at_fixpoint(dyn):
    ps, matching = dyn.instance()
    wt = satisfaction_weights(ps)
    full = lic_matching(wt, ps.quotas)
    assert matching.edge_set() == full.edge_set()
    assert weighted_blocking_edges(wt, list(ps.quotas), matching) == []


class TestOverlayCacheStorms:
    def test_storm_session_reuses_cached_weights(self):
        sc = build_scenario("geo_latency", 40, seed=11)
        from repro.overlay.churn import DynamicOverlay

        dyn = DynamicOverlay(sc.topology, sc.peers, sc.metric, backend="fast")
        rng = np.random.default_rng(11)
        reused = recomputed = events = 0
        for storm in range(8):
            joining = storm % 2 == 0
            for _ in range(4):
                if joining or dyn.n <= 8:
                    ids = dyn.active_ids()
                    k = min(4, len(ids))
                    neigh = [
                        int(x) for x in rng.choice(ids, size=k, replace=False)
                    ]
                    peer = Peer(
                        peer_id=-1, position=rng.uniform(0, 1, 2), quota=2
                    )
                    _, stats = dyn.join(peer, neigh)
                else:
                    stats = dyn.leave(int(rng.choice(dyn.active_ids())))
                reused += stats.weights_reused
                recomputed += stats.weights_recomputed
                events += 1
                if events % 10 == 0:
                    _assert_overlay_at_fixpoint(dyn)
        _assert_overlay_at_fixpoint(dyn)
        # the cache must be doing real work under storms: a clear
        # majority of eq.-9 weights served without recomputation
        assert reused + recomputed > 0
        frac = reused / (reused + recomputed)
        assert frac >= 0.4, f"cache reuse fraction {frac:.2f} below 0.4"

    def test_reference_backend_never_reuses(self):
        sc = build_scenario("geo_latency", 16, seed=2)
        from repro.overlay.churn import DynamicOverlay

        dyn = DynamicOverlay(
            sc.topology, sc.peers, sc.metric, backend="reference"
        )
        stats = dyn.leave(dyn.active_ids()[0])
        assert stats.weights_reused == 0
        _assert_overlay_at_fixpoint(dyn)
