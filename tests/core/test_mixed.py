"""Tests for mixed adopter/legacy populations."""

import numpy as np
import pytest

from repro.core.lic import lic_matching
from repro.core.mixed import run_mixed_adoption
from repro.core.weights import satisfaction_weights

from repro.testing.strategies import random_ps


class TestFullAdoption:
    def test_equals_plain_lid(self):
        ps = random_ps(20, 0.3, 2, seed=1, ensure_edges=True)
        wt = satisfaction_weights(ps)
        res = run_mixed_adoption(wt, ps.quotas, adopters=range(ps.n))
        assert not res.deadlocked
        assert res.matching.edge_set() == lic_matching(wt, ps.quotas).edge_set()

    def test_never_deadlocks(self):
        for seed in range(6):
            ps = random_ps(15, 0.4, 2, seed=seed, ensure_edges=True)
            wt = satisfaction_weights(ps)
            res = run_mixed_adoption(wt, ps.quotas, adopters=range(ps.n))
            assert not res.deadlocked  # Lemma 5


class TestMixedPopulations:
    def test_legacy_can_deadlock(self):
        """With enough non-conforming peers, communication cycles occur —
        the empirical necessity of the symmetric-weight convention."""
        ps = random_ps(25, 0.35, 3, seed=2, ensure_edges=True)
        wt = satisfaction_weights(ps)
        stalled = 0
        for s in range(5):
            res = run_mixed_adoption(wt, ps.quotas, adopters=[], legacy_seed=s)
            if res.deadlocked:
                stalled += 1
        assert stalled > 0

    def test_partial_matching_is_feasible(self):
        ps = random_ps(25, 0.35, 3, seed=2, ensure_edges=True)
        wt = satisfaction_weights(ps)
        res = run_mixed_adoption(wt, ps.quotas, adopters=range(0, 25, 2), legacy_seed=1)
        res.matching.validate(ps)  # quota-feasible even when stalled

    def test_locks_symmetric_even_in_deadlock(self):
        ps = random_ps(20, 0.4, 2, seed=4, ensure_edges=True)
        wt = satisfaction_weights(ps)
        # extraction raises ProtocolError on asymmetry; reaching here = ok
        res = run_mixed_adoption(wt, ps.quotas, adopters=[], legacy_seed=0)
        assert res.matching.size() >= 0

    def test_adopter_advantage(self):
        """Across seeds, adopters average at least the legacy satisfaction."""
        ps = random_ps(30, 0.3, 3, seed=6, ensure_edges=True)
        wt = satisfaction_weights(ps)
        ad_scores, lg_scores = [], []
        rng = np.random.default_rng(0)
        for s in range(6):
            ad = {int(x) for x in rng.choice(ps.n, size=ps.n // 2, replace=False)}
            res = run_mixed_adoption(wt, ps.quotas, adopters=ad, legacy_seed=s)
            v = res.matching.satisfaction_vector(ps)
            ad_scores.append(np.mean([v[i] for i in ad]))
            lg_scores.append(np.mean([v[i] for i in range(ps.n) if i not in ad]))
        assert np.mean(ad_scores) > np.mean(lg_scores)

    def test_adopter_validation(self):
        ps = random_ps(5, 0.8, 1, seed=0, ensure_edges=True)
        wt = satisfaction_weights(ps)
        with pytest.raises(ValueError, match="outside"):
            run_mixed_adoption(wt, ps.quotas, adopters=[99])
