"""Tests for the future-work variants (paper §7)."""

import pytest
from hypothesis import given, settings

from repro.core.lic import lic_matching
from repro.core.variants import alpha_weight_table, two_phase_lid
from repro.core.weights import satisfaction_weights

from repro.testing.strategies import preference_systems, random_ps


class TestTwoPhase:
    @settings(max_examples=25, deadline=None)
    @given(preference_systems())
    def test_always_feasible(self, ps):
        m = two_phase_lid(ps, top_fraction=0.5)
        m.validate(ps)

    def test_full_fraction_close_to_plain(self):
        ps = random_ps(20, 0.4, 3, seed=2, ensure_edges=True)
        plain = lic_matching(satisfaction_weights(ps), ps.quotas)
        tp = two_phase_lid(ps, top_fraction=1.0)
        # with top_fraction=1 phase 1 already sees the whole graph
        assert tp.total_satisfaction(ps) >= 0.9 * plain.total_satisfaction(ps)

    def test_invalid_fraction(self, small_ps):
        with pytest.raises(ValueError):
            two_phase_lid(small_ps, top_fraction=0.0)
        with pytest.raises(ValueError):
            two_phase_lid(small_ps, top_fraction=1.5)

    def test_lifts_min_satisfaction_sometimes(self):
        """On contention-heavy instances the reservation phase should not
        collapse; sanity: it produces a maximal-ish matching with
        comparable total satisfaction (within a factor 2)."""
        ps = random_ps(30, 0.3, 2, seed=5, ensure_edges=True)
        plain = lic_matching(satisfaction_weights(ps), ps.quotas)
        tp = two_phase_lid(ps, top_fraction=0.5)
        assert tp.total_satisfaction(ps) >= 0.5 * plain.total_satisfaction(ps)


class TestAlphaWeights:
    def test_alpha_one_recovers_eq9(self, small_ps):
        base = satisfaction_weights(small_ps)
        alt = alpha_weight_table(small_ps, alpha=1.0)
        for i, j in small_ps.edges():
            assert alt.weight(i, j) == pytest.approx(base.weight(i, j))

    def test_alpha_changes_weights(self, small_ps):
        alt = alpha_weight_table(small_ps, alpha=3.0)
        base = satisfaction_weights(small_ps)
        diffs = [
            abs(alt.weight(i, j) - base.weight(i, j)) for i, j in small_ps.edges()
        ]
        assert max(diffs) > 0

    def test_invalid_alpha(self, small_ps):
        with pytest.raises(ValueError):
            alpha_weight_table(small_ps, alpha=0.0)

    def test_matchings_feasible_for_all_alpha(self):
        ps = random_ps(15, 0.4, 2, seed=3, ensure_edges=True)
        for alpha in (0.5, 1.0, 2.0, 4.0):
            wt = alpha_weight_table(ps, alpha)
            m = lic_matching(wt, ps.quotas)
            m.validate(ps)
