"""Vectorised kernels must agree exactly with the scalar references."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.fast import (
    FastInstance,
    edge_weight_arrays,
    lic_matching_fast,
    satisfaction_profile_fast,
    satisfaction_weights_fast,
)
from repro.core.lic import lic_matching, solve_modified_bmatching
from repro.core.preferences import PreferenceSystem
from repro.core.weights import satisfaction_weights

from repro.testing.strategies import preference_systems, random_ps, weighted_instances


class TestWeightsFast:
    @settings(max_examples=30, deadline=None)
    @given(preference_systems())
    def test_matches_scalar_weights(self, ps):
        scalar = satisfaction_weights(ps)
        fast = satisfaction_weights_fast(ps)
        assert fast.m == scalar.m
        for i, j in ps.edges():
            assert fast.weight(i, j) == pytest.approx(scalar.weight(i, j), abs=1e-14)

    def test_edge_arrays_shape(self):
        ps = random_ps(20, 0.3, 2, seed=1, ensure_edges=True)
        i_arr, j_arr, w = edge_weight_arrays(ps)
        assert len(i_arr) == len(j_arr) == len(w) == ps.m
        assert (i_arr < j_arr).all()
        assert (w > 0).all()

    def test_same_greedy_result(self):
        ps = random_ps(30, 0.3, 3, seed=2, ensure_edges=True)
        from repro.core.lic import lic_matching

        a = lic_matching(satisfaction_weights(ps), ps.quotas)
        b = lic_matching(satisfaction_weights_fast(ps), ps.quotas)
        assert a.edge_set() == b.edge_set()


class TestSatisfactionFast:
    @settings(max_examples=30, deadline=None)
    @given(preference_systems())
    def test_matches_scalar_profile(self, ps):
        matching, _ = solve_modified_bmatching(ps)
        for kind in ("full", "static"):
            fast = satisfaction_profile_fast(ps, matching, kind)
            slow = matching.satisfaction_vector(ps, kind)
            assert np.allclose(fast, slow, atol=1e-12)

    def test_empty_matching(self):
        ps = random_ps(10, 0.3, 2, seed=3, ensure_edges=True)
        from repro.core.matching import Matching

        fast = satisfaction_profile_fast(ps, Matching(ps.n))
        assert np.allclose(fast, 0.0)

    def test_isolated_nodes_score_zero(self):
        from repro.core.preferences import PreferenceSystem
        from repro.core.matching import Matching

        ps = PreferenceSystem({0: [1], 1: [0], 2: []}, 1)
        out = satisfaction_profile_fast(ps, Matching(3, [(0, 1)]))
        assert out[2] == 0.0 and out[0] == pytest.approx(1.0)

    def test_invalid_kind(self):
        ps = random_ps(5, 0.5, 1, seed=0, ensure_edges=True)
        from repro.core.matching import Matching

        with pytest.raises(ValueError):
            satisfaction_profile_fast(ps, Matching(ps.n), kind="bogus")

    def test_faster_on_large_instance(self):
        """Sanity: the vectorised path is not slower at n=800."""
        import time

        ps = random_ps(800, 0.01, 3, seed=5, ensure_edges=True)
        matching, _ = solve_modified_bmatching(ps)
        t0 = time.perf_counter()
        slow = matching.satisfaction_vector(ps)
        t_slow = time.perf_counter() - t0
        t0 = time.perf_counter()
        fast = satisfaction_profile_fast(ps, matching)
        t_fast = time.perf_counter() - t0
        assert np.allclose(fast, slow)
        assert t_fast < t_slow * 2.0  # never pathological


class TestFastInstance:
    def test_canonical_edge_order(self):
        ps = random_ps(40, 0.2, 3, seed=7, ensure_edges=True)
        fi = FastInstance.from_preference_system(ps)
        assert fi.n == ps.n and fi.m == ps.m
        edges = list(zip(fi.i.tolist(), fi.j.tolist()))
        assert edges == sorted(ps.edges())  # ascending (i, j), i < j
        assert (fi.i < fi.j).all()

    def test_ranks_match_preference_lists(self):
        ps = random_ps(25, 0.3, 2, seed=11, ensure_edges=True)
        fi = FastInstance.from_preference_system(ps)
        for k in range(fi.m):
            i, j = int(fi.i[k]), int(fi.j[k])
            assert fi.ri[k] == ps.rank(i, j)
            assert fi.rj[k] == ps.rank(j, i)
            assert fi.ell[i] == len(ps.preference_list(i))

    def test_weights_bit_identical_to_reference(self):
        ps = random_ps(30, 0.3, 3, seed=13, ensure_edges=True)
        fi = FastInstance.from_preference_system(ps)
        wt = satisfaction_weights(ps)
        for k in range(fi.m):
            # bit-identical, not approx: same IEEE op order as delta_static
            assert fi.w[k] == wt.weight(int(fi.i[k]), int(fi.j[k]))

    def test_sorted_order_matches_weight_table(self):
        ps = random_ps(30, 0.3, 3, seed=17, ensure_edges=True)
        fi = FastInstance.from_preference_system(ps)
        order = fi.sorted_order()
        scanned = [(int(fi.i[k]), int(fi.j[k])) for k in order]
        assert scanned == fi.weight_table().sorted_edges()
        assert fi.sorted_order() is order  # cached

    def test_weight_table_round_trip(self):
        ps = random_ps(20, 0.3, 2, seed=19, ensure_edges=True)
        fi = FastInstance.from_preference_system(ps)
        wt = fi.weight_table()
        assert wt.m == ps.m
        fi2 = FastInstance.from_weight_table(wt, ps.quotas)
        assert np.array_equal(fi.i, fi2.i) and np.array_equal(fi.j, fi2.j)
        assert np.array_equal(fi.w, fi2.w)

    def test_empty_instance(self):
        ps = PreferenceSystem({0: [], 1: []}, 1)
        fi = FastInstance.from_preference_system(ps)
        assert fi.m == 0 and fi.n == 2
        assert lic_matching_fast(fi).size() == 0


def _assert_same_matching(ps, **kwargs):
    ref = lic_matching(satisfaction_weights(ps), ps.quotas)
    fast = lic_matching_fast(ps, **kwargs)
    assert ref.edge_set() == fast.edge_set()


class TestLicMatchingFastDifferential:
    """lic_matching_fast must reproduce the reference edge set exactly.

    Together these hypothesis suites exercise well over 200 generated
    instances, covering the batched rounds, the sequential tail, and
    every forced code-path combination.
    """

    @settings(max_examples=120, deadline=None)
    @given(preference_systems(max_n=10))
    def test_differential_default(self, ps):
        _assert_same_matching(ps)

    @settings(max_examples=60, deadline=None)
    @given(preference_systems(max_n=8))
    def test_differential_pure_sequential(self, ps):
        # max_rounds=0 forces the scalar scan: baseline for the batch rule
        _assert_same_matching(ps, max_rounds=0)

    @settings(max_examples=60, deadline=None)
    @given(preference_systems(max_n=8))
    def test_differential_pure_batched(self, ps):
        # tail_threshold=0 forces batched rounds even on tiny pools
        _assert_same_matching(ps, tail_threshold=0)

    @settings(max_examples=40, deadline=None)
    @given(preference_systems(max_n=8))
    def test_differential_one_round_then_tail(self, ps):
        _assert_same_matching(ps, max_rounds=1)

    @settings(max_examples=40, deadline=None)
    @given(weighted_instances(max_n=8))
    def test_differential_weight_table(self, inst):
        wt, quotas = inst
        ref = lic_matching(wt, quotas)
        fi = FastInstance.from_weight_table(wt, quotas)
        for kwargs in ({}, {"tail_threshold": 0}):
            assert ref.edge_set() == lic_matching_fast(fi, **kwargs).edge_set()

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("quota", [1, 3])
    def test_differential_medium_instances(self, seed, quota):
        ps = random_ps(120, 0.05, quota, seed=seed, ensure_edges=True)
        _assert_same_matching(ps)
        _assert_same_matching(ps, tail_threshold=0)

    def test_quota_override(self):
        ps = random_ps(30, 0.3, 3, seed=23, ensure_edges=True)
        quotas = [1] * ps.n
        ref = lic_matching(satisfaction_weights(ps), quotas)
        fast = lic_matching_fast(ps, quotas)
        assert ref.edge_set() == fast.edge_set()

    def test_respects_quotas(self):
        ps = random_ps(60, 0.2, 2, seed=29, ensure_edges=True)
        m = lic_matching_fast(ps)
        for v in range(ps.n):
            assert m.degree(v) <= ps.quotas[v]
