"""Vectorised kernels must agree exactly with the scalar references."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.fast import (
    edge_weight_arrays,
    satisfaction_profile_fast,
    satisfaction_weights_fast,
)
from repro.core.lic import solve_modified_bmatching
from repro.core.weights import satisfaction_weights

from tests.conftest import preference_systems, random_ps


class TestWeightsFast:
    @settings(max_examples=30, deadline=None)
    @given(preference_systems())
    def test_matches_scalar_weights(self, ps):
        scalar = satisfaction_weights(ps)
        fast = satisfaction_weights_fast(ps)
        assert fast.m == scalar.m
        for i, j in ps.edges():
            assert fast.weight(i, j) == pytest.approx(scalar.weight(i, j), abs=1e-14)

    def test_edge_arrays_shape(self):
        ps = random_ps(20, 0.3, 2, seed=1, ensure_edges=True)
        i_arr, j_arr, w = edge_weight_arrays(ps)
        assert len(i_arr) == len(j_arr) == len(w) == ps.m
        assert (i_arr < j_arr).all()
        assert (w > 0).all()

    def test_same_greedy_result(self):
        ps = random_ps(30, 0.3, 3, seed=2, ensure_edges=True)
        from repro.core.lic import lic_matching

        a = lic_matching(satisfaction_weights(ps), ps.quotas)
        b = lic_matching(satisfaction_weights_fast(ps), ps.quotas)
        assert a.edge_set() == b.edge_set()


class TestSatisfactionFast:
    @settings(max_examples=30, deadline=None)
    @given(preference_systems())
    def test_matches_scalar_profile(self, ps):
        matching, _ = solve_modified_bmatching(ps)
        for kind in ("full", "static"):
            fast = satisfaction_profile_fast(ps, matching, kind)
            slow = matching.satisfaction_vector(ps, kind)
            assert np.allclose(fast, slow, atol=1e-12)

    def test_empty_matching(self):
        ps = random_ps(10, 0.3, 2, seed=3, ensure_edges=True)
        from repro.core.matching import Matching

        fast = satisfaction_profile_fast(ps, Matching(ps.n))
        assert np.allclose(fast, 0.0)

    def test_isolated_nodes_score_zero(self):
        from repro.core.preferences import PreferenceSystem
        from repro.core.matching import Matching

        ps = PreferenceSystem({0: [1], 1: [0], 2: []}, 1)
        out = satisfaction_profile_fast(ps, Matching(3, [(0, 1)]))
        assert out[2] == 0.0 and out[0] == pytest.approx(1.0)

    def test_invalid_kind(self):
        ps = random_ps(5, 0.5, 1, seed=0, ensure_edges=True)
        from repro.core.matching import Matching

        with pytest.raises(ValueError):
            satisfaction_profile_fast(ps, Matching(ps.n), kind="bogus")

    def test_faster_on_large_instance(self):
        """Sanity: the vectorised path is not slower at n=800."""
        import time

        ps = random_ps(800, 0.01, 3, seed=5, ensure_edges=True)
        matching, _ = solve_modified_bmatching(ps)
        t0 = time.perf_counter()
        slow = matching.satisfaction_vector(ps)
        t_slow = time.perf_counter() - t0
        t0 = time.perf_counter()
        fast = satisfaction_profile_fast(ps, matching)
        t_fast = time.perf_counter() - t0
        assert np.allclose(fast, slow)
        assert t_fast < t_slow * 2.0  # never pathological
