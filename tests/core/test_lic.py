"""Unit and property tests for LIC (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.analysis import greedy_certificate, weighted_blocking_edges
from repro.core.lic import (
    lic_matching,
    lic_matching_pool,
    locally_heaviest_edges,
    solve_modified_bmatching,
)
from repro.core.weights import WeightTable

from repro.testing.strategies import preference_systems, random_ps, weighted_instances


class TestSortedScan:
    def test_simple_path(self):
        # path 0-1-2 with w(0,1)=3 > w(1,2)=2, quotas 1
        wt = WeightTable({(0, 1): 3.0, (1, 2): 2.0}, 3)
        m = lic_matching(wt, [1, 1, 1])
        assert m.edge_set() == {(0, 1)}

    def test_quota_two_takes_both(self):
        wt = WeightTable({(0, 1): 3.0, (1, 2): 2.0}, 3)
        m = lic_matching(wt, [1, 2, 1])
        assert m.edge_set() == {(0, 1), (1, 2)}

    def test_star_respects_center_quota(self):
        wt = WeightTable({(0, i): float(i) for i in range(1, 6)}, 6)
        m = lic_matching(wt, [2, 1, 1, 1, 1, 1])
        assert m.edge_set() == {(0, 4), (0, 5)}  # two heaviest spokes

    def test_empty_graph(self):
        wt = WeightTable({}, 4)
        assert lic_matching(wt, [1] * 4).size() == 0

    def test_quota_length_mismatch(self):
        wt = WeightTable({(0, 1): 1.0}, 2)
        with pytest.raises(ValueError, match="quotas length"):
            lic_matching(wt, [1])

    def test_tie_break_by_ids(self):
        # all equal weights: keys order (0,1) < (0,2) < (1,2); scan picks
        # (1,2) first (heaviest key), then (0,1),(0,2) blocked at quota 1
        wt = WeightTable({(0, 1): 1.0, (0, 2): 1.0, (1, 2): 1.0}, 3)
        m = lic_matching(wt, [1, 1, 1])
        assert m.edge_set() == {(1, 2)}


class TestLocallyHeaviest:
    def test_identifies_local_maxima(self):
        wt = WeightTable({(0, 1): 5.0, (1, 2): 1.0, (2, 3): 4.0}, 4)
        pool = set(wt.edges())
        incident = [set() for _ in range(4)]
        for e in pool:
            incident[e[0]].add(e)
            incident[e[1]].add(e)
        lhe = set(locally_heaviest_edges(wt, pool, incident))
        # (0,1) beats (1,2); (2,3) beats (1,2): two local maxima
        assert lhe == {(0, 1), (2, 3)}


class TestPoolConfluence:
    @settings(max_examples=40, deadline=None)
    @given(weighted_instances())
    def test_all_strategies_agree(self, inst):
        """Lemma 4/6 confluence: outcome independent of selection order."""
        wt, quotas = inst
        reference = lic_matching(wt, quotas).edge_set()
        rng = np.random.default_rng(0)
        for strategy in ("heaviest", "lightest", "first", "random"):
            m = lic_matching_pool(wt, quotas, strategy=strategy, rng=rng)
            assert m.edge_set() == reference

    def test_unknown_strategy(self):
        wt = WeightTable({(0, 1): 1.0}, 2)
        with pytest.raises(ValueError, match="unknown strategy"):
            lic_matching_pool(wt, [1, 1], strategy="nope")


class TestCertificates:
    @settings(max_examples=40, deadline=None)
    @given(weighted_instances())
    def test_output_is_greedy_fixpoint(self, inst):
        wt, quotas = inst
        m = lic_matching(wt, quotas)
        assert greedy_certificate(wt, quotas, m)
        assert weighted_blocking_edges(wt, quotas, m) == []

    def test_non_greedy_matching_fails_certificate(self):
        wt = WeightTable({(0, 1): 3.0, (1, 2): 2.0}, 3)
        from repro.core.matching import Matching

        bad = Matching(3, [(1, 2)])  # leaves heavier (0,1) blocking
        assert not greedy_certificate(wt, [1, 1, 1], bad)
        assert weighted_blocking_edges(wt, [1, 1, 1], bad) == [(0, 1)]

    def test_feasibility_checked(self):
        wt = WeightTable({(0, 1): 3.0, (0, 2): 2.0}, 3)
        from repro.core.matching import Matching

        overfull = Matching(3, [(0, 1), (0, 2)])
        assert not greedy_certificate(wt, [1, 1, 1], overfull)


class TestPipeline:
    def test_solve_modified_bmatching(self):
        ps = random_ps(15, 0.4, 2, seed=3)
        matching, wt = solve_modified_bmatching(ps)
        matching.validate(ps)
        assert matching.is_maximal(ps)
        assert greedy_certificate(wt, list(ps.quotas), matching)

    @settings(max_examples=30, deadline=None)
    @given(preference_systems())
    def test_always_feasible_and_maximal(self, ps):
        matching, wt = solve_modified_bmatching(ps)
        matching.validate(ps)
        assert matching.is_maximal(ps)
