"""Unit and property tests for LID (Algorithm 1) on the simulator."""

import pytest
from hypothesis import given, settings

from repro.core.lic import lic_matching
from repro.core.lid import LidNode, run_lid, solve_lid
from repro.core.weights import WeightTable, satisfaction_weights
from repro.distsim import (
    BernoulliLoss,
    ExponentialLatency,
    Trace,
    UniformLatency,
)

from repro.testing.strategies import preference_systems, random_ps, weighted_instances


class TestBasicRuns:
    def test_two_nodes_lock(self):
        wt = WeightTable({(0, 1): 1.0}, 2)
        res = run_lid(wt, [1, 1])
        assert res.matching.edge_set() == {(0, 1)}
        assert res.prop_messages == 2  # one PROP each way
        assert res.rej_messages == 0

    def test_path_rejection_flow(self):
        # 0-1 heavy, 1-2 light, quotas 1: node 2's proposal must be rejected
        wt = WeightTable({(0, 1): 3.0, (1, 2): 2.0}, 3)
        res = run_lid(wt, [1, 1, 1])
        assert res.matching.edge_set() == {(0, 1)}
        assert res.rej_messages >= 1
        node2 = res.nodes[2]
        assert node2.finished and not node2.locked

    def test_isolated_node_finishes(self):
        wt = WeightTable({(0, 1): 1.0}, 3)
        res = run_lid(wt, [1, 1, 1])
        assert res.nodes[2].finished
        assert res.matching.degree(2) == 0

    def test_quota_zero_node(self):
        wt = WeightTable({(0, 1): 1.0, (1, 2): 2.0}, 3)
        res = run_lid(wt, [0, 1, 1])
        assert res.matching.edge_set() == {(1, 2)}
        assert res.nodes[0].finished

    def test_quota_exceeding_degree(self):
        wt = WeightTable({(0, 1): 1.0}, 2)
        res = run_lid(wt, [5, 5])
        assert res.matching.edge_set() == {(0, 1)}


class TestEquivalenceWithLIC:
    @settings(max_examples=40, deadline=None)
    @given(weighted_instances())
    def test_same_edges_sync(self, inst):
        """Lemmas 4 & 6: LID locks exactly the LIC edge set."""
        wt, quotas = inst
        lic = lic_matching(wt, quotas).edge_set()
        lid = run_lid(wt, quotas).matching.edge_set()
        assert lid == lic

    @settings(max_examples=25, deadline=None)
    @given(weighted_instances())
    def test_same_edges_async_nonfifo(self, inst):
        """Schedule independence: any latency model yields the same matching."""
        wt, quotas = inst
        lic = lic_matching(wt, quotas).edge_set()
        for seed, latency in enumerate(
            (UniformLatency(0.1, 5.0), ExponentialLatency(2.0))
        ):
            res = run_lid(wt, quotas, latency=latency, fifo=False, seed=seed)
            assert res.matching.edge_set() == lic

    def test_larger_random_instance(self):
        ps = random_ps(60, 0.15, 3, seed=11)
        res, wt = solve_lid(ps)
        lic = lic_matching(wt, ps.quotas)
        assert res.matching.edge_set() == lic.edge_set()


class TestMessageBounds:
    @settings(max_examples=30, deadline=None)
    @given(weighted_instances())
    def test_prop_and_rej_bounds(self, inst):
        """Without retransmission: ≤1 PROP and ≤1 REJ per directed edge."""
        wt, quotas = inst
        res = run_lid(wt, quotas)
        assert res.prop_messages <= 2 * wt.m
        assert res.rej_messages <= 2 * wt.m
        for i, node in enumerate(res.nodes):
            deg = len(wt.neighbors(i))
            assert node.props_sent <= deg
            assert node.rejs_sent <= deg

    def test_props_in_decreasing_weight_order(self):
        """The weight-list discipline: PROPs leave each node heaviest-first."""
        ps = random_ps(20, 0.3, 2, seed=5)
        wt = satisfaction_weights(ps)
        trace = Trace()
        run_lid(wt, ps.quotas, trace=trace)
        for i in range(ps.n):
            targets = [r.peer for r in trace.sends_from(i, kind="PROP")]
            keys = [wt.key(i, t) for t in targets]
            assert keys == sorted(keys, reverse=True)


class TestTermination:
    @settings(max_examples=30, deadline=None)
    @given(preference_systems())
    def test_all_nodes_finish(self, ps):
        """Lemma 5: LID terminates for every node."""
        res, _ = solve_lid(ps)
        assert all(node.finished for node in res.nodes)

    def test_cyclic_preferences_still_terminate(self, triangle_ps):
        """The instance where best-response oscillates: LID still halts."""
        res, _ = solve_lid(triangle_ps)
        assert all(node.finished for node in res.nodes)
        assert res.matching.size() == 1  # one pair locks, one node left out


class TestRobustnessExtension:
    def test_loss_without_retransmit_may_stall_quietly(self):
        """Faithful LID assumes reliable channels; with loss, nodes can
        wait forever.  The simulator then quiesces with unfinished nodes
        and run_lid surfaces that as a ProtocolError."""
        ps = random_ps(20, 0.3, 2, seed=7)
        wt = satisfaction_weights(ps)
        from repro.utils.validation import ProtocolError

        stalled = 0
        for seed in range(6):
            try:
                run_lid(wt, ps.quotas, drop_filter=BernoulliLoss(0.3), seed=seed)
            except ProtocolError:
                stalled += 1
        assert stalled > 0  # 30% loss on 100+ messages stalls w.h.p.

    def test_retransmission_restores_termination(self):
        ps = random_ps(20, 0.3, 2, seed=7)
        wt = satisfaction_weights(ps)
        for seed in range(4):
            res = run_lid(
                wt,
                ps.quotas,
                drop_filter=BernoulliLoss(0.3),
                retransmit_timeout=3.0,
                seed=seed,
            )
            assert all(node.finished for node in res.nodes)
            res.matching.validate(ps)

    def test_retransmission_preserves_matching_without_loss(self):
        ps = random_ps(15, 0.3, 2, seed=9)
        wt = satisfaction_weights(ps)
        plain = run_lid(wt, ps.quotas).matching.edge_set()
        resil = run_lid(wt, ps.quotas, retransmit_timeout=3.0).matching.edge_set()
        assert plain == resil


class TestValidationAndErrors:
    def test_quota_mismatch(self):
        wt = WeightTable({(0, 1): 1.0}, 2)
        with pytest.raises(ValueError, match="quotas length"):
            run_lid(wt, [1])

    def test_result_accessors(self):
        wt = WeightTable({(0, 1): 1.0}, 2)
        res = run_lid(wt, [1, 1])
        assert res.rounds >= 1.0
        assert res.metrics.total_sent == res.prop_messages + res.rej_messages

    def test_node_repr_state(self):
        node = LidNode([1, 2], 1)
        assert node.quota == 1 and node.weight_list == [1, 2]
        assert not node.finished


class TestRetransmissionPaths:
    """The retry/duplicate-PROP machinery and timer lifecycle."""

    def _two_nodes(self, **kw):
        wt = WeightTable({(0, 1): 1.0}, 2)
        return wt

    def test_retry_duplicate_prop_to_locked_partner_is_answered(self):
        # drop node 0's first PROP: node 1 locks on its own PROP + the
        # retransmitted one, while node 0's timer keeps firing until the
        # re-confirmation arrives.  The `payload == "retry"` path must
        # re-send the lock confirmation instead of flagging an anomaly.
        wt = self._two_nodes()
        first = {"dropped": False}

        def drop_first_prop(msg, rng):
            if msg.src == 0 and msg.kind == "PROP" and not first["dropped"]:
                first["dropped"] = True
                return True
            return False

        res = run_lid(
            wt, [1, 1], drop_filter=drop_first_prop, retransmit_timeout=3.0,
            seed=0,
        )
        assert res.matching.edge_set() == {(0, 1)}
        assert all(n.finished for n in res.nodes)
        assert res.nodes[0].retransmits_sent >= 1
        assert res.nodes[1].anomalies == 0

    def test_retransmits_counted_separately_from_fresh_props(self):
        ps = random_ps(15, 0.3, 2, seed=9)
        wt = satisfaction_weights(ps)
        clean = run_lid(wt, ps.quotas, seed=1)
        lossy = run_lid(
            wt, ps.quotas, drop_filter=BernoulliLoss(0.3),
            retransmit_timeout=3.0, seed=1,
        )
        # fresh proposals stay within the Lemma 5 per-neighbour-once
        # bound no matter how many retries fire: retries are counted in
        # retransmits_sent / metrics.retransmissions, never props_sent
        m = len(list(wt.edges()))
        assert sum(n.props_sent for n in lossy.nodes) <= 2 * m
        assert lossy.metrics.retransmissions == sum(
            n.retransmits_sent for n in lossy.nodes
        )
        assert lossy.metrics.retransmissions > 0
        assert clean.metrics.retransmissions == 0
        # loss may reorder rejections, but never inflates fresh PROPs
        # beyond a node's neighbourhood
        for i, node in enumerate(lossy.nodes):
            assert node.props_sent <= len(wt.neighbors(i))

    def test_stale_timer_after_resolution_sends_nothing(self):
        # a retransmit timer that fires after its proposal was answered
        # must be a no-op (logical cancellation)
        wt = WeightTable({(0, 1): 3.0, (1, 2): 2.0}, 3)
        res = run_lid(wt, [1, 1, 1], retransmit_timeout=50.0, seed=0)
        # everything resolves within a few time units; the 50s timers
        # fire long after and must not retransmit
        assert res.metrics.retransmissions == 0
        assert all(n.finished for n in res.nodes)
        assert res.nodes[2].retransmits_sent == 0

    def test_finished_node_ignores_timers(self):
        wt = WeightTable({(0, 1): 1.0}, 2)
        res = run_lid(wt, [1, 1], retransmit_timeout=40.0, seed=0)
        assert res.metrics.retransmissions == 0


class TestBackoff:
    def test_exponential_backoff_spaces_out_retries(self):
        # against a crashed-like silent peer the fixed timer fires ~t/T
        # times; exponential backoff must fire far fewer
        ps = random_ps(20, 0.3, 2, seed=7)
        wt = satisfaction_weights(ps)
        fixed = run_lid(
            wt, ps.quotas, drop_filter=BernoulliLoss(0.3),
            retransmit_timeout=3.0, backoff="none", seed=2,
        )
        expo = run_lid(
            wt, ps.quotas, drop_filter=BernoulliLoss(0.3),
            retransmit_timeout=3.0, backoff="exponential", seed=2,
        )
        assert all(n.finished for n in fixed.nodes)
        assert all(n.finished for n in expo.nodes)
        assert fixed.matching.edge_set() == expo.matching.edge_set()

    def test_backoff_none_reproduces_fixed_timer(self):
        node = LidNode([1], 1, retransmit_timeout=5.0, backoff="none")
        node._attempts[1] = 7
        assert node._retx_delay(1) == 5.0

    def test_backoff_delay_doubles_and_caps(self):
        node = LidNode([1], 1, retransmit_timeout=2.0, backoff="exponential",
                       backoff_cap=8.0)
        delays = []
        for k in range(5):
            node._attempts[1] = k
            delays.append(node._retx_delay(1))
        assert delays == [2.0, 4.0, 8.0, 8.0, 8.0]

    def test_validates_backoff_args(self):
        with pytest.raises(ValueError, match="backoff"):
            LidNode([1], 1, retransmit_timeout=5.0, backoff="bogus")
        with pytest.raises(ValueError, match="backoff_cap"):
            LidNode([1], 1, retransmit_timeout=5.0, backoff_cap=1.0)


class TestSolveLidFaultParams:
    def test_fast_backend_rejects_fault_runs(self):
        ps = random_ps(12, 0.4, 2, seed=3, ensure_edges=True)
        with pytest.raises(ValueError, match="backend='reference'"):
            solve_lid(ps, backend="fast", drop_filter=BernoulliLoss(0.1))
        with pytest.raises(ValueError, match="one-round delivery"):
            solve_lid(ps, backend="fast", retransmit_timeout=3.0)

    def test_reference_fallback_runs_fault_injection_end_to_end(self):
        ps = random_ps(12, 0.4, 2, seed=3, ensure_edges=True)
        result, wt = solve_lid(
            ps, backend="reference", drop_filter=BernoulliLoss(0.2),
            retransmit_timeout=3.0, seed=5,
        )
        assert all(n.finished for n in result.nodes)
        result.matching.validate(ps)
        # and the matching equals the loss-free one (unique greedy fixpoint)
        clean, _ = solve_lid(ps, backend="reference", seed=5)
        assert result.matching.edge_set() == clean.matching.edge_set()
