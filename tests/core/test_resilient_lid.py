"""Tests for the resilient LID runtime (crashes, partitions, Byzantine)."""

import pytest

from repro.core.lid import run_lid
from repro.core.resilient_lid import run_resilient_lid
from repro.core.weights import satisfaction_weights
from repro.distsim.failures import (
    BernoulliLoss,
    CrashSchedule,
    LinkFlap,
    PartitionSchedule,
)
from repro.distsim.reliable import BackoffPolicy

from repro.testing.strategies import random_ps


def _instance(n=24, p=0.3, b=2, seed=11):
    ps = random_ps(n, p, b, seed=seed, ensure_edges=True)
    wt = satisfaction_weights(ps)
    return ps, wt, list(ps.quotas)


FAST_BACKOFF = BackoffPolicy(base=3.0, factor=2.0, cap=12.0, jitter=0.1, budget=10)


class TestFaultFree:
    def test_matches_plain_lid_exactly(self):
        ps, wt, quotas = _instance()
        plain = run_lid(wt, quotas, seed=1)
        res = run_resilient_lid(wt, quotas, seed=1)
        assert res.terminated and res.ok
        assert sorted(res.matching.edges()) == sorted(plain.matching.edges())
        assert res.asymmetric_locks == 0
        assert res.suspected_edges == frozenset()
        res.matching.validate(ps)

    def test_deterministic_replay(self):
        ps, wt, quotas = _instance()
        kw = dict(
            seed=5,
            drop_filter=BernoulliLoss(0.2),
            backoff=FAST_BACKOFF,
            heartbeat_interval=1.0,
            suspect_after=5.0,
        )
        a = run_resilient_lid(wt, quotas, crashes=CrashSchedule([(2.0, 0)]), **kw)
        b = run_resilient_lid(wt, quotas, crashes=CrashSchedule([(2.0, 0)]), **kw)
        assert sorted(a.matching.edges()) == sorted(b.matching.edges())
        assert a.metrics.events == b.metrics.events
        assert a.metrics.retransmissions == b.metrics.retransmissions

    def test_phase_attribution_matches_other_engines(self):
        # parity with run_lid / lid_matching_fast: the resilient runtime
        # attributes wall time to the same three phases (it used to
        # report a single opaque "total")
        ps, wt, quotas = _instance()
        res = run_resilient_lid(wt, quotas, seed=1)
        assert set(res.metrics.phase_seconds) == {
            "build_weights", "sim_loop", "extract",
        }
        assert all(v >= 0.0 for v in res.metrics.phase_seconds.values())

    def test_convergence_probe_on_faulty_run(self):
        from repro.telemetry.probes import ConvergenceProbe

        ps, wt, quotas = _instance()
        probe = ConvergenceProbe()
        res = run_resilient_lid(
            wt, quotas, seed=5,
            drop_filter=BernoulliLoss(0.2),
            backoff=FAST_BACKOFF,
            probe=probe,
        )
        assert res.terminated
        assert len(probe) > 1
        assert probe.final().locks >= probe.samples[0].locks


class TestCrashes:
    def test_survivors_terminate_and_release_crashed_partners(self):
        ps, wt, quotas = _instance()
        res = run_resilient_lid(
            wt,
            quotas,
            seed=2,
            crashes=CrashSchedule([(2.0, 0), (3.0, 5)]),
            backoff=FAST_BACKOFF,
            heartbeat_interval=1.0,
            suspect_after=5.0,
        )
        assert res.live == frozenset(range(ps.n)) - {0, 5}
        assert res.terminated and res.ok
        # nothing in the live matching touches a crashed node
        for i, j in res.matching.edges():
            assert i in res.live and j in res.live
        res.matching.validate(ps)

    def test_unlimited_budget_with_crashes_is_rejected(self):
        _, wt, quotas = _instance()
        with pytest.raises(ValueError, match="budget"):
            run_resilient_lid(
                wt,
                quotas,
                crashes=CrashSchedule([(1.0, 0)]),
                backoff=BackoffPolicy(budget=None),
            )

    def test_detector_off_still_terminates_via_budget(self):
        # without heartbeats/suspicion, exhausted retransmit budgets are
        # the fallback that releases proposals to crashed peers
        ps, wt, quotas = _instance()
        res = run_resilient_lid(
            wt,
            quotas,
            seed=3,
            crashes=CrashSchedule([(2.0, 1)]),
            backoff=BackoffPolicy(base=3.0, cap=6.0, jitter=0.0, budget=2),
            heartbeat_interval=None,
            suspect_after=None,
        )
        assert res.terminated


class TestPartitions:
    def _partitioned(self, seed=4, window=(3.0, 12.0)):
        ps, wt, quotas = _instance()
        half = list(range(ps.n // 2))
        part = PartitionSchedule([(window[0], window[1], [half])])
        res = run_resilient_lid(
            wt,
            quotas,
            seed=seed,
            partitions=part,
            backoff=FAST_BACKOFF,
            heartbeat_interval=1.0,
            suspect_after=4.0,
        )
        return ps, res

    def test_partition_heal_restores_symmetry(self):
        ps, res = self._partitioned()
        assert res.terminated
        assert res.violations == []
        assert res.asymmetric_locks == 0
        res.matching.validate(ps)

    def test_cross_partition_edges_may_be_withdrawn(self):
        ps, res = self._partitioned()
        half = set(range(ps.n // 2))
        for i, j in res.suspected_edges:
            # withdrawals happen across the cut (or toward a crashed peer;
            # there are no crashes here)
            assert (i in half) != (j in half)

    def test_link_flaps_tolerated(self):
        ps, wt, quotas = _instance()
        edges = list(wt.edges())[:3]
        flaps = [
            LinkFlap(e, period=6.0, down_for=2.0, until=30.0) for e in edges
        ]
        res = run_resilient_lid(
            wt, quotas, seed=6, flaps=flaps, backoff=FAST_BACKOFF,
            heartbeat_interval=1.0, suspect_after=5.0,
        )
        assert res.terminated and res.ok
        res.matching.validate(ps)


class TestByzantine:
    def test_honest_nodes_safe_under_mixed_byzantine(self):
        ps, wt, quotas = _instance()
        res = run_resilient_lid(
            wt,
            quotas,
            seed=7,
            byzantine={0: "reject_all", 3: "accept_all"},
            drop_filter=BernoulliLoss(0.1),
            backoff=FAST_BACKOFF,
            heartbeat_interval=1.0,
            suspect_after=5.0,
        )
        assert res.terminated and res.ok
        assert res.honest == frozenset(range(ps.n)) - {0, 3}
        for i, j in res.matching.edges():
            assert i in res.honest and j in res.honest
        res.matching.validate(ps)

    def test_unknown_mode_and_bad_id_rejected(self):
        _, wt, quotas = _instance()
        with pytest.raises(ValueError, match="unknown byzantine"):
            run_resilient_lid(wt, quotas, byzantine={0: "weird"})
        with pytest.raises(ValueError, match="out of range"):
            run_resilient_lid(wt, quotas, byzantine={999: "reject_all"})


class TestValidation:
    def test_quota_length_mismatch(self):
        _, wt, _ = _instance()
        with pytest.raises(ValueError, match="quotas length"):
            run_resilient_lid(wt, [1, 2, 3])
