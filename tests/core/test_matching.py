"""Unit tests for the Matching container."""

import pytest

from repro.core.matching import Matching
from repro.core.weights import satisfaction_weights
from repro.utils.validation import InvalidMatchingError


class TestMutation:
    def test_add_remove(self):
        m = Matching(4)
        m.add(0, 1)
        m.add(2, 3)
        assert m.size() == 2
        m.remove(1, 0)
        assert m.size() == 1
        assert not m.has_edge(0, 1)

    def test_add_duplicate_raises(self):
        m = Matching(3)
        m.add(0, 1)
        with pytest.raises(InvalidMatchingError, match="already"):
            m.add(1, 0)

    def test_self_loop_raises(self):
        with pytest.raises(InvalidMatchingError, match="self-loop"):
            Matching(3).add(1, 1)

    def test_out_of_range_raises(self):
        with pytest.raises(InvalidMatchingError, match="outside"):
            Matching(3).add(0, 3)

    def test_remove_absent_raises(self):
        with pytest.raises(InvalidMatchingError, match="not in matching"):
            Matching(3).remove(0, 1)

    def test_discard(self):
        m = Matching(3, [(0, 1)])
        assert m.discard(0, 1) is True
        assert m.discard(0, 1) is False

    def test_invalid_n(self):
        with pytest.raises(InvalidMatchingError):
            Matching(0)


class TestQueries:
    def test_edges_canonical_sorted(self):
        m = Matching(5, [(3, 1), (0, 4), (2, 0)])
        assert m.edges() == [(0, 2), (0, 4), (1, 3)]
        assert m.edge_set() == frozenset({(0, 2), (0, 4), (1, 3)})

    def test_connections_and_degree(self):
        m = Matching(4, [(0, 1), (0, 2)])
        assert m.connections(0) == frozenset({1, 2})
        assert m.degree(0) == 2 and m.degree(3) == 0

    def test_copy_independent(self):
        m = Matching(3, [(0, 1)])
        c = m.copy()
        c.add(1, 2)
        assert m.size() == 1 and c.size() == 2

    def test_dunder(self):
        m = Matching(3, [(0, 1)])
        assert (0, 1) in m and (1, 2) not in m
        assert len(m) == 1
        assert list(m) == [(0, 1)]
        assert m == Matching(3, [(1, 0)])
        assert m != Matching(3)
        assert hash(m) == hash(Matching(3, [(0, 1)]))
        assert "size=1" in repr(m)

    def test_connection_list_ordered_by_preference(self, small_ps):
        m = Matching(5, [(3, 4), (3, 1)])
        assert m.connection_list(small_ps, 3) == [1, 4]


class TestValidation:
    def test_validate_ok(self, small_ps):
        m = Matching(5, [(0, 1), (2, 3)])
        m.validate(small_ps)
        assert m.is_feasible(small_ps)

    def test_validate_quota_violation(self, small_ps):
        m = Matching(5, [(0, 1), (0, 2)])  # b_0 = 1
        with pytest.raises(InvalidMatchingError, match="quota"):
            m.validate(small_ps)

    def test_validate_phantom_edge(self, small_ps):
        m = Matching(5, [(0, 4)])  # not a potential connection
        with pytest.raises(InvalidMatchingError, match="not a potential"):
            m.validate(small_ps)

    def test_validate_wrong_n(self, small_ps):
        with pytest.raises(InvalidMatchingError, match="instance has"):
            Matching(4).validate(small_ps)

    def test_residual_quota(self, small_ps):
        m = Matching(5, [(1, 3)])
        assert m.residual_quota(small_ps, 1) == 1
        assert m.residual_quota(small_ps, 3) == 1
        assert m.residual_quota(small_ps, 0) == 1

    def test_is_maximal(self, small_ps):
        assert not Matching(5).is_maximal(small_ps)
        m = Matching(5, [(0, 1), (1, 3), (2, 3), (0, 2)])
        # 3 has residual quota 0? b_3=2, used (1,3),(2,3) -> full; 4's only
        # neighbour 3 is saturated -> maximal
        assert m.is_maximal(small_ps)


class TestAccounting:
    def test_total_weight(self, small_ps):
        wt = satisfaction_weights(small_ps)
        m = Matching(5, [(0, 1), (2, 3)])
        assert m.total_weight(wt) == pytest.approx(
            wt.weight(0, 1) + wt.weight(2, 3)
        )

    def test_satisfaction_vector_shape(self, small_ps):
        m = Matching(5, [(0, 1)])
        v = m.satisfaction_vector(small_ps)
        assert v.shape == (5,)
        assert v[0] > 0 and v[4] == 0.0

    def test_total_satisfaction_kinds(self, small_ps):
        m = Matching(5, [(0, 1), (2, 3), (3, 4)])
        full = m.total_satisfaction(small_ps, "full")
        static = m.total_satisfaction(small_ps, "static")
        assert full >= static  # dynamic term is non-negative
