"""The shared truncation contract (satellite of the k-differential suite).

For any round budget ``k``, all four static LID engines must return the
*identical* feasible partial matching plus a consistent
:class:`~repro.core.truncation.TruncationReport`; ``max_rounds=None``
must reproduce today's untruncated outputs byte for byte.  These tests
pin the contract property-style:

- feasibility of the truncated matching at every ``k`` (validates
  against the instance: quotas respected, edges exist);
- blocking pairs — both the rank-based and the eq.-9 weighted count —
  are monotone non-increasing in ``k`` (truncated matchings are nested:
  locks are permanent);
- a budget at or past the natural convergence round is bit-for-bit the
  untruncated run, statistics included, with ``converged=True`` /
  ``released_locks=0`` / weighted blocking pairs ``0`` / ratio ``1.0``;
- the truncated matching is shard-count-invariant and engine-invariant
  (reference simulator ≡ fast waves ≡ sharded ≡ fault-free resilient);
- ``max_rounds=0`` is legal and yields the empty matching;
- the validation layer rejects bools, negatives and mixed
  ``max_rounds``/``max_time`` spellings.
"""

import pytest
from hypothesis import given, settings

from repro.baselines.verify import (
    count_blocking_pairs,
    count_weighted_blocking_pairs,
)
from repro.core.fast import FastInstance
from repro.core.fast_lid import lid_matching_fast
from repro.core.lid import run_lid, solve_lid
from repro.core.resilient_lid import run_resilient_lid
from repro.core.sharded_lid import sharded_lid_matching
from repro.core.truncation import validate_max_rounds
from repro.core.weights import satisfaction_weights
from repro.testing.strategies import (
    InstanceSpec,
    generate_instance,
    preference_systems,
    random_ps,
)

#: budgets spanning empty → partial → safely past quiescence
KS = (0, 1, 2, 3, 5, 1 << 30)


def _instances():
    yield random_ps(24, 0.3, 3, seed=0, ensure_edges=True)
    for family, seed in (("er", 1), ("geo", 2), ("ba", 3)):
        yield generate_instance(InstanceSpec(
            family=family, n=20, preference_model="uniform",
            quota_model="constant", quota=3, seed=seed,
        ))


class TestFeasibilityAndReport:
    @pytest.mark.parametrize("k", KS)
    def test_truncated_matching_is_feasible(self, k):
        for ps in _instances():
            res, _ = solve_lid(ps, backend="fast", max_rounds=k)
            res.matching.validate(ps)  # quotas + edge existence
            t = res.truncation
            assert t.max_rounds == k
            assert 0 <= t.rounds <= k
            assert t.released_locks >= 0
            if t.converged:
                assert t.released_locks == 0

    def test_zero_budget_is_the_empty_matching(self):
        ps = random_ps(16, 0.4, 2, seed=4, ensure_edges=True)
        for backend in ("reference", "fast", "sharded"):
            res, _ = solve_lid(ps, backend=backend, max_rounds=0)
            assert res.matching.size() == 0
            assert res.truncation.rounds == 0
            assert not res.truncation.converged

    def test_report_quality_fields_filled_by_solve_lid(self):
        ps = random_ps(18, 0.35, 2, seed=5, ensure_edges=True)
        res, _ = solve_lid(ps, backend="fast", max_rounds=2)
        t = res.truncation
        assert t.blocking_pairs is not None
        assert t.weighted_blocking_pairs is not None
        assert t.satisfaction is not None
        assert 0.0 <= t.satisfaction_ratio <= 1.0 + 1e-12


class TestMonotonicity:
    def test_blocking_pairs_monotone_in_k_both_notions(self):
        for ps in _instances():
            prev_bp = prev_wbp = None
            for k in KS:
                res, _ = solve_lid(ps, backend="fast", max_rounds=k)
                t = res.truncation
                if prev_bp is not None:
                    assert t.blocking_pairs <= prev_bp
                    assert t.weighted_blocking_pairs <= prev_wbp
                prev_bp, prev_wbp = t.blocking_pairs, t.weighted_blocking_pairs

    def test_matchings_are_nested_in_k(self):
        # the structural fact the monotonicity rests on: locks are
        # permanent, so matching(k) ⊆ matching(k+1)
        for ps in _instances():
            prev = None
            for k in KS:
                res, _ = solve_lid(ps, backend="fast", max_rounds=k)
                edges = res.matching.edge_set()
                if prev is not None:
                    assert prev <= edges
                prev = edges


class TestConvergedBudgetEqualsUntruncated:
    def test_bit_identical_incl_statistics(self):
        for ps in _instances():
            full, _ = solve_lid(ps, backend="fast")
            k = int(full.rounds) + 1
            capped, _ = solve_lid(ps, backend="fast", max_rounds=k)
            assert capped.matching.edge_set() == full.matching.edge_set()
            assert capped.prop_messages == full.prop_messages
            assert capped.rej_messages == full.rej_messages
            assert capped.rounds == full.rounds
            t = capped.truncation
            assert t.converged and t.released_locks == 0
            assert t.weighted_blocking_pairs == 0
            assert t.satisfaction_ratio == pytest.approx(1.0)
            # at the fixpoint the rank-based count equals the raw
            # verifier's — LID is almost-stable, not classically stable
            assert t.blocking_pairs == count_blocking_pairs(ps, full.matching)

    @settings(max_examples=10, deadline=None)
    @given(preference_systems(max_n=7))
    def test_huge_budget_is_untruncated_property(self, ps):
        full, _ = solve_lid(ps, backend="fast")
        capped, _ = solve_lid(ps, backend="fast", max_rounds=1 << 30)
        assert capped.matching.edge_set() == full.matching.edge_set()
        assert capped.truncation.converged


class TestEngineInvariance:
    @pytest.mark.parametrize("k", (1, 2, 4))
    def test_all_engines_agree_per_k(self, k):
        for ps in _instances():
            wt = satisfaction_weights(ps)
            quotas = list(ps.quotas)
            ref = run_lid(wt, quotas, max_rounds=k)
            fast = lid_matching_fast(
                FastInstance.from_preference_system(ps), max_rounds=k
            )
            resil = run_resilient_lid(wt, quotas, max_rounds=k)
            edges = ref.matching.edge_set()
            assert fast.matching.edge_set() == edges
            assert resil.matching.edge_set() == edges
            # the reference/fast pair are message twins even truncated
            assert fast.prop_messages == sum(
                nd.props_sent for nd in ref.nodes
            )
            assert fast.truncation.released_locks == \
                ref.truncation.released_locks

    @pytest.mark.parametrize("shards", (1, 2, 3, 7))
    def test_shard_count_invariance(self, shards):
        for ps in _instances():
            fi = FastInstance.from_preference_system(ps)
            for k in (1, 3, 1 << 30):
                fast = lid_matching_fast(fi, max_rounds=k)
                sharded = sharded_lid_matching(fi, shards=shards, max_rounds=k)
                assert sharded.matching.edge_set() == fast.matching.edge_set()
                assert sharded.truncation.released_locks == \
                    fast.truncation.released_locks


class TestValidation:
    @pytest.mark.parametrize("bad", (True, False, -1, 2.0, "3"))
    def test_rejects_non_int_and_negative(self, bad):
        with pytest.raises(ValueError, match="max_rounds"):
            validate_max_rounds(bad)

    def test_engines_route_through_validation(self):
        ps = random_ps(8, 0.5, 2, seed=0, ensure_edges=True)
        wt = satisfaction_weights(ps)
        quotas = list(ps.quotas)
        with pytest.raises(ValueError, match="max_rounds"):
            run_lid(wt, quotas, max_rounds=-2)
        with pytest.raises(ValueError, match="max_rounds"):
            lid_matching_fast(ps, max_rounds=True)
        with pytest.raises(ValueError, match="max_rounds"):
            sharded_lid_matching(ps, max_rounds=-1)

    def test_resilient_rejects_both_spellings(self):
        ps = random_ps(8, 0.5, 2, seed=0, ensure_edges=True)
        wt = satisfaction_weights(ps)
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_resilient_lid(wt, list(ps.quotas), max_rounds=2, max_time=5.0)


class TestWeightedBlockingPairs:
    def test_zero_exactly_at_convergence(self):
        for ps in _instances():
            res, wt = solve_lid(ps, backend="fast")
            assert count_weighted_blocking_pairs(ps, res.matching, wt) == 0

    def test_positive_under_truncation_on_dense_instance(self):
        ps = random_ps(24, 0.3, 3, seed=0, ensure_edges=True)
        res, wt = solve_lid(ps, backend="fast", max_rounds=1)
        assert not res.truncation.converged
        assert count_weighted_blocking_pairs(ps, res.matching, wt) > 0
