"""The backend selector: reference and fast must be interchangeable."""

import pytest

from repro.core.backend import (
    BACKENDS,
    FastBackend,
    ReferenceBackend,
    ShardedBackend,
    get_backend,
    resolve_backend_name,
)
from repro.core.lic import solve_modified_bmatching

from repro.testing.strategies import random_ps


class TestRegistry:
    def test_names(self):
        assert set(BACKENDS) == {"reference", "fast", "sharded"}

    def test_get_backend_types(self):
        assert isinstance(get_backend(), ReferenceBackend)
        assert isinstance(get_backend("reference"), ReferenceBackend)
        assert isinstance(get_backend("fast"), FastBackend)
        assert isinstance(get_backend("sharded"), ShardedBackend)

    def test_resolve_normalises(self):
        assert resolve_backend_name("FAST") == "fast"
        assert resolve_backend_name(" reference ") == "reference"

    @pytest.mark.parametrize("bad", ["", "numpy", "fastest", None])
    def test_unknown_backend_rejected(self, bad):
        with pytest.raises((ValueError, TypeError)):
            resolve_backend_name(bad)
        if isinstance(bad, str):
            with pytest.raises(ValueError, match="unknown backend"):
                get_backend(bad)


class TestSolveEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_backends_agree(self, seed):
        ps = random_ps(50, 0.15, 3, seed=seed, ensure_edges=True)
        ref = get_backend("reference").solve(ps)
        fast = get_backend("fast").solve(ps)
        assert ref.edge_set() == fast.edge_set()

    def test_solve_modified_bmatching_backend_kwarg(self):
        ps = random_ps(40, 0.2, 2, seed=5, ensure_edges=True)
        ref, _ = solve_modified_bmatching(ps)
        fast, _ = solve_modified_bmatching(ps, backend="fast")
        assert ref.edge_set() == fast.edge_set()

    def test_solve_modified_bmatching_rejects_unknown(self):
        ps = random_ps(10, 0.3, 1, seed=0, ensure_edges=True)
        with pytest.raises(ValueError, match="unknown backend"):
            solve_modified_bmatching(ps, backend="bogus")
