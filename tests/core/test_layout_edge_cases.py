"""Lowering edge cases: ``FastInstance`` and the directed-slot layout.

The sharded engine partitions whatever ``_directed_layout`` produces, so
degenerate inputs — isolated nodes, empty preference lists, explicit
zero quotas, edgeless instances — must lower to well-formed arrays and
then run identically through every engine.
"""

import numpy as np
import pytest

from repro.core.fast import FastInstance
from repro.core.fast_lid import _directed_layout, lid_matching_fast
from repro.core.lid import run_lid
from repro.core.preferences import PreferenceSystem
from repro.core.sharded_lid import partition_nodes, sharded_lid_matching
from repro.core.weights import satisfaction_weights
from repro.testing.strategies import random_ps


def _layout_invariants(fi):
    start, nbr, rev, owner = _directed_layout(fi)
    n, m = fi.n, fi.m
    assert start.shape == (n + 1,)
    assert start[0] == 0 and start[-1] == 2 * m
    assert np.all(np.diff(start) >= 0)
    assert nbr.shape == rev.shape == owner.shape == (2 * m,)
    if m:
        # rev is an involution pairing the two directions of each edge
        s = np.arange(2 * m)
        assert np.array_equal(rev[rev], s)
        assert np.array_equal(owner[rev], nbr)
        assert np.array_equal(nbr[rev], owner)
        # owner matches the CSR offsets
        assert np.array_equal(owner, np.repeat(np.arange(n), np.diff(start)))
    return start, nbr, rev, owner


class TestDirectedLayout:
    def test_edgeless_instance(self):
        ps = PreferenceSystem({0: [], 1: [], 2: []}, quotas={0: 1, 1: 1, 2: 1})
        fi = FastInstance.from_preference_system(ps)
        assert fi.m == 0
        start, nbr, rev, owner = _layout_invariants(fi)
        assert np.array_equal(start, np.zeros(4, dtype=np.int64))
        assert partition_nodes(start, 3).tolist() == sorted(
            partition_nodes(start, 3).tolist()
        )

    def test_isolated_nodes_get_empty_slot_ranges(self):
        ps = PreferenceSystem(
            {0: [2], 1: [], 2: [0, 4], 3: [], 4: [2]},
            quotas={0: 1, 1: 1, 2: 2, 3: 1, 4: 1},
        )
        fi = FastInstance.from_preference_system(ps)
        start, _, _, owner = _layout_invariants(fi)
        assert start[1] - start[0] == 1  # node 0: one slot
        assert start[2] == start[1]  # node 1: isolated
        assert start[4] == start[3]  # node 3: isolated
        assert 1 not in owner and 3 not in owner

    def test_slots_follow_weight_list_order(self):
        ps = random_ps(25, 0.3, 3, seed=11, ensure_edges=True)
        fi = FastInstance.from_preference_system(ps)
        start, nbr, _, _ = _layout_invariants(fi)
        wt = satisfaction_weights(ps)
        for v in range(ps.n):
            assert nbr[start[v]:start[v + 1]].tolist() == wt.weight_list(v)

    def test_partition_respects_empty_tail(self):
        # all edges in the low ids; partitioning must still cover the tail
        ps = PreferenceSystem(
            {0: [1], 1: [0], 2: [], 3: [], 4: [], 5: []},
            quotas={0: 1, 1: 1, 2: 1, 3: 1, 4: 1, 5: 1},
        )
        fi = FastInstance.from_preference_system(ps)
        start, _, _, _ = _directed_layout(fi)
        bounds = partition_nodes(start, 4)
        assert bounds[0] == 0 and bounds[-1] == 6
        assert np.all(np.diff(bounds) >= 0)


class TestEngineAgreementOnDegenerates:
    CASES = {
        "isolated-and-empty": PreferenceSystem(
            {0: [1], 1: [0, 2], 2: [1], 3: []},
            quotas={0: 1, 1: 2, 2: 2, 3: 1},
        ),
        "single-edge": PreferenceSystem(
            {0: [1], 1: [0]}, quotas={0: 1, 1: 1}
        ),
        "star": PreferenceSystem(
            {0: [1, 2, 3, 4], 1: [0], 2: [0], 3: [0], 4: [0]},
            quotas={0: 2, 1: 1, 2: 1, 3: 1, 4: 1},
        ),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_all_engines_agree(self, name):
        ps = self.CASES[name]
        ref = run_lid(satisfaction_weights(ps), ps.quotas)
        fast = lid_matching_fast(ps)
        assert fast.matching.edge_set() == ref.matching.edge_set()
        for k in (1, 2, 3):
            sharded = sharded_lid_matching(ps, shards=k)
            assert sharded.matching.edge_set() == ref.matching.edge_set()

    def test_zero_quota_array_starves_node(self):
        ps = PreferenceSystem(
            {0: [1, 2], 1: [0, 2], 2: [0, 1]}, quotas={0: 2, 1: 2, 2: 2}
        )
        quotas = [2, 0, 2]
        ref = lid_matching_fast(ps, quotas=quotas)
        assert not any(1 in e for e in ref.matching.edge_set())
        for k in (1, 2):
            sharded = sharded_lid_matching(ps, quotas=quotas, shards=k)
            assert sharded.matching.edge_set() == ref.matching.edge_set()

    def test_k1_bit_identity_on_degenerates(self):
        for ps in self.CASES.values():
            ref = lid_matching_fast(ps)
            res = sharded_lid_matching(ps, shards=1)
            assert np.array_equal(res.props_sent, ref.props_sent)
            assert np.array_equal(res.rejs_sent, ref.rejs_sent)
            assert res.metrics.events == ref.metrics.events
