"""Edge-case coverage: special graph shapes and extreme parameters.

These instances have hand-computable outcomes, so they pin the exact
behaviour of the pipeline where random instances only pin invariants.
"""

import pytest

from repro.core import (
    PreferenceSystem,
    greedy_certificate,
    lic_matching,
    run_lid,
    solve_lid,
)
from repro.core.weights import WeightTable


def star(n_leaves: int, quota_center: int) -> PreferenceSystem:
    """Centre 0 with ranked leaves 1..n; every leaf only knows 0."""
    rankings = {0: list(range(1, n_leaves + 1))}
    for leaf in range(1, n_leaves + 1):
        rankings[leaf] = [0]
    quotas = {0: quota_center, **{leaf: 1 for leaf in range(1, n_leaves + 1)}}
    return PreferenceSystem(rankings, quotas)


class TestStars:
    def test_center_takes_top_quota_leaves(self):
        ps = star(6, quota_center=2)
        result, wt = solve_lid(ps)
        # eq. 9: leaf side contributes 1/1 for every leaf (only choice);
        # centre side decreases with rank, so top-2 ranked leaves win
        assert result.matching.connections(0) == frozenset({1, 2})

    def test_all_leaves_when_quota_suffices(self):
        ps = star(4, quota_center=4)
        result, _ = solve_lid(ps)
        assert result.matching.degree(0) == 4

    def test_unmatched_leaves_get_rejected_not_stuck(self):
        ps = star(8, quota_center=3)
        result, _ = solve_lid(ps)
        for leaf in range(4, 9):
            node = result.nodes[leaf]
            assert node.finished and not node.locked


class TestCompleteGraphs:
    def test_complete_quota1_is_weighted_greedy_pairing(self):
        # K4 with distinct weights: greedy pairs (heaviest), then the rest
        wt = WeightTable(
            {(0, 1): 10.0, (0, 2): 1.0, (0, 3): 2.0,
             (1, 2): 3.0, (1, 3): 4.0, (2, 3): 5.0},
            4,
        )
        m = lic_matching(wt, [1] * 4)
        assert m.edge_set() == {(0, 1), (2, 3)}
        assert run_lid(wt, [1] * 4).matching.edge_set() == m.edge_set()

    def test_complete_quota_n_minus_1_takes_everything(self):
        rankings = {i: [j for j in range(5) if j != i] for i in range(5)}
        ps = PreferenceSystem(rankings, 4)
        result, _ = solve_lid(ps)
        assert result.matching.size() == 10  # all of K5
        assert result.matching.total_satisfaction(ps) == pytest.approx(5.0)


class TestDegenerateShapes:
    def test_two_isolated_components(self):
        ps = PreferenceSystem({0: [1], 1: [0], 2: [3], 3: [2]}, 1)
        result, wt = solve_lid(ps)
        assert result.matching.edge_set() == {(0, 1), (2, 3)}
        # components do not exchange messages
        assert result.metrics.sent_by_kind["PROP"] == 4

    def test_single_edge_heterogeneous_quotas(self):
        ps = PreferenceSystem({0: [1], 1: [0]}, {0: 1, 1: 1})
        result, _ = solve_lid(ps)
        assert result.matching.total_satisfaction(ps) == pytest.approx(2.0)

    def test_path_alternation(self):
        # P6 with weights increasing towards the middle: greedy picks the
        # two local maxima, leaving the global alternating optimum behind
        wt = WeightTable(
            {(0, 1): 1.0, (1, 2): 2.0, (2, 3): 3.0, (3, 4): 2.0, (4, 5): 1.0},
            6,
        )
        m = lic_matching(wt, [1] * 6)
        assert m.edge_set() == {(2, 3), (0, 1), (4, 5)}

    def test_all_nodes_isolated(self):
        ps = PreferenceSystem({0: [], 1: [], 2: []}, 1)
        result, _ = solve_lid(ps)
        assert result.matching.size() == 0
        assert result.metrics.total_sent == 0
        assert all(node.finished for node in result.nodes)


class TestExtremeQuotas:
    def test_mixed_quota_extremes(self):
        # hub with quota 1 among eager leaves with huge quotas
        ps = star(5, quota_center=1)
        result, wt = solve_lid(ps)
        assert result.matching.degree(0) == 1
        assert result.matching.connections(0) == frozenset({1})
        assert greedy_certificate(wt, list(ps.quotas), result.matching)

    def test_certificate_on_every_shape(self):
        for ps in (star(6, 2), star(3, 3)):
            result, wt = solve_lid(ps)
            assert greedy_certificate(wt, list(ps.quotas), result.matching)


class TestWeightExtremes:
    def test_tiny_weight_gaps_resolved_consistently(self):
        eps = 1e-13
        wt = WeightTable({(0, 1): 1.0, (1, 2): 1.0 + eps, (2, 3): 1.0}, 4)
        lic = lic_matching(wt, [1] * 4)
        lid = run_lid(wt, [1] * 4)
        assert lic.edge_set() == lid.matching.edge_set()

    def test_huge_weight_range(self):
        wt = WeightTable({(0, 1): 1e-9, (1, 2): 1e9}, 3)
        m = lic_matching(wt, [1, 1, 1])
        assert m.edge_set() == {(1, 2)}
