"""Unit tests for certificates and theorem bound constants."""

import pytest

from repro.core.analysis import (
    approximation_ratio,
    theorem1_bound,
    theorem2_bound,
    theorem3_bound,
)


class TestBounds:
    def test_theorem1(self):
        assert theorem1_bound(1) == pytest.approx(1.0)
        assert theorem1_bound(2) == pytest.approx(0.75)
        assert theorem1_bound(4) == pytest.approx(0.625)

    def test_theorem2(self):
        assert theorem2_bound() == 0.5

    def test_theorem3_is_half_theorem1(self):
        for b in range(1, 8):
            assert theorem3_bound(b) == pytest.approx(0.5 * theorem1_bound(b))

    def test_theorem3_limits(self):
        assert theorem3_bound(1) == pytest.approx(0.5)
        assert theorem3_bound(10**9) == pytest.approx(0.25, rel=1e-6)

    def test_invalid_b(self):
        with pytest.raises(ValueError):
            theorem1_bound(0)
        with pytest.raises(ValueError):
            theorem3_bound(-1)


class TestRatio:
    def test_normal(self):
        assert approximation_ratio(1.0, 2.0) == 0.5

    def test_zero_optimum_is_perfect(self):
        assert approximation_ratio(0.0, 0.0) == 1.0


class TestFairness:
    def test_jain_even_allocation(self):
        from repro.core.analysis import jain_fairness

        assert jain_fairness([1, 1, 1, 1]) == pytest.approx(1.0)

    def test_jain_single_winner(self):
        from repro.core.analysis import jain_fairness

        assert jain_fairness([1, 0, 0, 0]) == pytest.approx(0.25)

    def test_jain_edge_cases(self):
        from repro.core.analysis import jain_fairness

        assert jain_fairness([]) == 1.0
        assert jain_fairness([0, 0]) == 1.0
        with pytest.raises(ValueError):
            jain_fairness([-1, 2])

    def test_gini_even_and_uneven(self):
        from repro.core.analysis import gini_coefficient

        assert gini_coefficient([1, 1, 1]) == pytest.approx(0.0)
        assert gini_coefficient([0, 0, 0, 1]) == pytest.approx(0.75)
        assert gini_coefficient([]) == 0.0
