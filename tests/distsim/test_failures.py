"""Tests for failure injection adapters."""

import numpy as np
import pytest

from repro.core.lid import LidNode
from repro.core.weights import satisfaction_weights
from repro.distsim.failures import BernoulliLoss, CrashSchedule, make_byzantine
from repro.distsim.messages import Message
from repro.distsim.network import Network
from repro.distsim.scheduler import Simulator

from tests.conftest import random_ps


class TestBernoulliLoss:
    def test_victim_scoping(self):
        rng = np.random.default_rng(0)
        loss = BernoulliLoss(1.0, victims=[3])
        assert loss(Message(src=3, dst=1, kind="X"), rng)
        assert loss(Message(src=0, dst=3, kind="X"), rng)
        assert not loss(Message(src=0, dst=1, kind="X"), rng)

    def test_unscoped_hits_everything(self):
        rng = np.random.default_rng(0)
        loss = BernoulliLoss(1.0)
        assert loss(Message(src=0, dst=1, kind="X"), rng)

    def test_validates_probability(self):
        with pytest.raises(ValueError):
            BernoulliLoss(-0.1)


class TestCrashSchedule:
    def test_crashes_at_times(self):
        from repro.distsim.node import ProtocolNode

        class Idle(ProtocolNode):
            def on_start(self):
                self.set_timer(20.0, None)

        nodes = [Idle(), Idle()]
        sim = Simulator(Network(2), nodes)
        CrashSchedule([(5.0, 1)]).install(sim)
        sim.run()
        assert nodes[1].crashed and not nodes[0].crashed


class TestByzantine:
    def _instance(self):
        ps = random_ps(12, 0.5, 2, seed=4, ensure_edges=True)
        wt = satisfaction_weights(ps)
        return ps, wt

    def test_reject_all_node_stays_unmatched(self):
        ps, wt = self._instance()
        victim = 0
        nodes = [LidNode(wt.weight_list(i), ps.quota(i)) for i in range(ps.n)]
        make_byzantine(nodes[victim], "reject_all")
        net = Network(ps.n, links=wt.edges(), seed=0)
        sim = Simulator(net, nodes)
        sim.run()
        # honest nodes all finish; the byzantine node locks nothing
        for i, node in enumerate(nodes):
            if i != victim:
                assert node.finished
                assert victim not in node.locked

    def test_honest_quota_never_violated_under_accept_all(self):
        ps, wt = self._instance()
        victim = 1
        nodes = [LidNode(wt.weight_list(i), ps.quota(i)) for i in range(ps.n)]
        make_byzantine(nodes[victim], "accept_all")
        net = Network(ps.n, links=wt.edges(), seed=0)
        sim = Simulator(net, nodes)
        sim.run(max_events=20_000)
        for i, node in enumerate(nodes):
            if i != victim:
                assert len(node.locked) <= ps.quota(i)

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown byzantine"):
            make_byzantine(LidNode([], 1), "weird")
