"""Tests for failure injection adapters."""

import numpy as np
import pytest

from repro.core.lid import LidNode
from repro.core.weights import satisfaction_weights
from repro.distsim.failures import (
    BernoulliLoss,
    CrashSchedule,
    LinkFlap,
    PartitionSchedule,
    compose_drops,
    make_byzantine,
)
from repro.distsim.messages import Message
from repro.distsim.network import Network
from repro.distsim.scheduler import Simulator

from repro.testing.strategies import random_ps


class TestBernoulliLoss:
    def test_victim_scoping(self):
        rng = np.random.default_rng(0)
        loss = BernoulliLoss(1.0, victims=[3])
        assert loss(Message(src=3, dst=1, kind="X"), rng)
        assert loss(Message(src=0, dst=3, kind="X"), rng)
        assert not loss(Message(src=0, dst=1, kind="X"), rng)

    def test_unscoped_hits_everything(self):
        rng = np.random.default_rng(0)
        loss = BernoulliLoss(1.0)
        assert loss(Message(src=0, dst=1, kind="X"), rng)

    def test_validates_probability(self):
        with pytest.raises(ValueError):
            BernoulliLoss(-0.1)


class TestCrashSchedule:
    def test_crashes_at_times(self):
        from repro.distsim.node import ProtocolNode

        class Idle(ProtocolNode):
            def on_start(self):
                self.set_timer(20.0, None)

        nodes = [Idle(), Idle()]
        sim = Simulator(Network(2), nodes)
        CrashSchedule([(5.0, 1)]).install(sim)
        sim.run()
        assert nodes[1].crashed and not nodes[0].crashed


class TestByzantine:
    def _instance(self):
        ps = random_ps(12, 0.5, 2, seed=4, ensure_edges=True)
        wt = satisfaction_weights(ps)
        return ps, wt

    def test_reject_all_node_stays_unmatched(self):
        ps, wt = self._instance()
        victim = 0
        nodes = [LidNode(wt.weight_list(i), ps.quota(i)) for i in range(ps.n)]
        make_byzantine(nodes[victim], "reject_all")
        net = Network(ps.n, links=wt.edges(), seed=0)
        sim = Simulator(net, nodes)
        sim.run()
        # honest nodes all finish; the byzantine node locks nothing
        for i, node in enumerate(nodes):
            if i != victim:
                assert node.finished
                assert victim not in node.locked

    def test_honest_quota_never_violated_under_accept_all(self):
        ps, wt = self._instance()
        victim = 1
        nodes = [LidNode(wt.weight_list(i), ps.quota(i)) for i in range(ps.n)]
        make_byzantine(nodes[victim], "accept_all")
        net = Network(ps.n, links=wt.edges(), seed=0)
        sim = Simulator(net, nodes)
        sim.run(max_events=20_000)
        for i, node in enumerate(nodes):
            if i != victim:
                assert len(node.locked) <= ps.quota(i)

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown byzantine"):
            make_byzantine(LidNode([], 1), "weird")


class TestCrashScheduleValidation:
    def test_rejects_non_positive_time(self):
        with pytest.raises(ValueError, match="positive"):
            CrashSchedule([(0.0, 1)])
        with pytest.raises(ValueError, match="positive"):
            CrashSchedule([(-3.0, 1)])

    def test_rejects_non_finite_time(self):
        with pytest.raises(ValueError, match="finite"):
            CrashSchedule([(float("inf"), 1)])

    def test_rejects_bad_node_ids(self):
        with pytest.raises(ValueError, match="node id"):
            CrashSchedule([(1.0, -1)])
        with pytest.raises(ValueError, match="node id"):
            CrashSchedule([(1.0, True)])
        with pytest.raises(ValueError, match="node id"):
            CrashSchedule([(1.0, "x")])

    def test_install_rejects_unknown_node(self):
        sched = CrashSchedule([(1.0, 7)])
        sim = Simulator(Network(2), [_idle_node(), _idle_node()])
        with pytest.raises(ValueError, match="unknown node 7"):
            sched.install(sim)

    def test_victims_property(self):
        sched = CrashSchedule([(1.0, 3), (2.0, 0)])
        assert sched.victims == frozenset({0, 3})


def _idle_node(until=20.0):
    from repro.distsim.node import ProtocolNode

    class Idle(ProtocolNode):
        def on_start(self):
            self.set_timer(until, None)

    return Idle()


class TestPartitionSchedule:
    def test_validates_windows(self):
        with pytest.raises(ValueError, match="start < end"):
            PartitionSchedule([(5.0, 5.0, [[0]])])
        with pytest.raises(ValueError, match="start < end"):
            PartitionSchedule([(-1.0, 5.0, [[0]])])
        with pytest.raises(ValueError, match="two groups"):
            PartitionSchedule([(1.0, 5.0, [[0, 1], [1, 2]])])

    def test_drops_cross_group_only_while_active(self):
        rng = np.random.default_rng(0)
        part = PartitionSchedule([(1.0, 5.0, [[0, 1]])])
        msg_cross = Message(src=0, dst=2, kind="X")
        msg_within = Message(src=0, dst=1, kind="X")
        assert not part(msg_cross, rng)  # window not open yet
        part._open([[0, 1]])
        assert part.active
        assert part(msg_cross, rng)
        assert not part(msg_within, rng)
        assert part.severed(0, 2) and not part.severed(0, 1)
        part._heal()
        assert not part(msg_cross, rng)
        assert part.partition_drops == 1

    def test_messages_cross_partition_after_heal(self):
        from repro.distsim.node import ProtocolNode

        class Pinger(ProtocolNode):
            def __init__(self):
                super().__init__()
                self.got = []

            def on_start(self):
                if self.node_id == 0:
                    self.set_timer(2.0, "during")
                    self.set_timer(10.0, "after")

            def on_timer(self, tag):
                self.send(1, kind=tag)

            def on_message(self, src, kind, payload):
                self.got.append(kind)

        part = PartitionSchedule([(1.0, 5.0, [[0]])])
        nodes = [Pinger(), Pinger()]
        sim = Simulator(Network(2, seed=0, drop_filter=part), nodes)
        part.install(sim)
        sim.run()
        # the in-window send is severed; the post-heal send arrives
        assert nodes[1].got == ["after"]
        assert part.partition_drops == 1


class TestLinkFlap:
    def test_validates_inputs(self):
        with pytest.raises(ValueError, match="link"):
            LinkFlap((1, 1), period=4.0, down_for=1.0, until=20.0)
        with pytest.raises(ValueError, match="down_for < period"):
            LinkFlap((0, 1), period=4.0, down_for=5.0, until=20.0)
        with pytest.raises(ValueError, match="down_for < period"):
            LinkFlap((0, 1), period=0.0, down_for=0.0, until=20.0)

    def test_drops_only_while_down_and_only_on_link(self):
        rng = np.random.default_rng(0)
        flap = LinkFlap((0, 1), period=4.0, down_for=1.0, until=20.0)
        on_link = Message(src=1, dst=0, kind="X")
        off_link = Message(src=0, dst=2, kind="X")
        assert not flap(on_link, rng)
        flap._set(True)
        assert flap.down
        assert flap(on_link, rng)
        assert not flap(off_link, rng)
        assert flap.flap_drops == 1


class TestComposeDrops:
    def test_none_when_empty(self):
        assert compose_drops() is None
        assert compose_drops(None, None) is None

    def test_single_filter_returned_as_is(self):
        loss = BernoulliLoss(1.0)
        assert compose_drops(None, loss) is loss

    def test_or_composition(self):
        rng = np.random.default_rng(0)
        drop_even_src = lambda msg, rng: msg.src % 2 == 0
        drop_dst_three = lambda msg, rng: msg.dst == 3
        combo = compose_drops(drop_even_src, None, drop_dst_three)
        assert combo(Message(src=0, dst=1, kind="X"), rng)
        assert combo(Message(src=1, dst=3, kind="X"), rng)
        assert not combo(Message(src=1, dst=2, kind="X"), rng)
