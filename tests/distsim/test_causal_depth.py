"""Tests for causal-depth (exact async round) tracking."""

import pytest

from repro.core.lid import run_lid
from repro.core.weights import satisfaction_weights
from repro.distsim import ExponentialLatency, Network, ProtocolNode, Simulator

from repro.testing.strategies import random_ps


class Relay(ProtocolNode):
    """Node 0 starts a token that hops down the line."""

    def on_start(self):
        if self.node_id == 0:
            self.send(1, "TOKEN")

    def on_message(self, src, kind, payload):
        nxt = self.node_id + 1
        if nxt < len(self.sim.nodes):
            self.send(nxt, "TOKEN")


class TestCausalDepth:
    def test_relay_chain_depth(self):
        n = 6
        sim = Simulator(Network(n), [Relay() for _ in range(n)])
        sim.run()
        # token hops 0->1->...->5: five messages, depths 1..5
        assert sim.metrics.max_depth == 5

    def test_parallel_fanout_depth_one(self):
        class Fan(ProtocolNode):
            def on_start(self):
                if self.node_id == 0:
                    for dst in range(1, 4):
                        self.send(dst, "X")

        sim = Simulator(Network(4), [Fan() for _ in range(4)])
        sim.run()
        assert sim.metrics.max_depth == 1  # all in one round

    def test_timer_preserves_depth(self):
        class Delayed(ProtocolNode):
            def on_start(self):
                if self.node_id == 0:
                    self.send(1, "X")

            def on_message(self, src, kind, payload):
                if self.node_id == 1 and kind == "X":
                    self.set_timer(5.0, None)

            def on_timer(self, tag):
                self.send(0, "Y")  # causally after X: depth 2

        sim = Simulator(Network(2), [Delayed(), Delayed()])
        sim.run()
        assert sim.metrics.max_depth == 2

    def test_lid_causal_rounds_schedule_invariant(self):
        """Causal depth is a schedule-independent protocol property of
        the *message content*, unlike virtual time."""
        ps = random_ps(20, 0.3, 2, seed=3, ensure_edges=True)
        wt = satisfaction_weights(ps)
        sync = run_lid(wt, ps.quotas)
        assert sync.causal_rounds >= 1
        # under unit latency, virtual time == causal depth
        assert sync.rounds == pytest.approx(sync.causal_rounds)
        # under random latency virtual time changes but messages do not
        async_run = run_lid(
            wt, ps.quotas, latency=ExponentialLatency(2.0), fifo=False, seed=5
        )
        assert async_run.matching.edge_set() == sync.matching.edge_set()
        assert async_run.causal_rounds <= 4 * sync.causal_rounds
