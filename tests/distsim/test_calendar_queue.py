"""Calendar-queue scheduler: exact replay of the heapq event order.

The calendar (bucket) queue is a performance knob, not a semantic one:
for any protocol and network configuration it must process the exact
``(time, insertion order)`` event sequence the heap discipline does.
These tests pin that equivalence on traced runs — constant and random
latencies, timers, control events, late deliveries — plus the ``auto``
selection rule and queue bookkeeping.
"""

from __future__ import annotations

import pytest

from repro.core.lid import run_lid
from repro.core.weights import satisfaction_weights
from repro.distsim.network import ConstantLatency, Network, UniformLatency
from repro.distsim.node import ProtocolNode
from repro.distsim.scheduler import Simulator
from repro.distsim.tracing import Trace
from repro.testing.strategies import random_ps


class Chatter(ProtocolNode):
    """Traffic generator: floods decreasing-TTL tokens plus a timer."""

    def __init__(self, fanout: int = 0, ttl: int = 0, timer_delay: float = 0.0):
        super().__init__()
        self.fanout = fanout
        self.ttl = ttl
        self.timer_delay = timer_delay
        self.seen: list[tuple[float, int, int]] = []

    def on_start(self) -> None:
        for d in range(self.fanout):
            self.send((self.node_id + d + 1) % self.sim_size(), "TOKEN", self.ttl)
        if self.timer_delay:
            self.set_timer(self.timer_delay, "tick")

    def sim_size(self) -> int:
        return len(self.sim.nodes)

    def on_message(self, src: int, kind: str, payload) -> None:
        self.seen.append((self.now, src, payload))
        if payload > 0:
            self.send((self.node_id + 1) % self.sim_size(), "TOKEN", payload - 1)

    def on_timer(self, tag) -> None:
        self.seen.append((self.now, -1, -1))
        self.send((self.node_id + 1) % self.sim_size(), "TOKEN", 0)


def _traced_run(queue: str, latency, n: int = 5, seed: int = 0) -> tuple[Trace, list]:
    nodes = [Chatter(fanout=2, ttl=4, timer_delay=1.7 + i) for i in range(n)]
    net = Network(n, latency=latency, seed=seed)
    trace = Trace()
    sim = Simulator(net, nodes, trace=trace, queue=queue)
    sim.run()
    return trace, [node.seen for node in nodes]


class TestExactReplay:
    @pytest.mark.parametrize("latency", [None, ConstantLatency(2.0)])
    def test_constant_latency_replay(self, latency):
        heap_trace, heap_seen = _traced_run("heap", latency)
        cal_trace, cal_seen = _traced_run("calendar", latency)
        assert heap_trace.records == cal_trace.records
        assert heap_seen == cal_seen

    @pytest.mark.parametrize("seed", range(5))
    def test_random_latency_replay(self, seed):
        # random latencies make nearly every bucket distinct — the
        # calendar queue's worst case must still replay exactly
        heap_trace, heap_seen = _traced_run(
            "heap", UniformLatency(0.2, 3.0), seed=seed
        )
        cal_trace, cal_seen = _traced_run(
            "calendar", UniformLatency(0.2, 3.0), seed=seed
        )
        assert heap_trace.records == cal_trace.records
        assert heap_seen == cal_seen

    def test_lid_metrics_identical_across_queues(self):
        ps = random_ps(20, 0.3, 2, seed=5, ensure_edges=True)
        wt = satisfaction_weights(ps)
        results = {}
        for queue in ("heap", "calendar"):
            # run_lid builds its own Simulator; drive the scheduler
            # directly to control the queue discipline
            from repro.core.lid import LidNode, _extract_matching

            nodes = [
                LidNode(wt.weight_list(i), ps.quota(i)) for i in range(wt.n)
            ]
            sim = Simulator(Network(wt.n), nodes, queue=queue)
            metrics = sim.run()
            results[queue] = (
                _extract_matching(nodes).edge_set(),
                metrics.sent_by_kind,
                metrics.sent_by_node,
                metrics.events,
                metrics.end_time,
                sim.late_messages,
                [node.props_sent for node in nodes],
                [node.rejs_sent for node in nodes],
            )
        assert results["heap"] == results["calendar"]


class TestQueueSelection:
    def test_auto_picks_calendar_for_constant_latency(self):
        sim = Simulator(Network(2), [Chatter(), Chatter()])
        assert sim.queue_mode == "calendar"

    def test_auto_picks_heap_for_random_latency(self):
        sim = Simulator(
            Network(2, latency=UniformLatency()), [Chatter(), Chatter()]
        )
        assert sim.queue_mode == "heap"

    def test_auto_picks_heap_for_bandwidth_model(self):
        sim = Simulator(Network(2, bandwidth=4.0), [Chatter(), Chatter()])
        assert sim.queue_mode == "heap"

    def test_unknown_queue_rejected(self):
        with pytest.raises(ValueError, match="queue"):
            Simulator(Network(2), [Chatter(), Chatter()], queue="fifo")


class TestQueueBookkeeping:
    def test_pending_events_tracks_both_disciplines(self):
        for queue in ("heap", "calendar"):
            nodes = [Chatter(fanout=2, ttl=0), Chatter(), Chatter()]
            sim = Simulator(Network(3), nodes, queue=queue)
            sim.start()
            assert sim.pending_events() == 2
            assert sim.step() is True
            assert sim.pending_events() == 1
            while sim.step():
                pass
            assert sim.pending_events() == 0
            assert sim.step() is False

    def test_reference_lid_uses_calendar_by_default(self):
        ps = random_ps(8, 0.5, 2, seed=2, ensure_edges=True)
        res = run_lid(satisfaction_weights(ps), list(ps.quotas))
        assert res.matching is not None  # calendar path exercised end-to-end
