"""Tests for the discrete-event engine: ordering, determinism, safety."""

import pytest

from repro.distsim import Network, ProtocolNode, Simulator, Trace
from repro.utils.validation import ProtocolError


class Echo(ProtocolNode):
    """Replies PONG to every PING; node 0 starts one exchange per peer."""

    def __init__(self, fanout=0):
        super().__init__()
        self.fanout = fanout
        self.got: list[tuple[int, str]] = []

    def on_start(self):
        for dst in range(1, self.fanout + 1):
            self.send(dst, "PING")

    def on_message(self, src, kind, payload):
        self.got.append((src, kind))
        if kind == "PING":
            self.send(src, "PONG")


class TestBasics:
    def test_ping_pong(self):
        net = Network(3)
        nodes = [Echo(fanout=2), Echo(), Echo()]
        sim = Simulator(net, nodes)
        metrics = sim.run()
        assert metrics.sent_by_kind["PING"] == 2
        assert metrics.sent_by_kind["PONG"] == 2
        assert nodes[0].got == [(1, "PONG"), (2, "PONG")]
        assert metrics.end_time == pytest.approx(2.0)  # two unit hops

    def test_too_many_nodes_rejected(self):
        with pytest.raises(ValueError, match="nodes"):
            Simulator(Network(1), [Echo(), Echo()])

    def test_fewer_nodes_is_join_headroom(self):
        sim = Simulator(Network(3), [Echo(), Echo()])
        sim.run()  # quiesces immediately, no error

    def test_step_returns_false_when_empty(self):
        sim = Simulator(Network(1), [Echo()])
        sim.start()
        assert sim.step() is False

    def test_metrics_accounting(self):
        net = Network(2)
        nodes = [Echo(fanout=1), Echo()]
        sim = Simulator(net, nodes)
        m = sim.run()
        assert m.total_sent == m.total_delivered == 2
        assert m.events == 2
        assert m.sent_by_node[0] == 1 and m.sent_by_node[1] == 1
        assert m.max_node_load() == 2
        assert m.summary()["sent"] == 2


class TestDeterminism:
    def test_identical_traces_same_seed(self):
        def run_once():
            trace = Trace()
            net = Network(4, seed=99)
            nodes = [Echo(fanout=3), Echo(), Echo(), Echo()]
            sim = Simulator(net, nodes, trace=trace)
            sim.run()
            return [(r.time, r.what, r.node, r.peer, r.kind) for r in trace]

        assert run_once() == run_once()

    def test_simultaneous_events_fifo_by_insertion(self):
        # node 0 pings 1,2,3 simultaneously; deliveries process in send order
        trace = Trace()
        net = Network(4)
        sim = Simulator(net, [Echo(fanout=3), Echo(), Echo(), Echo()], trace=trace)
        sim.run()
        delivered = [r.node for r in trace.filter(what="deliver", kind="PING")]
        assert delivered == [1, 2, 3]


class TestTimers:
    def test_timer_fires_with_tag(self):
        class Timed(ProtocolNode):
            def __init__(self):
                super().__init__()
                self.fired = []

            def on_start(self):
                self.set_timer(2.0, "b")
                self.set_timer(1.0, "a")

            def on_timer(self, tag):
                self.fired.append((self.now, tag))

        node = Timed()
        Simulator(Network(1), [node]).run()
        assert node.fired == [(1.0, "a"), (2.0, "b")]

    def test_nonpositive_timer_rejected(self):
        class Bad(ProtocolNode):
            def on_start(self):
                self.set_timer(0.0, "x")

        with pytest.raises(ValueError, match="positive"):
            Simulator(Network(1), [Bad()]).run()


class TestSafetyValves:
    def test_infinite_protocol_aborts(self):
        class Storm(ProtocolNode):
            def on_start(self):
                if self.node_id == 0:
                    self.send(1, "X")

            def on_message(self, src, kind, payload):
                self.send(src, "X")  # eternal ping-pong

        sim = Simulator(Network(2), [Storm(), Storm()])
        with pytest.raises(ProtocolError, match="exceeded"):
            sim.run(max_events=50)

    def test_max_time_horizon_stops_cleanly(self):
        class Slow(ProtocolNode):
            def on_start(self):
                self.set_timer(100.0, None)

        sim = Simulator(Network(1), [Slow()])
        sim.run(max_time=5.0)
        assert sim.pending_events() == 1  # timer still queued, no error


class TestTerminationSemantics:
    def test_terminated_node_drops_messages(self):
        class OneShot(ProtocolNode):
            def on_start(self):
                if self.node_id == 1:
                    self.terminate()
                else:
                    self.send(1, "X")

        net = Network(2)
        sim = Simulator(net, [OneShot(), OneShot()])
        sim.run()
        assert sim.late_messages == 1
        assert sim.metrics.total_delivered == 0

    def test_all_terminated_flag(self):
        class Quit(ProtocolNode):
            def on_start(self):
                self.terminate()

        sim = Simulator(Network(2), [Quit(), Quit()])
        sim.run()
        assert sim.all_terminated

    def test_crash_blocks_send_and_receive(self):
        class Chatter(ProtocolNode):
            def __init__(self):
                super().__init__()
                self.received = 0

            def on_start(self):
                if self.node_id == 0:
                    self.send(1, "X")

            def on_message(self, src, kind, payload):
                self.received += 1

        nodes = [Chatter(), Chatter()]
        sim = Simulator(Network(2), nodes)
        sim.crash(1)
        sim.run()
        assert nodes[1].received == 0

    def test_control_events(self):
        class Idle(ProtocolNode):
            def on_start(self):
                self.set_timer(10.0, None)

        hits = []
        sim = Simulator(Network(1), [Idle()])
        sim.schedule_control(5.0, lambda s: hits.append(s.now))
        sim.run()
        assert hits == [5.0]

    def test_control_in_past_rejected(self):
        sim = Simulator(Network(1), [Echo()])
        sim.now = 10.0
        with pytest.raises(ValueError, match="past"):
            sim.schedule_control(1.0, lambda s: None)


class TestDynamicNodes:
    def test_add_node_mid_run(self):
        class Greeter(ProtocolNode):
            def __init__(self):
                super().__init__()
                self.greeted = []

            def on_start(self):
                if self.node_id >= 1:
                    self.send(0, "HELLO")

            def on_message(self, src, kind, payload):
                self.greeted.append(src)

        base = Greeter()
        net = Network(3)
        sim = Simulator(net, [base, Greeter()])

        def join(s):
            s.add_node(Greeter())

        sim.schedule_control(2.0, join)
        sim.run()
        assert base.greeted == [1, 2]

    def test_add_node_requires_network_capacity(self):
        sim = Simulator(Network(1), [Echo()])
        sim.start()
        with pytest.raises(ValueError, match="grow network"):
            sim.add_node(Echo())
