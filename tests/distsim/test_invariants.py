"""Tests for the runtime safety-invariant monitor."""

import pytest

from repro.core.weights import satisfaction_weights
from repro.distsim.invariants import InvariantMonitor
from repro.distsim.network import Network
from repro.distsim.node import ProtocolNode
from repro.distsim.scheduler import Simulator
from repro.utils.validation import ProtocolError

from repro.testing.strategies import random_ps


class _Greedy(ProtocolNode):
    """Minimal well-behaved pair protocol: propose, lock on mutual."""

    def __init__(self, peers, quota):
        super().__init__()
        self.peers = list(peers)
        self.quota = quota
        self.proposed = set()
        self.locked = set()
        self.withdrawn = set()
        self.suspected = set()

    def on_start(self):
        for j in self.peers[: self.quota]:
            self.proposed.add(j)
            self.send(j, "PROP")

    def on_message(self, src, kind, payload):
        if src in self.proposed and len(self.locked) < self.quota:
            self.locked.add(src)


class _Rogue(_Greedy):
    """Locks everyone who talks to it, ignoring quota and proposals."""

    def on_message(self, src, kind, payload):
        self.locked.add(src)


def _ring(n):
    return [[(i - 1) % n, (i + 1) % n] for i in range(n)]


def _run(nodes, adjacency, quotas, strict=False, honest=None):
    mon = InvariantMonitor(quotas, adjacency, honest=honest, strict=strict)
    links = {(min(i, j), max(i, j)) for i, a in enumerate(adjacency) for j in a}
    sim = Simulator(Network(len(nodes), links=links, seed=0), nodes, monitor=mon)
    sim.run()
    return mon, sim


class TestPerDelivery:
    def test_clean_protocol_has_no_violations(self):
        adj = _ring(6)
        nodes = [_Greedy(adj[i], 2) for i in range(6)]
        mon, sim = _run(nodes, adj, [2] * 6)
        assert mon.ok
        assert mon.deliveries_checked > 0
        assert mon.at_quiescence(sim) == []

    def test_quota_violation_detected(self):
        adj = _ring(6)
        nodes = [_Greedy(adj[i], 2) for i in range(6)]
        nodes[3] = _Rogue(adj[3], 2)
        nodes[3].quota = 99  # sends to nobody extra, but locks everyone
        mon, _ = _run(nodes, adj, [1] * 6)  # monitor believes quota is 1
        assert any("quota violated" in v for v in mon.violations)

    def test_locality_violation_detected(self):
        adj = _ring(6)

        class FarLock(_Greedy):
            def on_message(self, src, kind, payload):
                self.locked.add((src + 3) % 6)  # locks a non-neighbour

        nodes = [_Greedy(adj[i], 2) for i in range(6)]
        nodes[2] = FarLock(adj[2], 2)
        mon, _ = _run(nodes, adj, [2] * 6)
        assert any("locality violated" in v for v in mon.violations)

    def test_duplicate_lock_detected(self):
        adj = _ring(4)

        class Relock(_Greedy):
            # lock -> release -> re-lock across three deliveries: the
            # monitor must flag the reappearance as a duplicate lock
            def on_message(self, src, kind, payload):
                if src in self.locked:
                    self.locked.discard(src)
                else:
                    self.locked.add(src)

        class TripleProp(_Greedy):
            def on_start(self):
                super().on_start()
                self.send(self.peers[0], "PROP")
                self.send(self.peers[0], "PROP")

        nodes = [TripleProp(adj[i], 2) for i in range(4)]
        nodes[1] = Relock(adj[1], 2)
        mon, _ = _run(nodes, adj, [2] * 4)
        assert any("duplicate lock" in v for v in mon.violations)

    def test_unjustified_lock_detected(self):
        adj = _ring(4)
        nodes = [_Greedy(adj[i], 0) for i in range(4)]  # nobody proposes

        class Ping(_Greedy):
            def on_start(self):
                self.send(self.peers[0], "HB")  # not a proposal

        nodes[3] = Ping([0], 0)  # pings its ring neighbour 0
        nodes[0] = _Rogue(adj[0], 2)  # locks 3 despite no proposal from 3
        mon, _ = _run(nodes, adj, [2] * 4)
        assert any("unjustified lock" in v for v in mon.violations)

    def test_byzantine_nodes_are_exempt(self):
        adj = _ring(4)
        nodes = [_Greedy(adj[i], 2) for i in range(4)]
        nodes[1] = _Rogue(adj[1], 2)  # would violate quota 0
        mon, _ = _run(nodes, adj, [0, 0, 0, 0], honest=[0, 2, 3])
        # the rogue's locks are ignored; honest nodes lock nothing here
        rogue_violations = [v for v in mon.violations if "node 1" in v]
        assert rogue_violations == []

    def test_strict_raises_at_the_offending_delivery(self):
        adj = _ring(6)
        nodes = [_Greedy(adj[i], 2) for i in range(6)]
        nodes[3] = _Rogue(adj[3], 2)
        mon = InvariantMonitor([1] * 6, adj, strict=True)
        links = {(min(i, j), max(i, j)) for i, a in enumerate(adj) for j in a}
        sim = Simulator(Network(6, links=links, seed=0), nodes, monitor=mon)
        with pytest.raises(ProtocolError, match="invariant violation"):
            sim.run()


class TestAtQuiescence:
    def test_asymmetric_lock_flagged(self):
        adj = _ring(4)
        nodes = [_Greedy(adj[i], 2) for i in range(4)]
        mon, sim = _run(nodes, adj, [2] * 4)
        base = len(mon.violations)
        nodes[0].locked.add(1)
        nodes[1].locked.discard(0)
        found = mon.at_quiescence(sim)
        assert any("asymmetric lock" in v for v in found)
        assert len(mon.violations) > base

    def test_crashed_peers_excluded_from_symmetry(self):
        adj = _ring(4)
        nodes = [_Greedy(adj[i], 2) for i in range(4)]
        mon, sim = _run(nodes, adj, [2] * 4)
        nodes[0].locked.add(1)
        nodes[1].locked.discard(0)
        nodes[1].crashed = True  # the asymmetry is explained by the crash
        assert mon.at_quiescence(sim) == []

    def test_validates_shape(self):
        with pytest.raises(ValueError, match="disagree"):
            InvariantMonitor([1, 1], [[1]])


class TestEndToEnd:
    def test_real_lid_run_is_invariant_clean(self):
        from repro.core.lid import LidNode

        ps = random_ps(16, 0.4, 2, seed=9, ensure_edges=True)
        wt = satisfaction_weights(ps)
        nodes = [LidNode(wt.weight_list(i), ps.quota(i)) for i in range(ps.n)]
        adj = [set(wt.neighbors(i)) for i in range(ps.n)]
        mon = InvariantMonitor(list(ps.quotas), adj)
        sim = Simulator(Network(ps.n, links=wt.edges(), seed=0), nodes, monitor=mon)
        sim.run()
        assert mon.ok
        assert mon.at_quiescence(sim) == []
        assert mon.deliveries_checked == sim.metrics.total_delivered
