"""Tests for the reliable-channel layer and heartbeat failure detector."""

import numpy as np
import pytest

from repro.distsim.failures import BernoulliLoss, CrashSchedule
from repro.distsim.network import Network
from repro.distsim.reliable import BackoffPolicy, ReliableNode
from repro.distsim.scheduler import Simulator


class TestBackoffPolicy:
    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(cap=0.5, base=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            BackoffPolicy(budget=0)

    def test_delay_grows_and_caps(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, cap=5.0, jitter=0.0)
        delays = [policy.delay(k, None) for k in range(5)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_is_bounded_and_seeded(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, cap=30.0, jitter=0.1)
        rng = np.random.default_rng(0)
        d = policy.delay(0, rng)
        assert 1.0 <= d <= 1.1
        rng2 = np.random.default_rng(0)
        assert d == policy.delay(0, rng2)

    def test_fixed_reproduces_constant_timer(self):
        policy = BackoffPolicy.fixed(5.0)
        assert policy.delay(0, None) == 5.0
        assert policy.delay(7, None) == 5.0

    def test_span_bounds_total_retry_window(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, cap=4.0, jitter=0.0, budget=4)
        # the initial send plus 4 retries wait 1 + 2 + 4 + 4 + 4
        assert policy.span() == pytest.approx(15.0)
        assert BackoffPolicy(budget=None).span() == float("inf")


class _Echo(ReliableNode):
    """Collects datagrams; optionally replies once."""

    def __init__(self, reply=False, **kw):
        super().__init__(**kw)
        self.reply = reply
        self.got = []
        self.failed = []
        self.suspects = []

    def on_datagram(self, src, kind, payload):
        self.got.append((src, kind, payload))
        if self.reply:
            self.rsend(src, "ANSWER", payload)

    def on_delivery_failed(self, dst, kind, payload):
        self.failed.append((dst, kind))

    def on_peer_suspected(self, peer):
        self.suspects.append(peer)


class _Starter(_Echo):
    """Sends a burst of datagrams to node 1 at start."""

    def __init__(self, burst=5, **kw):
        super().__init__(**kw)
        self.burst = burst

    def on_start(self):
        for k in range(self.burst):
            self.rsend(1, "DGRAM", k)


class TestReliableDelivery:
    def _run(self, loss, burst=8, budget=20):
        # base must clear the unit-latency network's RTT of 2.0
        policy = BackoffPolicy(base=3.0, factor=2.0, cap=12.0, jitter=0.1, budget=budget)
        rng = np.random.default_rng(42)
        nodes = [
            _Starter(burst=burst, backoff=policy, rng=np.random.default_rng(1)),
            _Echo(backoff=policy, rng=np.random.default_rng(2)),
        ]
        drop = BernoulliLoss(loss) if loss else None
        sim = Simulator(Network(2, drop_filter=drop, seed=7), nodes)
        sim.run()
        return nodes, sim

    def test_exactly_once_without_loss(self):
        nodes, _ = self._run(0.0)
        assert [p for (_, _, p) in nodes[1].got] == list(range(8))
        assert nodes[0].retransmissions == 0

    def test_exactly_once_under_heavy_loss(self):
        nodes, _ = self._run(0.4)
        # every datagram delivered exactly once (retransmissions may
        # reorder across sequence numbers; there is no hold-back queue)
        assert sorted(p for (_, _, p) in nodes[1].got) == list(range(8))
        assert nodes[0].retransmissions > 0
        assert not nodes[0].failed

    def test_lost_acks_cause_dup_suppression_not_redelivery(self):
        # drop only ACK traffic: data arrives, ACKs get lost, sender
        # retransmits, receiver must suppress the duplicates
        def drop_acks(msg, rng):
            return msg.kind == "ACK" and rng.random() < 0.6

        policy = BackoffPolicy(base=3.0, factor=2.0, cap=12.0, jitter=0.0, budget=20)
        nodes = [_Starter(burst=5, backoff=policy), _Echo(backoff=policy)]
        sim = Simulator(Network(2, drop_filter=drop_acks, seed=3), nodes)
        sim.run()
        assert [p for (_, _, p) in nodes[1].got] == list(range(5))
        assert nodes[1].duplicates > 0
        assert sim.metrics.duplicates_suppressed == nodes[1].duplicates
        assert sim.metrics.retransmissions == nodes[0].retransmissions > 0

    def test_budget_exhaustion_reports_failure(self):
        # node 1 crashes immediately: every datagram to it must fail
        # after exactly `budget` retransmissions, and the run quiesces
        policy = BackoffPolicy(base=3.0, factor=2.0, cap=6.0, jitter=0.0, budget=3)
        nodes = [_Starter(burst=2, backoff=policy), _Echo(backoff=policy)]
        sim = Simulator(Network(2, seed=0), nodes)
        CrashSchedule([(0.1, 1)]).install(sim)
        sim.run()
        assert [k for (_, k) in nodes[0].failed] == ["DGRAM", "DGRAM"]
        assert nodes[0].retransmissions == 2 * 3

    def test_abandon_cancels_retransmissions(self):
        class AbandonSoon(_Starter):
            def on_app_timer(self, tag):
                if tag == "give-up":
                    self.abandon(1)

            def on_start(self):
                super().on_start()
                self.set_timer(1.0, "give-up")

        policy = BackoffPolicy(base=5.0, factor=2.0, cap=20.0, jitter=0.0, budget=10)
        nodes = [AbandonSoon(burst=3, backoff=policy), _Echo(backoff=policy)]
        sim = Simulator(Network(2, seed=0), nodes)
        CrashSchedule([(0.1, 1)]).install(sim)
        sim.run()
        # abandoned before the first 5s retry fired: no retransmissions,
        # no delivery-failure reports, and the run still quiesced
        assert nodes[0].retransmissions == 0
        assert not nodes[0].failed


class TestFailureDetector:
    def _detector_nodes(self, **kw):
        policy = BackoffPolicy(base=3.0, factor=2.0, cap=6.0, jitter=0.0, budget=30)
        defaults = dict(backoff=policy, heartbeat_interval=1.0, suspect_after=4.0)
        defaults.update(kw)

        class Watcher(_Echo):
            def on_start(self):
                self.rsend(1, "DGRAM", "hello")
                self.watch(1)
                self.start_monitoring()

        class Quiet(_Echo):
            # receives but never answers; heartbeats keep it "alive"
            def on_start(self):
                self.start_monitoring()

            def heartbeat_targets(self):
                return frozenset({0}) if not self.crashed else frozenset()

            def keep_monitoring(self):
                return True

        return Watcher(**defaults), Quiet(**defaults)

    def test_silent_crashed_peer_is_suspected(self):
        a, b = self._detector_nodes()
        sim = Simulator(Network(2, seed=0), [a, b])
        CrashSchedule([(0.2, 1)]).install(sim)
        sim.run(max_time=60.0)
        assert a.suspects == [1]
        assert 1 in a.suspected

    def test_heartbeats_prevent_false_suspicion(self):
        a, b = self._detector_nodes()
        b.reply = False  # never answers the datagram, only heartbeats
        sim = Simulator(Network(2, seed=0), [a, b])
        sim.run(max_time=30.0)
        assert a.suspects == []

    def test_suspect_after_must_exceed_heartbeat_interval(self):
        with pytest.raises(ValueError, match="suspect_after"):
            ReliableNode(heartbeat_interval=2.0, suspect_after=1.0)
        with pytest.raises(ValueError, match="heartbeat_interval"):
            ReliableNode(suspect_after=5.0)
