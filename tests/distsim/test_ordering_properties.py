"""Delivery-ordering properties of the network + scheduler stack."""

from hypothesis import given, settings, strategies as st

from repro.distsim import (
    ExponentialLatency,
    Network,
    ProtocolNode,
    Simulator,
    Trace,
    UniformLatency,
)


class Burst(ProtocolNode):
    """Node 0 fires `count` numbered messages at every other node."""

    def __init__(self, count=0):
        super().__init__()
        self.count = count
        self.received: dict[int, list[int]] = {}

    def on_start(self):
        for k in range(self.count):
            for dst in range(1, len(self.sim.nodes)):
                self.send(dst, "MSG", payload=k)

    def on_message(self, src, kind, payload):
        self.received.setdefault(src, []).append(payload)


class TestFifoProperty:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 15))
    def test_fifo_preserves_per_channel_send_order(self, seed, count):
        nodes = [Burst(count), Burst(), Burst()]
        net = Network(3, latency=ExponentialLatency(1.0), fifo=True, seed=seed)
        Simulator(net, nodes).run()
        for node in nodes[1:]:
            assert node.received.get(0, []) == list(range(count))

    def test_non_fifo_reorders_under_random_latency(self):
        reordered = False
        for seed in range(10):
            nodes = [Burst(12), Burst(), Burst()]
            net = Network(3, latency=UniformLatency(0.1, 5.0), fifo=False, seed=seed)
            Simulator(net, nodes).run()
            for node in nodes[1:]:
                got = node.received.get(0, [])
                assert sorted(got) == list(range(12))  # nothing lost
                if got != sorted(got):
                    reordered = True
        assert reordered  # random latency must reorder at least once


class TestDepthAndTimeConsistency:
    def test_delivery_times_monotone_in_trace(self):
        trace = Trace()
        nodes = [Burst(5), Burst(), Burst()]
        net = Network(3, latency=UniformLatency(0.2, 2.0), seed=4)
        Simulator(net, nodes, trace=trace).run()
        times = [r.time for r in trace.filter(what="deliver")]
        assert times == sorted(times)  # the scheduler never goes back

    def test_all_sends_accounted(self):
        nodes = [Burst(7), Burst(), Burst()]
        net = Network(3, seed=1)
        sim = Simulator(net, nodes)
        m = sim.run()
        assert m.total_sent == 14
        assert m.total_delivered == 14
        assert m.dropped == 0
