"""Tests for the bandwidth / serialisation queueing model."""

import pytest

from repro.core.lid import run_lid
from repro.core.lic import lic_matching
from repro.core.weights import satisfaction_weights
from repro.distsim.network import Network

from repro.testing.strategies import random_ps


class TestSerialisation:
    def test_burst_stretches_out(self):
        net = Network(2, bandwidth=1.0, msg_size=1.0)
        times = [net.transmit(0.0, 0, 1, "X", None)[0] for _ in range(4)]
        # each message occupies the channel for 1 unit, then 1 unit latency
        assert times == [2.0, 3.0, 4.0, 5.0]

    def test_channels_independent(self):
        net = Network(3, bandwidth=1.0)
        t01 = net.transmit(0.0, 0, 1, "X", None)[0]
        t02 = net.transmit(0.0, 0, 2, "X", None)[0]
        assert t01 == t02 == 2.0  # different channels, no queueing

    def test_size_function_per_kind(self):
        sizes = {"BIG": 10.0, "SMALL": 1.0}
        net = Network(2, bandwidth=1.0, msg_size=lambda m: sizes[m.kind])
        t_big = net.transmit(0.0, 0, 1, "BIG", None)[0]
        t_small = net.transmit(0.0, 1, 0, "SMALL", None)[0]
        assert t_big == pytest.approx(11.0)
        assert t_small == pytest.approx(2.0)

    def test_idle_channel_recovers(self):
        net = Network(2, bandwidth=1.0)
        net.transmit(0.0, 0, 1, "X", None)
        # channel idle again by t=5: no residual queueing
        t = net.transmit(5.0, 0, 1, "X", None)[0]
        assert t == pytest.approx(7.0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            Network(2, bandwidth=0.0)

    def test_no_bandwidth_means_no_queueing(self):
        net = Network(2)
        times = [net.transmit(0.0, 0, 1, "X", None)[0] for _ in range(3)]
        # FIFO nudges by epsilon only; all essentially at t=1
        assert all(abs(t - 1.0) < 1e-6 for t in times)


class TestLidUnderBandwidth:
    def test_matching_unchanged_time_stretched(self):
        """Queueing slows virtual time but cannot change the outcome."""
        ps = random_ps(20, 0.3, 2, seed=6, ensure_edges=True)
        wt = satisfaction_weights(ps)
        reference = lic_matching(wt, ps.quotas).edge_set()

        fast = run_lid(wt, ps.quotas)

        from repro.core.lid import LidNode
        from repro.distsim.scheduler import Simulator

        nodes = [LidNode(wt.weight_list(i), ps.quota(i)) for i in range(ps.n)]
        net = Network(ps.n, links=wt.edges(), bandwidth=0.5, seed=0)
        sim = Simulator(net, nodes)
        sim.run()
        locked = frozenset(
            (min(i, j), max(i, j))
            for i, node in enumerate(nodes)
            for j in node.locked
        )
        assert locked == reference
        assert sim.metrics.end_time > fast.metrics.end_time
