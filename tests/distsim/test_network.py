"""Tests for channels, latency models, FIFO and link enforcement."""

import numpy as np
import pytest

from repro.distsim.messages import Message
from repro.distsim.network import (
    ConstantLatency,
    ExponentialLatency,
    Network,
    UniformLatency,
    bernoulli_drop,
)


def _msg(src=0, dst=1):
    return Message(src=src, dst=dst, kind="X")


class TestLatencyModels:
    def test_constant(self):
        rng = np.random.default_rng(0)
        model = ConstantLatency(2.5)
        assert model(_msg(), rng) == 2.5
        with pytest.raises(ValueError):
            ConstantLatency(0.0)

    def test_uniform_range(self):
        rng = np.random.default_rng(0)
        model = UniformLatency(1.0, 3.0)
        samples = [model(_msg(), rng) for _ in range(200)]
        assert all(1.0 <= s <= 3.0 for s in samples)
        with pytest.raises(ValueError):
            UniformLatency(2.0, 1.0)

    def test_exponential_positive_with_floor(self):
        rng = np.random.default_rng(0)
        model = ExponentialLatency(1.0, eps=0.5)
        samples = [model(_msg(), rng) for _ in range(200)]
        assert all(s >= 0.5 for s in samples)
        with pytest.raises(ValueError):
            ExponentialLatency(-1.0)


class TestNetwork:
    def test_transmit_assigns_seq_and_time(self):
        net = Network(2)
        t, msg = net.transmit(0.0, 0, 1, "X", None)
        assert t == 1.0 and msg.seq == 1
        t2, msg2 = net.transmit(0.0, 0, 1, "X", None)
        assert msg2.seq == 2

    def test_self_send_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            Network(2).transmit(0.0, 1, 1, "X", None)

    def test_fifo_clamps_delivery_order(self):
        net = Network(2, latency=UniformLatency(0.1, 5.0), fifo=True, seed=3)
        times = [net.transmit(0.0, 0, 1, "X", None)[0] for _ in range(50)]
        assert times == sorted(times)
        assert len(set(times)) == len(times)  # strictly increasing

    def test_non_fifo_can_reorder(self):
        net = Network(2, latency=UniformLatency(0.1, 5.0), fifo=False, seed=3)
        times = [net.transmit(0.0, 0, 1, "X", None)[0] for _ in range(50)]
        assert times != sorted(times)

    def test_link_enforcement(self):
        net = Network(3, links=[(0, 1)])
        net.transmit(0.0, 1, 0, "X", None)  # allowed both directions
        with pytest.raises(ValueError, match="local-only"):
            net.transmit(0.0, 0, 2, "X", None)

    def test_add_remove_link(self):
        net = Network(3, links=[(0, 1)])
        net.add_link(1, 2)
        assert net.allows(2, 1)
        net.remove_link(2, 1)
        assert not net.allows(1, 2)

    def test_unrestricted_network_allows_all(self):
        net = Network(3)
        assert net.allows(0, 2)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            Network(0)


class TestLoss:
    def test_bernoulli_drop_rate(self):
        net = Network(2, drop_filter=bernoulli_drop(0.5), seed=42)
        outcomes = [net.transmit(0.0, 0, 1, "X", None) for _ in range(400)]
        dropped = sum(1 for o in outcomes if o is None)
        assert 120 < dropped < 280  # ~200 expected
        assert net.dropped == dropped
        assert net.sent == 400

    def test_drop_probability_validated(self):
        with pytest.raises(ValueError):
            bernoulli_drop(1.5)

    def test_no_filter_never_drops(self):
        net = Network(2, seed=1)
        assert all(
            net.transmit(0.0, 0, 1, "X", None) is not None for _ in range(100)
        )
