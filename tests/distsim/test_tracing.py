"""Tests for trace recording and querying."""

from repro.distsim.messages import Message
from repro.distsim.tracing import Trace, TraceRecord


class TestTrace:
    def test_log_and_len(self):
        t = Trace()
        t.log(0.0, "send", 0, 1, "PROP")
        t.log(1.0, "deliver", 1, 0, "PROP")
        assert len(t) == 2
        assert list(t)[0] == TraceRecord(0.0, "send", 0, 1, "PROP", None)

    def test_filter_combinations(self):
        t = Trace()
        t.log(0.0, "send", 0, 1, "PROP")
        t.log(0.0, "send", 0, 2, "REJ")
        t.log(1.0, "send", 1, 0, "PROP")
        t.log(1.0, "deliver", 1, 0, "PROP")
        assert len(list(t.filter(what="send"))) == 3
        assert len(list(t.filter(what="send", node=0))) == 2
        assert len(list(t.filter(what="send", node=0, kind="REJ"))) == 1

    def test_sends_from_in_order(self):
        t = Trace()
        t.log(0.0, "send", 0, 2, "PROP")
        t.log(5.0, "send", 0, 3, "PROP")
        t.log(2.0, "deliver", 0, 9, "PROP")
        recs = t.sends_from(0, kind="PROP")
        assert [r.peer for r in recs] == [2, 3]


class TestMessage:
    def test_frozen_fields(self):
        m = Message(src=1, dst=2, kind="PROP", payload={"a": 1}, seq=7)
        assert (m.src, m.dst, m.kind, m.seq) == (1, 2, "PROP", 7)
        assert m.payload == {"a": 1}

    def test_payload_not_compared(self):
        a = Message(src=1, dst=2, kind="X", payload="p1", seq=3)
        b = Message(src=1, dst=2, kind="X", payload="p2", seq=3)
        assert a == b
