"""Tests for trace recording and querying."""

from repro.distsim.messages import Message
from repro.distsim.tracing import Trace, TraceRecord


class TestTrace:
    def test_log_and_len(self):
        t = Trace()
        t.log(0.0, "send", 0, 1, "PROP")
        t.log(1.0, "deliver", 1, 0, "PROP")
        assert len(t) == 2
        assert list(t)[0] == TraceRecord(0.0, "send", 0, 1, "PROP", None)

    def test_filter_combinations(self):
        t = Trace()
        t.log(0.0, "send", 0, 1, "PROP")
        t.log(0.0, "send", 0, 2, "REJ")
        t.log(1.0, "send", 1, 0, "PROP")
        t.log(1.0, "deliver", 1, 0, "PROP")
        assert len(list(t.filter(what="send"))) == 3
        assert len(list(t.filter(what="send", node=0))) == 2
        assert len(list(t.filter(what="send", node=0, kind="REJ"))) == 1

    def test_sends_from_in_order(self):
        t = Trace()
        t.log(0.0, "send", 0, 2, "PROP")
        t.log(5.0, "send", 0, 3, "PROP")
        t.log(2.0, "deliver", 0, 9, "PROP")
        recs = t.sends_from(0, kind="PROP")
        assert [r.peer for r in recs] == [2, 3]

    def test_sends_from_without_kind_spans_kinds(self):
        t = Trace()
        t.log(0.0, "send", 0, 1, "PROP")
        t.log(1.0, "send", 0, 2, "REJ")
        t.log(2.0, "send", 1, 0, "PROP")
        assert [r.kind for r in t.sends_from(0)] == ["PROP", "REJ"]

    def test_filter_kind_only(self):
        t = Trace()
        t.log(0.0, "send", 0, 1, "PROP")
        t.log(1.0, "deliver", 1, 0, "PROP")
        t.log(2.0, "send", 1, 0, "REJ")
        assert len(list(t.filter(kind="PROP"))) == 2

    def test_empty_trace_queries(self):
        t = Trace()
        assert len(t) == 0
        assert list(t) == []
        assert list(t.filter(what="send")) == []
        assert t.sends_from(0) == []

    def test_filter_no_criteria_yields_all(self):
        t = Trace()
        t.log(0.0, "crash", 3)
        t.log(1.0, "timer", 3)
        assert list(t.filter()) == t.records

    def test_simulator_populates_trace(self):
        # end-to-end: a traced LID run records protocol-level sends
        # that agree with the metrics counters
        from repro.core.lid import solve_lid
        from repro.experiments.instances import random_preference_instance

        ps = random_preference_instance(12, 0.4, 2, seed=0)
        trace = Trace()
        res, _ = solve_lid(ps, trace=trace)
        sends = list(trace.filter(what="send", kind="PROP"))
        assert len(sends) == res.metrics.sent_by_kind["PROP"]
        delivered = list(trace.filter(what="deliver"))
        assert len(delivered) == res.metrics.total_delivered


class TestMessage:
    def test_frozen_fields(self):
        m = Message(src=1, dst=2, kind="PROP", payload={"a": 1}, seq=7)
        assert (m.src, m.dst, m.kind, m.seq) == (1, 2, "PROP", 7)
        assert m.payload == {"a": 1}

    def test_payload_not_compared(self):
        a = Message(src=1, dst=2, kind="X", payload="p1", seq=3)
        b = Message(src=1, dst=2, kind="X", payload="p2", seq=3)
        assert a == b
