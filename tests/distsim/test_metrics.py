"""SimMetrics: serialisation round-trip and flat counter exports."""

from collections import Counter

from repro.distsim.metrics import SimMetrics


def _metrics():
    return SimMetrics(
        sent_by_kind=Counter({"PROP": 10, "REJ": 4}),
        delivered_by_kind=Counter({"PROP": 9, "REJ": 4}),
        sent_by_node=Counter({0: 6, 3: 8}),
        received_by_node=Counter({1: 7, 2: 6}),
        events=27,
        end_time=5.0,
        dropped=1,
        retransmissions=2,
        duplicates_suppressed=3,
        max_depth=4,
        phase_seconds={"build_weights": 0.1, "sim_loop": 0.5, "extract": 0.05},
    )


class TestRoundTrip:
    def test_to_dict_from_dict_identity(self):
        m = _metrics()
        again = SimMetrics.from_dict(m.to_dict())
        assert again == m

    def test_node_keys_survive_json(self):
        import json

        m = _metrics()
        again = SimMetrics.from_dict(json.loads(json.dumps(m.to_dict())))
        assert again.sent_by_node == m.sent_by_node
        assert again.received_by_node == m.received_by_node
        assert all(isinstance(k, int) for k in again.sent_by_node)

    def test_compact_form_drops_per_node(self):
        d = _metrics().to_dict(per_node=False)
        assert "sent_by_node" not in d and "received_by_node" not in d
        again = SimMetrics.from_dict(d)
        assert again.sent_by_kind == _metrics().sent_by_kind
        assert again.sent_by_node == Counter()

    def test_from_dict_defaults(self):
        m = SimMetrics.from_dict({})
        assert m == SimMetrics()


class TestKindCounters:
    def test_flat_sorted_fields(self):
        counters = _metrics().kind_counters()
        assert counters == {
            "sent_PROP": 10,
            "sent_REJ": 4,
            "delivered_PROP": 9,
            "delivered_REJ": 4,
        }
        sent = [k for k in counters if k.startswith("sent_")]
        assert sent == sorted(sent)

    def test_empty(self):
        assert SimMetrics().kind_counters() == {}
