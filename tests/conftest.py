"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.preferences import PreferenceSystem
from repro.core.weights import WeightTable


def random_ps(
    n: int, p: float, quota, seed: int, ensure_edges: bool = False
) -> PreferenceSystem:
    """Random ER graph with uniformly random rankings (test helper)."""
    rng = np.random.default_rng(seed)
    adj = {i: [] for i in range(n)}
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                adj[i].append(j)
                adj[j].append(i)
    if ensure_edges and not any(adj.values()) and n >= 2:
        adj[0].append(1)
        adj[1].append(0)
    rankings = {}
    for i in range(n):
        neigh = list(adj[i])
        rng.shuffle(neigh)
        rankings[i] = neigh
    return PreferenceSystem(rankings, quota)


@st.composite
def preference_systems(draw, min_n=2, max_n=8, max_quota=3):
    """Hypothesis strategy: small random preference systems.

    Edge set and ranking permutations are derived from drawn integers so
    instances are fully determined by the draw (reproducible shrinking).
    """
    n = draw(st.integers(min_n, max_n))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    included = draw(st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs)))
    adj = {i: [] for i in range(n)}
    for (i, j), keep in zip(pairs, included):
        if keep:
            adj[i].append(j)
            adj[j].append(i)
    rankings = {}
    for i in range(n):
        rankings[i] = draw(st.permutations(adj[i])) if adj[i] else []
    quotas = [
        draw(st.integers(1, max_quota)) if adj[i] else 1 for i in range(n)
    ]
    return PreferenceSystem(rankings, quotas)


@st.composite
def weighted_instances(draw, min_n=2, max_n=8, max_quota=3):
    """Hypothesis strategy: (WeightTable, quotas) with positive weights."""
    n = draw(st.integers(min_n, max_n))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    included = draw(st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs)))
    weights = {}
    for (i, j), keep in zip(pairs, included):
        if keep:
            weights[(i, j)] = draw(
                st.floats(min_value=0.01, max_value=10.0, allow_nan=False)
            )
    quotas = [draw(st.integers(1, max_quota)) for _ in range(n)]
    return WeightTable(weights, n), quotas


@pytest.fixture
def small_ps() -> PreferenceSystem:
    """A hand-built 5-node instance used across unit tests.

    Graph: 0-1, 0-2, 1-2, 1-3, 2-3, 3-4 (6 edges) with explicit rankings.
    """
    rankings = {
        0: [1, 2],
        1: [0, 3, 2],
        2: [3, 0, 1],
        3: [1, 2, 4],
        4: [3],
    }
    return PreferenceSystem(rankings, {0: 1, 1: 2, 2: 2, 3: 2, 4: 1})


@pytest.fixture
def triangle_ps() -> PreferenceSystem:
    """The 3-cycle roommates instance with rotating (cyclic) preferences."""
    return PreferenceSystem({0: [1, 2], 1: [2, 0], 2: [0, 1]}, 1)
