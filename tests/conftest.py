"""Shared fixtures and hypothesis configuration for the test suite.

The instance generators and hypothesis strategies live in
:mod:`repro.testing.strategies` (the conformance subsystem's single
source of generated instances); this conftest only registers the
hypothesis profiles and provides the hand-built fixtures.

Profiles: ``dev`` (default — few examples, fast feedback) and ``ci``
(thorough — more examples, no deadline so a loaded CI runner cannot
flake a healthy property).  Select with ``HYPOTHESIS_PROFILE=ci``.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.core.preferences import PreferenceSystem
from repro.testing.strategies import (  # noqa: F401  (re-exported for tests)
    preference_systems,
    random_ps,
    weighted_instances,
)

settings.register_profile("dev", max_examples=25, deadline=None)
settings.register_profile("ci", max_examples=200, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def small_ps() -> PreferenceSystem:
    """A hand-built 5-node instance used across unit tests.

    Graph: 0-1, 0-2, 1-2, 1-3, 2-3, 3-4 (6 edges) with explicit rankings.
    """
    rankings = {
        0: [1, 2],
        1: [0, 3, 2],
        2: [3, 0, 1],
        3: [1, 2, 4],
        4: [3],
    }
    return PreferenceSystem(rankings, {0: 1, 1: 2, 2: 2, 3: 2, 4: 1})


@pytest.fixture
def triangle_ps() -> PreferenceSystem:
    """The 3-cycle roommates instance with rotating (cyclic) preferences."""
    return PreferenceSystem({0: [1, 2], 1: [2, 0], 2: [0, 1]}, 1)
