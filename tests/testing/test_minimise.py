"""Counterexample minimisation, repro capture/replay, and the CLI."""

import pytest

from repro.core.preferences import PreferenceSystem
from repro.testing.conformance import (
    capture_repro,
    conformance_sweep,
    mutation_smoke,
    replay_repro,
    smoke_specs,
)
from repro.testing.minimise import (
    ConformanceRepro,
    load_repro,
    minimise_instance,
    save_repro,
)
from repro.testing.mutations import MUTATIONS
from repro.testing.strategies import InstanceSpec, random_ps


class TestMinimiseInstance:
    def test_rejects_passing_instance(self):
        ps = random_ps(6, 0.5, 2, seed=0, ensure_edges=True)
        with pytest.raises(ValueError, match="does not hold"):
            minimise_instance(ps, lambda _: False)

    def test_shrinks_to_predicate_core(self):
        # predicate: instance still contains >= 1 edge — minimal is a
        # single edge between two nodes
        ps = random_ps(12, 0.5, 3, seed=1, ensure_edges=True)
        minimal = minimise_instance(ps, lambda c: c.m >= 1)
        assert minimal.m == 1 and minimal.n == 2

    def test_result_is_one_minimal(self):
        ps = random_ps(10, 0.5, 3, seed=2, ensure_edges=True)
        predicate = lambda c: c.m >= 2  # noqa: E731
        minimal = minimise_instance(ps, predicate)
        assert minimal.m == 2
        # no single node/edge removal preserves the predicate
        from repro.testing.minimise import _without_edge, _without_node

        for v in range(minimal.n):
            smaller = _without_node(minimal, v)
            assert smaller is None or not predicate(smaller)
        for e in minimal.edges():
            smaller = _without_edge(minimal, *e)
            assert smaller is None or not predicate(smaller)

    def test_deterministic(self):
        ps = random_ps(10, 0.5, 3, seed=3, ensure_edges=True)
        a = minimise_instance(ps, lambda c: c.m >= 1)
        b = minimise_instance(ps, lambda c: c.m >= 1)
        assert a == b

    def test_quota_lowering_reached(self):
        ps = PreferenceSystem(
            {0: [1, 2], 1: [0, 2], 2: [0, 1]}, 2
        )
        minimal = minimise_instance(ps, lambda c: c.b_max >= 2)
        assert minimal.b_max == 2
        assert all(
            c.quota(i) <= 2 for c, i in [(minimal, i) for i in minimal.nodes()]
        )


class TestReproFiles:
    def test_capture_minimises_and_records_kinds(self):
        from repro.testing.conformance import _MUTATION_SPEC
        from repro.testing.strategies import generate_instance

        ps = generate_instance(_MUTATION_SPEC)
        repro = capture_repro(ps, mutation="quota-inflate")
        assert repro.instance.n < ps.n
        assert repro.divergence_kinds  # something was recorded
        assert repro.mutation == "quota-inflate"

    def test_round_trip_and_replay(self, tmp_path):
        from repro.testing.conformance import _MUTATION_SPEC
        from repro.testing.strategies import generate_instance

        ps = generate_instance(_MUTATION_SPEC)
        repro = capture_repro(ps, mutation="lid-lock-drop")
        path = tmp_path / "repro.json"
        save_repro(repro, path)
        back = load_repro(path)
        assert back.instance == repro.instance
        assert back.divergence_kinds == repro.divergence_kinds
        reproduces, report = replay_repro(back)
        assert reproduces, report.summary()

    def test_load_rejects_non_repro_file(self, tmp_path):
        from repro.serialization import save_json

        path = tmp_path / "ps.json"
        save_json(random_ps(4, 0.5, 1, seed=0, ensure_edges=True), path)
        with pytest.raises(ValueError, match="not a conformance repro"):
            load_repro(path)

    def test_clean_repro_replays_clean(self):
        # a repro with no recorded kinds is a regression fixture: the
        # replay must also be divergence-free to "reproduce"
        ps = random_ps(8, 0.4, 2, seed=4, ensure_edges=True)
        repro = ConformanceRepro(instance=ps, pipelines=("lic-reference", "lid-fast"))
        reproduces, report = replay_repro(repro)
        assert reproduces and report.ok


class TestConformanceEngine:
    def test_sweep_clean_on_default_pipelines(self):
        specs = [InstanceSpec(family="er", n=14, seed=s) for s in (0, 1)]
        result = conformance_sweep(specs)
        assert result.ok and len(result.cells) == 2
        assert not result.failures

    def test_smoke_specs_cover_edge_quota_model(self):
        specs = smoke_specs(max_n=50)
        assert any(s.quota_model == "degree" for s in specs)
        assert any(s.n == 50 for s in specs)

    def test_mutation_smoke_catches_everything(self, tmp_path):
        result = mutation_smoke(out_dir=tmp_path)
        assert result.ok, f"uncaught planted bugs: {result.missed}"
        assert sorted(o.mutation for o in result.outcomes) == sorted(MUTATIONS)
        for outcome in result.outcomes:
            assert outcome.repro_path is not None and outcome.repro_path.exists()
            # every minimised repro replays deterministically
            reproduces, _ = replay_repro(load_repro(outcome.repro_path))
            assert reproduces, outcome.mutation


class TestCli:
    def test_conformance_smoke_exit_zero_when_clean(self, capsys):
        from repro.experiments.cli import main

        # tiny sweep to keep the test fast; the real preset runs in CI
        assert main(["conformance", "--max-n", "30"]) == 0
        out = capsys.readouterr().out
        assert "planted bugs caught" in out

    def test_conformance_replay_via_cli(self, tmp_path, capsys):
        from repro.experiments.cli import main

        result = mutation_smoke(mutations=["quota-starve"], out_dir=tmp_path)
        path = result.outcomes[0].repro_path
        assert main(["conformance", "--replay", str(path)]) == 0
        assert "reproduces the recorded outcome" in capsys.readouterr().out

    def test_conformance_replay_detects_staleness(self, tmp_path, capsys):
        from repro.experiments.cli import main

        result = mutation_smoke(mutations=["quota-starve"], out_dir=tmp_path)
        repro = load_repro(result.outcomes[0].repro_path)
        stale = ConformanceRepro(
            instance=repro.instance, seed=repro.seed,
            pipelines=repro.pipelines, mutation=repro.mutation,
            description=repro.description,
            divergence_kinds=("messages",),  # never produced by this bug
        )
        path = tmp_path / "stale.json"
        save_repro(stale, path)
        assert main(["conformance", "--replay", str(path)]) == 1
        assert "REPLAY MISMATCH" in capsys.readouterr().out
