"""The cross-backend differential engine and the mutation harness."""

import pytest
from hypothesis import given, settings

from repro.testing.differential import (
    DEFAULT_PIPELINES,
    PIPELINES,
    REFERENCE_PIPELINE,
    TRUNCATED_PIPELINES,
    run_differential,
    run_pipeline,
)
from repro.testing.mutations import MUTATIONS, mutant_pipeline
from repro.testing.strategies import (
    InstanceSpec,
    generate_instance,
    preference_systems,
    random_ps,
)


class TestPipelines:
    def test_registry_covers_all_backends(self):
        base = {
            "lic-reference", "lic-fast", "lid-reference", "lid-fast",
            "lid-sharded", "lid-resilient",
        }
        # the defaults are exactly the untruncated six: truncated
        # pipelines are opt-in and must never leak into default sweeps
        assert set(DEFAULT_PIPELINES) == base
        truncated = {
            f"lid-truncated-{engine}@{label}"
            for engine in ("reference", "fast", "sharded", "resilient")
            for label in ("k1", "k3", "kinf")
        }
        assert set(PIPELINES) == base | truncated
        assert set(TRUNCATED_PIPELINES) == truncated
        assert REFERENCE_PIPELINE in DEFAULT_PIPELINES

    @pytest.mark.parametrize("name", sorted(PIPELINES))
    def test_each_pipeline_runs(self, name):
        ps = random_ps(12, 0.4, 2, seed=0, ensure_edges=True)
        run = run_pipeline(name, ps, seed=0)
        assert run.pipeline == name
        assert run.matching.n == ps.n
        assert run.total_satisfaction >= 0.0

    def test_message_counts_only_on_lid(self):
        ps = random_ps(12, 0.4, 2, seed=1, ensure_edges=True)
        lic = run_pipeline("lic-reference", ps)
        lid = run_pipeline("lid-reference", ps)
        assert lic.prop_messages is None
        assert lid.prop_messages is not None and lid.prop_messages > 0


class TestRunDifferential:
    def test_all_backends_agree_on_random_instance(self):
        ps = random_ps(30, 0.25, 3, seed=5, ensure_edges=True)
        report = run_differential(ps, seed=5)
        assert report.ok, report.summary()
        assert set(report.runs) == set(DEFAULT_PIPELINES)
        edges = {r.edge_set() for r in report.runs.values()}
        assert len(edges) == 1  # all six pipelines, one edge set

    @settings(max_examples=15, deadline=None)
    @given(preference_systems(max_n=7))
    def test_agreement_is_a_property(self, ps):
        report = run_differential(ps)
        assert report.ok, report.summary()

    def test_generated_families_agree(self):
        for family in ("geo", "ws", "reg"):
            ps = generate_instance(InstanceSpec(family=family, n=16, seed=2))
            report = run_differential(ps)
            assert report.ok, f"{family}: {report.summary()}"

    def test_subset_of_pipelines(self):
        ps = random_ps(10, 0.4, 2, seed=0, ensure_edges=True)
        report = run_differential(ps, pipelines=("lic-reference", "lid-fast"))
        assert set(report.runs) == {"lic-reference", "lid-fast"}

    def test_message_twins_checked(self):
        ps = random_ps(20, 0.3, 2, seed=9, ensure_edges=True)
        report = run_differential(
            ps, pipelines=("lid-reference", "lid-fast")
        )
        a, b = report.runs["lid-reference"], report.runs["lid-fast"]
        assert (a.prop_messages, a.rej_messages) == (b.prop_messages, b.rej_messages)
        assert report.ok

    def test_summary_names_the_divergence(self):
        ps = random_ps(14, 0.4, 2, seed=0, ensure_edges=True)
        report = run_differential(
            ps, pipelines=("lic-reference",),
            extra_pipelines={"mutant:quota-starve": MUTATIONS["quota-starve"]},
        )
        assert not report.ok
        assert "quota-starve" in report.summary()


class TestMutationsAreCaught:
    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_every_planted_bug_diverges(self, mutation):
        ps = generate_instance(InstanceSpec(
            family="er", n=18, preference_model="uniform",
            quota_model="constant", quota=3, seed=0,
        ))
        from repro.testing.conformance import mutation_bases

        report = run_differential(
            ps, pipelines=mutation_bases(mutation),
            extra_pipelines={f"mutant:{mutation}": mutant_pipeline(mutation)},
        )
        tag = f"mutant:{mutation}"
        caught = [d for d in report.divergences if tag in (d.left, d.right)]
        assert caught, f"planted bug {mutation} was not caught"

    def test_unknown_mutation_rejected(self):
        with pytest.raises(KeyError, match="unknown mutation"):
            mutant_pipeline("no-such-bug")
