"""The oracle battery: clean matchings pass, every corruption is typed."""

import pytest
from hypothesis import given, settings

from repro.core.lic import lic_matching, solve_modified_bmatching
from repro.core.matching import Matching
from repro.core.weights import WeightTable, satisfaction_weights
from repro.testing.oracles import (
    OracleReport,
    Violation,
    check_edge_locality,
    check_mutual_consistency,
    check_quota,
    check_satisfaction,
    check_symmetric_weights,
    check_theorem1_bound,
    check_theorem3_bound,
    verify_matching,
)
from repro.testing.strategies import preference_systems, random_ps


def _solved(ps):
    matching, wt = solve_modified_bmatching(ps)
    return matching, wt


class TestCleanMatchingsPass:
    @settings(max_examples=25, deadline=None)
    @given(preference_systems())
    def test_lic_output_passes_battery(self, ps):
        matching, wt = _solved(ps)
        report = verify_matching(ps, matching, wt=wt)
        assert report.ok, report.summary()

    def test_bounds_pass_on_small_instance(self):
        ps = random_ps(8, 0.5, 2, seed=3, ensure_edges=True)
        matching, wt = _solved(ps)
        report = verify_matching(ps, matching, wt=wt, bounds=True)
        assert report.ok, report.summary()
        assert "theorem1-bound" in report.checks_run
        assert "theorem3-bound" in report.checks_run

    def test_profile_checked_when_given(self):
        ps = random_ps(10, 0.4, 2, seed=1, ensure_edges=True)
        matching, _ = _solved(ps)
        good = matching.satisfaction_vector(ps)
        assert check_satisfaction(ps, matching, profile=good).ok
        bad = good + 0.25
        report = check_satisfaction(ps, matching, profile=bad)
        assert not report.ok
        assert all(v.check == "satisfaction" for v in report.violations)


class TestCorruptionsAreTyped:
    def test_quota_violation(self, small_ps):
        # node 0 has quota 1; hand it both neighbours
        over = Matching(small_ps.n, [(0, 1), (0, 2)])
        report = check_quota(small_ps, over)
        [v] = report.violations
        assert v.check == "quota" and v.subject == 0
        assert v.observed == 2.0 and v.expected == 1.0

    def test_edge_locality_violation(self, small_ps):
        # (0, 4) is not in E
        forged = [set(), set(), set(), set(), {0}]
        report = check_edge_locality(small_ps, forged)
        assert any(v.subject == (0, 4) for v in report.violations)

    def test_mutual_consistency_violation(self, small_ps):
        one_sided = [{1}, set(), set(), set(), set()]
        report = check_mutual_consistency(small_ps, one_sided)
        [v] = report.violations
        assert v.check == "mutual-consistency" and v.subject == (0, 1)

    def test_satisfaction_skips_infeasible_nodes(self, small_ps):
        # over-quota and non-local corruption is quota/locality's job;
        # the satisfaction oracle must not crash on it
        corrupt = [{1, 2}, {0}, {0}, set(), {0}]
        assert check_satisfaction(small_ps, corrupt).ok

    def test_symmetric_weights_detects_perturbation(self, small_ps):
        wt = satisfaction_weights(small_ps)
        weights = dict(wt.items())
        victim = max(weights)
        weights[victim] *= 2.0
        bad = WeightTable.from_trusted(weights, small_ps.n)
        report = check_symmetric_weights(small_ps, bad)
        assert any(v.subject == victim for v in report.violations)

    def test_symmetric_weights_detects_missing_edge(self, small_ps):
        wt = satisfaction_weights(small_ps)
        weights = dict(wt.items())
        victim = min(weights)
        del weights[victim]
        bad = WeightTable.from_trusted(weights, small_ps.n)
        report = check_symmetric_weights(small_ps, bad)
        assert any(
            v.subject == victim and "missing" in v.message
            for v in report.violations
        )

    def test_theorem3_flags_empty_matching(self):
        ps = random_ps(8, 0.6, 2, seed=2, ensure_edges=True)
        empty = Matching(ps.n, [])
        report = check_theorem3_bound(ps, empty)
        assert not report.ok

    def test_theorem1_accepts_cached_optimum(self):
        ps = random_ps(6, 0.6, 2, seed=4, ensure_edges=True)
        from repro.baselines.exact import optimal_satisfaction

        opt = optimal_satisfaction(ps)
        assert check_theorem1_bound(ps, optimum=opt).ok


class TestReportMechanics:
    def test_extend_merges_and_dedups_checks(self):
        a = OracleReport(checks_run=["quota"])
        b = OracleReport(
            violations=[Violation(check="quota", subject=0, message="x")],
            checks_run=["quota", "edge-locality"],
        )
        a.extend(b)
        assert a.checks_run == ["quota", "edge-locality"]
        assert not a.ok

    def test_by_check_groups(self):
        r = OracleReport(violations=[
            Violation(check="quota", subject=0, message="x"),
            Violation(check="quota", subject=1, message="y"),
            Violation(check="stability", subject=(0, 1), message="z"),
        ])
        grouped = r.by_check()
        assert len(grouped["quota"]) == 2 and len(grouped["stability"]) == 1

    def test_summary_mentions_every_check(self):
        ps = random_ps(6, 0.5, 2, seed=0, ensure_edges=True)
        matching = lic_matching(satisfaction_weights(ps), ps.quotas)
        s = verify_matching(ps, matching).summary()
        for check in ("quota", "edge-locality", "mutual-consistency",
                      "satisfaction"):
            assert f"{check}: ok" in s

    def test_raw_lock_sets_accepted(self, small_ps):
        # distributed runs verify dict node -> locked partners directly
        locks = {0: [1], 1: [0]}
        assert verify_matching(small_ps, locks).ok


class TestVerifyShim:
    def test_check_matching_delegates(self, small_ps):
        from repro.baselines.verify import check_matching

        matching, wt = _solved(small_ps)
        assert check_matching(small_ps, matching, wt=wt).ok

    def test_boolean_shim_deprecated(self, small_ps):
        from repro.baselines.verify import verify_matching as shim

        matching, _ = _solved(small_ps)
        with pytest.warns(DeprecationWarning, match="check_matching"):
            assert shim(small_ps, matching) is True

    def test_stability_report_counts_blocking_pairs(self, triangle_ps):
        from repro.baselines.verify import stability_report

        # empty matching on the 3-cycle: every edge blocks
        report = stability_report(triangle_ps, Matching(3, []))
        assert len(report.by_check().get("stability", [])) == 3
