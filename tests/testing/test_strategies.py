"""The shared instance generators: determinism, coverage, edge cases."""

import pytest
from hypothesis import given, settings

from repro.testing.strategies import (
    PREFERENCE_MODELS,
    QUOTA_MODELS,
    InstanceSpec,
    generate_instance,
    generate_weighted_instance,
    preference_systems,
    random_ps,
    spec_grid,
    weighted_instances,
)


class TestGenerateInstance:
    def test_deterministic(self):
        spec = InstanceSpec(family="er", n=25, seed=7)
        assert generate_instance(spec) == generate_instance(spec)

    def test_seed_changes_instance(self):
        a = generate_instance(InstanceSpec(family="er", n=25, seed=0))
        b = generate_instance(InstanceSpec(family="er", n=25, seed=1))
        assert a != b

    @pytest.mark.parametrize("model", PREFERENCE_MODELS)
    def test_preference_models_are_permutations(self, model):
        ps = generate_instance(
            InstanceSpec(family="geo", n=20, preference_model=model, seed=3)
        )
        for i in ps.nodes():
            lst = ps.preference_list(i)
            assert len(set(lst)) == len(lst)
            assert all(i in ps.preference_list(j) for j in lst)

    @pytest.mark.parametrize("qm", QUOTA_MODELS)
    def test_quota_models(self, qm):
        ps = generate_instance(
            InstanceSpec(family="er", n=20, quota_model=qm, quota=3, seed=1)
        )
        for i in ps.nodes():
            assert 0 <= ps.quota(i) <= max(len(ps.preference_list(i)), 0) or \
                ps.quota(i) <= 3
        if qm == "degree":
            # the saturating edge case the oracles exercise: b_i = |L_i|
            assert all(
                ps.quota(i) == len(ps.preference_list(i)) for i in ps.nodes()
            )
        if qm == "one":
            assert all(ps.quota(i) <= 1 for i in ps.nodes())

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown family"):
            generate_instance(InstanceSpec(family="torus", n=10))

    def test_unknown_preference_model_rejected(self):
        with pytest.raises(ValueError, match="preference model"):
            generate_instance(InstanceSpec(preference_model="psychic", n=10))

    def test_label_round_trip_fields(self):
        spec = InstanceSpec(family="ba", n=40, preference_model="shared",
                            quota_model="uniform", quota=2, seed=5)
        assert spec.label() == "ba/n=40/shared/uniform-2/s5"


class TestWeightedAndGrid:
    def test_weighted_instance_covers_topology(self):
        wt, quotas = generate_weighted_instance(InstanceSpec(family="er", n=20))
        assert wt.n == 20 and len(quotas) == 20
        assert all(w > 0 for _, w in wt.items())

    def test_spec_grid_is_full_cross_product(self):
        specs = list(spec_grid(families=("er",), sizes=(10, 20),
                               preference_models=("uniform",),
                               quota_models=("constant", "one"), seeds=(0, 1)))
        assert len(specs) == 1 * 2 * 1 * 2 * 2
        assert len(set(specs)) == len(specs)  # hashable + distinct


class TestRandomPs:
    def test_ensure_edges(self):
        ps = random_ps(4, 0.0, 1, seed=0, ensure_edges=True)
        assert ps.m >= 1

    def test_isolated_nodes_allowed(self):
        ps = random_ps(6, 0.0, 2, seed=0)
        assert ps.m == 0


class TestHypothesisStrategies:
    @settings(max_examples=20, deadline=None)
    @given(preference_systems())
    def test_preference_systems_valid(self, ps):
        for i in ps.nodes():
            assert ps.quota(i) <= max(len(ps.preference_list(i)), 1)

    @settings(max_examples=20, deadline=None)
    @given(weighted_instances())
    def test_weighted_instances_valid(self, inst):
        wt, quotas = inst
        assert wt.n == len(quotas)
        assert all(w > 0 for _, w in wt.items())
