"""Tests for the seeded fault-campaign harness."""

import pytest

from repro.distsim.reliable import BackoffPolicy
from repro.experiments.campaign import (
    CampaignConfig,
    run_campaign,
    run_cell,
)
from repro.experiments.cli import main


SMALL = CampaignConfig(
    n=24,
    loss_rates=(0.1,),
    crash_fracs=(0.0, 0.08),
    partition=(False, True),
    byzantine_fracs=(0.0, 0.1),
    seeds=(0,),
)


class TestConfig:
    def test_cell_enumeration_is_the_cross_product(self):
        cells = list(SMALL.cells())
        assert len(cells) == 1 * 2 * 2 * 2 * 1
        assert len(set(cells)) == len(cells)

    def test_rejects_large_byzantine_fraction(self):
        with pytest.raises(ValueError, match="byzantine"):
            CampaignConfig(byzantine_fracs=(0.9,))

    def test_rejects_budget_shorter_than_partition(self):
        # a 2-retry budget gives up long before the partition heals
        with pytest.raises(ValueError, match="span"):
            CampaignConfig(
                backoff=BackoffPolicy(base=0.5, cap=1.0, jitter=0.0, budget=2),
                suspect_after=20.0,
            )

    def test_partition_window_outlasts_suspicion(self):
        cfg = CampaignConfig()
        start, end = cfg.partition_window()
        assert end - start > cfg.suspect_after


class TestCampaignRuns:
    def test_every_cell_passes(self):
        result = run_campaign(SMALL)
        assert len(result.cells) == 8
        assert result.ok, [
            (c.label(), c.violations[:2]) for c in result.failures
        ]
        for cell in result.cells:
            assert cell.terminated
            assert cell.violations == []
            assert cell.valid
            assert cell.blocking_edges == 0
            assert 0.0 < cell.degradation <= 1.0 + 1e-9

    def test_fault_free_ish_cell_keeps_welfare(self):
        cell = run_cell(SMALL, loss=0.1, crash_frac=0.0, partitioned=False,
                        byz_frac=0.0, seed=0)
        assert cell.ok
        assert cell.degradation > 0.9
        assert cell.live_honest == SMALL.n
        assert cell.clean >= SMALL.n - 4

    def test_cells_are_deterministic(self):
        a = run_cell(SMALL, 0.1, 0.08, True, 0.1, seed=0)
        b = run_cell(SMALL, 0.1, 0.08, True, 0.1, seed=0)
        assert a.satisfaction == b.satisfaction
        assert a.events == b.events
        assert a.retransmissions == b.retransmissions

    def test_progress_callback_streams_cells(self):
        seen = []
        run_campaign(SMALL, progress=seen.append)
        assert len(seen) == 8
        assert all(c.ok for c in seen)

    def test_rows_render(self):
        result = run_campaign(SMALL)
        rows = result.rows()
        assert len(rows) == 8
        assert {"cell", "ok", "degrade", "viol"} <= set(rows[0])


class TestCampaignCli:
    def test_campaign_command_passes(self, capsys):
        assert main(["campaign", "--n", "16", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "fault campaign" in out
        assert "zero invariant violations" in out

    def test_campaign_smoke_flag_parses(self):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(["campaign", "--smoke"])
        assert args.smoke and args.n is None and args.seeds == 2
