"""Tests for declarative grid specs: expansion, hashing, fault DSL."""

import pytest

from repro.experiments.gridspec import (
    ENGINES,
    PROFILES,
    FaultSpec,
    GridCell,
    GridSpec,
    engine_backend,
    load_spec,
)


def tiny_spec(**overrides) -> GridSpec:
    base = dict(
        name="tiny",
        engines=("lic-reference", "lid-fast", "resilient"),
        families=("er", "ba"),
        sizes=(12,),
        quotas=(2,),
        churn=(0, 4),
        faults=("none", "loss=0.2"),
        seeds=(0, 1),
    )
    base.update(overrides)
    return GridSpec(**base)


class TestFaultSpec:
    def test_parse_none(self):
        assert FaultSpec.parse("none").is_clean
        assert FaultSpec.parse("clean") == FaultSpec()
        assert FaultSpec.parse("none").label() == "none"

    def test_roundtrip_label(self):
        f = FaultSpec(loss=0.3, crash=0.05, partition=True, byzantine=0.1)
        assert FaultSpec.parse(f.label()) == f

    def test_parse_aliases_and_order(self):
        a = FaultSpec.parse("byzantine=0.1+loss=0.3")
        b = FaultSpec.parse("loss=0.3+byz=0.1")
        assert a == b
        assert a.label() == "loss=0.3+byz=0.1"  # canonical term order

    @pytest.mark.parametrize("bad", [
        "loss", "warp=0.1", "loss=0.1+loss=0.2", "loss=1.5", "byz=0.9",
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            FaultSpec.parse(bad)


class TestExpansion:
    def test_compatibility_rules(self):
        spec = tiny_spec()
        cells = spec.cells()
        for c in cells:
            if c.fault != "none":
                assert c.engine == "resilient"
            if c.engine == "resilient":
                assert c.family == "er" and c.churn == 0
            if c.churn:
                assert c.engine.startswith("lic-")
        # static: 2 engines x 2 fams x 2 seeds; churn: lic only 2x2;
        # resilient: er only, 2 faults x 2 seeds
        assert len(cells) == 8 + 4 + 4

    def test_cells_deterministic_and_unique(self):
        spec = tiny_spec()
        ids = [c.cell_id for c in spec.cells()]
        assert ids == [c.cell_id for c in spec.cells()]
        assert len(set(ids)) == len(ids)

    def test_cell_ids_filename_safe(self):
        for c in tiny_spec().cells():
            assert "/" not in c.cell_id and "=" not in c.cell_id
            assert " " not in c.cell_id

    def test_zero_compatible_cells_rejected(self):
        with pytest.raises(ValueError, match="zero compatible"):
            # churn-only sweep on a LID engine can never expand
            GridSpec(name="x", engines=("lid-fast",), churn=(5,)).cells()

    def test_engine_backend(self):
        assert engine_backend("lic-fast") == "fast"
        assert engine_backend("lid-reference") == "reference"
        assert engine_backend("resilient") == "reference"


class TestValidation:
    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            tiny_spec(engines=("warp",))

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown family"):
            tiny_spec(families=("torus",))

    def test_empty_axis(self):
        with pytest.raises(ValueError, match="at least one"):
            tiny_spec(seeds=())

    def test_density_degree_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            tiny_spec(families=("er",), density=0.3, degree=8.0)

    def test_density_requires_er_only(self):
        with pytest.raises(ValueError, match="er"):
            tiny_spec(density=0.3)  # families includes "ba"

    def test_bad_name(self):
        with pytest.raises(ValueError, match="name"):
            tiny_spec(name="has spaces")

    def test_fault_strings_canonicalised(self):
        spec = tiny_spec(faults=("byzantine=0.1+loss=0.3",))
        assert spec.faults == ("loss=0.3+byz=0.1",)


class TestHashing:
    def test_hash_stable(self):
        assert tiny_spec().spec_hash() == tiny_spec().spec_hash()

    def test_hash_changes_with_any_field(self):
        base = tiny_spec().spec_hash()
        assert tiny_spec(sizes=(13,)).spec_hash() != base
        assert tiny_spec(seeds=(0,)).spec_hash() != base
        assert tiny_spec(suspect_after=6.0).spec_hash() != base
        assert tiny_spec(name="tiny2").spec_hash() != base

    def test_mapping_roundtrip_preserves_hash(self):
        spec = tiny_spec()
        again = GridSpec.from_mapping(spec.to_mapping())
        assert again == spec
        assert again.spec_hash() == spec.spec_hash()

    def test_from_mapping_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown grid-spec keys"):
            GridSpec.from_mapping({"name": "x", "engines": ["lic-fast"],
                                   "warp": 9})


class TestTomlAndProfiles:
    def test_toml_roundtrip(self, tmp_path):
        pytest.importorskip("tomllib")
        spec = tiny_spec()
        lines = []
        for key, value in spec.to_mapping().items():
            if value is None:
                continue
            if isinstance(value, str):
                lines.append(f'{key} = "{value}"')
            elif isinstance(value, bool):
                lines.append(f"{key} = {str(value).lower()}")
            elif isinstance(value, list):
                items = ", ".join(
                    f'"{v}"' if isinstance(v, str) else str(v) for v in value
                )
                lines.append(f"{key} = [{items}]")
            else:
                lines.append(f"{key} = {value}")
        path = tmp_path / "spec.toml"
        path.write_text("\n".join(lines) + "\n")
        assert GridSpec.from_toml(path) == spec

    def test_load_spec_resolves_profiles(self):
        assert load_spec("smoke") is PROFILES["smoke"]
        assert load_spec(PROFILES["smoke"]) is PROFILES["smoke"]

    def test_profiles_expand(self):
        for name, spec in PROFILES.items():
            cells = spec.cells()
            assert cells, name
            assert all(isinstance(c, GridCell) for c in cells)

    def test_smoke_profile_covers_every_engine(self):
        engines = {c.engine for c in PROFILES["smoke"].cells()}
        assert engines == set(ENGINES)


class TestServiceEngine:
    def test_backend_is_fast(self):
        assert engine_backend("lid-service") == "fast"

    def test_service_cells_require_churn(self):
        spec = tiny_spec(engines=("lid-service",), faults=("none",))
        cells = spec.cells()
        assert cells
        assert all(c.churn > 0 for c in cells)

    def test_service_cells_reject_faults(self):
        spec = tiny_spec(engines=("lid-service",))
        assert all(c.fault == "none" for c in spec.cells())

    def test_service_knob_validation(self):
        with pytest.raises(ValueError, match="unknown service workload"):
            tiny_spec(service_workload="tsunami")
        with pytest.raises(ValueError, match="service_budget"):
            tiny_spec(service_budget=-1)
        with pytest.raises(ValueError, match="service_differential_every"):
            tiny_spec(service_differential_every=-1)

    def test_service_knobs_change_spec_hash(self):
        base = tiny_spec().spec_hash()
        assert tiny_spec(service_workload="storm").spec_hash() != base
        assert tiny_spec(service_budget=4).spec_hash() != base
        assert tiny_spec(service_differential_every=10).spec_hash() != base

    def test_smoke_profile_includes_service_engine(self):
        engines = {c.engine for c in PROFILES["smoke"].cells()}
        assert "lid-service" in engines
