"""Tests for the benchmark CSV gate extracted from ci.yml."""

import importlib.util
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


def _load_gate():
    # benchmarks/ is intentionally not a package; load the module by path
    spec = importlib.util.spec_from_file_location(
        "bench_gate", REPO / "benchmarks" / "gate.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


gate = _load_gate()

ROWS = [
    {"n": "20000", "speedup": "18.4", "note": "x"},
    {"n": "50000", "speedup": "22.1", "note": "y"},
    {"n": "100000", "speedup": "nan-ish", "note": "z"},
]


class TestParseCondition:
    def test_parses(self):
        assert gate.parse_condition("n=20000") == ("n", "20000")
        assert gate.parse_condition(" n = 20000 ") == ("n", "20000")

    @pytest.mark.parametrize("bad", ["n", "=5", ""])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            gate.parse_condition(bad)


class TestCheckGate:
    def test_passes_and_reports(self):
        msgs = gate.check_gate(ROWS, "speedup", 10.0, [("n", "20000")])
        assert msgs == ["gate ok: speedup=18.4 >= 10 at n=20000"]

    def test_regression_fails(self):
        with pytest.raises(gate.GateError, match="regressed"):
            gate.check_gate(ROWS, "speedup", 19.0, [("n", "20000")])

    def test_missing_gate_row_fails(self):
        with pytest.raises(gate.GateError, match="gate row was dropped"):
            gate.check_gate(ROWS, "speedup", 10.0, [("n", "999")])

    def test_non_numeric_column_fails(self):
        with pytest.raises(gate.GateError, match="no numeric"):
            gate.check_gate(ROWS, "speedup", 10.0, [("n", "100000")])
        with pytest.raises(gate.GateError, match="no numeric"):
            gate.check_gate(ROWS, "absent", 10.0, [("n", "20000")])

    def test_unfiltered_gate_applies_to_every_row(self):
        ok = [r for r in ROWS if r["n"] != "100000"]
        msgs = gate.check_gate(ok, "speedup", 10.0)
        assert len(msgs) == 2

    def test_max_passes_and_reports(self):
        msgs = gate.check_gate(ROWS, "speedup", None, [("n", "20000")],
                               maximum=20.0)
        assert msgs == ["gate ok: speedup=18.4 <= 20 at n=20000"]

    def test_max_exceeded_fails(self):
        with pytest.raises(gate.GateError, match="exceeded its bound"):
            gate.check_gate(ROWS, "speedup", None, [("n", "20000")],
                            maximum=10.0)

    def test_min_and_max_corridor(self):
        msgs = gate.check_gate(ROWS, "speedup", 10.0, [("n", "20000")],
                               maximum=20.0)
        assert len(msgs) == 2
        with pytest.raises(ValueError, match="empty gate corridor"):
            gate.check_gate(ROWS, "speedup", 20.0, [("n", "20000")],
                            maximum=10.0)

    def test_no_bound_rejected(self):
        with pytest.raises(ValueError, match="minimum and/or a maximum"):
            gate.check_gate(ROWS, "speedup", None, [("n", "20000")])

    def test_require_row(self):
        msgs = gate.check_gate(
            ROWS, "speedup", 10.0, [("n", "20000")],
            require_rows=[[("n", "100000")]],
        )
        assert "row present: n=100000" in msgs
        with pytest.raises(gate.GateError, match="required row .* missing"):
            gate.check_gate(ROWS, "speedup", 10.0, [("n", "20000")],
                            require_rows=[[("n", "31337")]])


class TestMain:
    def _csv(self, tmp_path, rows=ROWS):
        path = tmp_path / "bench.csv"
        cols = list(rows[0])
        lines = [",".join(cols)]
        lines += [",".join(r[c] for c in cols) for r in rows]
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_exit_zero_on_pass(self, tmp_path, capsys):
        path = self._csv(tmp_path)
        rc = gate.main([str(path), "--column", "speedup", "--min", "10",
                        "--where", "n=20000", "--require-row", "n=100000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gate ok" in out and "row present" in out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        path = self._csv(tmp_path)
        rc = gate.main([str(path), "--column", "speedup", "--min", "100",
                        "--where", "n=20000"])
        assert rc == 1
        assert "GATE FAILED" in capsys.readouterr().err

    def test_exit_one_on_missing_file(self, tmp_path, capsys):
        rc = gate.main([str(tmp_path / "absent.csv"),
                        "--column", "speedup", "--min", "10"])
        assert rc == 1
        assert "GATE FAILED" in capsys.readouterr().err

    def test_exit_one_on_bad_condition(self, tmp_path, capsys):
        path = self._csv(tmp_path)
        rc = gate.main([str(path), "--column", "speedup", "--min", "10",
                        "--where", "bogus"])
        assert rc == 1

    def test_max_flag_pass_and_fail(self, tmp_path, capsys):
        path = self._csv(tmp_path)
        rc = gate.main([str(path), "--column", "speedup", "--max", "20",
                        "--where", "n=20000"])
        assert rc == 0
        assert "<= 20" in capsys.readouterr().out
        rc = gate.main([str(path), "--column", "speedup", "--max", "10",
                        "--where", "n=20000"])
        assert rc == 1
        assert "exceeded its bound" in capsys.readouterr().err

    def test_missing_bounds_is_usage_error(self, tmp_path, capsys):
        path = self._csv(tmp_path)
        with pytest.raises(SystemExit) as exc:
            gate.main([str(path), "--column", "speedup"])
        assert exc.value.code == 2
        assert "--min/--max" in capsys.readouterr().err

    def test_ci_invocation_against_archived_csv(self, capsys):
        """The exact arguments the bench-smoke job runs must pass."""
        csv_path = REPO / "benchmarks" / "results" / "p4_fast_lid.csv"
        if not csv_path.exists():
            pytest.skip("archived p4 CSV not present")
        rc = gate.main([str(csv_path), "--column", "speedup", "--min", "10",
                        "--where", "n=20000", "--require-row", "n=100000"])
        assert rc == 0, capsys.readouterr().err
