"""Tests for the experiments harness (instances, runner, reporting, ratios)."""

import numpy as np
import pytest

from repro.experiments.instances import (
    FAMILIES,
    cyclic_roommates,
    family_instance,
    random_preference_instance,
    random_weighted_instance,
    topology_for_family,
)
from repro.experiments.ratios import satisfaction_ratio_record, weight_ratio_record
from repro.experiments.reporting import format_table, write_csv
from repro.experiments.runner import aggregate, sweep


class TestInstances:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_families_build(self, family):
        topo = topology_for_family(family, 30, np.random.default_rng(0))
        assert topo.n == 30
        ps = family_instance(family, 30, 2, seed=1)
        assert ps.n == 30

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            topology_for_family("nope", 10, np.random.default_rng(0))

    def test_random_preference_instance_reproducible(self):
        a = random_preference_instance(15, 0.3, 2, seed=9)
        b = random_preference_instance(15, 0.3, 2, seed=9)
        assert a == b

    def test_weighted_instance(self):
        wt, quotas = random_weighted_instance(20, 0.3, seed=1)
        assert wt.n == 20 and len(quotas) == 20
        assert all(1 <= q <= 4 for q in quotas)
        assert all(w > 0 for _, w in wt.items())

    def test_cyclic_roommates_structure(self):
        ps = cyclic_roommates(5)
        assert ps.n == 5 and ps.m == 5
        for i in range(5):
            assert ps.rank(i, (i + 1) % 5) == 0  # prefers successor
        with pytest.raises(ValueError):
            cyclic_roommates(2)


class TestRatios:
    def test_weight_ratio_record_fields(self):
        wt, quotas = random_weighted_instance(15, 0.3, seed=2)
        rec = weight_ratio_record(wt, quotas)
        assert rec["bound_ok"] and rec["certificate"] and rec["lid_equals_lic"]
        assert 0.5 <= rec["ratio"] <= 1.0 + 1e-9

    def test_satisfaction_ratio_record_fields(self):
        ps = random_preference_instance(12, 0.4, 2, seed=3)
        rec = satisfaction_ratio_record(ps)
        assert rec["bound_ok"]
        assert rec["ratio"] <= 1.0 + 1e-9
        assert rec["bound"] == pytest.approx(0.25 * (1 + 1 / ps.b_max))


class TestRunner:
    def test_sweep_product(self):
        rows = sweep(lambda a, b: {"s": a + b}, {"a": [1, 2], "b": [10, 20]})
        assert len(rows) == 4
        assert {"a": 1, "b": 20, "s": 21} in rows

    def test_sweep_repeats_inject_seed(self):
        rows = sweep(
            lambda seed: {"seed_used": seed}, {"seed": [0]}, repeats=3
        )
        assert [r["seed_used"] for r in rows] == [0, 1, 2]
        assert [r["rep"] for r in rows] == [0, 1, 2]

    def test_aggregate_means_and_bool_fractions(self):
        rows = [
            {"g": "x", "v": 1.0, "ok": True},
            {"g": "x", "v": 3.0, "ok": False},
            {"g": "y", "v": 10.0, "ok": True},
        ]
        agg = aggregate(rows, ["g"], ["v", "ok"])
        by_g = {r["g"]: r for r in agg}
        assert by_g["x"]["v"] == 2.0 and by_g["x"]["ok"] == 0.5
        assert by_g["y"]["count"] == 1

    def test_aggregate_custom_reducer(self):
        rows = [{"g": 1, "v": 5.0}, {"g": 1, "v": 1.0}]
        agg = aggregate(rows, ["g"], ["v"], reducers={"v": min})
        assert agg[0]["v"] == 1.0


class TestReporting:
    def test_format_table(self):
        text = format_table(
            [{"a": 1, "ok": True, "r": 0.51234}], title="T"
        )
        assert "T" in text and "a" in text and "yes" in text and "0.5123" in text

    def test_empty(self):
        assert "(no rows)" in format_table([])

    def test_write_csv(self, tmp_path):
        p = tmp_path / "out.csv"
        write_csv([{"a": 1, "b": 2}, {"a": 3, "c": 4}], p)
        text = p.read_text()
        assert text.splitlines()[0] == "a,b,c"
        assert "3,,4" in text

    def test_write_csv_empty(self, tmp_path):
        p = tmp_path / "empty.csv"
        write_csv([], p)
        assert p.read_text() == ""


class TestHistogram:
    def test_ascii_histogram_shape(self):
        from repro.experiments.reporting import ascii_histogram

        text = ascii_histogram([0.1, 0.1, 0.9], bins=2, width=10, lo=0, hi=1)
        lines = text.strip().splitlines()
        assert len(lines) == 2
        assert "2" in lines[0] and "1" in lines[1]
        assert lines[0].count("#") == 10  # peak bin at full width

    def test_ascii_histogram_empty_and_flat(self):
        from repro.experiments.reporting import ascii_histogram

        assert "(no data)" in ascii_histogram([])
        # constant data must not divide by zero
        text = ascii_histogram([0.5, 0.5, 0.5], bins=4)
        assert text.count("3") >= 1

    def test_sparkline(self):
        from repro.experiments.reporting import sparkline

        s = sparkline([0, 1, 2, 3])
        assert len(s) == 4 and s[0] == "▁" and s[-1] == "█"
        assert sparkline([]) == ""
        assert sparkline([2, 2]) == "▁▁"


def _square_job(x, seed=0):
    """Module-level so the parallel sweep can pickle it."""
    return {"sq": x * x + seed * 0}


def _backend_job(x, backend="reference"):
    """Module-level, accepts ``backend``: picklable for worker pools."""
    return {"used": backend, "x2": 2 * x}


def _no_backend_job(x):
    """Module-level, does NOT accept ``backend``."""
    return {"x2": 2 * x}


def _lic_job(n, seed=0, backend="reference"):
    """Solve a small instance on the requested backend (module-level)."""
    from repro.core import get_backend
    from repro.experiments.instances import random_preference_instance

    ps = random_preference_instance(n, 0.3, 2, seed=seed)
    m = get_backend(backend).solve(ps)
    return {"edges": m.size()}


class TestParallelSweep:
    def test_workers_match_sequential(self):
        grid = {"x": [1, 2, 3, 4]}
        seq = sweep(_square_job, grid)
        par = sweep(_square_job, grid, workers=2)
        assert seq == par

    def test_workers_with_repeats(self):
        rows = sweep(_square_job, {"x": [2]}, repeats=3, workers=2)
        assert [r["rep"] for r in rows] == [0, 1, 2]
        assert all(r["sq"] == 4 for r in rows)

    def test_workers_preserve_record_order(self):
        grid = {"x": [5, 1, 4, 2, 3]}
        rows = sweep(_square_job, grid, workers=3)
        assert [r["x"] for r in rows] == [5, 1, 4, 2, 3]
        assert [r["sq"] for r in rows] == [25, 1, 16, 4, 9]

    def test_workers_with_seed_offsets(self):
        seq = sweep(
            lambda seed: {"seed_used": seed}, {"seed": [0, 1]}, repeats=2
        )
        par = sweep(_seed_echo_job, {"seed": [0, 1]}, repeats=2, workers=2)
        assert [r["seed_used"] for r in par] == [r["seed_used"] for r in seq]

    def test_one_worker_stays_sequential(self):
        rows = sweep(_square_job, {"x": [3]}, workers=1)
        assert rows == [{"x": 3, "sq": 9}]


def _seed_echo_job(seed):
    """Module-level echo of the injected seed (picklable)."""
    return {"seed_used": seed}


class TestSweepBackend:
    def test_backend_injected_and_annotated(self):
        rows = sweep(_backend_job, {"x": [1, 2]}, backend="fast")
        assert all(r["backend"] == "fast" and r["used"] == "fast" for r in rows)

    def test_backend_annotation_without_injection(self):
        # run() does not accept backend: annotate only, never pass it
        rows = sweep(_no_backend_job, {"x": [1]}, backend="fast")
        assert rows == [{"x": 1, "backend": "fast", "x2": 2}]

    def test_no_backend_by_default(self):
        rows = sweep(_backend_job, {"x": [1]})
        assert "backend" not in rows[0]
        assert rows[0]["used"] == "reference"  # run()'s own default

    def test_grid_value_wins_over_sweep_backend(self):
        rows = sweep(
            _backend_job, {"x": [1], "backend": ["reference"]}, backend="fast"
        )
        assert rows[0]["used"] == "reference"

    def test_unknown_backend_rejected_before_running(self):
        with pytest.raises(ValueError, match="unknown backend"):
            sweep(_backend_job, {"x": [1]}, backend="bogus")

    @pytest.mark.parametrize("workers", [None, 2])
    def test_backends_agree_across_workers(self, workers):
        grid = {"n": [12, 16]}
        ref = sweep(_lic_job, grid, backend="reference", workers=workers)
        fast = sweep(_lic_job, grid, backend="fast", workers=workers)
        assert [r["edges"] for r in ref] == [r["edges"] for r in fast]
        assert all(r["backend"] == "fast" for r in fast)
