"""Tests for the CLI (direct main() calls + one subprocess smoke test)."""

import subprocess
import sys

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scenario_defaults(self):
        args = build_parser().parse_args(["scenario", "file_sharing"])
        assert args.n == 60 and args.seed == 0

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "nope"])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "zz"])


class TestCommands:
    def test_scenario(self, capsys):
        assert main(["scenario", "geo_latency", "--n", "25"]) == 0
        out = capsys.readouterr().out
        assert "total satisfaction" in out and "messages" in out

    def test_compare_with_exact(self, capsys):
        assert main(["compare", "heterogeneous", "--n", "20", "--exact"]) == 0
        out = capsys.readouterr().out
        assert "LID" in out and "OPT" in out and "random" in out

    @pytest.mark.parametrize("exp", ["t1", "t2", "t4", "f4"])
    def test_experiments(self, exp, capsys):
        assert main(["experiment", exp, "--n", "20"]) == 0
        out = capsys.readouterr().out
        assert exp.upper() in out

    def test_churn(self, capsys):
        assert main(["churn", "--n", "25", "--events", "6"]) == 0
        out = capsys.readouterr().out
        assert "churn events" in out and "satisfaction" in out


class TestBackendFlag:
    def test_compare_backend_default(self):
        args = build_parser().parse_args(["compare", "geo_latency"])
        assert args.backend == "reference"

    def test_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "geo_latency", "--backend", "gpu"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["churn", "--backend", "gpu"])

    def test_compare_fast_backend(self, capsys):
        assert main(["compare", "geo_latency", "--n", "20",
                     "--backend", "fast"]) == 0
        assert "LIC[fast]" in capsys.readouterr().out

    def test_compare_backends_same_matching(self, capsys):
        """The LIC row must be numerically identical on both backends."""
        assert main(["compare", "geo_latency", "--n", "20"]) == 0
        ref_out = capsys.readouterr().out
        assert main(["compare", "geo_latency", "--n", "20",
                     "--backend", "fast"]) == 0
        fast_out = capsys.readouterr().out

        def lic_row(text, label):
            line = next(ln for ln in text.splitlines() if label in ln)
            return line.split("|")[1:]  # total/mean/min columns

        assert lic_row(ref_out, "LIC[reference]") == lic_row(fast_out, "LIC[fast]")

    def test_churn_fast_backend_reports_cache(self, capsys):
        assert main(["churn", "--n", "25", "--events", "6",
                     "--backend", "fast"]) == 0
        out = capsys.readouterr().out
        assert "weight cache" in out and "% reuse" in out

    def test_churn_reference_backend_no_cache_line(self, capsys):
        assert main(["churn", "--n", "25", "--events", "6"]) == 0
        assert "weight cache" not in capsys.readouterr().out


def test_module_entry_point():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "scenario", "interest_social", "--n", "20"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "total satisfaction" in proc.stdout


class TestNewCommands:
    def test_discover(self, capsys):
        from repro.experiments.cli import main

        assert main(["discover", "--n", "20", "--rounds", "4"]) == 0
        out = capsys.readouterr().out
        assert "discovery" in out and "matching" in out

    def test_experiment_f6(self, capsys):
        from repro.experiments.cli import main

        assert main(["experiment", "f6", "--n", "16"]) == 0
        assert "F6" in capsys.readouterr().out


class TestGridCli:
    TOML = """\
name = "clitiny"
engines = ["lic-fast", "lid-fast"]
families = ["er"]
sizes = [12]
quotas = [2]
seeds = [0]
density = 0.4
"""

    @pytest.fixture
    def spec_file(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "spec.toml"
        path.write_text(self.TOML)
        return path

    def test_parser_requires_grid_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["grid"])

    def test_run_requires_a_spec_selection(self):
        with pytest.raises(SystemExit, match="select a sweep"):
            main(["grid", "run"])

    def test_run_status_report_roundtrip(self, spec_file, tmp_path, capsys):
        store = tmp_path / "store"

        assert main(["grid", "status", "--spec", str(spec_file),
                     "--store", str(store)]) == 0
        assert "0/2 cells complete" in capsys.readouterr().out

        assert main(["grid", "run", "--spec", str(spec_file),
                     "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "clitiny" in out and "ok" in out and "FAIL" not in out

        assert main(["grid", "status", "--spec", str(spec_file),
                     "--store", str(store)]) == 0
        assert "2/2 cells complete" in capsys.readouterr().out

        out_dir = tmp_path / "results"
        assert main(["grid", "report", "--spec", str(spec_file),
                     "--store", str(store), "--out", str(out_dir)]) == 0
        report_out = capsys.readouterr().out
        assert "report:" in report_out and "summary:" in report_out
        assert (store / "report.md").exists()
        assert (out_dir / "grid_clitiny_summary.csv").exists()

    def test_rerun_reuses_completed_cells(self, spec_file, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["grid", "run", "--spec", str(spec_file),
                     "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["grid", "run", "--spec", str(spec_file),
                     "--store", str(store)]) == 0
        assert "0 executed, 2 reused" in capsys.readouterr().out

    def test_report_on_incomplete_store_fails_without_partial(
            self, spec_file, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["grid", "run", "--spec", str(spec_file),
                     "--store", str(store)]) == 0
        next(iter((store / "cells").glob("*.json"))).unlink()
        capsys.readouterr()
        assert main(["grid", "report", "--spec", str(spec_file),
                     "--store", str(store)]) == 1
        assert "incomplete" in capsys.readouterr().out
        assert main(["grid", "report", "--spec", str(spec_file),
                     "--store", str(store), "--partial"]) == 0

    def test_stale_store_exits_nonzero(self, spec_file, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["grid", "run", "--spec", str(spec_file),
                     "--store", str(store)]) == 0
        edited = tmp_path / "edited.toml"
        edited.write_text(self.TOML.replace("sizes = [12]", "sizes = [13]"))
        capsys.readouterr()
        assert main(["grid", "run", "--spec", str(edited),
                     "--store", str(store)]) == 1
        assert "refusing to reuse" in capsys.readouterr().out


class TestRegistry:
    def test_list_command(self, capsys):
        from repro.experiments.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "t1" in out and "f6" in out and "p2" in out

    def test_registry_lookup(self):
        from repro.experiments.registry import EXPERIMENTS, get_experiment

        assert get_experiment("T3").bench.endswith("bench_t3_equivalence.py")
        with pytest.raises(KeyError):
            get_experiment("zz")
        assert len({e.id for e in EXPERIMENTS}) == len(EXPERIMENTS)

    def test_registry_matches_bench_files(self):
        from pathlib import Path
        from repro.experiments.registry import EXPERIMENTS

        root = Path(__file__).parents[2]
        for e in EXPERIMENTS:
            assert (root / e.bench).exists(), e.bench
