"""Tests for the grid runner: stores, resume, aggregation, campaign."""

import json

import pytest

from repro.experiments.aggregate import (
    GridIncompleteError,
    collect_records,
    grid_status,
    render_report,
    summarise,
    write_report,
)
from repro.experiments.campaign import CampaignConfig, run_campaign
from repro.experiments.grid import (
    GridStore,
    StaleStoreError,
    run_grid,
    run_grid_cell,
)
from repro.experiments.gridspec import GridSpec

TINY = GridSpec(
    name="tiny",
    engines=("lic-reference", "lic-fast", "lid-reference", "lid-fast"),
    families=("er",),
    sizes=(14,),
    quotas=(2,),
    churn=(0, 4),
    seeds=(0, 1),
    density=0.35,
)

FAULTY = GridSpec(
    name="tiny-faults",
    engines=("resilient",),
    families=("er",),
    sizes=(16,),
    quotas=(2,),
    faults=("loss=0.1", "loss=0.2+crash=0.1"),
    seeds=(0,),
    density=0.3,
)


class TestRunGrid:
    def test_records_in_cell_order_and_ok(self):
        res = run_grid(TINY)
        assert [tuple(r[k] for k in ("engine", "churn", "seed"))
                for r in res.records] \
            == [(c.engine, c.churn, c.seed) for c in TINY.cells()]
        assert res.ok and not res.failures
        assert res.executed == len(TINY.cells()) and res.reused == 0

    def test_instances_are_engine_independent(self):
        res = run_grid(TINY)
        static = [r for r in res.records if not r["churn"]]
        by_seed = {}
        for r in static:
            by_seed.setdefault(r["seed"], set()).add(
                (r["m"], r["edges"], round(r["sat_total"], 9))
            )
        # every engine saw the same instance and found the same matching
        for seed, outcomes in by_seed.items():
            assert len(outcomes) == 1, (seed, outcomes)

    def test_lid_records_carry_protocol_metrics(self):
        res = run_grid(TINY)
        lid = [r for r in res.records if r["engine"].startswith("lid-")]
        assert lid
        for r in lid:
            assert r["lid_equals_lic"] is True
            assert r["messages"] > 0 and r["rounds"] > 0

    def test_parallel_matches_sequential(self):
        seq = run_grid(TINY)
        par = run_grid(TINY, workers=2)

        def strip_timings(rec):
            return {k: v for k, v in rec.items() if not k.endswith("_ms")}

        assert [strip_timings(r) for r in seq.records] \
            == [strip_timings(r) for r in par.records]

    def test_resilient_cells_judged_like_campaign(self):
        res = run_grid(FAULTY)
        assert res.ok
        for r in res.records:
            assert r["terminated"] and r["violations"] == []
            assert 0.0 < r["degradation"] <= 1.0 + 1e-9

    def test_measure_ratio_records_theorem3_fields(self):
        spec = GridSpec(name="ratio", engines=("lid-reference",),
                        families=("er",), sizes=(12,), quotas=(2,),
                        seeds=(0,), density=0.4, measure_ratio=True)
        rec = run_grid(spec).records[0]
        assert rec["bound_ok"] and rec["ratio"] <= 1.0 + 1e-9
        assert rec["ratio"] >= rec["bound"] - 1e-9
        # the whole record must survive the JSON store
        json.dumps(rec)


class TestStoreResume:
    def test_kill_and_resume_is_byte_identical(self, tmp_path):
        store = tmp_path / "grid"
        run_grid(TINY, store=store)
        paths = write_report(TINY, GridStore(store))
        ref = {k: paths[k].read_bytes() for k in ("report", "summary")}

        # simulate a mid-flight kill: a subset of cells never completed
        cell_files = sorted((store / "cells").glob("*.json"))
        deleted = cell_files[::3]
        for f in deleted:
            f.unlink()

        resumed = run_grid(TINY, store=store)
        assert resumed.executed == len(deleted)
        assert resumed.reused == len(cell_files) - len(deleted)

        paths2 = write_report(TINY, GridStore(store))
        assert paths2["report"].read_bytes() == ref["report"]
        assert paths2["summary"].read_bytes() == ref["summary"]

    def test_progress_streams_only_executed_cells(self, tmp_path):
        store = tmp_path / "grid"
        seen = []
        run_grid(TINY, store=store, progress=lambda c, r: seen.append(c))
        assert len(seen) == len(TINY.cells())
        seen.clear()
        run_grid(TINY, store=store, progress=lambda c, r: seen.append(c))
        assert seen == []  # everything reused

    def test_changed_spec_hash_refuses_stale_cells(self, tmp_path):
        store = tmp_path / "grid"
        run_grid(TINY, store=store)
        changed = GridSpec.from_mapping({**TINY.to_mapping(), "sizes": [15]})
        assert changed.spec_hash() != TINY.spec_hash()
        with pytest.raises(StaleStoreError, match="refusing to reuse"):
            run_grid(changed, store=store)
        # the original spec still resumes cleanly
        assert run_grid(TINY, store=store).reused == len(TINY.cells())

    def test_cells_without_spec_json_refused(self, tmp_path):
        store = tmp_path / "grid"
        run_grid(TINY, store=store)
        (store / "spec.json").unlink()
        with pytest.raises(StaleStoreError, match="no spec.json"):
            run_grid(TINY, store=store)


class TestAggregation:
    def test_summary_groups_over_seeds(self):
        res = run_grid(TINY)
        summary = summarise(res.records)
        assert all(row["count"] == len(TINY.seeds) for row in summary)
        assert len(summary) == len(TINY.cells()) // len(TINY.seeds)

    def test_summary_excludes_wallclock(self):
        res = run_grid(TINY)
        for row in summarise(res.records):
            assert not any(k.endswith("_ms") for k in row)

    def test_report_renders_failures_section_only_on_failure(self):
        res = run_grid(TINY)
        text = render_report(TINY, res.records)
        assert "## Failing cells" not in text
        bad = [dict(r) for r in res.records]
        bad[0]["ok"] = False
        assert "## Failing cells" in render_report(TINY, bad)

    def test_collect_requires_complete_store(self, tmp_path):
        store = GridStore(tmp_path / "grid")
        run_grid(TINY, store=store)
        next(iter((store.root / "cells").glob("*.json"))).unlink()
        with pytest.raises(GridIncompleteError, match="incomplete"):
            collect_records(TINY, store)
        assert len(collect_records(TINY, store, allow_partial=True)) \
            == len(TINY.cells()) - 1

    def test_grid_status_counts(self, tmp_path):
        store = GridStore(tmp_path / "grid")
        st = grid_status(TINY, store)
        assert st["done"] == 0 and st["total"] == len(TINY.cells())
        run_grid(TINY, store=store)
        st = grid_status(TINY, store)
        assert st["done"] == st["total"] and st["missing"] == []

    def test_write_report_out_dir(self, tmp_path):
        store = GridStore(tmp_path / "grid")
        run_grid(TINY, store=store)
        paths = write_report(TINY, store, out_dir=tmp_path / "results")
        assert paths["out_summary"].name == "grid_tiny_summary.csv"
        assert paths["out_summary"].read_bytes() \
            == paths["summary"].read_bytes()


class TestCampaignOnGrid:
    CONFIG = CampaignConfig(
        n=20,
        loss_rates=(0.1,),
        crash_fracs=(0.0, 0.08),
        partition=(False,),
        byzantine_fracs=(0.0,),
        seeds=(0,),
    )

    def test_to_grid_spec_mirrors_cell_order(self):
        spec = self.CONFIG.to_grid_spec()
        grid_coords = [(c.fault, c.seed) for c in spec.cells()]
        assert len(grid_coords) == len(list(self.CONFIG.cells()))
        assert grid_coords[0][0] == "loss=0.1"

    def test_campaign_store_resumes(self, tmp_path):
        store = tmp_path / "campaign"
        first = run_campaign(self.CONFIG, store=store)
        assert first.ok
        streamed = []
        second = run_campaign(self.CONFIG, store=store,
                              progress=streamed.append)
        assert streamed == []  # fully reused
        assert [c.label() for c in second.cells] \
            == [c.label() for c in first.cells]
        assert [c.satisfaction for c in second.cells] \
            == [c.satisfaction for c in first.cells]

    def test_campaign_grid_matches_direct_run_cell(self):
        from repro.experiments.campaign import run_cell

        result = run_campaign(self.CONFIG)
        direct = [
            run_cell(self.CONFIG, loss, crash, part, byz, seed)
            for loss, crash, part, byz, seed in self.CONFIG.cells()
        ]
        assert [c.satisfaction for c in result.cells] \
            == [c.satisfaction for c in direct]
        assert [c.events for c in result.cells] \
            == [c.events for c in direct]


def test_run_grid_cell_is_pure_of_spec_extras():
    """Adding an unrelated axis value must not change sibling cells."""
    base = GridSpec(name="a", engines=("lic-fast",), families=("er",),
                    sizes=(14,), quotas=(2,), seeds=(0,), density=0.35)
    wider = GridSpec(name="b", engines=("lic-fast", "lid-fast"),
                     families=("er",), sizes=(14,), quotas=(2,), seeds=(0,),
                     density=0.35)
    cell = base.cells()[0]
    a = run_grid_cell(base, cell)
    b = run_grid_cell(wider, wider.cells()[0])
    def strip(r):
        return {k: v for k, v in r.items() if not k.endswith("_ms")}

    assert strip(a) == strip(b)


class TestShardedCells:
    SPEC = GridSpec(name="shardy", engines=("lid-fast", "lid-sharded"),
                    families=("er",), sizes=(40,), quotas=(2,), seeds=(0, 1),
                    density=0.2)

    def test_sharded_records_carry_shard_observables(self):
        res = run_grid(self.SPEC)
        assert res.ok
        sharded = [r for r in res.records if r["engine"] == "lid-sharded"]
        fast = [r for r in res.records if r["engine"] == "lid-fast"]
        assert len(sharded) == len(fast) == 2
        for s, f in zip(sharded, fast):
            assert s["shards"] == 4
            assert s["cut_messages"] >= 0 and s["shard_skew"] >= 0
            # schedule-invariant matching: same edges, same satisfaction
            assert s["edges"] == f["edges"]
            assert s["sat_total"] == pytest.approx(f["sat_total"])
            assert "shards" not in f  # fast cells stay lean
        json.dumps(res.records[0])

    def test_sharded_observables_are_deterministic(self):
        cell = [c for c in self.SPEC.cells() if c.engine == "lid-sharded"][0]
        a = run_grid_cell(self.SPEC, cell)
        b = run_grid_cell(self.SPEC, cell)
        keys = ("shards", "cut_messages", "shard_skew", "messages", "events")
        assert {k: a[k] for k in keys} == {k: b[k] for k in keys}

    def test_telemetry_carries_per_shard_spans(self):
        cell = [c for c in self.SPEC.cells() if c.engine == "lid-sharded"][0]
        record = run_grid_cell(self.SPEC, cell, telemetry=True)
        paths = [r["path"] for r in record.pop("_telemetry")
                 if r.get("kind") == "span"]
        assert "cell/sim_loop/shard0" in paths
        assert "cell/sim_loop/shard3" in paths
        assert "cell/sim_loop/reconcile" in paths

    def test_pool_initializer_is_importable_and_safe(self):
        from repro.experiments.grid import _pool_init
        assert _pool_init() is None  # no-op without numba, compile with


class TestHungCellWatchdog:
    SPEC = GridSpec(
        name="one-cell",
        engines=("lic-fast",),
        families=("er",),
        sizes=(12,),
        quotas=(2,),
        churn=(0,),
        seeds=(0,),
        density=0.35,
    )

    def test_double_timeout_persists_failure_record(self, monkeypatch):
        import repro.experiments.grid as grid_mod

        calls = {"n": 0}

        def always_hung(spec, cell, telemetry=False):
            calls["n"] += 1
            raise grid_mod.CellTimeout(f"cell {cell.cell_id} hung")

        monkeypatch.setattr(grid_mod, "run_grid_cell", always_hung)
        res = grid_mod.run_grid(self.SPEC, cell_timeout=5.0)
        assert calls["n"] == 2  # one retry, then give up
        rec = res.records[0]
        assert rec["ok"] is False
        assert rec["error"] == "timeout"
        assert rec["retries"] == 1
        assert not res.ok

    def test_transient_timeout_retried_once(self, monkeypatch):
        import repro.experiments.grid as grid_mod

        real = grid_mod.run_grid_cell
        calls = {"n": 0}

        def flaky(spec, cell, telemetry=False):
            calls["n"] += 1
            if calls["n"] == 1:
                raise grid_mod.CellTimeout("transient hang")
            return real(spec, cell, telemetry=telemetry)

        monkeypatch.setattr(grid_mod, "run_grid_cell", flaky)
        res = grid_mod.run_grid(self.SPEC, cell_timeout=5.0)
        rec = res.records[0]
        assert rec["ok"] is True
        assert rec["retries"] == 1
        assert res.ok

    def test_alarm_actually_interrupts_a_hung_cell(self, monkeypatch):
        import signal
        import time as time_mod

        import repro.experiments.grid as grid_mod

        if not hasattr(signal, "SIGALRM"):
            pytest.skip("no SIGALRM on this platform")

        def sleepy(spec, cell, telemetry=False):
            time_mod.sleep(30)
            return {"ok": True}

        monkeypatch.setattr(grid_mod, "run_grid_cell", sleepy)
        t0 = time_mod.perf_counter()
        res = grid_mod.run_grid(self.SPEC, cell_timeout=0.2)
        assert time_mod.perf_counter() - t0 < 10
        rec = res.records[0]
        assert rec["ok"] is False and rec["error"] == "timeout"

    def test_untimed_cells_record_zero_retries(self):
        res = run_grid(self.SPEC)
        assert res.records[0]["retries"] == 0

    def test_cell_timeout_validation(self):
        with pytest.raises(ValueError, match="cell_timeout"):
            run_grid(self.SPEC, cell_timeout=0)


class TestRetriesAreNonCanonical:
    def test_retries_excluded_from_metric_fields_and_summary(self):
        from repro.experiments.aggregate import _metric_fields

        res = run_grid(TINY)
        assert all("retries" in r for r in res.records)
        assert "retries" not in _metric_fields(res.records)
        for row in summarise(res.records):
            assert "retries" not in row


class TestServiceEngineCells:
    SPEC = GridSpec(
        name="svc",
        engines=("lid-service", "lic-fast"),
        families=("er",),
        sizes=(14,),
        quotas=(2,),
        churn=(0, 12),
        seeds=(0,),
        density=0.35,
        service_workload="storm",
        service_differential_every=6,
    )

    def test_service_cells_run_and_conform(self):
        res = run_grid(self.SPEC)
        service = [r for r in res.records if r["engine"] == "lid-service"]
        assert len(service) == 1  # only at churn > 0
        rec = service[0]
        assert rec["ok"] is True
        assert rec["workload"] == "storm"
        assert rec["trace_events"] == 12
        assert rec["completed"] is True
        assert rec["differential_ok"] is True
        assert rec["guard_violations"] == 0
        assert len(rec["matching_sha"]) == 12
        json.dumps(res.records[0])

    def test_service_records_are_deterministic(self):
        from repro.telemetry.sink import canonical_fields

        cell = [c for c in self.SPEC.cells()
                if c.engine == "lid-service"][0]
        a = run_grid_cell(self.SPEC, cell)
        b = run_grid_cell(self.SPEC, cell)
        assert canonical_fields(a) == canonical_fields(b)
