"""Convergence probes: sampling semantics and engine agreement."""

import pytest

from repro.core.fast import FastInstance
from repro.core.fast_lid import lid_matching_fast
from repro.core.lid import run_lid
from repro.core.weights import satisfaction_weights
from repro.experiments.instances import random_preference_instance
from repro.telemetry.probes import (
    ConvergenceProbe,
    ProbeSample,
    convergence_summary,
    sample_nodes,
)


def _sample(t, locks, outstanding=0, finished=0):
    return ProbeSample(t=t, locks=locks, matched_nodes=locks,
                       finished_nodes=finished, outstanding_props=outstanding,
                       props_sent=0, rejs_sent=0,
                       quota_fill=locks / 100.0)


class TestConvergenceProbe:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            ConvergenceProbe(interval=0)
        with pytest.raises(ValueError):
            ConvergenceProbe(interval=-1.0)

    def test_record_and_final(self):
        probe = ConvergenceProbe()
        probe.record(_sample(0.0, 0))
        probe.record(_sample(1.0, 10))
        assert len(probe) == 2
        assert probe.final().locks == 10

    def test_time_to_fraction(self):
        probe = ConvergenceProbe()
        for t, locks in [(0.0, 0), (1.0, 40), (2.0, 90), (3.0, 100)]:
            probe.record(_sample(t, locks))
        assert probe.time_to_fraction(0.5) == 2.0   # 40 < 50, first >= at t=2
        assert probe.time_to_fraction(0.9) == 2.0
        assert probe.time_to_fraction(1.0) == 3.0

    def test_summary_landmarks(self):
        probe = ConvergenceProbe()
        for t, locks in [(0.0, 0), (1.0, 60), (2.0, 100)]:
            probe.record(_sample(t, locks, outstanding=100 - locks))
        s = probe.summary()
        assert s["ticks"] == 3
        assert s["t_final"] == 2.0
        assert s["locks"] == 100
        assert s["outstanding_peak"] == 100
        assert s["outstanding_final"] == 0
        assert s["t50"] == 1.0 and s["t90"] == 2.0 and s["t99"] == 2.0

    def test_empty_summary(self):
        assert convergence_summary([]) == {"ticks": 0}


class TestSampleNodes:
    def test_duck_typed_aggregation(self):
        class Node:
            def __init__(self, locked, proposed, finished):
                self.locked = set(locked)
                self.proposed = set(proposed)
                self.finished = finished
                self.props_sent = len(proposed)
                self.rejs_sent = 0
                self.quota = 2

        nodes = [Node({1}, {1, 2}, False), Node({2, 3}, {2, 3}, True)]
        s = sample_nodes(5.0, nodes)
        assert s.t == 5.0
        assert s.locks == 3
        assert s.matched_nodes == 2
        assert s.finished_nodes == 1
        assert s.outstanding_props == 1  # node 0 awaits an answer from 2
        assert s.props_sent == 4
        assert s.quota_fill == 3 / 4


class TestEngineAgreement:
    """The fast engine's probe replays the simulator's tick for tick."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("interval", [1.0, 2.0])
    def test_reference_and_fast_trajectories_identical(self, seed, interval):
        ps = random_preference_instance(40, 0.2, 2, seed=seed)
        ref_probe = ConvergenceProbe(interval=interval)
        fast_probe = ConvergenceProbe(interval=interval)
        ref = run_lid(satisfaction_weights(ps), ps.quotas, probe=ref_probe)
        fast = lid_matching_fast(FastInstance.from_preference_system(ps),
                                 probe=fast_probe)
        assert fast.matching.edge_set() == ref.matching.edge_set()
        assert fast_probe.samples == ref_probe.samples
        assert len(ref_probe) > 0

    def test_probe_does_not_perturb_the_run(self):
        ps = random_preference_instance(30, 0.2, 2, seed=3)
        wt = satisfaction_weights(ps)
        plain = run_lid(wt, ps.quotas)
        probed = run_lid(wt, ps.quotas, probe=ConvergenceProbe())
        assert probed.metrics.events == plain.metrics.events
        assert probed.matching.edge_set() == plain.matching.edge_set()

    def test_final_sample_reflects_quiescence(self):
        ps = random_preference_instance(30, 0.2, 2, seed=4)
        probe = ConvergenceProbe()
        res = run_lid(satisfaction_weights(ps), ps.quotas, probe=probe)
        final = probe.final()
        assert final.outstanding_props == 0
        assert final.matched_nodes == len(
            {v for e in res.matching.edge_set() for v in e}
        )

    def test_round_trip_records(self):
        s = _sample(2.0, 7, outstanding=3, finished=1)
        assert ProbeSample.from_record(s.to_record()) == s
