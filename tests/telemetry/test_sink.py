"""JSONL sink: schema, determinism contract, atomic round-trips."""

import json

import pytest

from repro.telemetry.probes import ProbeSample
from repro.telemetry.sink import (
    SCHEMA_VERSION,
    canonical_fields,
    is_deterministic_field,
    read_jsonl,
    session_records,
    write_jsonl,
)
from repro.telemetry.spans import SpanRecord


def _sample(t):
    return ProbeSample(t=t, locks=1, matched_nodes=1, finished_nodes=0,
                       outstanding_props=0, props_sent=1, rejs_sent=0,
                       quota_fill=0.5)


class TestDeterminismContract:
    def test_suffixes(self):
        assert not is_deterministic_field("wall_ms")
        assert not is_deterministic_field("peak_rss_kb")
        assert not is_deterministic_field("events_per_s")
        assert is_deterministic_field("events")
        assert is_deterministic_field("rounds")
        assert is_deterministic_field("mskew")  # suffix, not substring

    def test_canonical_fields_sorted_and_filtered(self):
        rec = {"b": 1, "a": 2, "wall_ms": 3.0, "kind": "run"}
        assert list(canonical_fields(rec)) == ["a", "b", "kind"]
        assert list(canonical_fields(rec, drop=("kind",))) == ["a", "b"]


class TestSessionRecords:
    def test_canonical_order_and_schema(self):
        span = SpanRecord(seq=0, name="s", path="s", depth=0,
                          start_s=0.5, duration_s=0.25)
        records = session_records(
            {"cell": "c1", "events": 7},
            spans=[span],
            probes=[_sample(0.0), _sample(1.0)],
            resources={"peak_rss_kb": 100.0},
        )
        kinds = [r["kind"] for r in records]
        assert kinds == ["run", "probe", "probe", "span", "resource"]
        assert records[0]["schema"] == SCHEMA_VERSION
        assert records[0]["events"] == 7
        # span wall-clock exports carry the _ms suffix
        assert records[3]["start_ms"] == 500.0
        assert records[3]["duration_ms"] == 250.0

    def test_run_only(self):
        records = session_records({"cell": "c1"})
        assert [r["kind"] for r in records] == ["run"]


class TestJsonlIO:
    def test_round_trip(self, tmp_path):
        records = session_records({"cell": "c1"}, probes=[_sample(0.0)])
        path = tmp_path / "t.jsonl"
        write_jsonl(path, records)
        assert read_jsonl(path) == records
        # no temp file left behind
        assert list(tmp_path.iterdir()) == [path]

    def test_byte_determinism(self, tmp_path):
        records = [{"z": 1, "a": 2, "kind": "run", "schema": 1}]
        write_jsonl(tmp_path / "a.jsonl", records)
        write_jsonl(tmp_path / "b.jsonl", [dict(reversed(records[0].items()))])
        assert (tmp_path / "a.jsonl").read_bytes() == \
            (tmp_path / "b.jsonl").read_bytes()
        line = (tmp_path / "a.jsonl").read_text().splitlines()[0]
        assert list(json.loads(line)) == sorted(records[0])

    def test_nan_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_jsonl(tmp_path / "n.jsonl",
                        [{"kind": "run", "x": float("nan")}])

    def test_blank_lines_skipped(self, tmp_path):
        p = tmp_path / "b.jsonl"
        p.write_text('{"kind":"run"}\n\n{"kind":"probe"}\n')
        assert [r["kind"] for r in read_jsonl(p)] == ["run", "probe"]
