"""Telemetry persistence and reporting over grid stores.

The acceptance property of the telemetry subsystem: canonical report
outputs are byte-identical across kill-and-resume (and across fresh
re-runs on any machine), because they are built exclusively from
deterministic record fields.
"""

import json

from repro.experiments.grid import GridStore, run_grid
from repro.experiments.gridspec import GridSpec
from repro.telemetry.report import (
    cell_summary,
    load_store_telemetry,
    render_telemetry_report,
    telemetry_summary_rows,
    write_telemetry_report,
)

SPEC = GridSpec(
    name="tel",
    engines=("lid-reference", "lid-fast"),
    families=("er",),
    sizes=(12,),
    quotas=(2,),
    seeds=(0, 1),
    density=0.4,
)

FAULTY = GridSpec(
    name="tel-faults",
    engines=("resilient",),
    families=("er",),
    sizes=(14,),
    quotas=(2,),
    faults=("loss=0.1",),
    seeds=(0,),
    density=0.3,
)


class TestGridTelemetryPersistence:
    def test_one_session_per_executed_cell(self, tmp_path):
        store = GridStore(tmp_path / "g")
        run_grid(SPEC, store=store, telemetry=True)
        assert store.telemetry_ids() == store.done_ids()
        for cell_id in store.telemetry_ids():
            records = store.load_telemetry(cell_id)
            kinds = [r["kind"] for r in records]
            assert kinds[0] == "run"
            assert kinds[-1] == "resource"
            assert "probe" in kinds and "span" in kinds
            assert records[0]["schema"] == 1
            assert records[0]["cell"] == cell_id
            assert "_telemetry" not in records[0]

    def test_record_files_identical_with_and_without_telemetry(self, tmp_path):
        a, b = GridStore(tmp_path / "a"), GridStore(tmp_path / "b")
        run_grid(SPEC, store=a, telemetry=False)
        run_grid(SPEC, store=b, telemetry=True)
        for cell_id in a.done_ids():
            ra = (a.cells_dir / f"{cell_id}.json").read_text()
            rb = (b.cells_dir / f"{cell_id}.json").read_text()
            det = lambda rec: {k: v for k, v in rec.items()
                               if not k.endswith(("_ms", "_kb", "_per_s"))}
            assert det(json.loads(ra)) == det(json.loads(rb))

    def test_parallel_workers_persist_telemetry(self, tmp_path):
        store = GridStore(tmp_path / "g")
        run_grid(SPEC, store=store, workers=2, telemetry=True)
        assert store.telemetry_ids() == store.done_ids()

    def test_resilient_cells_carry_probe_and_counters(self, tmp_path):
        store = GridStore(tmp_path / "g")
        run_grid(FAULTY, store=store, telemetry=True)
        (cell_id,) = store.done_ids()
        record = store.load(cell_id)
        # the reliable layer wraps protocol traffic: DATA/ACK/HB kinds
        assert "sent_DATA" in record and "delivered_DATA" in record
        assert "sent_ACK" in record
        assert "dropped" in record and "duplicates_suppressed" in record
        run = store.load_telemetry(cell_id)[0]
        assert run["kind"] == "run"
        kinds = {r["kind"] for r in store.load_telemetry(cell_id)}
        assert "probe" in kinds

    def test_cell_coords_in_run_record(self, tmp_path):
        store = GridStore(tmp_path / "g")
        run_grid(SPEC, store=store, telemetry=True)
        cell_id = sorted(store.telemetry_ids())[0]
        run = store.load_telemetry(cell_id)[0]
        for coord in ("engine", "family", "n", "b", "seed"):
            assert coord in run


class TestTelemetryReport:
    def _store(self, tmp_path, name="g"):
        store = GridStore(tmp_path / name)
        run_grid(SPEC, store=store, telemetry=True)
        return store

    def test_report_and_csv_written(self, tmp_path):
        store = self._store(tmp_path)
        paths = write_telemetry_report(store.root)
        report = paths["report"].read_text()
        assert "Telemetry report" in report
        assert "t50" in report
        # wall-clock columns stay out of the canonical table
        header = paths["summary"].read_text().splitlines()[0]
        assert not any(c.endswith(("_ms", "_kb", "_per_s"))
                       for c in header.split(","))

    def test_full_appendix_is_opt_in(self, tmp_path):
        store = self._store(tmp_path)
        cells = load_store_telemetry(store.root)
        canonical = render_telemetry_report(cells)
        full = render_telemetry_report(cells, full=True)
        assert "machine-dependent" not in canonical
        assert "machine-dependent" in full

    def test_kill_and_resume_is_byte_identical(self, tmp_path):
        store = self._store(tmp_path)
        paths = write_telemetry_report(store.root)
        ref = {k: paths[k].read_bytes() for k in ("report", "summary")}

        # simulate a mid-flight kill: drop a subset of cells AND their
        # telemetry sessions, then resume
        cell_files = sorted(store.cells_dir.glob("*.json"))
        for f in cell_files[::2]:
            f.unlink()
            (store.telemetry_dir / f"{f.stem}.jsonl").unlink()
        resumed = run_grid(SPEC, store=store, telemetry=True)
        assert resumed.executed == len(cell_files[::2])

        paths2 = write_telemetry_report(store.root)
        assert paths2["report"].read_bytes() == ref["report"]
        assert paths2["summary"].read_bytes() == ref["summary"]

    def test_independent_runs_are_byte_identical(self, tmp_path):
        p1 = write_telemetry_report(self._store(tmp_path, "a").root, title="t")
        p2 = write_telemetry_report(self._store(tmp_path, "b").root, title="t")
        assert p1["report"].read_bytes() == p2["report"].read_bytes()
        assert p1["summary"].read_bytes() == p2["summary"].read_bytes()

    def test_out_dir_copies(self, tmp_path):
        store = self._store(tmp_path)
        out = tmp_path / "results"
        paths = write_telemetry_report(store.root, out_dir=out, title="tel")
        assert paths["out_report"].name == "telemetry_tel_report.md"
        assert paths["out_report"].read_bytes() == paths["report"].read_bytes()

    def test_cell_summary_uses_only_deterministic_fields(self, tmp_path):
        store = self._store(tmp_path)
        cells = load_store_telemetry(store.root)
        for cell_id, records in cells.items():
            summary = cell_summary(cell_id, records)
            for field in summary:
                assert not field.endswith(("_ms", "_kb", "_per_s")), field

    def test_summary_rows_sorted_by_cell(self, tmp_path):
        store = self._store(tmp_path)
        rows = telemetry_summary_rows(load_store_telemetry(store.root))
        ids = [r["cell"] for r in rows]
        assert ids == sorted(ids)
