"""Resource sampler: profile shape and the nondeterminism suffixes."""

import gc

from repro.telemetry.resources import ResourceSampler, peak_rss_kb
from repro.telemetry.sink import is_deterministic_field


class TestResourceSampler:
    def test_profile_fields_are_all_machine_dependent(self):
        with ResourceSampler() as rs:
            gc.collect()
        profile = rs.profile(events=100, edges=50)
        for name in profile:
            assert not is_deterministic_field(name), name

    def test_throughput_fields_optional(self):
        with ResourceSampler() as rs:
            pass
        profile = rs.profile()
        assert "events_per_s" not in profile
        assert "edges_per_s" not in profile
        assert "wall_ms" in profile
        assert profile["wall_ms"] >= 0.0

    def test_gc_callback_unregistered_after_stop(self):
        rs = ResourceSampler().start()
        assert any(cb.__self__ is rs for cb in gc.callbacks
                   if hasattr(cb, "__self__"))
        rs.stop()
        assert not any(cb.__self__ is rs for cb in gc.callbacks
                       if hasattr(cb, "__self__"))

    def test_gc_pause_measured(self):
        with ResourceSampler() as rs:
            for _ in range(3):
                gc.collect()
        profile = rs.profile()
        assert profile["gc_pause_ms"] >= 0.0
        assert profile["gc_max_pause_ms"] <= profile["gc_pause_ms"] + 1e-9

    def test_peak_rss_positive(self):
        assert peak_rss_kb() > 0
