"""Span API: nesting, phase attribution, and the disabled-mode no-op."""

import tracemalloc

from repro.telemetry.spans import NULL, NullTelemetry, SpanRecord, Telemetry


class FakeClock:
    """Deterministic monotonic clock: advances 1s per call."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


class TestTelemetry:
    def test_single_span_records_duration(self):
        tel = Telemetry(clock=FakeClock())
        with tel.span("work"):
            pass
        (rec,) = tel.records()
        assert rec.name == "work"
        assert rec.path == "work"
        assert rec.depth == 0
        assert rec.duration_s == 1.0

    def test_nesting_builds_slash_paths_and_depths(self):
        tel = Telemetry(clock=FakeClock())
        with tel.span("outer"):
            with tel.span("inner"):
                pass
            with tel.span("inner2"):
                pass
        paths = [(r.path, r.depth) for r in tel.records()]
        # completion order: children close before the parent
        assert paths == [
            ("outer/inner", 1),
            ("outer/inner2", 1),
            ("outer", 0),
        ]

    def test_seq_is_completion_order(self):
        tel = Telemetry(clock=FakeClock())
        with tel.span("a"):
            with tel.span("b"):
                pass
        recs = {r.name: r for r in tel.records()}
        assert recs["b"].seq < recs["a"].seq  # "b" closed first

    def test_exception_still_closes_span(self):
        tel = Telemetry(clock=FakeClock())
        try:
            with tel.span("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert [r.name for r in tel.records()] == ["boom"]
        with tel.span("after"):
            pass
        assert tel.records()[-1].depth == 0  # stack fully unwound

    def test_phase_seconds_sums_repeats(self):
        tel = Telemetry(clock=FakeClock())
        for _ in range(3):
            with tel.span("phase"):
                pass
        assert tel.phase_seconds() == {"phase": 3.0}

    def test_phase_seconds_depth_is_window_relative(self):
        # an engine nested under a caller's span still sees its own
        # phases at depth 0 when it marks the window first
        tel = Telemetry(clock=FakeClock())
        with tel.span("cell"):
            mark = tel.mark()
            with tel.span("build"):
                pass
            with tel.span("sim"):
                with tel.span("wave"):
                    pass
            phases = tel.phase_seconds(since=mark)
        assert set(phases) == {"build", "sim"}

    def test_phase_seconds_depth_none_sums_everything(self):
        tel = Telemetry(clock=FakeClock())
        with tel.span("a"):
            with tel.span("b"):
                pass
        assert set(tel.phase_seconds(depth=None)) == {"a", "b"}

    def test_add_span_nests_under_open_span(self):
        # an externally measured interval (e.g. a shard's kernel time
        # accumulated inside a worker process) lands as a child of the
        # currently open span, its start back-computed from its duration
        tel = Telemetry(clock=FakeClock())
        with tel.span("sim_loop"):
            tel.add_span("shard0", 0.25)
            tel.add_span("shard1", 0.5)
        recs = {r.name: r for r in tel.records()}
        assert recs["shard0"].path == "sim_loop/shard0"
        assert recs["shard0"].depth == 1
        assert recs["shard0"].duration_s == 0.25
        assert recs["shard1"].duration_s == 0.5
        assert recs["shard0"].seq < recs["shard1"].seq < recs["sim_loop"].seq

    def test_add_span_at_top_level_and_clamped_start(self):
        tel = Telemetry(clock=FakeClock())
        # duration longer than the telemetry's lifetime: start clamps to 0
        tel.add_span("imported", 99.0)
        (rec,) = tel.records()
        assert rec.path == "imported" and rec.depth == 0
        assert rec.start_s == 0.0 and rec.duration_s == 99.0

    def test_add_span_counts_toward_phase_seconds(self):
        tel = Telemetry(clock=FakeClock())
        mark = tel.mark()
        tel.add_span("reconcile", 0.125)
        assert tel.phase_seconds(since=mark) == {"reconcile": 0.125}

    def test_null_add_span_is_noop(self):
        NULL.add_span("anything", 1.0)
        assert NULL.records() == []

    def test_records_returns_copy(self):
        tel = Telemetry(clock=FakeClock())
        with tel.span("x"):
            pass
        tel.records().clear()
        assert len(tel.records()) == 1

    def test_span_record_is_frozen(self):
        rec = SpanRecord(seq=0, name="n", path="n", depth=0,
                         start_s=0.0, duration_s=1.0)
        try:
            rec.name = "other"
            raise AssertionError("SpanRecord must be immutable")
        except AttributeError:
            pass


class TestNullTelemetry:
    def test_disabled_interface(self):
        assert not NULL.enabled
        assert NULL.records() == []
        assert NULL.phase_seconds() == {}
        assert NULL.mark() == 0
        with NULL.span("anything"):
            pass
        assert NULL.records() == []

    def test_span_is_shared_singleton(self):
        # the span object is reused, so the hot path allocates nothing
        assert NULL.span("a") is NULL.span("b")

    def test_zero_allocations_when_disabled(self):
        tel = NullTelemetry()
        # warm up any lazy caching before measuring
        with tel.span("warm"):
            pass
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            for _ in range(100):
                with tel.span("hot"):
                    pass
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        # tracemalloc's own snapshot bookkeeping allocates; the span
        # path itself must not
        ours = tracemalloc.Filter(False, tracemalloc.__file__)
        stats = after.filter_traces([ours]).compare_to(
            before.filter_traces([ours]), "lineno"
        )
        grown = sum(s.size_diff for s in stats if s.size_diff > 0)
        assert grown == 0, f"disabled spans allocated {grown} bytes"

    def test_enabled_and_disabled_agree_on_api(self):
        enabled = [n for n in dir(Telemetry) if not n.startswith("_")]
        for name in enabled:
            assert hasattr(NullTelemetry, name), name
