"""Protocol-node base class.

Concrete protocols (LID, the best-response baseline, test protocols)
subclass :class:`ProtocolNode` and implement ``on_start`` /
``on_message`` (and optionally ``on_timer``).  Nodes interact with the
world only through ``self.send`` and ``self.set_timer`` — exactly the
local-communication discipline the paper's algorithm assumes.
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.distsim.scheduler import Simulator

__all__ = ["ProtocolNode"]


class ProtocolNode:
    """Base class for simulated protocol participants.

    Attributes
    ----------
    node_id:
        This node's id, set at registration.
    sim:
        Back-reference to the :class:`~repro.distsim.scheduler.Simulator`.
    terminated:
        Set by the subclass (via :meth:`terminate`) when the node's
        protocol role is complete.  A terminated node stops receiving
        (late messages are counted, not delivered), matching the paper's
        ``U_i = ∅`` exit condition.
    crashed:
        Set by failure injection; a crashed node neither sends nor
        receives.
    """

    def __init__(self) -> None:
        self.node_id: int = -1
        self.sim: "Simulator | None" = None
        self.terminated: bool = False
        self.crashed: bool = False

    # -- wiring --------------------------------------------------------

    def _attach(self, node_id: int, sim: "Simulator") -> None:
        self.node_id = node_id
        self.sim = sim

    # -- actions available to subclasses --------------------------------

    def send(self, dst: int, kind: str, payload: Any = None) -> None:
        """Send a message to a neighbour."""
        assert self.sim is not None, "node not attached to a simulator"
        if self.crashed:
            return
        self.sim._send(self.node_id, dst, kind, payload)

    def set_timer(self, delay: float, tag: Any = None) -> None:
        """Schedule :meth:`on_timer` after ``delay`` virtual time units."""
        assert self.sim is not None, "node not attached to a simulator"
        self.sim._set_timer(self.node_id, delay, tag)

    def terminate(self) -> None:
        """Mark this node's protocol role complete."""
        if not self.terminated:
            self.terminated = True
            assert self.sim is not None
            self.sim._note_termination(self.node_id)

    @property
    def now(self) -> float:
        """Current virtual time."""
        assert self.sim is not None
        return self.sim.now

    # -- protocol hooks (override in subclasses) ------------------------

    def on_start(self) -> None:
        """Called once when the simulation starts (or the node joins)."""

    def on_message(self, src: int, kind: str, payload: Any) -> None:
        """Called for each delivered message."""

    def on_timer(self, tag: Any) -> None:
        """Called when a timer set via :meth:`set_timer` fires."""
