"""Discrete-event message-passing simulation substrate.

The paper's LID algorithm is specified purely in terms of asynchronous
point-to-point messages (``PROP``/``REJ``) between overlay neighbours.
This package provides the substrate that executes such protocols:

- :mod:`repro.distsim.messages` — typed message records,
- :mod:`repro.distsim.events` — the event queue entries,
- :mod:`repro.distsim.scheduler` — a deterministic discrete-event engine,
- :mod:`repro.distsim.network` — channels with pluggable latency models,
  FIFO enforcement and failure-injection hooks,
- :mod:`repro.distsim.node` — the protocol-node base class,
- :mod:`repro.distsim.metrics` — message and timing accounting,
- :mod:`repro.distsim.failures` — message loss / crash / partition /
  link-flap / Byzantine adapters for the robustness experiments
  (paper §7 future work),
- :mod:`repro.distsim.reliable` — opt-in reliable channels (per-link
  sequence numbers, ACKs, capped exponential backoff retransmission,
  duplicate suppression) plus a heartbeat failure detector,
- :mod:`repro.distsim.invariants` — a runtime monitor checking quota /
  locality / lock-symmetry invariants at every delivery,
- :mod:`repro.distsim.tracing` — structured execution traces.

Determinism: given the same seed and protocol, every run produces an
identical event sequence — ties in delivery time are broken by a
monotone sequence number.  This is what makes the distributed
experiments (T3, T4, F2, A2) exactly reproducible.
"""

from repro.distsim.messages import Message
from repro.distsim.network import (
    ConstantLatency,
    ExponentialLatency,
    Network,
    UniformLatency,
)
from repro.distsim.node import ProtocolNode
from repro.distsim.scheduler import Simulator
from repro.distsim.metrics import SimMetrics
from repro.distsim.failures import (
    BernoulliLoss,
    CrashSchedule,
    LinkFlap,
    PartitionSchedule,
    compose_drops,
)
from repro.distsim.invariants import InvariantMonitor
from repro.distsim.reliable import BackoffPolicy, ReliableNode
from repro.distsim.tracing import Trace, TraceRecord

__all__ = [
    "Message",
    "Network",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "ProtocolNode",
    "Simulator",
    "SimMetrics",
    "BernoulliLoss",
    "CrashSchedule",
    "PartitionSchedule",
    "LinkFlap",
    "compose_drops",
    "BackoffPolicy",
    "ReliableNode",
    "InvariantMonitor",
    "Trace",
    "TraceRecord",
]
