"""Simulation accounting: message counts, timing, per-node statistics."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["SimMetrics"]


@dataclass
class SimMetrics:
    """Counters accumulated during a simulation run.

    The distributed experiments report:

    - ``sent_by_kind`` / ``delivered_by_kind``: totals per message type
      (``PROP``, ``REJ``, ...) — the T4 message-complexity rows,
    - ``sent_by_node`` / ``received_by_node``: per-node load,
    - ``events``: number of processed scheduler events,
    - ``end_time``: virtual quiescence time (with unit constant latency
      this is the asynchronous round count),
    - ``max_depth``: the longest causal message chain — the exact
      asynchronous round count, independent of the latency model,
    - ``dropped``: messages removed by failure injection,
    - ``retransmissions``: re-sends of an already-sent message (timer
      retransmission in :class:`repro.core.lid.LidNode`, unacked-data
      retries in :class:`repro.distsim.reliable.ReliableNode`) —
      counted separately from fresh protocol messages so robustness
      experiments can report the reliability *overhead* distinctly
      from the protocol's intrinsic message complexity,
    - ``duplicates_suppressed``: deliveries discarded by the reliable
      layer's per-link duplicate suppression,
    - ``phase_seconds``: optional wall-clock attribution per pipeline
      phase (``build_weights`` / ``sim_loop`` / ``extract``), filled by
      :func:`repro.core.lid.run_lid` and
      :func:`repro.core.fast_lid.lid_matching_fast` so benchmarks can
      tell protocol time from setup time.
    """

    sent_by_kind: Counter = field(default_factory=Counter)
    delivered_by_kind: Counter = field(default_factory=Counter)
    sent_by_node: Counter = field(default_factory=Counter)
    received_by_node: Counter = field(default_factory=Counter)
    events: int = 0
    end_time: float = 0.0
    dropped: int = 0
    retransmissions: int = 0
    duplicates_suppressed: int = 0
    max_depth: int = 0
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def total_sent(self) -> int:
        """Total messages admitted to the network."""
        return sum(self.sent_by_kind.values())

    @property
    def total_delivered(self) -> int:
        """Total messages actually delivered."""
        return sum(self.delivered_by_kind.values())

    def max_node_load(self) -> int:
        """Largest per-node sent+received message count."""
        nodes = set(self.sent_by_node) | set(self.received_by_node)
        if not nodes:
            return 0
        return max(self.sent_by_node[v] + self.received_by_node[v] for v in nodes)

    def summary(self) -> dict:
        """Flat dict used by the experiment reporters."""
        return {
            "sent": self.total_sent,
            "delivered": self.total_delivered,
            "dropped": self.dropped,
            "retransmissions": self.retransmissions,
            "events": self.events,
            "end_time": self.end_time,
            **{f"sent_{k}": v for k, v in sorted(self.sent_by_kind.items())},
        }

    def kind_counters(self) -> dict:
        """Per-kind sent/delivered totals as flat scalar fields.

        Key layout ``sent_<KIND>`` / ``delivered_<KIND>``, sorted by
        kind — the form grid cell records persist so message-complexity
        breakdowns (PROP vs REJ vs ACK/HB traffic) survive aggregation
        instead of being collapsed into one total.
        """
        out: dict = {}
        for kind, count in sorted(self.sent_by_kind.items()):
            out[f"sent_{kind}"] = count
        for kind, count in sorted(self.delivered_by_kind.items()):
            out[f"delivered_{kind}"] = count
        return out

    def to_dict(self, per_node: bool = True) -> dict:
        """Full JSON-serialisable form; inverse of :meth:`from_dict`.

        Counter keys become JSON-safe (node ids as strings); wall-clock
        attribution travels under ``phase_seconds`` unchanged.  With
        ``per_node=False`` the two per-node counters are omitted —
        the compact form for large-``n`` records.
        """
        out = {
            "sent_by_kind": dict(sorted(self.sent_by_kind.items())),
            "delivered_by_kind": dict(sorted(self.delivered_by_kind.items())),
            "events": self.events,
            "end_time": self.end_time,
            "dropped": self.dropped,
            "retransmissions": self.retransmissions,
            "duplicates_suppressed": self.duplicates_suppressed,
            "max_depth": self.max_depth,
            "phase_seconds": dict(self.phase_seconds),
        }
        if per_node:
            out["sent_by_node"] = {
                str(v): c for v, c in sorted(self.sent_by_node.items())
            }
            out["received_by_node"] = {
                str(v): c for v, c in sorted(self.received_by_node.items())
            }
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SimMetrics":
        """Rebuild from :meth:`to_dict` output (node-id keys re-intified)."""
        return cls(
            sent_by_kind=Counter(data.get("sent_by_kind", {})),
            delivered_by_kind=Counter(data.get("delivered_by_kind", {})),
            sent_by_node=Counter(
                {int(v): c for v, c in data.get("sent_by_node", {}).items()}
            ),
            received_by_node=Counter(
                {int(v): c for v, c in data.get("received_by_node", {}).items()}
            ),
            events=int(data.get("events", 0)),
            end_time=float(data.get("end_time", 0.0)),
            dropped=int(data.get("dropped", 0)),
            retransmissions=int(data.get("retransmissions", 0)),
            duplicates_suppressed=int(data.get("duplicates_suppressed", 0)),
            max_depth=int(data.get("max_depth", 0)),
            phase_seconds=dict(data.get("phase_seconds", {})),
        )
