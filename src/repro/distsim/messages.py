"""Message records exchanged by protocol nodes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message"]


@dataclass(frozen=True, slots=True)
class Message:
    """An in-flight point-to-point message.

    Attributes
    ----------
    src, dst:
        Sender / receiver node ids.
    kind:
        Protocol-level message type, e.g. ``"PROP"`` or ``"REJ"``.
    payload:
        Arbitrary protocol data (LID needs none; kept generic so other
        protocols can reuse the substrate).
    seq:
        Global send sequence number, assigned by the network at send
        time.  Used for FIFO bookkeeping, deterministic tie-breaking and
        trace correlation.
    depth:
        Causal depth: 1 + the depth of the message whose handler sent
        this one (1 for messages sent from ``on_start``).  The maximum
        over a run is the exact asynchronous round count of the
        protocol, independent of the latency model.
    """

    src: int
    dst: int
    kind: str
    payload: Any = field(default=None, compare=False)
    seq: int = 0
    depth: int = field(default=1, compare=False)
