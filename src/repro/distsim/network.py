"""Network model: channels, latency, FIFO delivery and loss hooks.

The network sits between sending nodes and the scheduler.  It decides
*when* (latency model, FIFO constraint) and *whether* (loss filter) a
message is delivered.  All randomness comes from generators spawned off
the simulation's root seed, so runs are reproducible.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Protocol

import numpy as np

from repro.distsim.messages import Message
from repro.utils.rng import spawn_rng
from repro.utils.validation import check_probability

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "Network",
]


class LatencyModel(Protocol):
    """Callable producing a per-message latency sample."""

    def __call__(self, msg: Message, rng: np.random.Generator) -> float: ...


class ConstantLatency:
    """Every message takes exactly ``delay`` time units.

    With ``delay=1`` the virtual completion time of a protocol equals the
    length of its longest causal message chain — i.e. the number of
    asynchronous *rounds*, which is what experiment T4/F2 report.
    """

    def __init__(self, delay: float = 1.0):
        if delay <= 0:
            raise ValueError(f"delay must be positive, got {delay}")
        self.delay = float(delay)

    def __call__(self, msg: Message, rng: np.random.Generator) -> float:
        return self.delay


class UniformLatency:
    """Latency drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.5, high: float = 1.5):
        if not (0 < low <= high):
            raise ValueError(f"need 0 < low <= high, got {low}, {high}")
        self.low = float(low)
        self.high = float(high)

    def __call__(self, msg: Message, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))


class ExponentialLatency:
    """Heavy-ish tail latency: ``eps + Exp(mean)``.

    The small ``eps`` floor keeps time strictly advancing so causal
    chains cannot collapse to zero virtual time.
    """

    def __init__(self, mean: float = 1.0, eps: float = 1e-3):
        if mean <= 0 or eps <= 0:
            raise ValueError("mean and eps must be positive")
        self.mean = float(mean)
        self.eps = float(eps)

    def __call__(self, msg: Message, rng: np.random.Generator) -> float:
        return self.eps + float(rng.exponential(self.mean))


#: Filter deciding whether a message is dropped; returns True to DROP.
DropFilter = Callable[[Message, np.random.Generator], bool]


class Network:
    """Point-to-point channels between ``n`` nodes.

    Parameters
    ----------
    n:
        Number of nodes.
    latency:
        Latency model instance (default: constant 1 — asynchronous
        rounds).
    fifo:
        When ``True`` (default) each directed channel delivers messages
        in send order: a message's delivery time is clamped to be
        strictly after the previously scheduled delivery on the same
        channel.  LID is correct under non-FIFO delivery too (messages
        carry no sequencing assumptions); both modes are exercised in
        tests.
    links:
        Optional iterable of allowed undirected links ``(i, j)``.  When
        given, sending along a non-link raises — this enforces the
        paper's locality claim that peers only talk to overlay
        neighbours.
    drop_filter:
        Optional loss injector (see :mod:`repro.distsim.failures`).
    seed:
        Root seed for the network's randomness (latency, loss).
    bandwidth:
        Optional per-directed-channel capacity in size units per time
        unit.  When set, each message occupies its outgoing channel for
        ``size/bandwidth`` before propagation starts (store-and-forward
        serialisation): a queueing model that makes bursts stretch out
        in virtual time, as on a real uplink.
    msg_size:
        Message size: a constant or a ``Message -> float`` callable
        (e.g. larger ``HELLO`` digests than ``REJ`` flags).  Only used
        when ``bandwidth`` is set.
    """

    def __init__(
        self,
        n: int,
        latency: Optional[LatencyModel] = None,
        fifo: bool = True,
        links: Optional[Iterable[tuple[int, int]]] = None,
        drop_filter: Optional[DropFilter] = None,
        seed: Optional[int] = 0,
        bandwidth: Optional[float] = None,
        msg_size: float | Callable[[Message], float] = 1.0,
    ):
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self.n = n
        self.latency = latency if latency is not None else ConstantLatency(1.0)
        self.fifo = fifo
        self.drop_filter = drop_filter
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.bandwidth = bandwidth
        self.msg_size = msg_size
        self._busy_until: dict[tuple[int, int], float] = {}
        self._rng = spawn_rng(seed, "network")
        self._seq = 0
        self._last_delivery: dict[tuple[int, int], float] = {}
        self._links: Optional[set[tuple[int, int]]] = None
        if links is not None:
            self._links = set()
            for i, j in links:
                a, b = (i, j) if i < j else (j, i)
                self._links.add((a, b))
        # accounting
        self.sent = 0
        self.dropped = 0
        # Hot-path specialisation: with no loss filter, no bandwidth
        # model and a constant latency, transmit() reduces to "stamp a
        # fixed delay and clamp FIFO" — skip the per-message drop and
        # latency-model calls.  (Captured at construction; these three
        # knobs are init-time configuration, not mutated mid-run.)
        self._fixed_delay: Optional[float] = (
            self.latency.delay
            if drop_filter is None
            and bandwidth is None
            and isinstance(self.latency, ConstantLatency)
            else None
        )

    def grow(self, new_n: int) -> None:
        """Raise the node-id capacity (churn joins beyond the headroom)."""
        if new_n < self.n:
            raise ValueError(f"cannot shrink network from {self.n} to {new_n}")
        self.n = new_n

    def allows(self, i: int, j: int) -> bool:
        """Whether a direct channel ``i -> j`` exists."""
        if self._links is None:
            return True
        a, b = (i, j) if i < j else (j, i)
        return (a, b) in self._links

    def add_link(self, i: int, j: int) -> None:
        """Add an undirected link (used by churn joins)."""
        if self._links is not None:
            a, b = (i, j) if i < j else (j, i)
            self._links.add((a, b))

    def remove_link(self, i: int, j: int) -> None:
        """Remove an undirected link (used by churn leaves)."""
        if self._links is not None:
            a, b = (i, j) if i < j else (j, i)
            self._links.discard((a, b))

    def transmit(
        self,
        now: float,
        src: int,
        dst: int,
        kind: str,
        payload,
        depth: int = 1,
    ) -> Optional[tuple[float, Message]]:
        """Admit a message to the network.

        Returns ``(delivery_time, message)``, or ``None`` if the message
        is dropped by the loss filter.  Raises if the link does not
        exist.  ``depth`` is the causal depth stamped by the scheduler.
        """
        if src == dst:
            raise ValueError(f"node {src} cannot send to itself")
        if not self.allows(src, dst):
            raise ValueError(f"no overlay link {src} -> {dst}; LID is local-only")
        self._seq += 1
        msg = Message(
            src=src, dst=dst, kind=kind, payload=payload, seq=self._seq, depth=depth
        )
        self.sent += 1
        if self._fixed_delay is not None:
            t = now + self._fixed_delay
            if self.fifo:
                chan = (src, dst)
                prev = self._last_delivery.get(chan)
                if prev is not None and t <= prev:
                    t = np.nextafter(prev, np.inf)
                self._last_delivery[chan] = t
            return t, msg
        if self.drop_filter is not None and self.drop_filter(msg, self._rng):
            self.dropped += 1
            return None
        delay = self.latency(msg, self._rng)
        if delay <= 0:
            raise ValueError(f"latency model produced non-positive delay {delay}")
        depart = now
        if self.bandwidth is not None:
            size = self.msg_size(msg) if callable(self.msg_size) else self.msg_size
            chan = (src, dst)
            start = max(now, self._busy_until.get(chan, now))
            depart = start + size / self.bandwidth
            self._busy_until[chan] = depart
        t = depart + delay
        if self.fifo:
            chan = (src, dst)
            prev = self._last_delivery.get(chan, -np.inf)
            if t <= prev:
                t = np.nextafter(prev, np.inf)
            self._last_delivery[chan] = t
        return t, msg


def bernoulli_drop(p: float) -> DropFilter:
    """Simple i.i.d. loss filter dropping each message w.p. ``p``."""
    check_probability(p, "p")

    def _filter(msg: Message, rng: np.random.Generator) -> bool:
        return bool(rng.random() < p)

    return _filter
