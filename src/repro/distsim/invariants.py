"""Runtime safety-invariant monitor for LID-family protocol runs.

The robustness claims of the resilient runtime are *safety* properties
that should hold at every state transition, not just at the end of a
run — a transiently violated quota that later self-corrects would never
show up in a final-matching check.  :class:`InvariantMonitor` plugs
into the simulator (``Simulator(..., monitor=...)``) and re-checks the
receiving node after **every delivery**:

- **quota** — an honest node never holds more locks than its quota;
- **locality** — locks only ever point at overlay neighbours;
- **no-duplicate-lock** — a pair locks at most once per run (a released
  pair is withdrawn, never re-locked);
- **lock justification** (the per-delivery form of symmetry) — a fresh
  lock on an honest live peer is only legal when that peer actually
  proposed: the peer's state must show us in ``proposed``/``locked``,
  or the peer must have *withdrawn* us (its revocation is in flight).

Full symmetry is inherently an *eventual* property (mutual locks form
one observation apart, and revocations take a round trip), so it is
checked at quiescence by :meth:`InvariantMonitor.at_quiescence`:
every lock between live honest nodes must be mutual.

Only the receiving node is inspected per delivery (its state is the
only one that changed), so monitoring costs O(quota) per message, not
O(n).

Violations are collected as strings in :attr:`InvariantMonitor.violations`;
with ``strict=True`` the first one raises
:class:`~repro.utils.validation.ProtocolError` at the exact delivery
that broke the invariant, which turns a campaign cell into a
debuggable stack trace.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.utils.validation import ProtocolError

__all__ = ["InvariantMonitor"]


class InvariantMonitor:
    """Checks quota / locality / lock invariants at every delivery.

    Parameters
    ----------
    quotas:
        Per-node connection quotas ``b_i``.
    adjacency:
        Per-node neighbour sets (the overlay's legal partners).
    honest:
        Ids of protocol-abiding nodes (default: everyone).  Byzantine
        nodes are exempt from the checks — the point is that *honest*
        state stays safe no matter what the others do.
    strict:
        Raise :class:`ProtocolError` on the first violation instead of
        collecting it.
    """

    def __init__(
        self,
        quotas: Sequence[int],
        adjacency: Sequence[Iterable[int]],
        honest: Optional[Iterable[int]] = None,
        strict: bool = False,
    ):
        if len(quotas) != len(adjacency):
            raise ValueError(
                f"quotas ({len(quotas)}) and adjacency ({len(adjacency)}) disagree on n"
            )
        self.quotas = [int(q) for q in quotas]
        self.adjacency = [frozenset(a) for a in adjacency]
        self.honest = (
            frozenset(range(len(quotas))) if honest is None else frozenset(honest)
        )
        self.strict = strict
        self.violations: list[str] = []
        self.deliveries_checked = 0
        self._prev_locked: dict[int, frozenset[int]] = {}
        self._ever_locked: dict[int, set[int]] = {}

    # ------------------------------------------------------------------

    def _record(self, time: float, text: str) -> None:
        entry = f"t={time:g}: {text}"
        self.violations.append(entry)
        if self.strict:
            raise ProtocolError(f"invariant violation at {entry}")

    @property
    def ok(self) -> bool:
        """Whether no invariant has been violated so far."""
        return not self.violations

    # ------------------------------------------------------------------

    def after_delivery(self, sim, node_id: int, msg) -> None:
        """Re-check the receiving node after a delivery (simulator hook)."""
        if node_id not in self.honest:
            return
        node = sim.nodes[node_id]
        locked = getattr(node, "locked", None)
        if locked is None:
            return  # not a matching protocol node (e.g. a plain test node)
        self.deliveries_checked += 1
        now = sim.now
        if len(locked) > self.quotas[node_id]:
            self._record(
                now,
                f"quota violated: node {node_id} holds {len(locked)} locks "
                f"(quota {self.quotas[node_id]})",
            )
        prev = self._prev_locked.get(node_id, frozenset())
        fresh = locked - prev
        if fresh:
            ever = self._ever_locked.setdefault(node_id, set())
            for j in fresh:
                if j not in self.adjacency[node_id]:
                    self._record(
                        now, f"locality violated: node {node_id} locked non-neighbour {j}"
                    )
                if j in ever:
                    self._record(
                        now,
                        f"duplicate lock: node {node_id} re-locked {j} after a release",
                    )
                ever.add(j)
                self._check_justified(sim, node_id, j, now)
        self._prev_locked[node_id] = frozenset(locked)

    def _check_justified(self, sim, i: int, j: int, now: float) -> None:
        """A fresh lock ``i -> j`` needs a live proposal from ``j``."""
        if j not in self.honest or not (0 <= j < len(sim.nodes)):
            return  # Byzantine peers fabricate anything; nothing to check
        peer = sim.nodes[j]
        if peer.crashed:
            return  # the PROP predates the crash; extraction drops the edge
        if (
            i in getattr(peer, "proposed", ())
            or i in getattr(peer, "locked", ())
            or i in getattr(peer, "withdrawn", ())
            or i in getattr(peer, "suspected", ())
        ):
            return
        self._record(
            now,
            f"unjustified lock: node {i} locked {j} but {j} neither proposed "
            f"to nor withdrew {i}",
        )

    # ------------------------------------------------------------------

    def at_quiescence(self, sim) -> list[str]:
        """Final symmetry check over the live honest subgraph.

        Every lock between two live honest nodes must be mutual by the
        time the event queue has drained — releases and revocations
        have all been delivered (or their budgets exhausted, which *is*
        a violation: the runtime failed to restore symmetry).  Returns
        the violations found by this sweep.
        """
        before = len(self.violations)
        for i in sorted(self.honest):
            if i >= len(sim.nodes):
                continue
            node = sim.nodes[i]
            if node.crashed:
                continue
            for j in getattr(node, "locked", ()):
                if j not in self.honest or not (0 <= j < len(sim.nodes)):
                    continue
                peer = sim.nodes[j]
                if peer.crashed:
                    continue
                if i not in getattr(peer, "locked", ()):
                    self._record(
                        sim.now,
                        f"asymmetric lock at quiescence: {i} locks {j} "
                        f"but {j} does not lock {i}",
                    )
        return self.violations[before:]
