"""Structured execution traces for debugging and validation.

A :class:`Trace` records every scheduler occurrence as a flat
:class:`TraceRecord`.  Traces are opt-in (they cost memory proportional
to the number of events) and are mainly used by tests that assert
protocol-level properties — e.g. that LID only ever sends ``PROP``
messages in decreasing weight order, or that no message follows a node's
termination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

__all__ = ["TraceRecord", "Trace"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced occurrence.

    ``what`` is one of ``"send"``, ``"deliver"``, ``"drop"``, ``"timer"``,
    ``"terminate"``, ``"crash"``.
    """

    time: float
    what: str
    node: int
    peer: int = -1
    kind: str = ""
    payload: Any = None


class Trace:
    """Append-only list of :class:`TraceRecord` with query helpers."""

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []

    def log(
        self,
        time: float,
        what: str,
        node: int,
        peer: int = -1,
        kind: str = "",
        payload: Any = None,
    ) -> None:
        """Append a record."""
        self.records.append(TraceRecord(time, what, node, peer, kind, payload))

    def filter(
        self,
        what: Optional[str] = None,
        node: Optional[int] = None,
        kind: Optional[str] = None,
    ) -> Iterator[TraceRecord]:
        """Iterate records matching all given criteria."""
        for r in self.records:
            if what is not None and r.what != what:
                continue
            if node is not None and r.node != node:
                continue
            if kind is not None and r.kind != kind:
                continue
            yield r

    def sends_from(self, node: int, kind: Optional[str] = None) -> list[TraceRecord]:
        """All send records originating at ``node`` in time order."""
        return list(self.filter(what="send", node=node, kind=kind))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)
