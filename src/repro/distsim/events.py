"""Event kinds (and the legacy entry record) for the scheduler.

Events are totally ordered by ``(time, order)``, where ``order`` is a
monotone counter assigned at scheduling time.  The counter guarantees a
deterministic processing order for simultaneous events, independent of
heap internals — a prerequisite for reproducible distributed runs.

The scheduler's hot path stores events as plain ``(time, order, kind,
node, data)`` tuples — dataclass construction and rich comparison were
a measurable share of per-message cost.  The :class:`Event` record is
kept as the documented shape of those tuples (and for any external
code that materialises events), but the simulator no longer allocates
it per message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Event", "DELIVERY", "TIMER", "CONTROL"]

#: Event kinds understood by the scheduler.
DELIVERY = "delivery"
TIMER = "timer"
CONTROL = "control"


@dataclass(frozen=True, slots=True, order=True)
class Event:
    """A scheduled occurrence.

    ``data`` carries the :class:`~repro.distsim.messages.Message` for
    deliveries, the timer tag for timers, or a callable for control
    events (used by churn scripts to inject joins/leaves at fixed
    virtual times).
    """

    time: float
    order: int
    kind: str = field(compare=False)
    node: int = field(compare=False)
    data: Any = field(compare=False, default=None)
