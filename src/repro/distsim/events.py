"""Event-queue entries for the discrete-event scheduler.

Events are totally ordered by ``(time, order)``, where ``order`` is a
monotone counter assigned at scheduling time.  The counter guarantees a
deterministic processing order for simultaneous events, independent of
heap internals — a prerequisite for reproducible distributed runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Event", "DELIVERY", "TIMER", "CONTROL"]

#: Event kinds understood by the scheduler.
DELIVERY = "delivery"
TIMER = "timer"
CONTROL = "control"


@dataclass(frozen=True, slots=True, order=True)
class Event:
    """A scheduled occurrence.

    ``data`` carries the :class:`~repro.distsim.messages.Message` for
    deliveries, the timer tag for timers, or a callable for control
    events (used by churn scripts to inject joins/leaves at fixed
    virtual times).
    """

    time: float
    order: int
    kind: str = field(compare=False)
    node: int = field(compare=False)
    data: Any = field(compare=False, default=None)
