"""Failure injection: loss, crashes, partitions, link flaps, Byzantine.

The paper's future-work section (§7) asks how the greedy strategy copes
with "scenarios where some malicious nodes actively try to disrupt the
algorithm's execution".  These adapters let the robustness experiments
(A2 and the fault campaign of :mod:`repro.experiments.campaign`)
exercise LID under:

- i.i.d. message loss (:class:`BernoulliLoss`),
- scheduled node crashes (:class:`CrashSchedule`),
- network partitions with heal cycles (:class:`PartitionSchedule`),
- periodically flapping links (:class:`LinkFlap`),
- Byzantine nodes that reject everyone or spam proposals
  (:func:`make_byzantine`).

LID as published assumes reliable channels; under loss it can stall
(a node waits forever for an answer).  Two reliability layers restore
termination:

- the minimal timer-retransmission wrapper
  (:class:`repro.core.lid.LidNode` with ``retransmit_timeout``), and
- the full resilient runtime
  (:class:`repro.core.resilient_lid.ResilientLidNode` over
  :class:`repro.distsim.reliable.ReliableNode`), which adds ACKs,
  duplicate suppression and heartbeat failure detection so crashes and
  partitions are survived too — see ``docs/robustness.md``.

Time-varying injectors (:class:`PartitionSchedule`, :class:`LinkFlap`)
are *both* drop filters and control-event sources: install them on the
simulator (``sched.install(sim)``) so their windows toggle at the right
virtual times, and pass them (possibly composed with a loss filter via
:func:`compose_drops`) as the network's ``drop_filter``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.distsim.messages import Message
from repro.distsim.network import DropFilter
from repro.utils.validation import check_probability

__all__ = [
    "BernoulliLoss",
    "CrashSchedule",
    "PartitionSchedule",
    "LinkFlap",
    "compose_drops",
    "make_byzantine",
]


class BernoulliLoss:
    """Drop filter: each message is lost independently with probability ``p``.

    Optionally restricted to a set of ``victims`` (messages to or from
    those nodes), modelling lossy last-mile links.
    """

    def __init__(self, p: float, victims: Iterable[int] | None = None):
        self.p = check_probability(p, "p")
        self.victims = None if victims is None else frozenset(victims)

    def __call__(self, msg: Message, rng: np.random.Generator) -> bool:
        if self.victims is not None and msg.src not in self.victims and msg.dst not in self.victims:
            return False
        return bool(rng.random() < self.p)


class CrashSchedule:
    """Crash the given nodes at the given virtual times.

    Entries are ``(time, node_id)`` pairs.  Inputs are validated
    eagerly: a non-positive or non-finite time, or a negative node id,
    raises :class:`ValueError` at construction; an id beyond the
    simulator's node table raises at :meth:`install` — silent
    scheduling of impossible crashes would make a fault campaign
    vacuously pass.

    Usage::

        sched = CrashSchedule([(5.0, 3), (9.0, 7)])
        sched.install(sim)
    """

    def __init__(self, crashes: Sequence[tuple[float, int]]):
        validated = []
        for entry in crashes:
            try:
                time, node = entry
            except (TypeError, ValueError):
                raise ValueError(
                    f"crash entries must be (time, node_id) pairs, got {entry!r}"
                ) from None
            time = float(time)
            if not np.isfinite(time) or time <= 0:
                raise ValueError(
                    f"crash time must be positive and finite, got {time!r}"
                )
            if not isinstance(node, (int, np.integer)) or isinstance(node, bool):
                raise ValueError(f"crash node id must be an int, got {node!r}")
            if node < 0:
                raise ValueError(f"crash node id must be non-negative, got {node}")
            validated.append((time, int(node)))
        self.crashes = sorted(validated)

    @property
    def victims(self) -> frozenset[int]:
        """Node ids scheduled to crash."""
        return frozenset(node for _, node in self.crashes)

    def install(self, sim) -> None:
        """Register control events on a simulator."""
        for _, node in self.crashes:
            if node >= len(sim.nodes):
                raise ValueError(
                    f"crash schedule names unknown node {node} "
                    f"(simulator has {len(sim.nodes)} nodes)"
                )
        for time, node in self.crashes:
            sim.schedule_control(time, lambda s, node=node: s.crash(node))


class PartitionSchedule:
    """Network partitions over ``[start, end)`` windows, with healing.

    Each window is ``(start, end, groups)`` where ``groups`` is a
    sequence of disjoint node-id groups.  While a window is active,
    messages between different groups are dropped; nodes not listed in
    any group form one implicit "rest" group.  At ``end`` the partition
    heals and traffic flows again (a *partition/heal cycle*).

    The object is simultaneously a drop filter (pass it — possibly
    composed via :func:`compose_drops` — as the network's
    ``drop_filter``) and a control-event source (call
    :meth:`install` so windows toggle at the scheduled virtual times).
    Messages already in flight when a window opens are delivered: the
    partition blocks *transmission*, not propagation, like a real cable
    cut between routers.
    """

    def __init__(self, windows: Sequence[tuple[float, float, Sequence[Sequence[int]]]]):
        self.windows: list[tuple[float, float, list[list[int]]]] = []
        for entry in windows:
            try:
                start, end, groups = entry
            except (TypeError, ValueError):
                raise ValueError(
                    "partition windows must be (start, end, groups) triples, "
                    f"got {entry!r}"
                ) from None
            start, end = float(start), float(end)
            if not (np.isfinite(start) and np.isfinite(end)) or not (0 <= start < end):
                raise ValueError(
                    f"need 0 <= start < end (finite), got ({start}, {end})"
                )
            seen: set[int] = set()
            clean_groups: list[list[int]] = []
            for group in groups:
                clean = [int(v) for v in group]
                for v in clean:
                    if v < 0:
                        raise ValueError(f"negative node id {v} in partition group")
                    if v in seen:
                        raise ValueError(
                            f"node {v} appears in two groups of the same window"
                        )
                    seen.add(v)
                clean_groups.append(clean)
            if not clean_groups:
                raise ValueError("a partition window needs at least one group")
            self.windows.append((start, end, clean_groups))
        self.windows.sort(key=lambda w: w[0])
        #: node id -> active group index (empty when healed)
        self._group_of: dict[int, int] = {}
        self._active = False
        #: messages dropped because a partition was active
        self.partition_drops = 0

    @property
    def active(self) -> bool:
        """Whether a partition window is currently open."""
        return self._active

    def _open(self, groups: Sequence[Sequence[int]]) -> None:
        self._group_of = {v: g for g, members in enumerate(groups) for v in members}
        self._active = True

    def _heal(self) -> None:
        self._group_of = {}
        self._active = False

    def install(self, sim) -> None:
        """Schedule the open/heal toggles as simulator control events."""
        for start, end, groups in self.windows:
            sim.schedule_control(start, lambda s, g=groups: self._open(g))
            sim.schedule_control(end, lambda s: self._heal())

    def __call__(self, msg: Message, rng: np.random.Generator) -> bool:
        if not self._active:
            return False
        if self._group_of.get(msg.src, -1) != self._group_of.get(msg.dst, -1):
            self.partition_drops += 1
            return True
        return False

    def severed(self, i: int, j: int) -> bool:
        """Whether the live configuration currently severs ``i`` ↔ ``j``."""
        return self._active and self._group_of.get(i, -1) != self._group_of.get(j, -1)


class LinkFlap:
    """One undirected link going down/up periodically.

    Starting at ``phase``, the link ``(i, j)`` is down for ``down_for``
    time units at the start of every ``period``, until virtual time
    ``until``.  Like :class:`PartitionSchedule` it is both a drop
    filter and a control-event source (:meth:`install`).
    """

    def __init__(
        self,
        link: tuple[int, int],
        period: float,
        down_for: float,
        until: float,
        phase: float = 0.0,
    ):
        i, j = int(link[0]), int(link[1])
        if i < 0 or j < 0 or i == j:
            raise ValueError(f"link must join two distinct non-negative ids, got {link!r}")
        self.link = (i, j) if i < j else (j, i)
        if period <= 0 or down_for <= 0 or down_for >= period:
            raise ValueError(
                f"need 0 < down_for < period, got down_for={down_for}, period={period}"
            )
        if until <= phase or phase < 0:
            raise ValueError(f"need 0 <= phase < until, got phase={phase}, until={until}")
        self.period = float(period)
        self.down_for = float(down_for)
        self.until = float(until)
        self.phase = float(phase)
        self._down = False
        self.flap_drops = 0

    @property
    def down(self) -> bool:
        """Whether the link is currently down."""
        return self._down

    def _set(self, down: bool) -> None:
        self._down = down

    def install(self, sim) -> None:
        """Schedule the down/up toggles as simulator control events."""
        t = self.phase
        while t < self.until:
            start = max(t, 1e-9)  # control events need positive time
            sim.schedule_control(start, lambda s: self._set(True))
            sim.schedule_control(t + self.down_for, lambda s: self._set(False))
            t += self.period

    def __call__(self, msg: Message, rng: np.random.Generator) -> bool:
        if not self._down:
            return False
        a, b = (msg.src, msg.dst) if msg.src < msg.dst else (msg.dst, msg.src)
        if (a, b) == self.link:
            self.flap_drops += 1
            return True
        return False


def compose_drops(*filters: DropFilter | None) -> DropFilter | None:
    """OR-compose drop filters: a message is dropped if *any* filter drops it.

    ``None`` entries are skipped; with no live filters the result is
    ``None`` (no loss), so callers can pass optional injectors straight
    through.  Filters are evaluated in order and evaluation stops at the
    first drop, so each filter's accounting only counts messages that
    survived the earlier ones.
    """
    live = [f for f in filters if f is not None]
    if not live:
        return None
    if len(live) == 1:
        return live[0]

    def _composite(msg: Message, rng: np.random.Generator) -> bool:
        return any(f(msg, rng) for f in live)

    return _composite


def make_byzantine(node, mode: str = "reject_all"):
    """Wrap a protocol node with disruptive behaviour.

    Works on :class:`repro.core.lid.LidNode`-style nodes (raw
    ``PROP``/``REJ`` messages).  For the resilient runtime use
    :func:`repro.core.resilient_lid.make_byzantine_resilient`, which
    keeps the transport layer intact while corrupting the protocol
    layer.

    Modes
    -----
    ``reject_all``:
        The node answers every proposal with ``REJ`` and proposes to
        nobody — it removes itself from the matching while forcing
        neighbours to walk down their weight lists.
    ``accept_all``:
        The node proposes to *every* neighbour regardless of quota,
        trying to lock more connections than allowed.  Honest LID nodes
        are not harmed: they lock at most their own quota, and the
        resulting matching restricted to honest-honest edges stays
        feasible (checked by experiment A2).
    """
    if mode == "reject_all":
        original_on_message = node.on_message

        def on_message(src: int, kind: str, payload) -> None:
            if kind == "PROP":
                node.send(src, "REJ")
            # swallow everything else

        def on_start() -> None:
            node.terminated = False  # stays alive to keep rejecting

        node.on_message = on_message
        node.on_start = on_start
        node._byzantine = ("reject_all", original_on_message)
        return node
    if mode == "accept_all":
        def on_start() -> None:
            for j in node.weight_list:
                node.send(j, "PROP")

        def on_message(src: int, kind: str, payload) -> None:
            if kind == "PROP":
                # claims the connection but never honours quota
                node.locked.add(src)

        node.on_start = on_start
        node.on_message = on_message
        node._byzantine = ("accept_all", None)
        return node
    raise ValueError(f"unknown byzantine mode {mode!r}")
