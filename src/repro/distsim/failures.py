"""Failure injection: message loss, node crashes, Byzantine behaviour.

The paper's future-work section (§7) asks how the greedy strategy copes
with "scenarios where some malicious nodes actively try to disrupt the
algorithm's execution".  These adapters let the A2 robustness experiment
exercise LID under:

- i.i.d. message loss (:class:`BernoulliLoss`),
- scheduled node crashes (:class:`CrashSchedule`),
- Byzantine nodes that reject everyone or spam proposals
  (:func:`make_byzantine`).

LID as published assumes reliable channels; under loss it can stall
(a node waits forever for an answer).  The experiment quantifies the
stall probability and shows that the timeout-based retransmission
wrapper (:class:`repro.core.lid.LidNode` with ``retransmit_timeout``)
restores termination — a minimal, documented extension.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.distsim.messages import Message
from repro.utils.validation import check_probability

__all__ = ["BernoulliLoss", "CrashSchedule", "make_byzantine"]


class BernoulliLoss:
    """Drop filter: each message is lost independently with probability ``p``.

    Optionally restricted to a set of ``victims`` (messages to or from
    those nodes), modelling lossy last-mile links.
    """

    def __init__(self, p: float, victims: Iterable[int] | None = None):
        self.p = check_probability(p, "p")
        self.victims = None if victims is None else frozenset(victims)

    def __call__(self, msg: Message, rng: np.random.Generator) -> bool:
        if self.victims is not None and msg.src not in self.victims and msg.dst not in self.victims:
            return False
        return bool(rng.random() < self.p)


class CrashSchedule:
    """Crash the given nodes at the given virtual times.

    Usage::

        sched = CrashSchedule([(5.0, 3), (9.0, 7)])
        sched.install(sim)
    """

    def __init__(self, crashes: Sequence[tuple[float, int]]):
        self.crashes = sorted(crashes)

    def install(self, sim) -> None:
        """Register control events on a simulator."""
        for time, node in self.crashes:
            sim.schedule_control(time, lambda s, node=node: s.crash(node))


def make_byzantine(node, mode: str = "reject_all"):
    """Wrap a protocol node with disruptive behaviour.

    Modes
    -----
    ``reject_all``:
        The node answers every proposal with ``REJ`` and proposes to
        nobody — it removes itself from the matching while forcing
        neighbours to walk down their weight lists.
    ``accept_all``:
        The node proposes to *every* neighbour regardless of quota,
        trying to lock more connections than allowed.  Honest LID nodes
        are not harmed: they lock at most their own quota, and the
        resulting matching restricted to honest-honest edges stays
        feasible (checked by experiment A2).
    """
    if mode == "reject_all":
        original_on_message = node.on_message

        def on_message(src: int, kind: str, payload) -> None:
            if kind == "PROP":
                node.send(src, "REJ")
            # swallow everything else

        def on_start() -> None:
            node.terminated = False  # stays alive to keep rejecting

        node.on_message = on_message
        node.on_start = on_start
        node._byzantine = ("reject_all", original_on_message)
        return node
    if mode == "accept_all":
        def on_start() -> None:
            for j in node.weight_list:
                node.send(j, "PROP")

        def on_message(src: int, kind: str, payload) -> None:
            if kind == "PROP":
                # claims the connection but never honours quota
                node.locked.add(src)

        node.on_start = on_start
        node.on_message = on_message
        node._byzantine = ("accept_all", None)
        return node
    raise ValueError(f"unknown byzantine mode {mode!r}")
