"""Reliable-channel layer: ACKs, backoff retransmission, heartbeats.

The faithful Algorithm 1 assumes reliable point-to-point channels.  The
paper's future-work section (§7) asks what happens without them; this
module is the substrate-level answer — a transport any protocol node
can opt into by subclassing :class:`ReliableNode`:

- **reliable delivery** — every datagram carries a per-link sequence
  number and is retransmitted on a capped exponential backoff schedule
  (deterministic seeded jitter) until the receiver's ``ACK`` arrives or
  the retransmit *budget* is exhausted;
- **duplicate suppression** — the receiver delivers each ``(src, seq)``
  exactly once to the protocol layer, so retransmissions are invisible
  to protocol logic (no more ``payload == "retry"`` special cases);
- **failure detection** — a heartbeat tick broadcasts liveness to the
  peers awaiting this node's decision, and a per-peer silence clock
  (fed by *any* traffic: data, ACKs or heartbeats) raises
  :meth:`ReliableNode.on_peer_suspected` once a *watched* peer has been
  silent for ``suspect_after`` time units.

The protocol layer talks through three hooks instead of the raw
``ProtocolNode`` ones: :meth:`ReliableNode.rsend` to send,
:meth:`ReliableNode.on_datagram` to receive, and
:meth:`ReliableNode.on_app_timer` for its own timers.  The base class
owns ``on_message`` / ``on_timer`` and multiplexes transport control
traffic (``DATA`` / ``ACK`` / ``HB``) away from protocol data.

Determinism: backoff jitter is the only randomness and comes from a
generator the caller spawns off the run's root seed (one per node, via
:func:`repro.utils.rng.spawn_rng`), so a seeded fault campaign replays
exactly.

Liveness boundary (documented, tested, and reported honestly): a
message to a *crashed* peer retransmits until the budget runs out and
then surfaces through :meth:`ReliableNode.on_delivery_failed`; a
message across a *partition* is delivered iff the partition heals
within the budget's backoff window.  Campaigns size
``BackoffPolicy.budget`` against their partition windows — see
``docs/robustness.md``.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.distsim.node import ProtocolNode

__all__ = ["BackoffPolicy", "ReliableNode", "DATA", "ACK", "HB"]

#: Transport-level message kinds (protocol kinds travel inside DATA).
DATA = "DATA"
ACK = "ACK"
HB = "HB"

#: Internal timer-tag markers (tuples so they never collide with app tags).
_RETX = "__retx__"
_TICK = "__hb_tick__"


class BackoffPolicy:
    """Retransmission schedule: capped exponential backoff with jitter.

    Attempt ``k`` (0-based; attempt 0 arms the timer at first send) is
    retried after ``min(base * factor**k, cap)`` time units, stretched
    by up to ``jitter`` (a fraction) of itself using the caller's
    seeded generator — jitter de-synchronises retry storms after a
    partition heals without breaking reproducibility.

    ``base`` must exceed the network round-trip time or every first
    retry fires before its ACK can possibly arrive; the default of 3.0
    clears the default unit-latency network's RTT of 2.0.

    ``budget`` bounds the number of *re*-transmissions per datagram
    (``None`` = unlimited, which trades guaranteed quiescence for
    delivery persistence — a campaign against crashes must keep it
    finite).  :meth:`span` gives the worst-case time from first send to
    giving up, the number campaigns compare against partition windows.
    """

    def __init__(
        self,
        base: float = 3.0,
        factor: float = 2.0,
        cap: float = 30.0,
        jitter: float = 0.1,
        budget: Optional[int] = 12,
    ):
        if base <= 0:
            raise ValueError(f"base must be positive, got {base}")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        if cap < base:
            raise ValueError(f"cap must be >= base, got cap={cap}, base={base}")
        if not (0.0 <= jitter < 1.0):
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        if budget is not None and (not isinstance(budget, int) or budget < 1):
            raise ValueError(f"budget must be a positive int or None, got {budget!r}")
        self.base = float(base)
        self.factor = float(factor)
        self.cap = float(cap)
        self.jitter = float(jitter)
        self.budget = budget

    @classmethod
    def fixed(cls, timeout: float, budget: Optional[int] = None) -> "BackoffPolicy":
        """The legacy fixed-timer schedule (no growth, no jitter)."""
        return cls(base=timeout, factor=1.0, cap=timeout, jitter=0.0, budget=budget)

    def delay(self, attempt: int, rng: Optional[np.random.Generator] = None) -> float:
        """Delay before (re)transmission number ``attempt + 1``."""
        d = min(self.base * self.factor ** attempt, self.cap)
        if self.jitter and rng is not None:
            d *= 1.0 + self.jitter * float(rng.random())
        return d

    def span(self) -> float:
        """Worst-case time from first send until the budget is exhausted.

        ``inf`` for unlimited budgets.  Jitter is included at its
        maximum, so a partition strictly shorter than ``span()`` plus
        the one-way latency is always out-waited by a pending datagram.
        """
        if self.budget is None:
            return float("inf")
        total = 0.0
        for attempt in range(self.budget + 1):
            total += min(self.base * self.factor ** attempt, self.cap)
        return total * (1.0 + self.jitter)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BackoffPolicy(base={self.base}, factor={self.factor}, "
            f"cap={self.cap}, jitter={self.jitter}, budget={self.budget})"
        )


class ReliableNode(ProtocolNode):
    """Protocol-node base class with reliable channels and failure detection.

    Subclasses implement the *datagram* hooks (:meth:`on_datagram`,
    :meth:`on_app_timer`, :meth:`on_peer_suspected`,
    :meth:`on_delivery_failed`) and send via :meth:`rsend`; the
    transport beneath guarantees exactly-once, eventually-delivered
    semantics within the retransmit budget.

    Parameters
    ----------
    backoff:
        Retransmission policy (default: capped exponential, budget 12).
    heartbeat_interval:
        Period of the liveness tick.  Each tick sends ``HB`` to
        :meth:`heartbeat_targets` and sweeps the watch list for silent
        peers.  ``None`` disables heartbeats *and* failure detection.
    suspect_after:
        Silence (no message of any kind) threshold after which a
        *watched* peer is declared suspected.  Must comfortably exceed
        ``heartbeat_interval`` plus channel latency, or live peers get
        declared dead (the classic failure-detector accuracy/latency
        trade-off; the campaign sweeps this).
    rng:
        Seeded generator for backoff jitter (``None`` = no jitter).
    """

    def __init__(
        self,
        backoff: Optional[BackoffPolicy] = None,
        heartbeat_interval: Optional[float] = None,
        suspect_after: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {heartbeat_interval}"
            )
        if suspect_after is not None:
            if heartbeat_interval is None:
                raise ValueError("suspect_after requires heartbeat_interval")
            if suspect_after <= heartbeat_interval:
                raise ValueError(
                    "suspect_after must exceed heartbeat_interval "
                    f"({suspect_after} <= {heartbeat_interval})"
                )
        self.heartbeat_interval = heartbeat_interval
        self.suspect_after = suspect_after
        self._rng = rng
        # transport state
        self._next_seq: dict[int, int] = {}
        self._unacked: dict[tuple[int, int], list] = {}  # (dst, seq) -> [kind, payload, attempts]
        self._delivered: dict[int, set[int]] = {}  # src -> seqs handed to protocol
        # failure-detector state
        self._watched: dict[int, float] = {}  # peer -> watch start time
        self._last_heard: dict[int, float] = {}
        self.suspected: set[int] = set()
        self._ticking = False
        # transport statistics
        self.retransmissions = 0
        self.duplicates = 0
        self.acks_sent = 0
        self.heartbeats_sent = 0
        self.delivery_failures = 0
        self.raw_messages = 0

    # -- sending --------------------------------------------------------

    def rsend(self, dst: int, kind: str, payload: Any = None) -> None:
        """Send ``kind``/``payload`` reliably (ACK + retransmission)."""
        seq = self._next_seq.get(dst, 0)
        self._next_seq[dst] = seq + 1
        self._unacked[(dst, seq)] = [kind, payload, 0]
        self.send(dst, DATA, (seq, kind, payload))
        self.set_timer(self.backoff.delay(0, self._rng), (_RETX, dst, seq))

    def abandon(self, peer: int) -> int:
        """Stop retransmitting everything currently pending to ``peer``.

        Used when the failure detector gives up on a peer; returns the
        number of cancelled datagrams.  Later :meth:`rsend` calls to the
        same peer start fresh (e.g. a revocation notice that should
        still try to get through a healing partition).
        """
        stale = [key for key in self._unacked if key[0] == peer]
        for key in stale:
            del self._unacked[key]
        return len(stale)

    def unacked_to(self, peer: int) -> int:
        """Number of datagrams currently awaiting ``peer``'s ACK."""
        return sum(1 for dst, _ in self._unacked if dst == peer)

    # -- failure detector ----------------------------------------------

    def watch(self, peer: int) -> None:
        """Start monitoring ``peer`` for liveness (idempotent)."""
        if self.suspect_after is None or peer in self.suspected:
            return
        self._watched.setdefault(peer, self.now)
        self._ensure_tick()

    def unwatch(self, peer: int) -> None:
        """Stop monitoring ``peer`` (it answered / resolved)."""
        self._watched.pop(peer, None)

    def watched(self) -> frozenset[int]:
        """Peers currently under liveness surveillance."""
        return frozenset(self._watched)

    def start_monitoring(self) -> None:
        """Arm the heartbeat tick (call from ``on_start`` when enabled)."""
        self._ensure_tick()

    def _ensure_tick(self) -> None:
        if self.heartbeat_interval is None or self._ticking:
            return
        self._ticking = True
        self.set_timer(self.heartbeat_interval, (_TICK,))

    def _tick(self) -> None:
        self._ticking = False
        for peer in self.heartbeat_targets():
            self.send(peer, HB)
            self.heartbeats_sent += 1
        if self.suspect_after is not None:
            now = self.now
            for peer in [
                p
                for p, since in self._watched.items()
                if now - self._last_heard.get(p, since) > self.suspect_after
            ]:
                self._watched.pop(peer, None)
                self.suspected.add(peer)
                self.on_peer_suspected(peer)
        if self.keep_monitoring():
            self._ensure_tick()

    # -- ProtocolNode plumbing (final: subclasses use the hooks below) --

    def on_message(self, src: int, kind: str, payload: Any) -> None:
        self._last_heard[src] = self.now
        if kind == DATA:
            seq, inner_kind, inner_payload = payload
            # ACK unconditionally — duplicates mean our previous ACK was
            # lost, so the sender needs another one to stop retrying.
            self.send(src, ACK, seq)
            self.acks_sent += 1
            seen = self._delivered.setdefault(src, set())
            if seq in seen:
                self.duplicates += 1
                if self.sim is not None:
                    self.sim.metrics.duplicates_suppressed += 1
                return
            seen.add(seq)
            self.on_datagram(src, inner_kind, inner_payload)
        elif kind == ACK:
            self._unacked.pop((src, payload), None)
        elif kind == HB:
            pass  # liveness already noted above
        else:
            self.raw_messages += 1
            self.on_raw_message(src, kind, payload)

    def on_timer(self, tag: Any) -> None:
        if type(tag) is tuple and tag:
            if tag[0] == _RETX:
                _, dst, seq = tag
                entry = self._unacked.get((dst, seq))
                if entry is None:
                    return  # acked or abandoned — timer cancelled
                kind, payload, attempts = entry
                attempts += 1
                if self.backoff.budget is not None and attempts > self.backoff.budget:
                    del self._unacked[(dst, seq)]
                    self.delivery_failures += 1
                    self.on_delivery_failed(dst, kind, payload)
                    return
                entry[2] = attempts
                self.send(dst, DATA, (seq, kind, payload))
                self.retransmissions += 1
                if self.sim is not None:
                    self.sim.metrics.retransmissions += 1
                self.set_timer(self.backoff.delay(attempts, self._rng), tag)
                return
            if tag[0] == _TICK:
                self._tick()
                return
        self.on_app_timer(tag)

    # -- protocol hooks (override in subclasses) ------------------------

    def on_datagram(self, src: int, kind: str, payload: Any) -> None:
        """Called exactly once per successfully delivered datagram."""

    def on_app_timer(self, tag: Any) -> None:
        """Called for timers the protocol layer set via ``set_timer``."""

    def on_peer_suspected(self, peer: int) -> None:
        """A watched peer exceeded the silence threshold."""

    def on_delivery_failed(self, dst: int, kind: str, payload: Any) -> None:
        """The retransmit budget for a datagram ran out unacknowledged."""

    def on_raw_message(self, src: int, kind: str, payload: Any) -> None:
        """A non-transport message arrived (legacy or Byzantine peer)."""

    def heartbeat_targets(self) -> frozenset[int]:
        """Peers to send ``HB`` to on each tick.

        Default: nobody.  Protocols return the peers *awaiting their
        decision* (for LID: the unanswered approachers) so that a slow
        but live node is not mistaken for a dead one.
        """
        return frozenset()

    def keep_monitoring(self) -> bool:
        """Whether the heartbeat tick should re-arm.

        Default: while anything is still watched.  Protocols extend
        this (e.g. LID keeps ticking until the node has finished).
        """
        return bool(self._watched)
