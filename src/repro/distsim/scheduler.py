"""Deterministic discrete-event simulation engine.

The engine maintains a priority queue of pending events ordered by
``(time, insertion order)`` and processes them until quiescence (empty
queue), a step budget, or a time horizon.  Protocol nodes are driven
through their ``on_start`` / ``on_message`` / ``on_timer`` hooks; every
side effect (sending, timers) flows back through the simulator, which
is how message metrics and traces are collected without any
cooperation from protocol code.

Design notes
------------
- *Determinism*: the only ordering authority is the event queue; equal
  delivery times are resolved by the monotone insertion counter, so a
  fixed seed reproduces the exact event sequence.
- *Queue backends*: events are plain tuples ``(time, order, kind,
  node, data)``.  Two interchangeable queue disciplines produce the
  identical ``(time, order)`` processing sequence:

  - ``"heap"`` — one ``heapq`` entry per event; robust for arbitrary
    (random) latencies where delivery times are almost all distinct.
  - ``"calendar"`` — a bucket (calendar) queue: a dict mapping each
    distinct delivery time to a FIFO of its events plus a small heap
    of the distinct times.  Under a constant-latency model a round's
    worth of messages lands in a handful of buckets, so per-message
    queue cost drops from ``O(log #events)`` to ``O(1)`` dict/deque
    operations.  FIFO order within a bucket equals insertion-counter
    order because the counter is monotone, which is exactly the heap's
    tie-break — see ``tests/distsim/test_calendar_queue.py`` for the
    replay property.

  The default ``"auto"`` picks ``calendar`` for plain constant-latency
  networks (LID's unit-latency rounds) and ``heap`` otherwise.
- *Quiescence as termination*: protocols like LID terminate when no
  messages are in flight and every node has exited its receive loop.
  ``run()`` therefore runs the queue dry by default — mirroring the
  paper's Lemma 5, which guarantees the queue *does* run dry.
- *Safety valve*: ``run`` aborts with :class:`ProtocolError` once it
  has processed ``max_events`` *live* events (see ``run`` for the
  default budget), turning a would-be hang into a test failure.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Optional, Sequence

from repro.distsim.events import CONTROL, DELIVERY, TIMER
from repro.distsim.messages import Message
from repro.distsim.metrics import SimMetrics
from repro.distsim.network import ConstantLatency, Network
from repro.distsim.node import ProtocolNode
from repro.distsim.tracing import Trace
from repro.utils.validation import ProtocolError

__all__ = ["Simulator"]

#: Queue disciplines accepted by :class:`Simulator`.
_QUEUE_MODES = ("auto", "calendar", "heap")


class Simulator:
    """Event loop binding nodes to a :class:`~repro.distsim.network.Network`.

    Parameters
    ----------
    network:
        The channel model (latency / FIFO / loss).
    nodes:
        The protocol nodes, indexed by node id.  ``len(nodes)`` must
        not exceed ``network.n``.
    trace:
        Optional :class:`~repro.distsim.tracing.Trace` to record every
        occurrence (costly; tests only).  Without a trace the event
        loop takes a branch-free fast path per delivery.
    queue:
        Queue discipline: ``"calendar"``, ``"heap"``, or ``"auto"``
        (default — calendar for constant-latency networks, heap
        otherwise).  Both disciplines process the exact same event
        sequence; the choice is purely a performance knob.
    monitor:
        Optional runtime invariant monitor (an object with an
        ``after_delivery(sim, node_id, msg)`` method, e.g.
        :class:`repro.distsim.invariants.InvariantMonitor`): called
        after every *live* delivery so safety invariants (quota,
        lock symmetry, no duplicate lock) are checked at each state
        transition, not just at the end of a run.  ``None`` (default)
        keeps the delivery hot path monitor-free.
    """

    def __init__(
        self,
        network: Network,
        nodes: Sequence[ProtocolNode],
        trace: Optional[Trace] = None,
        queue: str = "auto",
        monitor=None,
    ):
        if len(nodes) > network.n:
            raise ValueError(
                f"got {len(nodes)} nodes for a network of size {network.n}"
            )
        # fewer nodes than network.n is allowed: the spare capacity is
        # headroom for add_node (churn joins)
        if queue not in _QUEUE_MODES:
            raise ValueError(f"queue must be one of {_QUEUE_MODES}, got {queue!r}")
        if queue == "auto":
            queue = (
                "calendar"
                if isinstance(network.latency, ConstantLatency)
                and network.bandwidth is None
                else "heap"
            )
        self.queue_mode = queue
        self.network = network
        self.nodes: list[ProtocolNode] = list(nodes)
        self.trace = trace
        self.monitor = monitor
        self.metrics = SimMetrics()
        self.now: float = 0.0
        # heap discipline: one (time, order, kind, node, data) tuple per
        # event.  calendar discipline: _buckets maps a delivery time to
        # the FIFO of its events' (order, kind, node, data) tails, and
        # _times is a heap of the distinct bucket times (a time is on
        # the heap iff its key is in _buckets; empty buckets are
        # reaped lazily in _peek_time).
        self._heap: list[tuple] = []
        self._buckets: dict[float, deque] = {}
        self._times: list[float] = []
        self._pending = 0
        self._order = 0
        self._ctx_depth = 0  # causal depth of the handler being executed
        self._started = False
        self._terminated_count = 0
        self.late_messages = 0

        for i, node in enumerate(self.nodes):
            node._attach(i, self)

    # ------------------------------------------------------------------
    # event queue (both disciplines; see module docstring)
    # ------------------------------------------------------------------

    def _push(self, time: float, kind: str, node: int, data: Any) -> None:
        self._order += 1
        self._pending += 1
        if self.queue_mode == "calendar":
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = bucket = deque()
                heapq.heappush(self._times, time)
            bucket.append((self._order, kind, node, data))
        else:
            heapq.heappush(self._heap, (time, self._order, kind, node, data))

    def _peek_time(self) -> Optional[float]:
        """Time of the next event, or ``None`` when the queue is empty."""
        if self.queue_mode != "calendar":
            return self._heap[0][0] if self._heap else None
        times, buckets = self._times, self._buckets
        while times:
            t = times[0]
            if buckets.get(t):
                return t
            heapq.heappop(times)  # lazily reap the drained bucket
            buckets.pop(t, None)
        return None

    def _pop(self) -> Optional[tuple]:
        """Pop the next ``(time, order, kind, node, data)`` event."""
        if self.queue_mode != "calendar":
            if not self._heap:
                return None
            self._pending -= 1
            return heapq.heappop(self._heap)
        t = self._peek_time()
        if t is None:
            return None
        self._pending -= 1
        return (t, *self._buckets[t].popleft())

    # ------------------------------------------------------------------
    # internal API used by ProtocolNode
    # ------------------------------------------------------------------

    def _send(self, src: int, dst: int, kind: str, payload: Any) -> None:
        if not (0 <= dst < len(self.nodes)):
            raise ProtocolError(f"node {src} sent to unknown node {dst}")
        self.metrics.sent_by_kind[kind] += 1
        self.metrics.sent_by_node[src] += 1
        if self.trace is not None:
            self.trace.log(self.now, "send", src, dst, kind, payload)
        result = self.network.transmit(
            self.now, src, dst, kind, payload, depth=self._ctx_depth + 1
        )
        if result is None:
            self.metrics.dropped += 1
            if self.trace is not None:
                self.trace.log(self.now, "drop", src, dst, kind, payload)
            return
        t, msg = result
        self._push(t, DELIVERY, dst, msg)

    def _set_timer(self, node: int, delay: float, tag: Any) -> None:
        if delay <= 0:
            raise ValueError(f"timer delay must be positive, got {delay}")
        # timers propagate the causal depth of the handler that set them
        self._push(self.now + delay, TIMER, node, (tag, self._ctx_depth))

    def _note_termination(self, node: int) -> None:
        self._terminated_count += 1
        if self.trace is not None:
            self.trace.log(self.now, "terminate", node)

    # ------------------------------------------------------------------
    # public control API
    # ------------------------------------------------------------------

    def schedule_control(self, time: float, fn: Callable[["Simulator"], None]) -> None:
        """Run ``fn(sim)`` at virtual ``time`` (churn scripts, crash injection)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        self._push(time, CONTROL, -1, fn)

    def add_node(self, node: ProtocolNode, start: bool = True) -> int:
        """Register a new node mid-run (churn join).  Returns its id.

        The caller must have grown the network first
        (:class:`~repro.distsim.network.Network` link set / ``n``).
        """
        node_id = len(self.nodes)
        self.nodes.append(node)
        if self.network.n < len(self.nodes):
            raise ValueError("grow network.n before adding nodes")
        node._attach(node_id, self)
        if start and self._started:
            node.on_start()
        return node_id

    def start(self) -> None:
        """Invoke ``on_start`` on every node (idempotent)."""
        if self._started:
            return
        self._started = True
        for node in self.nodes:
            if not node.crashed:
                node.on_start()

    def step(self) -> bool:
        """Process one event.  Returns ``False`` when the queue is empty."""
        return self._step() != 0

    def _step(self) -> int:
        """Process one event.

        Returns ``0`` when the queue is empty, ``2`` when the event was
        a message discarded because its receiver had already terminated
        or crashed (a *late* delivery), and ``1`` for every live event.
        ``run`` charges only live events against its hang budget.
        """
        ev = self._pop()
        if ev is None:
            return 0
        time, _order, kind, ev_node, data = ev
        if time < self.now:
            raise ProtocolError("event queue time went backwards")
        self.now = time
        self.metrics.events += 1
        if kind == DELIVERY:
            node = self.nodes[ev_node]
            msg: Message = data
            if node.crashed or node.terminated:
                # The receiver has left its receive loop; the message is
                # discarded (see LID termination analysis: any such
                # message crossed the receiver's final REJ broadcast).
                self.late_messages += 1
                return 2
            metrics = self.metrics
            metrics.delivered_by_kind[msg.kind] += 1
            metrics.received_by_node[ev_node] += 1
            if msg.depth > metrics.max_depth:
                metrics.max_depth = msg.depth
            if self.trace is not None:
                self.trace.log(self.now, "deliver", ev_node, msg.src, msg.kind, msg.payload)
            self._ctx_depth = msg.depth
            try:
                node.on_message(msg.src, msg.kind, msg.payload)
            finally:
                self._ctx_depth = 0
            if self.monitor is not None:
                self.monitor.after_delivery(self, ev_node, msg)
        elif kind == CONTROL:
            data(self)
        elif kind == TIMER:
            node = self.nodes[ev_node]
            if not (node.crashed or node.terminated):
                tag, depth = data
                if self.trace is not None:
                    self.trace.log(self.now, "timer", ev_node, -1, "", tag)
                self._ctx_depth = depth
                try:
                    node.on_timer(tag)
                finally:
                    self._ctx_depth = 0
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"unknown event kind {kind!r}")
        return 1

    def run(
        self,
        max_events: Optional[int] = None,
        max_time: Optional[float] = None,
        probe=None,
    ) -> SimMetrics:
        """Start (if needed) and process events until quiescence.

        Parameters
        ----------
        max_events:
            Abort with :class:`ProtocolError` after this many *live*
            events — a hang detector.  Late deliveries (messages
            discarded because the receiver already terminated) are
            normal protocol wind-down and do not count against the
            budget.  Default: ``1000 + 500 * n + 50 * sent``, computed
            *after* ``start()`` so ``sent`` already includes the
            initial message burst — every node and every queued message
            funds a generous slice of follow-up work, which is far
            above LID's true event bound yet still finite for a
            livelocked protocol.
        max_time:
            Stop (without error) once virtual time exceeds this horizon.
        probe:
            Optional :class:`~repro.telemetry.probes.ConvergenceProbe`.
            The probe observes the node state at every tick ``t`` (a
            multiple of ``probe.interval``) *after* all events at times
            ``< t`` and *before* any event at time ``>= t``, plus one
            final tick after quiescence.  Sampling is done by peeking
            the queue — no control events are scheduled, so enabling a
            probe changes neither ``metrics.events`` nor any other
            observable of the run.
        """
        self.start()
        if max_events is None:
            max_events = 1000 + 500 * len(self.nodes) + 50 * self.network.sent
        processed = 0
        probe_tick = 0.0
        while True:
            if probe is not None or max_time is not None:
                t = self._peek_time()
                if probe is not None:
                    # Catch the tick counter up to the next event time;
                    # on an empty queue take exactly one final sample.
                    while t is None or t >= probe_tick:
                        if max_time is not None and probe_tick > max_time:
                            break
                        probe.observe(probe_tick, self.nodes)
                        probe_tick += probe.interval
                        if t is None:
                            break
                if max_time is not None and (t is None or t > max_time):
                    break
            status = self._step()
            if status == 0:
                break
            if status == 1:
                processed += 1
                if processed > max_events:
                    raise ProtocolError(
                        f"simulation exceeded {max_events} events without quiescing; "
                        "likely a protocol bug (Lemma 5 guarantees termination)"
                    )
        self.metrics.end_time = self.now
        return self.metrics

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def all_terminated(self) -> bool:
        """Whether every non-crashed node has terminated."""
        return all(n.terminated or n.crashed for n in self.nodes)

    def pending_events(self) -> int:
        """Number of queued events."""
        return self._pending

    def crash(self, node_id: int) -> None:
        """Crash a node: it stops sending and receiving immediately."""
        node = self.nodes[node_id]
        node.crashed = True
        if self.trace is not None:
            self.trace.log(self.now, "crash", node_id)
