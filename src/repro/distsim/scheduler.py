"""Deterministic discrete-event simulation engine.

The engine maintains a priority queue of :class:`~repro.distsim.events.Event`
objects ordered by ``(time, insertion order)`` and processes them until
quiescence (empty queue), a step budget, or a time horizon.  Protocol
nodes are driven through their ``on_start`` / ``on_message`` /
``on_timer`` hooks; every side effect (sending, timers) flows back
through the simulator, which is how message metrics and traces are
collected without any cooperation from protocol code.

Design notes
------------
- *Determinism*: the only ordering authority is the event queue; equal
  delivery times are resolved by the monotone insertion counter, so a
  fixed seed reproduces the exact event sequence.
- *Quiescence as termination*: protocols like LID terminate when no
  messages are in flight and every node has exited its receive loop.
  ``run()`` therefore runs the queue dry by default — mirroring the
  paper's Lemma 5, which guarantees the queue *does* run dry.
- *Safety valve*: ``max_events`` (default ``50 * n + 100`` per node
  budgeting would be protocol-specific, so we default to a generous
  global cap) aborts runs that exceed the budget, turning a would-be
  hang into a test failure.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional, Sequence

from repro.distsim.events import CONTROL, DELIVERY, TIMER, Event
from repro.distsim.messages import Message
from repro.distsim.metrics import SimMetrics
from repro.distsim.network import Network
from repro.distsim.node import ProtocolNode
from repro.distsim.tracing import Trace
from repro.utils.validation import ProtocolError

__all__ = ["Simulator"]


class Simulator:
    """Event loop binding nodes to a :class:`~repro.distsim.network.Network`.

    Parameters
    ----------
    network:
        The channel model (latency / FIFO / loss).
    nodes:
        The protocol nodes, indexed by node id.  ``len(nodes)`` must
        equal ``network.n``.
    trace:
        Optional :class:`~repro.distsim.tracing.Trace` to record every
        occurrence (costly; tests only).
    """

    def __init__(
        self,
        network: Network,
        nodes: Sequence[ProtocolNode],
        trace: Optional[Trace] = None,
    ):
        if len(nodes) > network.n:
            raise ValueError(
                f"got {len(nodes)} nodes for a network of size {network.n}"
            )
        # fewer nodes than network.n is allowed: the spare capacity is
        # headroom for add_node (churn joins)
        self.network = network
        self.nodes: list[ProtocolNode] = list(nodes)
        self.trace = trace
        self.metrics = SimMetrics()
        self.now: float = 0.0
        self._queue: list[Event] = []
        self._order = 0
        self._ctx_depth = 0  # causal depth of the handler being executed
        self._started = False
        self._terminated_count = 0
        self.late_messages = 0

        for i, node in enumerate(self.nodes):
            node._attach(i, self)

    # ------------------------------------------------------------------
    # internal API used by ProtocolNode
    # ------------------------------------------------------------------

    def _push(self, time: float, kind: str, node: int, data: Any) -> None:
        self._order += 1
        heapq.heappush(self._queue, Event(time, self._order, kind, node, data))

    def _send(self, src: int, dst: int, kind: str, payload: Any) -> None:
        if not (0 <= dst < len(self.nodes)):
            raise ProtocolError(f"node {src} sent to unknown node {dst}")
        self.metrics.sent_by_kind[kind] += 1
        self.metrics.sent_by_node[src] += 1
        if self.trace is not None:
            self.trace.log(self.now, "send", src, dst, kind, payload)
        result = self.network.transmit(
            self.now, src, dst, kind, payload, depth=self._ctx_depth + 1
        )
        if result is None:
            self.metrics.dropped += 1
            if self.trace is not None:
                self.trace.log(self.now, "drop", src, dst, kind, payload)
            return
        t, msg = result
        self._push(t, DELIVERY, dst, msg)

    def _set_timer(self, node: int, delay: float, tag: Any) -> None:
        if delay <= 0:
            raise ValueError(f"timer delay must be positive, got {delay}")
        # timers propagate the causal depth of the handler that set them
        self._push(self.now + delay, TIMER, node, (tag, self._ctx_depth))

    def _note_termination(self, node: int) -> None:
        self._terminated_count += 1
        if self.trace is not None:
            self.trace.log(self.now, "terminate", node)

    # ------------------------------------------------------------------
    # public control API
    # ------------------------------------------------------------------

    def schedule_control(self, time: float, fn: Callable[["Simulator"], None]) -> None:
        """Run ``fn(sim)`` at virtual ``time`` (churn scripts, crash injection)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        self._push(time, CONTROL, -1, fn)

    def add_node(self, node: ProtocolNode, start: bool = True) -> int:
        """Register a new node mid-run (churn join).  Returns its id.

        The caller must have grown the network first
        (:class:`~repro.distsim.network.Network` link set / ``n``).
        """
        node_id = len(self.nodes)
        self.nodes.append(node)
        if self.network.n < len(self.nodes):
            raise ValueError("grow network.n before adding nodes")
        node._attach(node_id, self)
        if start and self._started:
            node.on_start()
        return node_id

    def start(self) -> None:
        """Invoke ``on_start`` on every node (idempotent)."""
        if self._started:
            return
        self._started = True
        for node in self.nodes:
            if not node.crashed:
                node.on_start()

    def step(self) -> bool:
        """Process one event.  Returns ``False`` when the queue is empty."""
        if not self._queue:
            return False
        ev = heapq.heappop(self._queue)
        if ev.time < self.now:
            raise ProtocolError("event queue time went backwards")
        self.now = ev.time
        self.metrics.events += 1
        if ev.kind == CONTROL:
            ev.data(self)
            return True
        node = self.nodes[ev.node]
        if ev.kind == DELIVERY:
            msg: Message = ev.data
            if node.crashed or node.terminated:
                # The receiver has left its receive loop; the message is
                # discarded (see LID termination analysis: any such
                # message crossed the receiver's final REJ broadcast).
                self.late_messages += 1
                return True
            self.metrics.delivered_by_kind[msg.kind] += 1
            self.metrics.received_by_node[ev.node] += 1
            if msg.depth > self.metrics.max_depth:
                self.metrics.max_depth = msg.depth
            if self.trace is not None:
                self.trace.log(self.now, "deliver", ev.node, msg.src, msg.kind, msg.payload)
            self._ctx_depth = msg.depth
            try:
                node.on_message(msg.src, msg.kind, msg.payload)
            finally:
                self._ctx_depth = 0
        elif ev.kind == TIMER:
            if not (node.crashed or node.terminated):
                tag, depth = ev.data
                if self.trace is not None:
                    self.trace.log(self.now, "timer", ev.node, -1, "", tag)
                self._ctx_depth = depth
                try:
                    node.on_timer(tag)
                finally:
                    self._ctx_depth = 0
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"unknown event kind {ev.kind!r}")
        return True

    def run(
        self,
        max_events: Optional[int] = None,
        max_time: Optional[float] = None,
    ) -> SimMetrics:
        """Start (if needed) and process events until quiescence.

        Parameters
        ----------
        max_events:
            Abort with :class:`ProtocolError` after this many events —
            a hang detector.  Default: ``1000 + 200 * n + 20 * messages``
            adaptively, which is far above LID's true bound.
        max_time:
            Stop (without error) once virtual time exceeds this horizon.
        """
        self.start()
        if max_events is None:
            max_events = 1000 + 500 * len(self.nodes) + 50 * self.network.sent
        processed = 0
        while self._queue:
            if max_time is not None and self._queue[0].time > max_time:
                break
            self.step()
            processed += 1
            if processed > max_events:
                raise ProtocolError(
                    f"simulation exceeded {max_events} events without quiescing; "
                    "likely a protocol bug (Lemma 5 guarantees termination)"
                )
        self.metrics.end_time = self.now
        return self.metrics

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def all_terminated(self) -> bool:
        """Whether every non-crashed node has terminated."""
        return all(n.terminated or n.crashed for n in self.nodes)

    def pending_events(self) -> int:
        """Number of queued events."""
        return len(self._queue)

    def crash(self, node_id: int) -> None:
        """Crash a node: it stops sending and receiving immediately."""
        node = self.nodes[node_id]
        node.crashed = True
        if self.trace is not None:
            self.trace.log(self.now, "crash", node_id)
