"""Overlay-network substrate: peers, metrics, topologies, churn.

- :mod:`repro.overlay.peer` — peer attribute model,
- :mod:`repro.overlay.metrics` — private suitability metrics (§1),
- :mod:`repro.overlay.topology` — overlay graph generators,
- :mod:`repro.overlay.builder` — scenario → PreferenceSystem,
- :mod:`repro.overlay.churn` — dynamic joins/leaves with exact
  incremental repair (future work §7),
- :mod:`repro.overlay.scenario` — named end-to-end set-ups.
"""

from repro.overlay.analysis import (
    OverlayStructure,
    analyze_overlay,
    average_path_length,
    clustering_coefficient,
    connected_components,
    matching_adjacency,
)
from repro.overlay.builder import build_preference_system
from repro.overlay.churn import DynamicOverlay, RepairStats, greedy_repair
from repro.overlay.discovery import (
    DiscoveryResult,
    GossipNode,
    discover_knowledge_graph,
)
from repro.overlay.metrics import (
    BandwidthMetric,
    CompositeMetric,
    DistanceMetric,
    InterestMetric,
    MetricAssignment,
    PrivateTasteMetric,
    ReliabilityMetric,
    SuitabilityMetric,
)
from repro.overlay.peer import Peer, generate_peers
from repro.overlay.scenario import SCENARIOS, Scenario, build_scenario
from repro.overlay.topology import (
    Topology,
    barabasi_albert,
    complete_graph,
    erdos_renyi,
    grid_2d,
    random_geometric,
    random_regular,
    watts_strogatz,
)

__all__ = [
    "build_preference_system",
    "OverlayStructure",
    "analyze_overlay",
    "average_path_length",
    "clustering_coefficient",
    "connected_components",
    "matching_adjacency",
    "DynamicOverlay",
    "DiscoveryResult",
    "GossipNode",
    "discover_knowledge_graph",
    "RepairStats",
    "greedy_repair",
    "Peer",
    "generate_peers",
    "SuitabilityMetric",
    "DistanceMetric",
    "InterestMetric",
    "BandwidthMetric",
    "ReliabilityMetric",
    "CompositeMetric",
    "PrivateTasteMetric",
    "MetricAssignment",
    "Topology",
    "erdos_renyi",
    "random_geometric",
    "barabasi_albert",
    "watts_strogatz",
    "random_regular",
    "grid_2d",
    "complete_graph",
    "Scenario",
    "SCENARIOS",
    "build_scenario",
]
