"""Named end-to-end overlay scenarios.

Each scenario builds (peers, topology, metric) and returns the resulting
:class:`~repro.core.preferences.PreferenceSystem` plus the pieces, so
examples and benchmarks share identical, reproducible set-ups.  The
scenarios instantiate the paper's §1 motivations:

- ``file_sharing``  — resource sharing: peers prize upload bandwidth and
  reliability; heavy-tailed capacities create contention for the few
  high-capacity seeds.
- ``interest_social`` — collaborative/search overlay: peers prize
  interest similarity on a small-world graph.
- ``geo_latency``   — ad-hoc connectivity: peers prize proximity on a
  random geometric graph.
- ``heterogeneous`` — the fully distributed regime: every peer follows
  a private idiosyncratic metric (cyclic preferences abound; the
  regime where stabilisation-based approaches break, §1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.preferences import PreferenceSystem
from repro.overlay.builder import build_preference_system
from repro.overlay.metrics import (
    BandwidthMetric,
    CompositeMetric,
    DistanceMetric,
    InterestMetric,
    MetricAssignment,
    PrivateTasteMetric,
    ReliabilityMetric,
    SuitabilityMetric,
)
from repro.overlay.peer import Peer, generate_peers
from repro.overlay.topology import (
    Topology,
    barabasi_albert,
    erdos_renyi,
    random_geometric,
    watts_strogatz,
)
from repro.utils.rng import spawn_rng

__all__ = ["Scenario", "build_scenario", "SCENARIOS"]


@dataclass
class Scenario:
    """A fully built scenario."""

    name: str
    ps: PreferenceSystem
    topology: Topology
    peers: list[Peer]
    metric: SuitabilityMetric | MetricAssignment


def _file_sharing(n: int, seed: int) -> Scenario:
    rng = spawn_rng(seed, "file_sharing")
    peers = generate_peers(n, rng, quota_range=(2, 6))
    topo = barabasi_albert(n, m_attach=min(4, n - 1), rng=rng)
    metric = CompositeMetric([(0.8, BandwidthMetric()), (0.2, ReliabilityMetric())])
    ps = build_preference_system(topo, peers, metric)
    return Scenario("file_sharing", ps, topo, peers, metric)


def _interest_social(n: int, seed: int) -> Scenario:
    rng = spawn_rng(seed, "interest_social")
    peers = generate_peers(n, rng, interest_dims=12, quota_range=(3, 6))
    k = min(8, n - 1)
    k -= k % 2  # watts_strogatz needs even k
    topo = watts_strogatz(n, k=max(2, k), beta=0.2, rng=rng)
    metric = InterestMetric()
    ps = build_preference_system(topo, peers, metric)
    return Scenario("interest_social", ps, topo, peers, metric)


def _geo_latency(n: int, seed: int) -> Scenario:
    rng = spawn_rng(seed, "geo_latency")
    peers = generate_peers(n, rng, quota_range=(2, 5))
    # radius ~ sqrt(12/n) keeps expected degree ≈ 12π/... roughly constant
    radius = min(1.0, (12.0 / max(n, 1)) ** 0.5)
    topo = random_geometric(n, radius=radius, rng=rng)
    metric = DistanceMetric()
    ps = build_preference_system(topo, peers, metric)
    return Scenario("geo_latency", ps, topo, peers, metric)


def _heterogeneous(n: int, seed: int) -> Scenario:
    rng = spawn_rng(seed, "heterogeneous")
    peers = generate_peers(n, rng, quota_range=(2, 4))
    topo = erdos_renyi(n, p=min(1.0, 10.0 / max(n - 1, 1)), rng=rng)
    metric = PrivateTasteMetric(seed=seed)
    ps = build_preference_system(topo, peers, metric)
    return Scenario("heterogeneous", ps, topo, peers, metric)


SCENARIOS = {
    "file_sharing": _file_sharing,
    "interest_social": _interest_social,
    "geo_latency": _geo_latency,
    "heterogeneous": _heterogeneous,
}


def build_scenario(name: str, n: int, seed: int = 0) -> Scenario:
    """Build a named scenario with ``n`` peers."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
    return factory(n, seed)
