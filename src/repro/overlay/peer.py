"""Peer model — the entities of the overlay scenarios (§1 of the paper).

The paper motivates preferences by "the node's distance, interests,
recommendations, transaction history or available resources".
:class:`Peer` carries exactly these attributes; suitability metrics
(:mod:`repro.overlay.metrics`) map pairs of peers to scores, and the
builder turns scores into preference lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Peer", "generate_peers"]


@dataclass
class Peer:
    """One overlay participant.

    Attributes
    ----------
    peer_id:
        Stable identifier (also the node id in static scenarios).
    position:
        Coordinates in the unit square (network locality proxy).
    interests:
        Non-negative interest/topic vector (content affinity proxy).
    bandwidth:
        Upload capacity in arbitrary units (resource proxy).
    reliability:
        Historic uptime fraction in [0, 1] (transaction-history proxy).
    quota:
        Connection quota ``b_i`` this peer is willing to maintain.
    """

    peer_id: int
    position: np.ndarray = field(default_factory=lambda: np.zeros(2))
    interests: np.ndarray = field(default_factory=lambda: np.zeros(4))
    bandwidth: float = 1.0
    reliability: float = 1.0
    quota: int = 3

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float)
        self.interests = np.asarray(self.interests, dtype=float)
        if self.quota < 1:
            raise ValueError(f"peer quota must be >= 1, got {self.quota}")


def generate_peers(
    n: int,
    rng: np.random.Generator,
    interest_dims: int = 8,
    quota_range: tuple[int, int] = (2, 5),
    bandwidth_pareto: float = 1.5,
) -> list[Peer]:
    """Sample a heterogeneous peer population.

    - positions uniform in the unit square,
    - interests: sparse Dirichlet-ish topic vectors (each peer cares
      about a few topics),
    - bandwidth: Pareto-distributed (the classic heavy-tailed capacity
      distribution observed in P2P measurement studies),
    - reliability: Beta(5, 2) — mostly reliable with a flaky tail,
    - quotas uniform in ``quota_range`` (heterogeneous budgets).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    lo, hi = quota_range
    if not (1 <= lo <= hi):
        raise ValueError(f"invalid quota_range {quota_range}")
    peers = []
    for i in range(n):
        raw = rng.dirichlet(np.full(interest_dims, 0.3))
        peers.append(
            Peer(
                peer_id=i,
                position=rng.uniform(0.0, 1.0, size=2),
                interests=raw,
                bandwidth=float((1.0 + rng.pareto(bandwidth_pareto))),
                reliability=float(rng.beta(5.0, 2.0)),
                quota=int(rng.integers(lo, hi + 1)),
            )
        )
    return peers
