"""Structural analysis of (matched) overlays.

The paper motivates preference-aware matching as an *overlay
construction* mechanism; besides satisfaction, a constructed overlay is
judged by its graph structure — is it connected, clustered, short-
diameter?  This module measures those properties for any adjacency
(potential overlay, matched overlay, or baseline output), with every
metric implemented directly (BFS and triangle counting) and
cross-checked against networkx in the tests.

Used by ``bench_f5_overlay_structure.py`` to compare the LID overlay
against the random-matching control.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.matching import Matching

__all__ = [
    "connected_components",
    "largest_component_fraction",
    "clustering_coefficient",
    "average_path_length",
    "degree_stats",
    "OverlayStructure",
    "analyze_overlay",
    "matching_adjacency",
]

Adjacency = Sequence[Sequence[int]]


def matching_adjacency(matching: Matching) -> list[list[int]]:
    """Adjacency lists of the matched overlay."""
    return [sorted(matching.connections(i)) for i in range(matching.n)]


def connected_components(adj: Adjacency) -> list[list[int]]:
    """Connected components via BFS, each sorted, largest first."""
    n = len(adj)
    seen = [False] * n
    comps: list[list[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        comp = []
        queue = deque([start])
        seen[start] = True
        while queue:
            v = queue.popleft()
            comp.append(v)
            for u in adj[v]:
                if not seen[u]:
                    seen[u] = True
                    queue.append(u)
        comps.append(sorted(comp))
    comps.sort(key=len, reverse=True)
    return comps


def largest_component_fraction(adj: Adjacency) -> float:
    """|largest component| / n — the connectivity figure of merit."""
    comps = connected_components(adj)
    return len(comps[0]) / len(adj) if comps else 0.0


def clustering_coefficient(adj: Adjacency) -> float:
    """Mean local clustering coefficient (nodes of degree < 2 score 0)."""
    n = len(adj)
    if n == 0:
        return 0.0
    sets = [set(a) for a in adj]
    total = 0.0
    for v in range(n):
        k = len(sets[v])
        if k < 2:
            continue
        links = 0
        neigh = sorted(sets[v])
        for idx, u in enumerate(neigh):
            for w in neigh[idx + 1 :]:
                if w in sets[u]:
                    links += 1
        total += 2.0 * links / (k * (k - 1))
    return total / n


def _bfs_distances(adj: Adjacency, source: int) -> list[int]:
    dist = [-1] * len(adj)
    dist[source] = 0
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in adj[v]:
            if dist[u] < 0:
                dist[u] = dist[v] + 1
                queue.append(u)
    return dist


def average_path_length(
    adj: Adjacency,
    sample: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Mean shortest-path length within the largest component.

    Exact when ``sample`` is ``None``; otherwise BFS from ``sample``
    random sources (unbiased estimator of the same mean).  Returns 0.0
    for components of a single node.
    """
    comp = connected_components(adj)[0] if adj else []
    if len(comp) < 2:
        return 0.0
    members = set(comp)
    if sample is not None and sample < len(comp):
        if rng is None:
            rng = np.random.default_rng(0)
        sources = [int(x) for x in rng.choice(comp, size=sample, replace=False)]
    else:
        sources = comp
    total = 0
    pairs = 0
    for s in sources:
        dist = _bfs_distances(adj, s)
        for v in comp:
            if v != s and dist[v] > 0:
                total += dist[v]
                pairs += 1
    return total / pairs if pairs else 0.0


def degree_stats(adj: Adjacency) -> dict:
    """Degree summary: mean / max / fraction of isolated nodes."""
    degrees = np.array([len(a) for a in adj], dtype=float)
    if degrees.size == 0:
        return {"mean": 0.0, "max": 0, "isolated_frac": 0.0}
    return {
        "mean": float(degrees.mean()),
        "max": int(degrees.max()),
        "isolated_frac": float((degrees == 0).mean()),
    }


@dataclass
class OverlayStructure:
    """Structural fingerprint of one overlay."""

    n: int
    edges: int
    mean_degree: float
    isolated_frac: float
    largest_component_frac: float
    components: int
    clustering: float
    avg_path_length: float

    def as_row(self) -> dict:
        """Flat dict for the reporting tables."""
        return {
            "n": self.n,
            "edges": self.edges,
            "mean_deg": self.mean_degree,
            "isolated": self.isolated_frac,
            "lcc_frac": self.largest_component_frac,
            "components": self.components,
            "clustering": self.clustering,
            "avg_path": self.avg_path_length,
        }


def analyze_overlay(
    adj: Adjacency,
    path_sample: Optional[int] = 32,
    rng: Optional[np.random.Generator] = None,
) -> OverlayStructure:
    """Compute the full structural fingerprint of an overlay."""
    comps = connected_components(adj)
    stats = degree_stats(adj)
    return OverlayStructure(
        n=len(adj),
        edges=sum(len(a) for a in adj) // 2,
        mean_degree=stats["mean"],
        isolated_frac=stats["isolated_frac"],
        largest_component_frac=len(comps[0]) / len(adj) if comps else 0.0,
        components=len(comps),
        clustering=clustering_coefficient(adj),
        avg_path_length=average_path_length(adj, sample=path_sample, rng=rng),
    )
