"""Neighbour discovery: gossip peer sampling builds the knowledge graph.

The paper's premise (§1) is that "peers are able to know part of the
overlay network (in terms of potential neighbors)".  In deployed systems
that partial knowledge comes from a *peer sampling service* — typically
a Newscast/Cyclon-style gossip protocol.  This module implements such a
substrate on the simulator:

- every peer keeps a bounded *view* (peer-id cache with ages),
- each round it pushes its view to a random known peer and merges the
  pull reply, keeping the ``view_size`` freshest distinct entries,
- the *knowledge graph* after R rounds is the symmetrised union of
  everything each peer has ever had in view.

:func:`discover_knowledge_graph` runs the protocol and returns a
:class:`~repro.overlay.topology.Topology`, which feeds straight into
:func:`~repro.overlay.builder.build_preference_system` — making the
whole §1 pipeline executable: bootstrap contacts → gossip discovery →
private ranking → LID matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.distsim.network import Network
from repro.distsim.node import ProtocolNode
from repro.distsim.scheduler import Simulator
from repro.overlay.topology import Topology
from repro.utils.rng import spawn_rng

__all__ = ["GossipNode", "DiscoveryResult", "discover_knowledge_graph"]

PUSH = "VIEW_PUSH"
PULL = "VIEW_PULL"


class GossipNode(ProtocolNode):
    """Newscast-style peer-sampling participant.

    Parameters
    ----------
    bootstrap:
        Initial contacts (typically a ring neighbour plus a random seed
        peer — the minimal wiring a tracker or invite system provides).
    view_size:
        Bounded cache size.
    rounds:
        Number of gossip rounds this node initiates.
    rng:
        Private randomness for partner selection and view truncation.
    """

    def __init__(
        self,
        bootstrap: Sequence[int],
        view_size: int,
        rounds: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.view: dict[int, int] = {int(p): 0 for p in bootstrap}  # peer -> age
        self.view_size = view_size
        self.rounds_left = rounds
        self.rng = rng
        self.known: set[int] = set(self.view)
        self.exchanges = 0

    # -- protocol ---------------------------------------------------------

    def on_start(self) -> None:
        if self.rounds_left > 0 and self.view:
            self.set_timer(1.0 + 0.01 * self.node_id, "gossip")

    def on_timer(self, tag) -> None:
        if tag != "gossip":
            return
        self._age()
        partner = self._pick_partner()
        if partner is not None:
            self.send(partner, PUSH, self._digest())
        self.rounds_left -= 1
        if self.rounds_left > 0:
            self.set_timer(1.0, "gossip")
        else:
            self.terminate()

    def on_message(self, src: int, kind: str, payload) -> None:
        if kind == PUSH:
            self.send(src, PULL, self._digest())
            self._merge(src, payload)
        elif kind == PULL:
            self._merge(src, payload)

    # -- internals -----------------------------------------------------------

    def _age(self) -> None:
        for p in self.view:
            self.view[p] += 1

    def _pick_partner(self) -> Optional[int]:
        if not self.view:
            return None
        peers = sorted(self.view)
        return int(peers[int(self.rng.integers(len(peers)))])

    def _digest(self) -> list[tuple[int, int]]:
        # include ourselves with age 0 (the Newscast self-injection)
        entries = [(self.node_id, 0)]
        entries.extend((p, age) for p, age in self.view.items())
        return entries

    def _merge(self, src: int, entries: list[tuple[int, int]]) -> None:
        self.exchanges += 1
        merged = dict(self.view)
        for p, age in entries:
            if p == self.node_id:
                continue
            if p not in merged or age < merged[p]:
                merged[p] = age
        merged[src] = 0
        self.known.update(merged)
        if len(merged) > self.view_size:
            # keep the freshest; break age ties uniformly at random
            items = list(merged.items())
            order = self.rng.permutation(len(items))
            items = [items[int(k)] for k in order]
            items.sort(key=lambda e: e[1])
            merged = dict(items[: self.view_size])
        self.view = merged


@dataclass
class DiscoveryResult:
    """Outcome of a discovery run."""

    topology: Topology
    messages: int
    rounds: int
    mean_knowledge: float


def discover_knowledge_graph(
    n: int,
    rounds: int = 8,
    view_size: int = 8,
    bootstrap_degree: int = 2,
    seed: int = 0,
    cap_degree: Optional[int] = None,
) -> DiscoveryResult:
    """Run gossip discovery from a ring bootstrap; return the knowledge graph.

    Parameters
    ----------
    n, rounds, view_size:
        Population size, gossip rounds, view bound.
    bootstrap_degree:
        Each peer starts knowing its ring successor(s) plus one random
        seed contact (tracker model).
    cap_degree:
        Optionally truncate each peer's knowledge to its ``cap_degree``
        *most recently seen* peers before symmetrising — modelling peers
        that only track a bounded candidate set.

    Returns
    -------
    DiscoveryResult
        The symmetrised knowledge graph as a
        :class:`~repro.overlay.topology.Topology` plus protocol costs.
    """
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    root = spawn_rng(seed, "discovery")
    nodes = []
    for i in range(n):
        boot = {(i + k) % n for k in range(1, bootstrap_degree + 1)}
        extra = int(root.integers(n))
        if extra != i:
            boot.add(extra)
        nodes.append(
            GossipNode(
                sorted(boot),
                view_size=view_size,
                rounds=rounds,
                rng=spawn_rng(seed, "discovery-node", str(i)),
            )
        )
    network = Network(n, seed=seed)
    sim = Simulator(network, nodes)
    sim.run()

    adjacency: list[set[int]] = [set() for _ in range(n)]
    for i, node in enumerate(nodes):
        known = node.known - {i}
        if cap_degree is not None and len(known) > cap_degree:
            known = set(sorted(known)[:cap_degree])
        for j in known:
            adjacency[i].add(j)
            adjacency[j].add(i)
    topo = Topology([sorted(a) for a in adjacency], None, f"gossip(n={n},r={rounds})")
    mean_knowledge = float(np.mean([len(a) for a in adjacency]))
    return DiscoveryResult(
        topology=topo,
        messages=sim.metrics.total_sent,
        rounds=rounds,
        mean_knowledge=mean_knowledge,
    )
