"""OverlayBuilder: peers + topology + metrics → PreferenceSystem.

The glue of the overlay substrate: every node ranks its topology
neighbourhood with *its own* suitability metric (ties broken by peer
id), and the per-peer quotas become the b-matching quotas.  The output
:class:`~repro.core.preferences.PreferenceSystem` is what all matching
algorithms consume — at that point the metrics themselves are forgotten,
matching the paper's privacy stance (peers disclose ``ΔS̄`` values, not
metrics).

Node ``i`` of the instance corresponds to ``peers[i]``; the peers'
``peer_id`` attributes may differ from their index (they are *external*
ids, stable under churn) — metrics and tie-breaking always use the
external id, so a peer's preferences do not change when unrelated peers
join or leave.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.preferences import PreferenceSystem
from repro.overlay.metrics import MetricAssignment, SuitabilityMetric
from repro.overlay.peer import Peer
from repro.overlay.topology import Topology
from repro.utils.validation import InvalidInstanceError

__all__ = ["build_preference_system"]


def build_preference_system(
    topology: Topology,
    peers: Sequence[Peer],
    metric: SuitabilityMetric | MetricAssignment,
    quotas: Optional[Sequence[int]] = None,
    sync_positions: bool = True,
) -> PreferenceSystem:
    """Construct the matching instance for an overlay scenario.

    Parameters
    ----------
    topology:
        The potential-connection graph; node ``i`` corresponds to
        ``peers[i]``.
    peers:
        Peer objects supplying the attributes metrics read.  Their
        ``peer_id`` fields need not equal their index but must be
        distinct (they seed private metrics and break score ties).
    metric:
        A single metric applied by every peer, or a
        :class:`~repro.overlay.metrics.MetricAssignment` giving each
        peer its private metric (keyed by external ``peer_id``).
    quotas:
        Optional explicit quotas; defaults to each peer's ``quota``
        attribute.
    sync_positions:
        When the topology carries positions (geometric families), copy
        them onto the peers so distance metrics see the coordinates the
        graph was built from.
    """
    if len(peers) != topology.n:
        raise InvalidInstanceError(
            f"{len(peers)} peers for a topology of {topology.n} nodes"
        )
    if len({p.peer_id for p in peers}) != len(peers):
        raise InvalidInstanceError("peer ids must be distinct")
    if sync_positions and topology.positions is not None:
        for i, peer in enumerate(peers):
            peer.position = topology.positions[i]

    if isinstance(metric, MetricAssignment):
        def score(i: int, j: int) -> float:
            return metric.score(peers[i], peers[j])
    else:
        def score(i: int, j: int) -> float:
            return metric(peers[i], peers[j])

    rankings = {
        i: sorted(
            topology.adjacency[i],
            key=lambda j: (-score(i, j), peers[j].peer_id),
        )
        for i in range(topology.n)
    }
    if quotas is None:
        quotas = [p.quota for p in peers]
    return PreferenceSystem(rankings, list(quotas))
