"""Overlay topology generators (potential-connection graphs).

The overlay graph ``G(V, E)`` of the paper is the *knowledge* graph:
which peers know of each other and could connect.  The experiments
exercise the classic families — each implemented here directly (seeded,
deterministic, simple graphs); the test-suite cross-checks structural
invariants (degree sums, simplicity, expected edge counts) against
networkx as an oracle.

All generators return a :class:`Topology`: adjacency lists (sorted,
symmetric) plus optional node positions for the geometric families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "Topology",
    "erdos_renyi",
    "random_geometric",
    "barabasi_albert",
    "watts_strogatz",
    "random_regular",
    "grid_2d",
    "complete_graph",
]


@dataclass
class Topology:
    """A generated overlay graph.

    Attributes
    ----------
    adjacency:
        ``adjacency[i]`` — sorted neighbour ids of node ``i``.
    positions:
        Optional ``(n, 2)`` coordinates (geometric families); consumed by
        distance metrics and by peers' ``position`` attributes.
    name:
        Family label used in experiment reports.
    """

    adjacency: list[list[int]]
    positions: Optional[np.ndarray] = None
    name: str = ""

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.adjacency)

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return sum(len(a) for a in self.adjacency) // 2

    def edges(self) -> list[tuple[int, int]]:
        """Canonical edge list."""
        return [(i, j) for i in range(self.n) for j in self.adjacency[i] if i < j]

    def degree(self, i: int) -> int:
        """Degree of node ``i``."""
        return len(self.adjacency[i])


def _from_edge_set(n: int, edges: set[tuple[int, int]], name: str, positions=None) -> Topology:
    adjacency: list[list[int]] = [[] for _ in range(n)]
    for i, j in edges:
        adjacency[i].append(j)
        adjacency[j].append(i)
    for lst in adjacency:
        lst.sort()
    return Topology(adjacency, positions, name)


# Above this many candidate pairs the dense G(n, p) sampler would
# materialise multi-GB index arrays; switch to the sparse sampler.
_ER_DENSE_PAIR_LIMIT = 30_000_000


def erdos_renyi(n: int, p: float, rng: np.random.Generator) -> Topology:
    """G(n, p): every pair is an edge independently with probability p.

    Small graphs sample all ``n(n-1)/2`` Bernoulli draws in one shot
    (the draw stream — and hence every seeded instance used by the
    tests and benchmarks — is unchanged).  Past
    ``_ER_DENSE_PAIR_LIMIT`` candidate pairs that would allocate
    tens of gigabytes, so large sparse graphs use the exact two-step
    equivalent instead: draw ``|E| ~ Binomial(n(n-1)/2, p)``, then a
    uniform ``|E|``-subset of distinct pairs (G(n, p) conditioned on
    its edge count is uniform over subsets of that size).  The sparse
    path consumes a different RNG stream, so the two regimes produce
    different — but equally distributed — instances for a given seed.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"p must be in [0,1], got {p}")
    total_pairs = n * (n - 1) // 2
    if total_pairs <= _ER_DENSE_PAIR_LIMIT:
        iu, ju = np.triu_indices(n, k=1)
        mask = rng.random(iu.shape[0]) < p
        edges = {(int(a), int(b)) for a, b in zip(iu[mask], ju[mask])}
        return _from_edge_set(n, edges, f"er(n={n},p={p})")
    m = int(rng.binomial(total_pairs, p))
    codes = np.empty(0, dtype=np.int64)
    while codes.shape[0] < m:
        # Oversample ordered pairs, keep i < j, dedupe; repeat until we
        # have at least m distinct pairs (one pass suffices when m is
        # far below total_pairs, the only regime this path serves).
        need = m - codes.shape[0]
        draw = max(1024, int(2.3 * need))
        a = rng.integers(0, n, size=draw, dtype=np.int64)
        b = rng.integers(0, n, size=draw, dtype=np.int64)
        keep = a < b
        codes = np.unique(np.concatenate([codes, a[keep] * n + b[keep]]))
    if codes.shape[0] > m:
        codes = rng.choice(codes, size=m, replace=False)
    edges = {(int(c // n), int(c % n)) for c in codes}
    return _from_edge_set(n, edges, f"er(n={n},p={p})")


def random_geometric(n: int, radius: float, rng: np.random.Generator) -> Topology:
    """Random geometric graph in the unit square: connect pairs within ``radius``.

    The canonical model for locality-driven overlays; pairs naturally
    with :class:`~repro.overlay.metrics.DistanceMetric`.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    pos = rng.uniform(0.0, 1.0, size=(n, 2))
    # pairwise distances via broadcasting; fine for laptop-scale n
    diff = pos[:, None, :] - pos[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=2))
    iu, ju = np.triu_indices(n, k=1)
    close = dist[iu, ju] <= radius
    edges = {(int(a), int(b)) for a, b in zip(iu[close], ju[close])}
    return _from_edge_set(n, edges, f"geo(n={n},r={radius})", positions=pos)


def barabasi_albert(n: int, m_attach: int, rng: np.random.Generator) -> Topology:
    """Preferential attachment: each new node attaches to ``m_attach`` others.

    Uses the standard repeated-endpoint sampling (attachment probability
    proportional to degree), seeded with an ``m_attach``-clique.
    Produces the heavy-tailed degree distributions typical of organically
    grown overlays.
    """
    if m_attach < 1:
        raise ValueError(f"m_attach must be >= 1, got {m_attach}")
    if n <= m_attach:
        raise ValueError(f"need n > m_attach, got n={n}, m_attach={m_attach}")
    edges: set[tuple[int, int]] = set()
    targets_pool: list[int] = []  # node id repeated once per incident edge
    # seed clique over 0..m_attach
    for i in range(m_attach + 1):
        for j in range(i + 1, m_attach + 1):
            edges.add((i, j))
            targets_pool.extend((i, j))
    for v in range(m_attach + 1, n):
        chosen: set[int] = set()
        while len(chosen) < m_attach:
            t = int(targets_pool[int(rng.integers(len(targets_pool)))])
            chosen.add(t)
        for t in chosen:
            edges.add((min(v, t), max(v, t)))
            targets_pool.extend((v, t))
    return _from_edge_set(n, edges, f"ba(n={n},m={m_attach})")


def watts_strogatz(n: int, k: int, beta: float, rng: np.random.Generator) -> Topology:
    """Small-world rewiring of a ring lattice (k nearest neighbours).

    ``k`` must be even and < n.  Each clockwise lattice edge is rewired
    to a uniform random endpoint with probability ``beta`` (avoiding
    self-loops and duplicates).
    """
    if k % 2 != 0 or not (0 < k < n):
        raise ValueError(f"need even 0 < k < n, got k={k}, n={n}")
    if not (0.0 <= beta <= 1.0):
        raise ValueError(f"beta must be in [0,1], got {beta}")
    edges: set[tuple[int, int]] = set()
    for i in range(n):
        for off in range(1, k // 2 + 1):
            j = (i + off) % n
            edges.add((min(i, j), max(i, j)))
    out = set(edges)
    for i, j in sorted(edges):
        if rng.random() < beta:
            # rewire the far endpoint
            for _ in range(4 * n):
                t = int(rng.integers(n))
                e = (min(i, t), max(i, t))
                if t != i and e not in out:
                    out.discard((i, j))
                    out.add(e)
                    break
    return _from_edge_set(n, out, f"ws(n={n},k={k},beta={beta})")


def random_regular(n: int, d: int, rng: np.random.Generator, max_tries: int = 50) -> Topology:
    """Random d-regular graph: configuration-model pairing + swap repair.

    A plain rejection-sampled pairing is almost never simple for
    ``d ≳ 4`` (the acceptance probability decays like
    ``exp(-(d²-1)/4)``), so self-loops and duplicate pairs are repaired
    with uniform double-edge swaps against good pairs — the standard
    technique; the result remains d-regular by construction.
    """
    if d < 1 or d >= n:
        raise ValueError(f"need 1 <= d < n, got d={d}, n={n}")
    if (n * d) % 2 != 0:
        raise ValueError(f"n*d must be even, got n={n}, d={d}")
    for _ in range(max_tries):
        stubs = np.repeat(np.arange(n), d)
        rng.shuffle(stubs)
        pairs: list[tuple[int, int]] = [
            (int(a), int(b)) for a, b in stubs.reshape(-1, 2)
        ]
        edge_set: set[tuple[int, int]] = set()
        bad: list[int] = []
        for idx, (a, b) in enumerate(pairs):
            e = (min(a, b), max(a, b))
            if a == b or e in edge_set:
                bad.append(idx)
            else:
                edge_set.add(e)
        repaired = True
        for idx in bad:
            fixed = False
            for _attempt in range(200 * max(d, 2)):
                a, b = pairs[idx]
                k = int(rng.integers(len(pairs)))
                if k == idx or k in bad:
                    continue
                c, dd = pairs[k]
                e1 = (min(a, c), max(a, c))
                e2 = (min(b, dd), max(b, dd))
                old = (min(c, dd), max(c, dd))
                if a == c or b == dd or e1 in edge_set or e2 in edge_set or e1 == e2:
                    continue
                # perform the swap: (a,b),(c,d) -> (a,c),(b,d)
                edge_set.discard(old)
                edge_set.add(e1)
                edge_set.add(e2)
                pairs[idx] = (a, c)
                pairs[k] = (b, dd)
                fixed = True
                break
            if not fixed:
                repaired = False
                break
        if repaired and len(edge_set) == n * d // 2:
            return _from_edge_set(n, edge_set, f"reg(n={n},d={d})")
    raise RuntimeError(
        f"failed to build a simple {d}-regular graph in {max_tries} tries"
    )


def grid_2d(rows: int, cols: int, periodic: bool = False) -> Topology:
    """Rows × cols grid (optionally a torus) — the structured control case."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    n = rows * cols

    def nid(r: int, c: int) -> int:
        return r * cols + c

    edges: set[tuple[int, int]] = set()
    pos = np.zeros((n, 2))
    for r in range(rows):
        for c in range(cols):
            v = nid(r, c)
            pos[v] = (r / max(rows - 1, 1), c / max(cols - 1, 1))
            if c + 1 < cols:
                edges.add((v, nid(r, c + 1)))
            elif periodic and cols > 2:
                edges.add((min(v, nid(r, 0)), max(v, nid(r, 0))))
            if r + 1 < rows:
                edges.add((v, nid(r + 1, c)))
            elif periodic and rows > 2:
                edges.add((min(v, nid(0, c)), max(v, nid(0, c))))
    return _from_edge_set(n, edges, f"grid({rows}x{cols})", positions=pos)


def complete_graph(n: int) -> Topology:
    """K_n — everyone knows everyone (the stable-roommates classic setting)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    edges = {(i, j) for i in range(n) for j in range(i + 1, n)}
    return _from_edge_set(n, edges, f"complete(n={n})")
