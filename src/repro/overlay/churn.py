"""Dynamic overlays: joins, leaves and incremental repair (paper §7).

The published LID "does not handle dynamicity, i.e. joins/leaves of
peers"; the conclusion asks whether "the same greedy strategy ... can
tackle such issues".  This module answers constructively:

**Observation.**  The LIC/LID output is exactly the matching with *no
weighted blocking edge* (Lemma 4/6 certificate,
:func:`repro.core.analysis.weighted_blocking_edges`) — i.e. the unique
stable b-matching of the weight-list preference system.  Uniqueness
follows by the standard heaviest-edge induction: the globally heaviest
edge belongs to every such matching, and so on down the (strict) key
order.  Therefore, after any local change (a peer joins or leaves —
which also re-scales the eq.-9 weights of its neighbours, whose list
lengths change), the greedy matching of the *new* instance can be
reached from the surviving matching by resolving weighted blocking
edges — a purely local process radiating from the changed region.

:class:`DynamicOverlay` maintains a peer population, its potential
links and the current matching; :meth:`DynamicOverlay.leave` /
:meth:`DynamicOverlay.join` apply churn events and repair
incrementally, returning :class:`RepairStats` whose cost the A3 bench
compares against the from-scratch re-run (the results are verified
*identical* — the repair is exact, not heuristic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core.backend import resolve_backend_name
from repro.core.fast import FastInstance, lic_matching_fast
from repro.core.lic import lic_matching
from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem
from repro.core.satisfaction import delta_static
from repro.core.weights import WeightTable, satisfaction_weights
from repro.overlay.builder import build_preference_system
from repro.overlay.metrics import MetricAssignment, SuitabilityMetric
from repro.overlay.peer import Peer
from repro.overlay.topology import Topology
from repro.utils.validation import InvalidInstanceError, ProtocolError

__all__ = ["RepairStats", "DynamicOverlay", "WeightCache", "greedy_repair"]


@dataclass
class RepairStats:
    """Cost accounting of one incremental repair.

    Attributes
    ----------
    resolutions:
        Number of weighted-blocking-edge resolutions (connection
        changes) performed.
    dirty_nodes:
        Number of distinct nodes the repair wave touched.
    edges_scanned:
        Total candidate-edge examinations — the work measure compared
        against a full re-run's ``m log m`` scan in bench A3.
    weights_reused:
        Eq.-9 edge weights taken from the :class:`WeightCache` instead
        of being recomputed (0 on the reference backend, which rebuilds
        the whole table).
    weights_recomputed:
        Eq.-9 edge weights actually recomputed for this event.
    truncated:
        The repair stopped because its ``budget`` ran out before the
        no-blocking-edge fixpoint was reached (the caller decides
        whether to full-re-solve or serve the almost-stable state).
    stale_dropped:
        Matched edges scrubbed because one endpoint departed the
        instance (or the edge itself vanished) since the matching was
        built — the "leaving while still listed" churn race.
    """

    resolutions: int = 0
    dirty_nodes: int = 0
    edges_scanned: int = 0
    weights_reused: int = 0
    weights_recomputed: int = 0
    truncated: bool = False
    stale_dropped: int = 0


class WeightCache:
    """Incremental eq.-9 weight store keyed by *external* peer-id pairs.

    A churn event only changes the preference lists (hence list lengths,
    ranks and clamped quotas) of the joining/leaving peer and its
    overlay neighbours; every other edge keeps its exact eq.-9 weight.
    The cache exploits this: :meth:`refresh` rebuilds the weight dict
    for the current edge set (pruning edges of departed peers as a side
    effect) but only *recomputes* weights incident to the declared
    weight-dirty peers, copying everything else from the previous event.

    Keys are stable external peer ids, so entries survive the
    compaction remap that follows every churn event.  Recomputed values
    use the same scalar arithmetic as the reference
    (:func:`repro.core.satisfaction.delta_static`), and the bulk fill
    uses :class:`repro.core.fast.FastInstance` — both bit-identical, so
    a cached table is indistinguishable from a fresh
    :func:`~repro.core.weights.satisfaction_weights` build.
    """

    __slots__ = ("_w",)

    def __init__(self) -> None:
        self._w: dict[tuple[int, int], float] = {}

    def __len__(self) -> int:
        return len(self._w)

    def clear(self) -> None:
        """Drop all cached weights (next refresh bulk-fills)."""
        self._w.clear()

    def seed(self, fi: FastInstance, ids: list[int]) -> None:
        """Warm the cache from an already-lowered :class:`FastInstance`."""
        self._w = {
            (ids[a], ids[b]): w
            for a, b, w in zip(fi.i.tolist(), fi.j.tolist(), fi.w.tolist())
        }

    def refresh(
        self,
        ps: PreferenceSystem,
        ids: list[int],
        weight_dirty: "set[int] | frozenset[int]",
    ) -> tuple[WeightTable, int, int]:
        """Weight table for the compact instance; returns ``(wt, reused, recomputed)``.

        ``weight_dirty`` holds the external ids whose preference lists
        may have changed since the previous refresh; every edge touching
        one of them is recomputed, the rest are copied forward.
        """
        if not self._w:
            # cold start: vectorised bulk fill, everything "recomputed"
            fi = FastInstance.from_preference_system(ps)
            i_list, j_list, w_list = fi.i.tolist(), fi.j.tolist(), fi.w.tolist()
            self._w = {
                (ids[a], ids[b]): w for a, b, w in zip(i_list, j_list, w_list)
            }
            compact = dict(zip(zip(i_list, j_list), w_list))
            return WeightTable.from_trusted(compact, ps.n), 0, len(compact)
        new: dict[tuple[int, int], float] = {}
        compact: dict[tuple[int, int], float] = {}
        cached = self._w
        reused = recomputed = 0
        for a, b in ps.edges():
            pa, pb = ids[a], ids[b]  # ids is sorted, so pa < pb
            w = cached.get((pa, pb))
            if w is None or pa in weight_dirty or pb in weight_dirty:
                w = delta_static(ps, a, b) + delta_static(ps, b, a)
                recomputed += 1
            else:
                reused += 1
            new[(pa, pb)] = w
            compact[(a, b)] = w
        self._w = new
        return WeightTable.from_trusted(compact, ps.n), reused, recomputed


def greedy_repair(
    wt: WeightTable,
    quotas: "list[int] | Sequence[int]",
    matching: Matching,
    dirty: "set[int] | Iterable[int]",
    max_steps: int = 1_000_000,
    budget: Optional[int] = None,
) -> RepairStats:
    """Restore the no-weighted-blocking-edge fixpoint from a local change.

    Repeatedly finds the heaviest blocking edge incident to the dirty
    region, adds it (endpoints over quota drop their lightest partner,
    which joins the dirty region) until no blocking edge remains.
    Mutates ``matching`` in place.

    Correctness: every edge whose blocking status may have changed is
    incident to a dirty node — initial dirtiness covers all nodes whose
    weights or adjacency changed, and each resolution dirties every node
    it touches.  Termination: weight keys are a strict total order, and
    each resolution strictly improves the lexicographic profile of both
    endpoints (standard acyclic-potential argument for globally ranked
    preferences).

    Robustness (the contract the long-lived service relies on):

    - Structural input mismatches — ``quotas`` or ``matching`` sized for
      a different instance than ``wt``, or a negative quota — raise
      :class:`~repro.utils.validation.InvalidInstanceError` eagerly.
    - Churn races are *absorbed*, not raised: dirty ids outside the
      instance (departed peers) are dropped, and matched edges whose
      weight no longer exists (a partner left while still listed, or an
      overlay edge vanished) are scrubbed first, their surviving
      endpoints joining the dirty region (``stats.stale_dropped``).
    - An empty or fully-departed instance returns a well-formed
      zero :class:`RepairStats`.
    - ``budget`` caps the number of resolutions: when it runs out the
      repair returns the current *feasible* (but possibly still
      blocking-edge-carrying) matching with ``stats.truncated`` set,
      instead of raising — the almost-stable degraded mode of
      Floréen et al. that the service trades against a full re-solve.
    """
    n = wt.n
    if len(quotas) != n:
        raise InvalidInstanceError(
            f"quotas sized for {len(quotas)} nodes but weight table has {n}"
        )
    if matching.n != n:
        raise InvalidInstanceError(
            f"matching sized for {matching.n} nodes but weight table has {n}"
        )
    if any(q < 0 for q in quotas):
        raise InvalidInstanceError(f"negative quota in {quotas!r}")
    if budget is not None and budget < 0:
        raise InvalidInstanceError(f"repair budget must be >= 0, got {budget}")

    stats = RepairStats()
    dirty = {v for v in dirty if 0 <= v < n}
    if n == 0:
        return stats

    # scrub stale matched edges (endpoint departed / edge withdrawn):
    # they no longer exist in the instance, so they must neither block
    # candidate edges nor survive into the repaired matching
    for a, b in matching.edges():
        if not wt.has_edge(a, b):
            matching.remove(a, b)
            stats.stale_dropped += 1
            dirty.update((a, b))

    def wants(v: int, u: int) -> bool:
        if matching.degree(v) < quotas[v]:
            return True
        key = wt.key(v, u)
        return any(wt.key(v, c) < key for c in matching.connections(v))

    steps = 0
    while True:
        best: Optional[tuple] = None
        best_edge: Optional[tuple[int, int]] = None
        for v in dirty:
            for u in wt.neighbors(v):
                stats.edges_scanned += 1
                if matching.has_edge(v, u):
                    continue
                if wants(v, u) and wants(u, v):
                    k = wt.key(v, u)
                    if best is None or k > best:
                        best = k
                        best_edge = (v, u)
        if best_edge is None:
            break
        if budget is not None and stats.resolutions >= budget:
            # a blocking edge remains but the budget is spent: stop with
            # a feasible almost-stable matching instead of raising
            stats.truncated = True
            break
        i, j = best_edge
        for v in (i, j):
            if matching.degree(v) >= quotas[v]:
                worst = min(matching.connections(v), key=lambda c: wt.key(v, c))
                matching.remove(v, worst)
                dirty.add(worst)
        matching.add(i, j)
        dirty.update((i, j))
        stats.resolutions += 1
        steps += 1
        if steps > max_steps:  # pragma: no cover - safety valve
            raise ProtocolError("repair did not converge; potential argument violated?")
    stats.dirty_nodes = len(dirty)
    return stats


class DynamicOverlay:
    """A churning overlay with an incrementally maintained greedy matching.

    Peers keep stable external ids; internally every operation works on
    the compacted id space of currently active peers.  The invariant
    after construction and after every churn event is::

        self.matching == LIC(current instance)   # checked in tests

    Parameters
    ----------
    topology, peers, metric:
        As for :func:`repro.overlay.builder.build_preference_system`.
    backend:
        ``"reference"`` (default) rebuilds the eq.-9 weight table from
        scratch on every event; ``"fast"`` keeps a :class:`WeightCache`
        (only dirty edges are rescaled per event) and runs the
        array-backed :func:`~repro.core.fast.lic_matching_fast` for full
        rematches.  Matchings are identical either way — only the cost
        differs (see ``docs/performance.md``).
    """

    def __init__(
        self,
        topology: Topology,
        peers: list[Peer],
        metric: SuitabilityMetric | MetricAssignment,
        backend: str = "reference",
    ):
        self.backend = resolve_backend_name(backend)
        self._wcache: WeightCache | None = (
            WeightCache() if self.backend == "fast" else None
        )
        # external ids whose preference lists changed since the cache
        # was last refreshed (covers repair=False events)
        self._weight_dirty: set[int] = set()
        self.metric = metric
        self._peers: dict[int, Peer] = {p.peer_id: p for p in peers}
        if len(self._peers) != len(peers):
            raise InvalidInstanceError("duplicate peer ids")
        self._adj: dict[int, set[int]] = {
            p.peer_id: set() for p in peers
        }
        for i, j in topology.edges():
            self._adj[peers[i].peer_id].add(peers[j].peer_id)
            self._adj[peers[j].peer_id].add(peers[i].peer_id)
        if topology.positions is not None:
            for i, p in enumerate(peers):
                p.position = topology.positions[i]
        # matching in external-id space
        self._partners: dict[int, set[int]] = {pid: set() for pid in self._peers}
        self._next_id = max(self._peers, default=-1) + 1
        self.full_rematch()

    # -- id space ---------------------------------------------------------

    def active_ids(self) -> list[int]:
        """Sorted external ids of active peers."""
        return sorted(self._peers)

    def _compact_instance(self) -> tuple[PreferenceSystem, list[int], dict[int, int]]:
        ids = self.active_ids()
        index = {pid: k for k, pid in enumerate(ids)}
        topo_adj = [
            sorted(index[q] for q in self._adj[pid] if q in index) for pid in ids
        ]
        # pass the original peer objects: metrics and tie-breaks use the
        # stable external peer_id, so preferences survive compaction
        peers = [self._peers[pid] for pid in ids]
        ps = build_preference_system(
            Topology(topo_adj, None, "dynamic"), peers, self.metric
        )
        return ps, ids, index

    def _weights(
        self, ps: PreferenceSystem, ids: list[int]
    ) -> tuple[WeightTable, int, int]:
        """Eq.-9 weights for the compact instance; ``(wt, reused, recomputed)``.

        The fast backend serves them from the :class:`WeightCache`,
        rescaling only edges incident to peers dirtied since the last
        refresh; the reference backend rebuilds from scratch.
        """
        if self._wcache is None:
            self._weight_dirty.clear()
            return satisfaction_weights(ps), 0, 0
        out = self._wcache.refresh(ps, ids, self._weight_dirty)
        self._weight_dirty.clear()
        return out

    def _compact(self) -> tuple[PreferenceSystem, WeightTable, list[int], dict[int, int]]:
        ps, ids, index = self._compact_instance()
        wt, _, _ = self._weights(ps, ids)
        return ps, wt, ids, index

    def _matching_compact(self, index: dict[int, int]) -> Matching:
        m = Matching(len(index))
        for pid, partners in self._partners.items():
            for q in partners:
                if pid < q:
                    m.add(index[pid], index[q])
        return m

    def _store_matching(self, matching: Matching, ids: list[int]) -> None:
        self._partners = {pid: set() for pid in self._peers}
        for a, b in matching.edges():
            self._partners[ids[a]].add(ids[b])
            self._partners[ids[b]].add(ids[a])

    # -- public views -------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of active peers."""
        return len(self._peers)

    def partners(self, peer_id: int) -> frozenset[int]:
        """Current matched partners of a peer (external ids)."""
        return frozenset(self._partners[peer_id])

    def instance(self) -> tuple[PreferenceSystem, Matching]:
        """Compact snapshot ``(instance, matching)`` for analysis."""
        ps, _, ids, index = self._compact()
        return ps, self._matching_compact(index)

    def total_satisfaction(self) -> float:
        """Current network-wide satisfaction (eq. 1)."""
        ps, matching = self.instance()
        return matching.total_satisfaction(ps)

    # -- maintenance ---------------------------------------------------------

    def full_rematch(self) -> None:
        """Recompute the matching from scratch (the baseline A3 compares to)."""
        ps, ids, _ = self._compact_instance()
        if self.backend == "fast":
            fi = FastInstance.from_preference_system(ps)
            matching = lic_matching_fast(fi)
            assert self._wcache is not None
            self._wcache.seed(fi, ids)
            self._weight_dirty.clear()
        else:
            matching = lic_matching(satisfaction_weights(ps), ps.quotas)
        self._store_matching(matching, ids)

    def leave(self, peer_id: int, repair: bool = True) -> RepairStats:
        """Remove a peer; incrementally repair unless ``repair=False``.

        The dirty region seeds with the leaver's former partners and all
        its overlay neighbours (whose preference-list lengths — hence
        eq.-9 weights — changed).
        """
        if peer_id not in self._peers:
            raise KeyError(f"unknown peer {peer_id}")
        neighbours = set(self._adj[peer_id])
        del self._peers[peer_id]
        for q in neighbours:
            self._adj[q].discard(peer_id)
        del self._adj[peer_id]
        for q in self._partners.pop(peer_id, set()):
            self._partners[q].discard(peer_id)
        # the neighbours' preference lists shrank: their eq.-9 weights are
        # stale even if this event is repaired later (repair=False)
        self._weight_dirty |= neighbours
        self._weight_dirty.discard(peer_id)
        if not self._peers:
            return RepairStats()
        if not repair:
            return RepairStats()
        return self._repair(dirty_external=neighbours)

    def join(
        self,
        peer: Peer,
        neighbours: Iterable[int],
        repair: bool = True,
    ) -> tuple[int, RepairStats]:
        """Add a peer knowing ``neighbours``; returns ``(peer_id, stats)``."""
        pid = self._next_id
        self._next_id += 1
        peer.peer_id = pid
        neigh = set(neighbours)
        unknown = neigh - set(self._peers)
        if unknown:
            raise KeyError(f"unknown neighbours {sorted(unknown)}")
        self._peers[pid] = peer
        self._adj[pid] = set(neigh)
        for q in neigh:
            self._adj[q].add(pid)
        self._partners[pid] = set()
        # the joiner and its neighbours gained a list entry
        self._weight_dirty |= neigh
        self._weight_dirty.add(pid)
        if not repair:
            return pid, RepairStats()
        return pid, self._repair(dirty_external=neigh | {pid})

    def _repair(self, dirty_external: set[int]) -> RepairStats:
        # A churn event changes the preference-list lengths of the nodes
        # in `dirty_external`, which rescales *all* their eq.-9 edge
        # weights.  An edge (y, z) can change blocking status whenever y
        # or z has a (possibly matched) edge whose weight changed, so
        # the seed must include one hop of neighbours around the changed
        # nodes; the repair wave extends it further as it drops partners.
        expanded = set(dirty_external)
        for pid in dirty_external:
            expanded.update(self._adj.get(pid, ()))
        ps, ids, index = self._compact_instance()
        wt, reused, recomputed = self._weights(ps, ids)
        dirty_external = expanded
        matching = self._matching_compact(index)
        dirty = {index[pid] for pid in dirty_external if pid in index}
        stats = greedy_repair(wt, list(ps.quotas), matching, dirty)
        stats.weights_reused = reused
        stats.weights_recomputed = recomputed
        matching.validate(ps)
        self._store_matching(matching, ids)
        return stats
