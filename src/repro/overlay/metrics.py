"""Suitability metrics — each peer's private notion of a good neighbour.

A metric maps an ordered peer pair to a score (higher = more suitable
*to the first peer*).  The paper stresses that every peer "may follow an
individually chosen metric — that it may even not want to disclose to
other peers"; correspondingly the builder only ever uses metrics to
produce each node's *own* ranking, and the algorithms only ever see the
resulting ranks (and the eq.-9 weights derived from them), never the
metric itself.

Provided metrics mirror the paper's motivating list (§1): distance,
interests, recommendations/history, available resources — plus
composition and private per-peer idiosyncrasy.
"""

from __future__ import annotations

from typing import Callable, Mapping, Protocol, Sequence

import numpy as np

from repro.overlay.peer import Peer

__all__ = [
    "SuitabilityMetric",
    "DistanceMetric",
    "InterestMetric",
    "BandwidthMetric",
    "ReliabilityMetric",
    "CompositeMetric",
    "PrivateTasteMetric",
    "MetricAssignment",
]


class SuitabilityMetric(Protocol):
    """Callable scoring how suitable ``b`` is as a neighbour of ``a``."""

    def __call__(self, a: Peer, b: Peer) -> float: ...


class DistanceMetric:
    """Prefer nearby peers: score = −‖pos_a − pos_b‖ (latency proxy)."""

    def __call__(self, a: Peer, b: Peer) -> float:
        return -float(np.linalg.norm(a.position - b.position))


class InterestMetric:
    """Prefer peers with similar interests: cosine similarity."""

    def __call__(self, a: Peer, b: Peer) -> float:
        na = float(np.linalg.norm(a.interests))
        nb = float(np.linalg.norm(b.interests))
        if na == 0.0 or nb == 0.0:
            return 0.0
        return float(a.interests @ b.interests) / (na * nb)


class BandwidthMetric:
    """Prefer high-capacity peers: score = candidate's bandwidth."""

    def __call__(self, a: Peer, b: Peer) -> float:
        return float(b.bandwidth)


class ReliabilityMetric:
    """Prefer historically reliable peers (transaction-history proxy)."""

    def __call__(self, a: Peer, b: Peer) -> float:
        return float(b.reliability)


class CompositeMetric:
    """Weighted sum of other metrics.

    ``CompositeMetric([(0.7, DistanceMetric()), (0.3, BandwidthMetric())])``
    models a peer that mostly wants low latency but values capacity.
    Component scores are used raw (callers should pick weights aware of
    each component's scale).
    """

    def __init__(self, parts: Sequence[tuple[float, SuitabilityMetric]]):
        if not parts:
            raise ValueError("CompositeMetric needs at least one component")
        self.parts = list(parts)

    def __call__(self, a: Peer, b: Peer) -> float:
        return sum(w * metric(a, b) for w, metric in self.parts)


class PrivateTasteMetric:
    """A peer-private idiosyncratic score, optionally blended with a base.

    Each calling peer ``a`` has its own hidden random valuation of every
    candidate, drawn deterministically from ``(seed, a.peer_id,
    b.peer_id)``.  With ``blend < 1`` the taste perturbs a base metric;
    with ``blend = 1`` preferences are fully idiosyncratic — the
    fully-heterogeneous regime in which acyclicity assumptions break and
    the paper's weight construction earns its keep (experiment F4).
    """

    def __init__(
        self,
        seed: int,
        base: SuitabilityMetric | None = None,
        blend: float = 1.0,
    ):
        if not (0.0 <= blend <= 1.0):
            raise ValueError(f"blend must be in [0,1], got {blend}")
        if blend < 1.0 and base is None:
            raise ValueError("blend < 1 requires a base metric")
        self.seed = seed
        self.base = base
        self.blend = blend

    def __call__(self, a: Peer, b: Peer) -> float:
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, a.peer_id, b.peer_id])
        )
        taste = float(rng.random())
        if self.blend >= 1.0:
            return taste
        assert self.base is not None
        return self.blend * taste + (1.0 - self.blend) * self.base(a, b)


class MetricAssignment:
    """Per-peer metric choice: ``assignment[peer_id] -> metric``.

    Models the fully distributed scenario where "every peer may follow
    an individually chosen metric".  Missing peers fall back to
    ``default``.
    """

    def __init__(
        self,
        default: SuitabilityMetric,
        overrides: Mapping[int, SuitabilityMetric] | None = None,
    ):
        self.default = default
        self.overrides = dict(overrides or {})

    def metric_for(self, peer_id: int) -> SuitabilityMetric:
        """The metric peer ``peer_id`` evaluates candidates with."""
        return self.overrides.get(peer_id, self.default)

    def score(self, a: Peer, b: Peer) -> float:
        """Score of candidate ``b`` according to ``a``'s own metric."""
        return self.metric_for(a.peer_id)(a, b)
