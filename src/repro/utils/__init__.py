"""Shared utilities: seeded RNG management and argument validation."""

from repro.utils.rng import RngFactory, spawn_rng
from repro.utils.validation import (
    ReproError,
    InvalidInstanceError,
    InvalidMatchingError,
    check_positive_int,
    check_probability,
)

__all__ = [
    "RngFactory",
    "spawn_rng",
    "ReproError",
    "InvalidInstanceError",
    "InvalidMatchingError",
    "check_positive_int",
    "check_probability",
]
