"""Error types and small argument-validation helpers used across the library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidInstanceError",
    "InvalidMatchingError",
    "ProtocolError",
    "check_positive_int",
    "check_nonnegative_int",
    "check_probability",
]


class ReproError(Exception):
    """Base class for all library errors."""


class InvalidInstanceError(ReproError):
    """A problem instance (graph / preferences / quotas) is inconsistent."""


class InvalidMatchingError(ReproError):
    """A matching violates feasibility (quota or edge-set constraints)."""


class ProtocolError(ReproError):
    """A distributed protocol reached an inconsistent state.

    Raised by the LID state machine when an invariant that the paper's
    lemmas guarantee is violated at runtime -- this should never happen
    and indicates an implementation bug, so it is surfaced loudly rather
    than swallowed.
    """


def check_positive_int(value: int, name: str) -> int:
    """Return ``value`` if it is a positive ``int``; raise otherwise."""
    if not isinstance(value, (int,)) or isinstance(value, bool) or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return value


def check_nonnegative_int(value: int, name: str) -> int:
    """Return ``value`` if it is a non-negative ``int``; raise otherwise."""
    if not isinstance(value, (int,)) or isinstance(value, bool) or value < 0:
        raise ValueError(f"{name} must be a non-negative integer, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Return ``value`` if it lies in ``[0, 1]``; raise otherwise."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value
