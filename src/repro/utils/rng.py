"""Deterministic random-number management.

Every stochastic component in the library (topology generators, latency
models, failure injectors, baseline algorithms) draws randomness from a
:class:`numpy.random.Generator`.  To keep whole experiments reproducible
from a single root seed while still giving each logical component an
independent stream, we spawn child generators from a root
``numpy.random.SeedSequence`` keyed by a stable string label.

This mirrors the recommended scientific-Python practice of passing
``default_rng`` instances explicitly instead of touching global state.
"""

from __future__ import annotations

import zlib
from typing import Iterable

import numpy as np

__all__ = ["spawn_rng", "RngFactory"]


def _label_to_key(label: str) -> int:
    """Map a string label to a stable 32-bit integer key.

    ``zlib.crc32`` is used (rather than ``hash``) because it is stable
    across processes and Python versions, which matters for
    reproducibility of distributed-simulation runs.
    """
    return zlib.crc32(label.encode("utf-8")) & 0xFFFFFFFF


def spawn_rng(seed: int | None, *labels: str) -> np.random.Generator:
    """Create a generator for ``labels`` derived from a root ``seed``.

    Parameters
    ----------
    seed:
        Root seed of the experiment.  ``None`` yields OS entropy (only
        appropriate in throwaway interactive use).
    labels:
        A path of string labels identifying the component, e.g.
        ``("topology", "node-17")``.  Different label paths yield
        statistically independent streams for the same root seed.
    """
    if seed is None:
        return np.random.default_rng()
    keys = [_label_to_key(label) for label in labels]
    return np.random.default_rng(np.random.SeedSequence([seed, *keys]))


class RngFactory:
    """Factory bound to a root seed, spawning labelled sub-generators.

    Examples
    --------
    >>> f = RngFactory(1234)
    >>> topo_rng = f.make("topology")
    >>> node_rng = f.make("node", "17")
    >>> f2 = RngFactory(1234)
    >>> bool((f2.make("topology").random(4) == topo_rng.random(0)).all())
    True
    """

    def __init__(self, seed: int | None):
        self.seed = seed

    def make(self, *labels: str) -> np.random.Generator:
        """Spawn a generator for the given label path."""
        return spawn_rng(self.seed, *labels)

    def make_many(self, prefix: str, names: Iterable[str]) -> dict[str, np.random.Generator]:
        """Spawn one generator per name under a common prefix."""
        return {name: self.make(prefix, name) for name in names}

    def child(self, label: str) -> "RngFactory":
        """Derive a child factory with an independent root.

        Useful when a sub-component itself needs to hand out labelled
        streams without risking collisions with its parent's labels.
        """
        if self.seed is None:
            return RngFactory(None)
        return RngFactory((self.seed * 1_000_003 + _label_to_key(label)) % (2**63))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RngFactory(seed={self.seed!r})"
