"""Ratio computations shared by the T1/T2/F3 experiments."""

from __future__ import annotations

from typing import Sequence

from repro.baselines.exact import (
    max_satisfaction_bmatching_milp,
    max_weight_bmatching_milp,
)
from repro.core.analysis import (
    approximation_ratio,
    greedy_certificate,
    theorem2_bound,
    theorem3_bound,
)
from repro.core.lic import lic_matching
from repro.core.lid import run_lid
from repro.core.preferences import PreferenceSystem
from repro.core.weights import WeightTable, satisfaction_weights

__all__ = ["weight_ratio_record", "satisfaction_ratio_record"]


def weight_ratio_record(
    wt: WeightTable, quotas: Sequence[int], run_distributed: bool = True
) -> dict:
    """Measure LIC (and optionally LID) weight against the exact optimum.

    Returns a flat record with the ratio, the Theorem-2 bound, and the
    certificate / bound-respected flags the T1 table reports.
    """
    lic = lic_matching(wt, quotas)
    w_lic = lic.total_weight(wt)
    opt = max_weight_bmatching_milp(wt, quotas)
    w_opt = opt.total_weight(wt)
    record = {
        "m": wt.m,
        "lic_weight": w_lic,
        "opt_weight": w_opt,
        "ratio": approximation_ratio(w_lic, w_opt),
        "bound": theorem2_bound(),
        "bound_ok": w_lic >= theorem2_bound() * w_opt - 1e-9,
        "certificate": greedy_certificate(wt, list(quotas), lic),
    }
    if run_distributed:
        lid = run_lid(wt, list(quotas))
        record["lid_equals_lic"] = lid.matching.edge_set() == lic.edge_set()
        record["messages"] = lid.metrics.total_sent
    return record


def satisfaction_ratio_record(ps: PreferenceSystem) -> dict:
    """Measure LID satisfaction against the exact eq.-1 optimum.

    The T2 table: LID's total satisfaction, the exact optimum (MILP with
    the linearised dynamic term), their ratio and the Theorem-3 bound
    ``¼(1 + 1/b_max)``.
    """
    wt = satisfaction_weights(ps)
    lid = run_lid(wt, ps.quotas)
    s_lid = lid.matching.total_satisfaction(ps)
    opt = max_satisfaction_bmatching_milp(ps)
    s_opt = opt.total_satisfaction(ps)
    bound = theorem3_bound(ps.b_max)
    return {
        "n": ps.n,
        "m": ps.m,
        "b_max": ps.b_max,
        "lid_sat": s_lid,
        "opt_sat": s_opt,
        "ratio": approximation_ratio(s_lid, s_opt),
        "bound": bound,
        "bound_ok": s_lid >= bound * s_opt - 1e-9,
    }
