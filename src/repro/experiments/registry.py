"""Registry of the reproduction's experiments.

One authoritative list mapping experiment ids to their claim, paper
anchor and bench target — the machine-readable form of the DESIGN.md §2
table, used by ``python -m repro list`` and importable by tooling.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment"]


@dataclass(frozen=True)
class Experiment:
    """One experiment of the harness."""

    id: str
    claim: str
    anchor: str
    bench: str


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment("t1", "LIC/LID weight ≥ ½ · optimal matching weight",
               "Theorem 2", "benchmarks/bench_t1_weight_ratio.py"),
    Experiment("t2", "LID satisfaction ≥ ¼(1+1/b_max) · optimum",
               "Theorem 3", "benchmarks/bench_t2_satisfaction_ratio.py"),
    Experiment("t3", "LID edge set ≡ LIC edge set under any schedule",
               "Lemmas 4, 6", "benchmarks/bench_t3_equivalence.py"),
    Experiment("t4", "termination + message complexity (PROP/REJ ≤ 2m)",
               "Lemma 5, §5", "benchmarks/bench_t4_messages.py"),
    Experiment("t5", "static share ≥ ½(1+1/b), tight construction",
               "Lemma 1 / eq. 8", "benchmarks/bench_t5_static_bound.py"),
    Experiment("f1", "satisfaction distributions vs baselines/OPT",
               "§1, §3", "benchmarks/bench_f1_satisfaction_dist.py"),
    Experiment("f2", "scalability at constant degree",
               "§5", "benchmarks/bench_f2_scalability.py"),
    Experiment("f3", "measured ratio vs the ¼(1+1/b) band",
               "Theorems 1, 3", "benchmarks/bench_f3_ratio_vs_b.py"),
    Experiment("f4", "cyclic preferences: oscillation vs termination",
               "§1, Lemma 5", "benchmarks/bench_f4_cyclic_convergence.py"),
    Experiment("f5", "structure of the constructed overlay",
               "§1 goal", "benchmarks/bench_f5_overlay_structure.py"),
    Experiment("f6", "partial adoption: deadlock risk + adopter advantage",
               "§1/§2, Lemma 5", "benchmarks/bench_f6_partial_adoption.py"),
    Experiment("a1", "tie-breaking ablation (unique-weights device)",
               "§4", "benchmarks/bench_a1_tiebreak_ablation.py"),
    Experiment("a2", "fault campaign: loss + crash + partition + Byzantine"
               " (terminate, zero invariant violations)",
               "§7", "benchmarks/bench_a2_robustness.py"),
    Experiment("a3", "churn: exact incremental repair (centralised)",
               "§7", "benchmarks/bench_a3_churn.py"),
    Experiment("a4", "churn: distributed dynamic protocol",
               "§7", "benchmarks/bench_a4_dynamic_protocol.py"),
    Experiment("a5", "local-search head-room over greedy",
               "Theorem 2 slack", "benchmarks/bench_a5_local_search.py"),
    Experiment("a6", "weight-design / reservation ablation",
               "§7", "benchmarks/bench_a6_variants.py"),
    Experiment("p1", "vectorised kernels (engineering)",
               "—", "benchmarks/bench_p1_vectorised_kernels.py"),
    Experiment("p2", "from-scratch blossom vs networkx (engineering)",
               "ref [2]", "benchmarks/bench_p2_blossom.py"),
    Experiment("p3", "array-backed fast LIC backend ≥5x (engineering)",
               "—", "benchmarks/bench_p3_fast_backend.py"),
    Experiment("p4", "round-batched fast LID engine ≥10x, bit-identical"
               " replay (engineering)",
               "—", "benchmarks/bench_p4_fast_lid.py"),
)


def get_experiment(exp_id: str) -> Experiment:
    """Look up an experiment by id (case-insensitive)."""
    for exp in EXPERIMENTS:
        if exp.id == exp_id.lower():
            return exp
    raise KeyError(f"unknown experiment {exp_id!r}")
