"""Fixed-width tables and CSV output for the benchmark harness.

Every bench prints its rows through :func:`print_table` so that the
captured ``bench_output.txt`` reads like the tables a paper would show;
EXPERIMENTS.md records claim-vs-measured based on these.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

__all__ = ["format_table", "print_table", "write_csv", "ascii_histogram", "sparkline"]


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping],
    columns: Sequence[str] | None = None,
    title: str = "",
) -> str:
    """Render dict-rows as a fixed-width text table."""
    if not rows:
        return f"{title}\n(no rows)\n" if title else "(no rows)\n"
    if columns is None:
        columns = list(rows[0].keys())
    table = [[_fmt(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(str(c)), *(len(row[k]) for row in table))
        for k, c in enumerate(columns)
    ]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(header))
    lines.append(header)
    lines.append(sep)
    for row in table:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def print_table(
    rows: Sequence[Mapping],
    columns: Sequence[str] | None = None,
    title: str = "",
) -> None:
    """Print a fixed-width table (benches' standard output path)."""
    print()
    print(format_table(rows, columns, title))


def write_csv(rows: Sequence[Mapping], path: str | Path) -> None:
    """Persist rows as CSV (column union across rows, insertion order)."""
    path = Path(path)
    if not rows:
        path.write_text("")
        return
    columns: list[str] = []
    for r in rows:
        for c in r:
            if c not in columns:
                columns.append(c)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        writer.writeheader()
        writer.writerows(rows)


def ascii_histogram(
    values,
    bins: int = 10,
    width: int = 40,
    title: str = "",
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """Render a fixed-width text histogram of ``values``.

    Used by the CLI and the distribution experiments so that
    ``bench_output.txt`` carries the *shape* of per-node satisfaction,
    not just summary statistics.  ``lo``/``hi`` pin the range (defaults
    to the data range; satisfaction plots typically pass 0 and 1).
    """
    vals = [float(v) for v in values]
    if not vals:
        return f"{title}\n(no data)\n" if title else "(no data)\n"
    lo = min(vals) if lo is None else float(lo)
    hi = max(vals) if hi is None else float(hi)
    if hi <= lo:
        hi = lo + 1.0
    counts = [0] * bins
    for v in vals:
        k = int((v - lo) / (hi - lo) * bins)
        counts[min(max(k, 0), bins - 1)] += 1
    peak = max(counts)
    lines = []
    if title:
        lines.append(title)
    for k, c in enumerate(counts):
        a = lo + (hi - lo) * k / bins
        b = lo + (hi - lo) * (k + 1) / bins
        bar = "#" * (round(width * c / peak) if peak else 0)
        lines.append(f"[{a:6.3f},{b:6.3f}) {c:4d} {bar}")
    return "\n".join(lines) + "\n"


def sparkline(values) -> str:
    """One-line block-character sketch of a numeric series."""
    blocks = "▁▂▃▄▅▆▇█"
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return blocks[0] * len(vals)
    return "".join(
        blocks[min(int((v - lo) / (hi - lo) * len(blocks)), len(blocks) - 1)]
        for v in vals
    )
