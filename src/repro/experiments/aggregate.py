"""Aggregation and reporting over grid result stores.

Joins the per-cell JSON records of a :class:`~repro.experiments.grid
.GridStore` into the summary tables and CSVs that back EXPERIMENTS.md
and ``benchmarks/results/`` — one command regenerates everything
(``python -m repro grid report``).

Determinism contract: the canonical outputs (``report.md`` and
``summary.csv``) are pure functions of the cell *coordinates* — every
machine-dependent field (the reserved suffixes of
:data:`repro.telemetry.sink.NONDETERMINISTIC_SUFFIXES`: ``_ms``,
``_kb``, ``_per_s``, ``_x``) and every scheduling observable
(:data:`NONCANONICAL_FIELDS`, e.g. the watchdog's ``retries`` count)
is excluded — so a resumed run reports byte-identically to an
uninterrupted one.  ``cells.csv`` keeps the raw records *including*
timings and is explicitly not part of that contract.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.experiments.grid import GridStore
from repro.experiments.gridspec import GridSpec
from repro.experiments.runner import aggregate
from repro.experiments.reporting import write_csv
from repro.telemetry.sink import NONDETERMINISTIC_SUFFIXES

__all__ = [
    "GridIncompleteError",
    "NONCANONICAL_FIELDS",
    "collect_records",
    "grid_status",
    "render_report",
    "summarise",
    "write_report",
]

#: cell-coordinate fields (the group key is every coordinate but the
#: seed — including ``max_rounds``, so each truncation budget gets its
#: own summary row instead of being averaged away like a seed)
COORDS = ("engine", "family", "n", "b", "churn", "fault", "max_rounds", "seed")
GROUP_BY = [c for c in COORDS if c != "seed"]

#: wall-clock fields carry this suffix and never enter canonical outputs
#: (kept as an alias of the narrow historical rule; the full exclusion
#: set is NONDETERMINISTIC_SUFFIXES, shared with the telemetry sink)
TIMING_SUFFIX = "_ms"

#: run-shape observables that are not metrics of the cell coordinates
#: (e.g. how many watchdog retries a cell needed on this machine)
NONCANONICAL_FIELDS = ("retries",)

#: metrics reduced to their worst case over seeds rather than the mean
WORST_CASE = {"ratio": min, "lid_equals_lic": min, "valid": min,
              "degradation": min, "terminated": min}


class GridIncompleteError(RuntimeError):
    """A report was requested over a store with missing cells."""


def grid_status(spec: GridSpec, store: GridStore) -> dict:
    """Progress of a store against a spec: total/done/missing cells."""
    cells = spec.cells()
    done = store.done_ids()
    missing = [c.cell_id for c in cells if c.cell_id not in done]
    return {
        "name": spec.name,
        "hash": spec.spec_hash(),
        "total": len(cells),
        "done": len(cells) - len(missing),
        "missing": missing,
    }


def collect_records(
    spec: GridSpec, store: GridStore, allow_partial: bool = False
) -> list[dict]:
    """Load all cell records in deterministic cell order."""
    done = store.done_ids()
    records, missing = [], 0
    for cell in spec.cells():
        if cell.cell_id in done:
            records.append(store.load(cell.cell_id))
        else:
            missing += 1
    if missing and not allow_partial:
        raise GridIncompleteError(
            f"grid {spec.name!r} has {missing} incomplete cells"
            " — run `python -m repro grid run` to fill them"
            " (or pass --partial to report what exists)"
        )
    return records


def _metric_fields(records: Iterable[Mapping]) -> list[str]:
    """Aggregatable metric fields, first-seen order.

    Excludes coordinates, every machine-dependent suffix (``_ms``,
    ``_kb``, ``_per_s``, ``_x``) and the explicit non-canonical
    scheduling fields such as ``retries``.
    """
    fields: list[str] = []
    for rec in records:
        for key, value in rec.items():
            if key in COORDS or key in fields:
                continue
            if key.endswith(NONDETERMINISTIC_SUFFIXES):
                continue
            if key in NONCANONICAL_FIELDS:
                continue
            if isinstance(value, (bool, int, float)):
                fields.append(key)
    return fields


def summarise(records: Sequence[Mapping]) -> list[dict]:
    """Reduce records over seeds: one row per (engine, family, n, b,
    churn, fault) group, mean metrics except the worst-case set
    (``ratio``, ``valid``, ``degradation`` …, reduced with ``min``)."""
    if not records:
        return []
    fields = _metric_fields(records)
    reducers = {k: v for k, v in WORST_CASE.items() if k in fields}
    return aggregate(records, GROUP_BY, fields, reducers=reducers)


def _md(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6g}"
    if value is None:
        return "-"
    return str(value)


def _md_table(rows: Sequence[Mapping]) -> str:
    if not rows:
        return "(no rows)\n"
    columns: list[str] = []
    for r in rows:
        for c in r:
            if c not in columns:
                columns.append(c)
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for r in rows:
        lines.append("| " + " | ".join(_md(r.get(c, "")) for c in columns) + " |")
    return "\n".join(lines) + "\n"


def render_report(spec: GridSpec, records: Sequence[Mapping],
                  missing: int = 0) -> str:
    """The canonical markdown report for a grid (deterministic bytes)."""
    summary = summarise(records)
    failures = [r for r in records if not r.get("ok", False)]
    lines = [
        f"# Grid report — {spec.name}",
        "",
        f"- spec hash: `{spec.spec_hash()}`",
        f"- cells: {len(records)} recorded"
        + (f", {missing} missing" if missing else ""),
        f"- failures: {len(failures)}",
        "",
        "## Summary (aggregated over seeds; worst-case for"
        " ratio/valid/degradation)",
        "",
        _md_table(summary),
    ]
    if failures:
        lines += [
            "## Failing cells",
            "",
            _md_table([
                {k: r.get(k) for k in
                 (*GROUP_BY, "seed", "ok", "valid", "violations")}
                for r in failures
            ]),
        ]
    return "\n".join(lines)


def write_report(
    spec: GridSpec,
    store: GridStore,
    out_dir: "str | Path | None" = None,
    allow_partial: bool = False,
) -> dict[str, Path]:
    """Write ``report.md``/``summary.csv``/``cells.csv`` into the store.

    With ``out_dir`` the canonical outputs are additionally copied as
    ``grid_<name>_summary.csv`` / ``grid_<name>_report.md`` — the form
    archived under ``benchmarks/results/``.
    """
    records = collect_records(spec, store, allow_partial=allow_partial)
    missing = len(spec.cells()) - len(records)
    summary = summarise(records)
    report = render_report(spec, records, missing=missing)

    paths = {
        "report": store.root / "report.md",
        "summary": store.root / "summary.csv",
        "cells": store.root / "cells.csv",
    }
    paths["report"].write_text(report)
    write_csv(summary, paths["summary"])
    write_csv(records, paths["cells"])

    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        paths["out_summary"] = out / f"grid_{spec.name}_summary.csv"
        paths["out_report"] = out / f"grid_{spec.name}_report.md"
        write_csv(summary, paths["out_summary"])
        paths["out_report"].write_text(report)
    return paths
