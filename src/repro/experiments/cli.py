"""Command-line interface: run scenarios and experiments without code.

Entry point (installed via ``python -m repro``):

- ``python -m repro scenario file_sharing --n 80``  — build a scenario,
  run LID, print matching statistics;
- ``python -m repro compare geo_latency --n 40``    — satisfaction
  comparison of LID vs baselines vs OPT on one scenario;
- ``python -m repro experiment t1|t2|t4|f4|f6``     — quick versions of
  the named experiments (full versions live in ``benchmarks/``);
- ``python -m repro campaign [--smoke]``            — seeded fault
  campaign (loss × crash × partition × Byzantine); ``--smoke`` is the
  chaos-smoke CI preset and exits non-zero on any invariant violation;
- ``python -m repro grid run|status|report``        — declarative
  parameter grids (engine × family × n × b × churn × fault × seed)
  with resumable parallel execution and aggregation; ``grid run
  --smoke`` is the grid-smoke CI merge gate;
- ``python -m repro conformance [--smoke]``         — cross-backend
  differential sweep + oracle battery + mutation smoke; ``--smoke`` is
  the conformance-smoke CI preset and exits non-zero iff a divergence /
  oracle violation is found or a planted bug goes uncaught;
  ``--replay FILE`` re-runs a minimised repro file deterministically;
- ``python -m repro discover --n 60``               — gossip discovery →
  ranking → LID, end to end;
- ``python -m repro churn --n 50 --events 20``      — a churn session
  with exact incremental repair;
- ``python -m repro serve --n 100 --events 200``    — the long-lived
  self-healing matching service: workload replay with budgeted
  incremental repair, crash-consistent checkpoints, runtime invariant
  guards and sampled differential conformance checks; ``--smoke`` is
  the service-smoke CI gate (kill-and-resume bit-identity + zero
  invariant violations, non-zero exit otherwise);
- ``python -m repro list``                          — the experiment
  inventory (ids, claims, bench files).
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

import numpy as np

from repro.baselines import (
    best_response_dynamics,
    max_satisfaction_bmatching_milp,
    random_bmatching,
)
from repro.core import solve_lid
from repro.experiments.instances import (
    FAMILIES,
    cyclic_roommates,
    family_instance,
    random_preference_instance,
)
from repro.experiments.ratios import satisfaction_ratio_record, weight_ratio_record
from repro.experiments.reporting import print_table
from repro.overlay import SCENARIOS, DynamicOverlay, Peer, build_scenario
from repro.utils.rng import spawn_rng

__all__ = ["main", "build_parser"]


def _cmd_scenario(args) -> int:
    sc = build_scenario(args.name, args.n, seed=args.seed)
    if args.backend == "sharded":
        result, _ = solve_lid(sc.ps, backend="sharded", shards=args.shards,
                              shard_workers=args.shard_workers,
                              jit=True if args.jit else None,
                              max_rounds=args.max_rounds)
    else:
        result, _ = solve_lid(sc.ps, backend=args.backend,
                              max_rounds=args.max_rounds)
    m = result.matching
    v = m.satisfaction_vector(sc.ps)
    print(f"scenario={sc.name} n={sc.ps.n} m={sc.ps.m} b_max={sc.ps.b_max}")
    print(f"matched edges: {m.size()}")
    print(f"total satisfaction: {v.sum():.3f}  mean {v.mean():.3f}"
          f"  median {np.median(v):.3f}  min {v.min():.3f}")
    print(f"messages: {result.prop_messages} PROP + {result.rej_messages} REJ"
          f" in {result.rounds:.0f} rounds")
    if args.max_rounds is not None:
        t = result.truncation
        print(f"truncation: budget {t.max_rounds}, executed {t.rounds} waves,"
              f" converged={t.converged}, released locks {t.released_locks}")
        print(f"almost-stable: {t.blocking_pairs} blocking pairs"
              f" ({t.weighted_blocking_pairs} weighted),"
              f" satisfaction ratio {t.satisfaction_ratio:.4f} of converged")
    return 0


def _cmd_compare(args) -> int:
    sc = build_scenario(args.name, args.n, seed=args.seed)
    ps = sc.ps
    rows = []

    def add(label, matching):
        v = matching.satisfaction_vector(ps)
        rows.append(
            {"algorithm": label, "total": float(v.sum()),
             "mean": float(v.mean()), "min": float(v.min())}
        )

    lid, _ = solve_lid(ps)
    add("LID", lid.matching)
    from repro.core.backend import get_backend

    add(f"LIC[{args.backend}]", get_backend(args.backend).solve(ps))
    add("random", random_bmatching(ps, spawn_rng(args.seed, "cli-random")))
    br = best_response_dynamics(ps, max_steps=4000)
    add("best-response" + ("" if br.converged else "*"), br.matching)
    if args.exact:
        add("OPT", max_satisfaction_bmatching_milp(ps))
    print_table(rows, title=f"satisfaction comparison — {sc.name}, n={ps.n}"
                            " (* = oscillating snapshot)")
    return 0


def _cmd_experiment(args) -> int:
    if args.id == "t1":
        rows = []
        for family in FAMILIES:
            ps = family_instance(family, args.n, 3, seed=args.seed)
            from repro.core.weights import satisfaction_weights

            rec = weight_ratio_record(satisfaction_weights(ps), list(ps.quotas))
            rows.append({"family": family, **rec})
        print_table(
            rows,
            ["family", "m", "ratio", "bound", "bound_ok", "lid_equals_lic"],
            title="T1 (quick) — weight ratio vs exact optimum",
        )
    elif args.id == "t2":
        rows = []
        for b in (1, 2, 4):
            ps = random_preference_instance(args.n, 0.3, b, seed=args.seed)
            rows.append({"b": b, **satisfaction_ratio_record(ps)})
        print_table(
            rows,
            ["b", "n", "m", "lid_sat", "opt_sat", "ratio", "bound", "bound_ok"],
            title="T2 (quick) — satisfaction ratio vs exact optimum",
        )
    elif args.id == "t4":
        from repro.core.lid import run_lid
        from repro.core.weights import satisfaction_weights

        rows = []
        for n in (50, 100, 200):
            ps = random_preference_instance(n, min(0.3, 12.0 / n), 3, seed=args.seed)
            res = run_lid(satisfaction_weights(ps), ps.quotas)
            rows.append(
                {"n": n, "m": ps.m, "messages": res.metrics.total_sent,
                 "rounds": res.rounds,
                 "per_edge": res.metrics.total_sent / max(ps.m, 1)}
            )
        print_table(rows, title="T4 (quick) — message complexity")
    elif args.id == "f6":
        import numpy as np
        from repro.core.mixed import run_mixed_adoption
        from repro.core.weights import satisfaction_weights

        ps = random_preference_instance(args.n, 0.3, 3, seed=args.seed)
        wt = satisfaction_weights(ps)
        rows = []
        for f in (1.0, 0.75, 0.5):
            rng = spawn_rng(args.seed, "cli-f6", str(f))
            k = int(round(f * ps.n))
            adopters = {int(x) for x in rng.choice(ps.n, size=k, replace=False)}
            res = run_mixed_adoption(wt, ps.quotas, adopters=adopters,
                                     legacy_seed=args.seed)
            v = res.matching.satisfaction_vector(ps)
            rows.append({
                "adoption": f,
                "stalled": res.deadlocked,
                "adopter_sat": float(np.mean([v[i] for i in adopters]))
                if adopters else float("nan"),
            })
        print_table(rows, title="F6 (quick) — partial adoption")
    elif args.id == "f4":
        rows = []
        for k in (3, 5, 9):
            ps = cyclic_roommates(k)
            br = best_response_dynamics(ps)
            lid, _ = solve_lid(ps)
            rows.append(
                {"instance": f"odd-ring k={k}", "br_cycles": br.cycled,
                 "lid_rounds": lid.rounds, "lid_matched": lid.matching.size()}
            )
        print_table(rows, title="F4 (quick) — cyclic preferences")
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown experiment {args.id}")
    return 0


def _cmd_list(args) -> int:
    from repro.experiments.registry import EXPERIMENTS

    rows = [
        {"id": e.id, "claim": e.claim, "anchor": e.anchor, "bench": e.bench}
        for e in EXPERIMENTS
    ]
    print_table(rows, title="experiment inventory (full runs: pytest benchmarks/)")
    return 0


def _grid_spec_of(args):
    """Resolve --spec FILE / --profile NAME / --smoke to a GridSpec."""
    from repro.experiments.gridspec import PROFILES, GridSpec

    if getattr(args, "spec", None):
        return GridSpec.from_toml(args.spec)
    profile = args.profile or ("smoke" if args.smoke else None)
    if profile is None:
        raise SystemExit(
            "grid: select a sweep with --profile NAME, --spec FILE or --smoke"
        )
    return PROFILES[profile]


def _grid_store_of(args, spec):
    from pathlib import Path

    from repro.experiments.grid import GridStore

    if args.store:
        return GridStore(args.store)
    # default store path embeds the spec hash: an edited spec lands in a
    # fresh store instead of tripping the stale-cell check
    return GridStore(Path(".gridstore") / f"{spec.name}-{spec.spec_hash()}")


def _print_grid_summary(spec, records) -> None:
    from repro.experiments.aggregate import summarise

    rows = summarise(records)
    columns: list[str] = []
    for r in rows:
        for c in r:
            if c not in columns:
                columns.append(c)
    print_table(rows, columns,
                title=f"grid {spec.name} — {len(records)} cells,"
                      f" spec {spec.spec_hash()}")


def _cmd_grid(args) -> int:
    from repro.experiments.aggregate import (
        GridIncompleteError,
        grid_status,
        write_report,
    )
    from repro.experiments.grid import StaleStoreError, run_grid

    spec = _grid_spec_of(args)
    store = _grid_store_of(args, spec)
    try:
        if args.grid_command == "status":
            st = grid_status(spec, store)
            print(f"grid {st['name']} (spec {st['hash']}):"
                  f" {st['done']}/{st['total']} cells complete")
            for cell_id in st["missing"][:10]:
                print(f"  missing {cell_id}")
            if len(st["missing"]) > 10:
                print(f"  ... and {len(st['missing']) - 10} more")
            return 0

        if args.grid_command == "report":
            paths = write_report(spec, store, out_dir=args.out,
                                 allow_partial=args.partial)
            from repro.experiments.aggregate import collect_records

            records = collect_records(spec, store, allow_partial=True)
            _print_grid_summary(spec, records)
            for kind in ("report", "summary", "cells"):
                print(f"{kind}: {paths[kind]}")
            return 0

        # run
        total = len(spec.cells())
        done = [0]

        def progress(cell, record):
            done[0] += 1
            status = "ok" if record["ok"] else "FAIL"
            print(f"[{done[0]}/{total}] {cell.cell_id}: {status}")

        result = run_grid(spec, store=store, workers=args.workers,
                          progress=progress, telemetry=args.telemetry,
                          cell_timeout=args.cell_timeout)
        _print_grid_summary(spec, result.records)
        print(f"store: {store.root}  ({result.executed} executed,"
              f" {result.reused} reused)")
        if args.telemetry:
            print(f"telemetry: {store.telemetry_dir}"
                  f"  ({len(store.telemetry_ids())} cell sessions)")
        if not result.ok:
            for rec in result.failures:
                print(f"FAILED cell {rec['engine']}/{rec['family']}"
                      f"/n={rec['n']}/b={rec['b']}/churn={rec['churn']}"
                      f"/{rec['fault']}/seed={rec['seed']}")
            return 1
        print(f"all {total} cells ok")
        return 0
    except (StaleStoreError, GridIncompleteError) as exc:
        print(f"grid: {exc}")
        return 1


def _cmd_telemetry(args) -> int:
    from repro.telemetry.report import load_store_telemetry, write_telemetry_report

    spec = _grid_spec_of(args)
    store = _grid_store_of(args, spec)
    if args.telemetry_command == "report":
        cells = load_store_telemetry(store.root)
        if not cells:
            print(f"telemetry: no sessions under {store.telemetry_dir}"
                  " (run `grid run --telemetry` first)")
            return 1
        paths = write_telemetry_report(store.root, out_dir=args.out,
                                       title=spec.name, full=args.full)
        print(f"telemetry: {len(cells)} cell sessions")
        for kind in ("report", "summary"):
            print(f"{kind}: {paths[kind]}")
        if args.out is not None:
            for kind in ("out_report", "out_summary"):
                print(f"{kind}: {paths[kind]}")
        return 0
    raise AssertionError(args.telemetry_command)


def _cmd_campaign(args) -> int:
    from repro.experiments.campaign import CampaignConfig, run_campaign

    if args.smoke:
        # the chaos-smoke CI gate: one large adversarial sweep — loss up
        # to 30%, 5% crashes, one partition/heal cycle, 5% Byzantine
        config = CampaignConfig(
            n=args.n or 500,
            loss_rates=(0.05, 0.3),
            crash_fracs=(0.05,),
            partition=(True,),
            byzantine_fracs=(0.0, 0.05),
            seeds=tuple(range(args.seeds)),
        )
    else:
        config = CampaignConfig(
            n=args.n or 60,
            seeds=tuple(range(args.seeds)),
        )
    res = run_campaign(config, workers=args.workers)
    print_table(
        res.rows(),
        title=f"fault campaign (n={config.n}, {len(res.cells)} cells)",
    )
    print(f"worst degradation {res.worst_degradation():.3f}"
          f" (live-honest satisfaction vs fault-free matching)")
    if not res.ok:
        for cell in res.failures:
            detail = "; ".join(cell.violations[:3]) or (
                "did not terminate" if not cell.terminated
                else f"{cell.blocking_edges} blocking edges"
            )
            print(f"FAILED cell [{cell.label()}]: {detail}")
        return 1
    print("all cells terminated with zero invariant violations")
    return 0


def _cmd_conformance(args) -> int:
    from repro.testing import (
        conformance_sweep,
        load_repro,
        mutation_smoke,
        replay_repro,
    )
    from repro.testing.conformance import smoke_specs

    if args.replay:
        repro = load_repro(args.replay)
        reproduces, report = replay_repro(repro)
        print(f"repro: {repro.description or '(no description)'}")
        print(f"instance: n={repro.instance.n} m={repro.instance.m}"
              f" seed={repro.seed}"
              + (f" mutation={repro.mutation}" if repro.mutation else ""))
        print(f"recorded kinds: {list(repro.divergence_kinds)}")
        kinds = sorted({d.kind for d in report.divergences})
        print(f"replayed kinds: {kinds}")
        for d in report.divergences:
            print(f"  [{d.kind}] {d.left} vs {d.right}: {d.detail}")
        if not reproduces:
            print("REPLAY MISMATCH: recorded divergences did not reproduce")
            return 1
        print("replay reproduces the recorded outcome exactly")
        return 0

    max_n = args.max_n or (300 if args.smoke else 120)
    seeds = tuple(range(args.seeds))
    pipelines = None
    if args.truncation:
        if args.pipelines:
            print("conformance: --truncation and --pipelines are mutually"
                  " exclusive (the battery fixes its own pipeline set)")
            return 2
        # the k-differential battery behind the truncation-smoke CI job:
        # every truncated pipeline (each engine at k in {1, 3, inf}) on
        # top of the defaults, so per-k matchings are diffed across
        # engines and the kinf runs are pinned against converged outputs
        from repro.testing.conformance import (
            truncation_pipelines,
            truncation_smoke_specs,
        )

        specs = truncation_smoke_specs(seeds=seeds)
        pipelines = truncation_pipelines()
    else:
        specs = smoke_specs(max_n=max_n, seeds=seeds)
        if args.pipelines:
            from repro.testing.differential import PIPELINES

            pipelines = tuple(
                p.strip() for p in args.pipelines.split(",") if p.strip()
            )
            unknown = [p for p in pipelines if p not in PIPELINES]
            if unknown:
                print(f"unknown pipelines {unknown}; known: {sorted(PIPELINES)}")
                return 2
    sweep = (conformance_sweep(specs) if pipelines is None
             else conformance_sweep(specs, pipelines=pipelines))
    print_table(
        [c.row() for c in sweep.cells],
        title=f"conformance sweep — {len(sweep.cells)} cells,"
              f" {len(sweep.cells[0].report.runs)} pipelines each",
    )
    if args.truncation:
        # the battery plants only the round-cap mutation: the other
        # planted bugs are the default sweep's job
        smoke = mutation_smoke(mutations=("lid-truncation-off-by-one",),
                               out_dir=args.out)
    elif pipelines is None:
        smoke = mutation_smoke(out_dir=args.out)
    else:
        # a pipeline subset skips the mutation smoke: its planted bugs
        # target the full default pipeline set
        smoke = None
    if smoke is not None:
        rows = [
            {"mutation": o.mutation,
             "caught": "yes" if o.caught else "MISSED",
             "minimal": f"n={o.repro.instance.n} m={o.repro.instance.m}"
             if o.repro else "-",
             "kinds": ",".join(o.divergence_kinds) or "-"}
            for o in smoke.outcomes
        ]
        print_table(rows,
                    title="mutation smoke — every planted bug must be caught")
        if args.out:
            print(f"minimised repro files written to {args.out}")
    ok = sweep.ok and (smoke is None or smoke.ok)
    if not sweep.ok:
        for cell in sweep.failures:
            print(f"DIVERGENCE in cell [{cell.spec.label()}]:")
            for d in cell.report.divergences[:5]:
                print(f"  [{d.kind}] {d.left} vs {d.right}: {d.detail}")
    if smoke is not None and not smoke.ok:
        print(f"UNCAUGHT planted bugs: {', '.join(smoke.missed)}")
    if not ok:
        return 1
    print(f"all {len(sweep.cells)} cells agree across backends"
          + ("" if smoke is None
             else f"; all {len(smoke.outcomes)} planted bugs caught"))
    return 0


def _cmd_discover(args) -> int:
    from repro.overlay import build_preference_system, discover_knowledge_graph
    from repro.overlay.metrics import PrivateTasteMetric
    from repro.overlay.peer import generate_peers

    res = discover_knowledge_graph(args.n, rounds=args.rounds, seed=args.seed)
    peers = generate_peers(args.n, spawn_rng(args.seed, "cli-discover"))
    ps = build_preference_system(res.topology, peers, PrivateTasteMetric(seed=args.seed))
    result, _ = solve_lid(ps)
    print(f"discovery: {res.messages} gossip msgs,"
          f" mean knowledge {res.mean_knowledge:.1f} peers")
    print(f"matching: {result.matching.size()} connections,"
          f" satisfaction {result.matching.total_satisfaction(ps):.2f},"
          f" {result.metrics.total_sent} protocol msgs")
    return 0


def _cmd_churn(args) -> int:
    sc = build_scenario("geo_latency", args.n, seed=args.seed)
    overlay = DynamicOverlay(sc.topology, sc.peers, sc.metric, backend=args.backend)
    rng = spawn_rng(args.seed, "cli-churn")
    changes = 0
    reused = recomputed = 0
    for _ in range(args.events):
        if rng.random() < 0.5 and overlay.n > max(10, args.n // 3):
            stats = overlay.leave(int(rng.choice(overlay.active_ids())))
        else:
            ids = overlay.active_ids()
            k = min(int(rng.integers(2, 6)), len(ids))
            neigh = [int(x) for x in rng.choice(ids, size=k, replace=False)]
            _, stats = overlay.join(
                Peer(peer_id=-1, position=rng.uniform(0, 1, 2), quota=3), neigh
            )
        changes += stats.resolutions
        reused += stats.weights_reused
        recomputed += stats.weights_recomputed
    print(f"{args.events} churn events -> {overlay.n} peers alive,"
          f" {changes} connection changes,"
          f" satisfaction {overlay.total_satisfaction():.2f}")
    if args.backend == "fast" and reused + recomputed:
        print(f"weight cache: {reused} reused / {recomputed} recomputed"
              f" ({100.0 * reused / (reused + recomputed):.0f}% reuse)")
    return 0


def _cmd_serve(args) -> int:
    from repro.service import ServiceConfig, kill_and_resume_check, run_service

    smoke = args.smoke
    config = ServiceConfig(
        n=args.n if args.n is not None else (500 if smoke else 100),
        quota=args.quota,
        family=args.family,
        seed=args.seed,
        events=args.events if args.events is not None else 200,
        workload=args.workload,
        repair_budget=args.budget,
        on_budget=args.on_budget,
        checkpoint_every=args.checkpoint_every,
        differential_every=args.differential_every,
        warmstart_rounds=args.warmstart_rounds,
    )

    if smoke:
        # the service-smoke CI gate: run the trace uninterrupted, run it
        # again killed mid-flight and resumed from the last checkpoint,
        # and require (a) byte-identical deterministic reports, (b) all
        # differential conformance checks pass, (c) zero invariant
        # violations end to end
        out = kill_and_resume_check(config)
        rep = out["report"]
        print(f"service-smoke: n={config.n} events={config.events}"
              f" workload={config.workload} trace={rep['trace_fingerprint']}")
        print(f"kill-and-resume: killed at event {out['kill_after']},"
              f" identical={out['identical']}"
              + (f", mismatched fields: {out['mismatches']}"
                 if out["mismatches"] else ""))
        print(f"differential checks ok: {out['differential_ok']};"
              f" invariant violations: {out['guard_violations']};"
              f" final mode: {rep['final_mode']}")
        ok = (out["identical"] and out["differential_ok"]
              and out["guard_violations"] == 0)
        print("service-smoke PASS" if ok else "service-smoke FAIL")
        return 0 if ok else 1

    result = run_service(
        config,
        checkpoint_dir=args.checkpoint,
        resume=args.resume,
        kill_after=args.kill_after,
    )
    r = result.report
    print(f"service: {config.workload} x{r['trace_events']} events on"
          f" n={config.n} {config.family} (trace {r['trace_fingerprint']})")
    print(f"applied through event {r['applied_through']}"
          + (" (killed)" if not r["completed"] else "")
          + f"; {r['final_n']} peers alive, mode {r['final_mode']}")
    print(f"churn: {r['joins']} joins / {r['leaves']} leaves /"
          f" {r['crashes']} crashes / {r['updates']} updates"
          f" ({r['skipped']} skipped)")
    print(f"repair: {r['resolutions']} resolutions,"
          f" {r['truncated_repairs']} truncated,"
          f" {r['full_resolves']} full re-solves,"
          f" cache {r['weights_reused']} reused /"
          f" {r['weights_recomputed']} recomputed")
    print(f"rates: {r['events_per_s']:.1f} events/s,"
          f" mean repair {r['mean_repair_ms']:.2f} ms"
          + (f", incremental vs full x{r['speedup_vs_full_x']:.1f}"
             if r["speedup_vs_full_x"] else ""))
    if r["completed"]:
        print(f"conformance: blocking edges {r['blocking_edges']},"
              f" matches fresh solve: {r['matches_fresh_solve']},"
              f" differential ok: {r['differential_ok']};"
              f" satisfaction {r['sat_total']:.2f}")
    print(f"guards: {r['guard_violations']} violations,"
          f" {r['degraded_entries']} degraded entries")
    if args.checkpoint:
        print(f"checkpoints: {args.checkpoint}")
    return 0 if (r["differential_ok"] and r["guard_violations"] == 0) else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Overlays with preferences (IPDPS 2010) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("scenario", help="run LID on a named scenario")
    p.add_argument("name", choices=sorted(SCENARIOS))
    p.add_argument("--n", type=int, default=60)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--backend", choices=["reference", "fast", "sharded"],
                   default="reference",
                   help="LID execution path: event-by-event simulator, the"
                        " round-batched fast engine, or the partitioned"
                        " sharded engine (identical matchings)")
    p.add_argument("--shards", type=int, default=4,
                   help="partition width for --backend sharded")
    p.add_argument("--shard-workers", type=int, default=0,
                   help="multiprocessing workers for --backend sharded"
                        " (0 = serial in-process)")
    p.add_argument("--jit", action="store_true",
                   help="request the numba-compiled shard kernel (graceful"
                        " fallback with a warning when numba is absent)")
    p.add_argument("--max-rounds", type=int, default=None, metavar="K",
                   help="truncate the protocol after K delivery waves and"
                        " serve the feasible almost-stable partial matching"
                        " (identical across backends; default: run to"
                        " convergence)")
    p.set_defaults(fn=_cmd_scenario)

    p = sub.add_parser("compare", help="compare algorithms on a scenario")
    p.add_argument("name", choices=sorted(SCENARIOS))
    p.add_argument("--n", type=int, default=40)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--exact", action="store_true", help="also solve the MILP optimum")
    p.add_argument("--backend", choices=["reference", "fast", "sharded"],
                   default="reference",
                   help="execution backend for the LIC pipeline row")
    p.set_defaults(fn=_cmd_compare)

    p = sub.add_parser("experiment", help="quick version of a named experiment")
    p.add_argument("id", choices=["t1", "t2", "t4", "f4", "f6"])
    p.add_argument("--n", type=int, default=30)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_experiment)

    p = sub.add_parser("list", help="list the experiment inventory")
    p.set_defaults(fn=_cmd_list)

    p = sub.add_parser(
        "campaign",
        help="seeded fault campaign: loss x crash x partition x Byzantine",
    )
    p.add_argument("--n", type=int, default=None,
                   help="nodes per cell (default 60; 500 with --smoke)")
    p.add_argument("--seeds", type=int, default=2,
                   help="replications per fault configuration")
    p.add_argument("--smoke", action="store_true",
                   help="the chaos-smoke CI preset: one large adversarial"
                        " sweep, non-zero exit on any violation")
    p.add_argument("--workers", type=int, default=None,
                   help="evaluate fault cells in a process pool (the"
                        " campaign runs through the grid engine)")
    p.set_defaults(fn=_cmd_campaign)

    p = sub.add_parser(
        "grid",
        help="declarative parameter grids: resumable parallel sweeps"
             " with aggregation (engine x family x n x b x churn x fault)",
    )
    gsub = p.add_subparsers(dest="grid_command", required=True)
    from repro.experiments.gridspec import PROFILES

    def _grid_common(gp, with_run_flags=False):
        gp.add_argument("--profile", choices=sorted(PROFILES), default=None,
                        help="a built-in sweep profile")
        gp.add_argument("--spec", default=None, metavar="FILE",
                        help="a TOML grid-spec file (see docs/experiments.md)")
        gp.add_argument("--smoke", action="store_true",
                        help="shorthand for --profile smoke — the grid-smoke"
                             " CI merge gate; non-zero exit on any failing cell")
        gp.add_argument("--store", default=None, metavar="DIR",
                        help="result-store directory (default:"
                             " .gridstore/<name>-<spec-hash>)")
        if with_run_flags:
            gp.add_argument("--workers", type=int, default=None,
                            help="process-pool width for cell execution")
            gp.add_argument("--telemetry", action="store_true",
                            help="instrument executed cells (spans, convergence"
                                 " probes, resource profile) and persist one"
                                 " telemetry/<cell_id>.jsonl per cell")
            gp.add_argument("--cell-timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="hung-cell watchdog: kill a cell exceeding"
                                 " this wall-clock budget and retry it once;"
                                 " a second timeout records the cell as"
                                 " ok=false/error=timeout")
        gp.set_defaults(fn=_cmd_grid)

    _grid_common(gsub.add_parser(
        "run", help="execute every missing cell, reusing completed ones"),
        with_run_flags=True)
    _grid_common(gsub.add_parser(
        "status", help="completed vs missing cells of a store"))
    gp = gsub.add_parser(
        "report", help="aggregate a store into report.md / summary.csv")
    _grid_common(gp)
    gp.add_argument("--out", default=None, metavar="DIR",
                    help="also write grid_<name>_summary.csv /"
                         " grid_<name>_report.md into DIR (e.g."
                         " benchmarks/results)")
    gp.add_argument("--partial", action="store_true",
                    help="report over an incomplete store")

    p = sub.add_parser(
        "telemetry",
        help="render a grid store's telemetry sessions (spans, probes,"
             " resource profiles) into markdown/CSV",
    )
    tsub = p.add_subparsers(dest="telemetry_command", required=True)
    tp = tsub.add_parser(
        "report",
        help="telemetry_report.md / telemetry_summary.csv from a store's"
             " telemetry/*.jsonl (deterministic fields only)")
    tp.add_argument("--profile", choices=sorted(PROFILES), default=None,
                    help="a built-in sweep profile")
    tp.add_argument("--spec", default=None, metavar="FILE",
                    help="a TOML grid-spec file (see docs/experiments.md)")
    tp.add_argument("--smoke", action="store_true",
                    help="shorthand for --profile smoke")
    tp.add_argument("--store", default=None, metavar="DIR",
                    help="result-store directory (default:"
                         " .gridstore/<name>-<spec-hash>)")
    tp.add_argument("--out", default=None, metavar="DIR",
                    help="also copy the report/CSV into DIR under"
                         " telemetry_<name>_… names")
    tp.add_argument("--full", action="store_true",
                    help="append the machine-dependent appendix (span"
                         " timings, resource profiles) to the report")
    tp.set_defaults(fn=_cmd_telemetry)

    p = sub.add_parser(
        "conformance",
        help="differential sweep + oracle battery + mutation smoke",
    )
    p.add_argument("--smoke", action="store_true",
                   help="the conformance-smoke CI preset: sweep up to"
                        " n=300, plant every mutation, non-zero exit on"
                        " any divergence or uncaught bug")
    p.add_argument("--max-n", type=int, default=None,
                   help="largest sweep instance (default 120; 300 with"
                        " --smoke)")
    p.add_argument("--seeds", type=int, default=1,
                   help="replications per sweep cell")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="write minimised repro files for caught"
                        " mutations into DIR")
    p.add_argument("--replay", default=None, metavar="FILE",
                   help="re-run a conformance_repro JSON file and check"
                        " the recorded divergences reproduce")
    p.add_argument("--pipelines", default=None, metavar="A,B,...",
                   help="comma-separated pipeline subset to sweep (e.g."
                        " 'lic-reference,lid-sharded'); skips the mutation"
                        " smoke, whose planted bugs target the full set")
    p.add_argument("--truncation", action="store_true",
                   help="the truncation-smoke CI battery: run every"
                        " truncated pipeline (each engine at k in"
                        " {1, 3, inf}) on the k-differential grid, diff"
                        " matchings/blocking pairs per k across engines,"
                        " and plant the round-cap mutation")
    p.set_defaults(fn=_cmd_conformance)

    p = sub.add_parser("discover", help="gossip discovery -> ranking -> LID pipeline")
    p.add_argument("--n", type=int, default=60)
    p.add_argument("--rounds", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_discover)

    p = sub.add_parser(
        "serve",
        help="long-lived matching service: churn workload replay with"
             " budgeted incremental repair, crash-consistent checkpoints"
             " and runtime invariant guards",
    )
    from repro.experiments.gridspec import SERVICE_WORKLOADS

    p.add_argument("--n", type=int, default=None,
                   help="initial overlay size (default 100; 500 with --smoke)")
    p.add_argument("--events", type=int, default=None,
                   help="workload-trace length (default 200)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workload", choices=sorted(SERVICE_WORKLOADS),
                   default="poisson",
                   help="churn driver: memoryless mix, flash crowd,"
                        " diurnal cycle, or adversarial join/leave storms")
    p.add_argument("--quota", type=int, default=3,
                   help="per-peer connection quota b_i")
    p.add_argument("--family", choices=sorted(FAMILIES), default="geo",
                   help="initial-topology family")
    p.add_argument("--budget", type=int, default=None,
                   help="max blocking-edge resolutions per incremental"
                        " repair (default: unbounded, exact LIC fixpoint)")
    p.add_argument("--on-budget", choices=["resolve", "defer"],
                   default="resolve",
                   help="when a repair truncates: full re-solve (exact)"
                        " or serve the feasible truncated matching"
                        " (almost-stable)")
    p.add_argument("--warmstart-rounds", type=int, default=None, metavar="K",
                   help="warm-start every full re-solve from a K-round"
                        " truncated LID run; the served matching is"
                        " identical to a cold solve, only cheaper")
    p.add_argument("--differential-every", type=int, default=50,
                   help="conformance-check the served state against a"
                        " from-scratch solve every K events (0 = only at"
                        " the end)")
    p.add_argument("--checkpoint", default=None, metavar="DIR",
                   help="write crash-consistent versioned snapshots into"
                        " DIR (atomic, torn files ignored on restore)")
    p.add_argument("--checkpoint-every", type=int, default=25,
                   help="snapshot cadence in events")
    p.add_argument("--resume", action="store_true",
                   help="restore from the newest intact checkpoint in"
                        " --checkpoint DIR and replay the remaining events")
    p.add_argument("--kill-after", type=int, default=None, metavar="K",
                   help="stop abruptly after K events with no final"
                        " snapshot (simulates a crash; resume with"
                        " --resume)")
    p.add_argument("--smoke", action="store_true",
                   help="the service-smoke CI gate: kill-and-resume"
                        " bit-identity + zero invariant violations on a"
                        " n=500 trace; non-zero exit on failure")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("churn", help="churn session with incremental repair")
    p.add_argument("--n", type=int, default=50)
    p.add_argument("--events", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--backend", choices=["reference", "fast", "sharded"],
                   default="reference",
                   help="reference rebuilds weights per event; fast/sharded"
                        " use the incremental WeightCache")
    p.set_defaults(fn=_cmd_churn)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)
