"""Generic sweep runner: cartesian parameter grids → record lists.

Keeps benchmark files declarative: a bench defines a ``run(params) ->
dict`` function and a grid; the runner handles iteration, seeding
conventions and aggregation.
"""

from __future__ import annotations

import inspect
import itertools
import statistics
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Mapping, Optional, Sequence

__all__ = ["sweep", "aggregate"]


def _invoke(job: tuple[Callable[..., dict], dict]) -> dict:
    """Top-level call shim so jobs survive pickling to worker processes."""
    run, call = job
    return run(**call)


def _accepts_param(run: Callable[..., dict], name: str) -> bool:
    """Whether ``run`` can be called with keyword argument ``name``."""
    try:
        sig = inspect.signature(run)
    except (TypeError, ValueError):  # builtins, C callables — be permissive
        return True
    for p in sig.parameters.values():
        if p.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if p.name == name and p.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            return True
    return False


def sweep(
    run: Callable[..., dict],
    grid: Mapping[str, Sequence],
    repeats: int = 1,
    seed_param: str = "seed",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> list[dict]:
    """Run ``run(**params)`` over the cartesian product of ``grid``.

    With ``repeats > 1`` each grid point is repeated with
    ``seed_param`` set to ``0..repeats-1`` (combined with any existing
    seed values via simple offsetting).  Each record is annotated with
    its parameters.

    ``workers > 1`` evaluates the grid points in a process pool
    (``run`` must then be a picklable module-level function, the usual
    multiprocessing constraint).  Record order is identical to the
    sequential order either way, so seeded sweeps stay reproducible.

    ``backend`` selects the ``"reference"``/``"fast"`` execution path
    (validated via :func:`repro.core.backend.get_backend`): it is passed
    through to ``run`` when its signature accepts a ``backend`` keyword,
    and annotated on every record either way.
    """
    if backend is not None:
        from repro.core.backend import resolve_backend_name

        backend = resolve_backend_name(backend)
    inject_backend = backend is not None and _accepts_param(run, "backend")

    keys = list(grid)
    jobs: list[tuple[dict, dict]] = []  # (annotation, call kwargs)
    for values in itertools.product(*(grid[k] for k in keys)):
        params = dict(zip(keys, values))
        for rep in range(repeats):
            call = dict(params)
            out = {**params}
            if repeats > 1:
                call[seed_param] = call.get(seed_param, 0) * repeats + rep
                out["rep"] = rep
            if backend is not None:
                out["backend"] = backend
                if inject_backend:
                    call.setdefault("backend", backend)
            jobs.append((out, call))

    if workers is not None and workers > 1 and len(jobs) > 1:
        # Batch jobs per worker round-trip: the default chunksize of 1
        # pays one pickle/IPC exchange per grid point, which dominates
        # for large sweeps of cheap runs.  ~4 chunks per worker keeps
        # load balancing while amortising the overhead.
        chunksize = max(1, len(jobs) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(
                pool.map(
                    _invoke,
                    [(run, call) for _, call in jobs],
                    chunksize=chunksize,
                )
            )
    else:
        results = [run(**call) for _, call in jobs]

    records = []
    for (out, _call), rec in zip(jobs, results):
        merged = dict(out)
        merged.update(rec)
        records.append(merged)
    return records


def aggregate(
    records: Iterable[Mapping],
    group_by: Sequence[str],
    fields: Sequence[str],
    reducers: Mapping[str, Callable[[list], float]] | None = None,
) -> list[dict]:
    """Group records and reduce numeric fields (mean by default).

    ``reducers`` may map a field to e.g. ``min``/``max``/``statistics.stdev``.
    Boolean fields aggregate to the fraction of ``True``.  A reducer
    that needs at least two data points (``statistics.stdev`` on a
    single-record group) yields ``None`` for that field rather than
    raising, so sparse sweeps still aggregate.
    """
    reducers = dict(reducers or {})
    groups: dict[tuple, list[Mapping]] = {}
    for rec in records:
        # .get: records written before a coordinate existed (e.g. a
        # store predating the max_rounds axis) group under None
        key = tuple(rec.get(g) for g in group_by)
        groups.setdefault(key, []).append(rec)
    out = []
    for key, recs in groups.items():
        row = dict(zip(group_by, key))
        row["count"] = len(recs)
        for f in fields:
            vals = [r[f] for r in recs if f in r]
            if not vals:
                continue
            if all(isinstance(v, bool) for v in vals):
                row[f] = sum(vals) / len(vals)
            else:
                reducer = reducers.get(f, statistics.fmean)
                try:
                    row[f] = reducer([float(v) for v in vals])
                except statistics.StatisticsError:
                    row[f] = None
        out.append(row)
    return out
