"""Resumable parallel execution of declarative parameter grids.

The execution layer behind ``python -m repro grid``: expand a
:class:`~repro.experiments.gridspec.GridSpec` into cells, run each cell
through its engine, and persist one JSON record per completed cell in a
content-addressed on-disk store, so a killed run restarts exactly where
it stopped.

Store layout (all JSON canonicalised with sorted keys)::

    <store>/
      spec.json             # {"version", "name", "hash", "spec": {...}}
      cells/<cell_id>.json  # one flat record per completed cell

``spec.json`` pins the spec hash the store was created for.  Opening a
store whose recorded hash differs from the spec being run raises
:class:`StaleStoreError` — stale cells are never silently reused; the
default CLI store path embeds the hash, so edited specs land in fresh
stores automatically.

Every record is ``cell coordinates + engine metrics + "ok"``.  All
metric fields are deterministic functions of the cell coordinates
except machine-dependent ones, which by convention carry a reserved
suffix (``_ms``/``_kb``/``_per_s``/``_x``) or are listed in
``aggregate.NONCANONICAL_FIELDS`` (the watchdog's ``retries``) and are
excluded from the canonical aggregate (so an interrupted-and-resumed
run reports byte-identically to an uninterrupted one — asserted in
``tests/experiments/test_grid.py``).
"""

from __future__ import annotations

import json
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Optional

from repro.core.backend import get_backend
from repro.experiments.gridspec import (
    LID_ENGINES,
    FaultSpec,
    GridCell,
    GridSpec,
    engine_backend,
)
from repro.experiments.instances import (
    family_instance,
    random_preference_instance,
    topology_for_family,
)
from repro.telemetry.probes import ConvergenceProbe
from repro.telemetry.resources import ResourceSampler
from repro.telemetry.sink import read_jsonl, session_records, write_jsonl
from repro.telemetry.spans import NULL, Telemetry
from repro.utils.rng import spawn_rng

__all__ = [
    "CellTimeout",
    "GridRunResult",
    "GridStore",
    "StaleStoreError",
    "run_grid",
    "run_grid_cell",
]

STORE_VERSION = 1


class StaleStoreError(RuntimeError):
    """A result store keyed by a different spec hash was reused."""


class CellTimeout(RuntimeError):
    """A cell exceeded the per-cell wall-clock budget (picklable)."""


# ---------------------------------------------------------------------
# result store
# ---------------------------------------------------------------------


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text)
    tmp.replace(path)


class GridStore:
    """One-JSON-per-cell result store, content-addressed by spec hash."""

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        self.cells_dir = self.root / "cells"

    @property
    def spec_path(self) -> Path:
        return self.root / "spec.json"

    def prepare(self, spec: GridSpec) -> None:
        """Create or verify the store for ``spec``.

        Raises :class:`StaleStoreError` when the store already holds
        cells of a different spec (changed hash, or cells with no
        recorded spec at all) — completed work is only ever reused for
        the byte-identical spec.
        """
        self.cells_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": STORE_VERSION,
            "name": spec.name,
            "hash": spec.spec_hash(),
            "spec": spec.to_mapping(),
        }
        if self.spec_path.exists():
            existing = json.loads(self.spec_path.read_text())
            if existing.get("hash") != payload["hash"]:
                raise StaleStoreError(
                    f"store {self.root} holds results for spec"
                    f" {existing.get('name')!r} hash {existing.get('hash')},"
                    f" but the current spec {spec.name!r} hashes to"
                    f" {payload['hash']}: refusing to reuse stale cells"
                    " (point --store at a fresh directory)"
                )
            return
        if self.done_ids():
            raise StaleStoreError(
                f"store {self.root} has cell files but no spec.json:"
                " cannot establish which spec produced them"
            )
        _atomic_write(self.spec_path,
                      json.dumps(payload, sort_keys=True, indent=1) + "\n")

    def spec_mapping(self) -> dict:
        """The stored spec payload (raises if the store is unprepared)."""
        return json.loads(self.spec_path.read_text())

    def done_ids(self) -> set[str]:
        if not self.cells_dir.is_dir():
            return set()
        return {p.stem for p in self.cells_dir.glob("*.json")}

    def save(self, cell_id: str, record: dict) -> None:
        _atomic_write(self.cells_dir / f"{cell_id}.json",
                      json.dumps(record, sort_keys=True) + "\n")

    def load(self, cell_id: str) -> dict:
        return json.loads((self.cells_dir / f"{cell_id}.json").read_text())

    # -- per-cell telemetry (one JSONL per executed cell) --------------

    @property
    def telemetry_dir(self) -> Path:
        return self.root / "telemetry"

    def telemetry_ids(self) -> set[str]:
        if not self.telemetry_dir.is_dir():
            return set()
        return {p.stem for p in self.telemetry_dir.glob("*.jsonl")}

    def save_telemetry(self, cell_id: str, records: list[dict]) -> None:
        """Persist a cell's telemetry session (atomic, canonical JSONL)."""
        write_jsonl(self.telemetry_dir / f"{cell_id}.jsonl", records)

    def load_telemetry(self, cell_id: str) -> list[dict]:
        return read_jsonl(self.telemetry_dir / f"{cell_id}.jsonl")


# ---------------------------------------------------------------------
# per-cell engines
# ---------------------------------------------------------------------


def _instance(spec: GridSpec, cell: GridCell):
    """The cell's preference instance — engine-independent by design.

    Seeding never involves the engine axis, so every engine of a grid
    sees bit-identical instances and rows are directly comparable.
    """
    if spec.density is not None:
        return random_preference_instance(cell.n, spec.density, cell.b,
                                          seed=cell.seed)
    if spec.degree is not None:
        return random_preference_instance(cell.n, spec.degree / cell.n, cell.b,
                                          seed=cell.seed)
    return family_instance(cell.family, cell.n, cell.b, seed=cell.seed)


def _sat_stats(ps, matching) -> dict:
    v = matching.satisfaction_vector(ps)
    return {
        "edges": int(matching.size()),
        "sat_total": float(v.sum()),
        "sat_mean": float(v.mean()),
        "sat_min": float(v.min()),
    }


def _ratio_fields(ps) -> dict:
    from repro.experiments.ratios import satisfaction_ratio_record

    rec = satisfaction_ratio_record(ps)
    rec.pop("n", None)  # already a cell coordinate
    return {k: (float(v) if isinstance(v, float) else v) for k, v in rec.items()}


def _run_static(spec: GridSpec, cell: GridCell, tel=NULL, probe=None) -> dict:
    ps = _instance(spec, cell)
    backend = get_backend(engine_backend(cell.engine))
    record: dict = {"m": int(ps.m)}

    if cell.engine in LID_ENGINES:
        wt = backend.build_weights(ps)
        t0 = time.perf_counter()
        res = backend.lid(wt, list(ps.quotas), telemetry=tel, probe=probe)
        record["lid_ms"] = 1e3 * (time.perf_counter() - t0)
        matching = res.matching
        record["messages"] = int(res.metrics.total_sent)
        record["rounds"] = int(res.rounds)
        record["events"] = int(res.metrics.events)
        record["msgs_per_edge"] = float(res.metrics.total_sent / max(ps.m, 1))
        record.update(res.metrics.kind_counters())
        if cell.engine == "lid-sharded":
            # sharded observables are deterministic for the fixed default
            # configuration (shards=4, serial executor): shard skew is
            # the processed-delivery imbalance telemetry reports surface
            record["shards"] = int(res.shards)
            record["cut_messages"] = int(res.cut_messages)
            per_shard = [s["processed"] for s in res.shard_stats]
            record["shard_skew"] = int(max(per_shard) - min(per_shard))
        if spec.verify:
            record["lid_equals_lic"] = (
                matching.edge_set() == backend.lic(wt, list(ps.quotas)).edge_set()
            )
    else:
        t0 = time.perf_counter()
        with tel.span("solve"):
            matching = backend.solve(ps)
        record["lic_ms"] = 1e3 * (time.perf_counter() - t0)

    record.update(_sat_stats(ps, matching))
    try:
        matching.validate(ps)
        record["valid"] = True
    except Exception:
        record["valid"] = False
    if spec.measure_ratio:
        record.update(_ratio_fields(ps))
    record["ok"] = bool(
        record["valid"]
        and record.get("lid_equals_lic", True)
        and record.get("bound_ok", True)
    )
    return record


def _run_truncated(spec: GridSpec, cell: GridCell, tel=NULL, probe=None) -> dict:
    """The ``lid-truncated`` engine: quality-vs-k under a round budget.

    Runs the round-capped LID pipeline (fast backend — the truncated
    matching is engine-invariant under the shared contract of
    :mod:`repro.core.truncation`) and records the almost-stability
    observables: both blocking-pair counts (rank-based and eq.-9
    weighted), the satisfaction ratio against the converged (LIC)
    baseline, and the truncation accounting itself.  A cell is healthy
    when the matching validates and — on converged cells — the weighted
    blocking-pair count is exactly ``0`` and the ratio exactly ``1.0``
    (the LIC-fixpoint invariants of the truncation contract).
    """
    from repro.core.lid import solve_lid

    ps = _instance(spec, cell)
    t0 = time.perf_counter()
    res, _wt = solve_lid(ps, seed=cell.seed, backend=engine_backend(cell.engine),
                         max_rounds=cell.max_rounds, telemetry=tel, probe=probe)
    trunc = res.truncation
    record: dict = {
        "m": int(ps.m),
        "lid_ms": 1e3 * (time.perf_counter() - t0),
        "messages": int(res.metrics.total_sent),
        "rounds": int(trunc.rounds),
        "converged": bool(trunc.converged),
        "released_locks": int(trunc.released_locks),
        "blocking_pairs": int(trunc.blocking_pairs),
        "weighted_blocking_pairs": int(trunc.weighted_blocking_pairs),
        "satisfaction": float(trunc.satisfaction),
        "satisfaction_ratio": float(trunc.satisfaction_ratio),
    }
    matching = res.matching
    record.update(_sat_stats(ps, matching))
    try:
        matching.validate(ps)
        record["valid"] = True
    except Exception:
        record["valid"] = False
    fixpoint_ok = (
        not trunc.converged
        or (trunc.weighted_blocking_pairs == 0
            and trunc.satisfaction_ratio == 1.0)
    )
    record["ok"] = bool(record["valid"] and fixpoint_ok)
    return record


def _run_churn(spec: GridSpec, cell: GridCell, tel=NULL) -> dict:
    from repro.overlay import DynamicOverlay
    from repro.overlay.metrics import PrivateTasteMetric
    from repro.overlay.peer import Peer, generate_peers

    with tel.span("build_overlay"):
        rng = spawn_rng(cell.seed, "grid-churn", cell.family, str(cell.n),
                        str(cell.b))
        topo = topology_for_family(cell.family, cell.n, rng)
        peers = generate_peers(cell.n, rng, quota_range=(cell.b, cell.b))
        overlay = DynamicOverlay(topo, peers, PrivateTasteMetric(seed=cell.seed),
                                 backend=engine_backend(cell.engine))
    changes = reused = recomputed = 0
    t0 = time.perf_counter()
    with tel.span("churn_loop"):
        for _ in range(cell.churn):
            if rng.random() < 0.5 and overlay.n > max(10, cell.n // 3):
                stats = overlay.leave(int(rng.choice(overlay.active_ids())))
            else:
                ids = overlay.active_ids()
                k = min(int(rng.integers(2, 6)), len(ids))
                neigh = [int(x) for x in rng.choice(ids, size=k, replace=False)]
                _, stats = overlay.join(
                    Peer(peer_id=-1, position=rng.uniform(0, 1, 2),
                         quota=cell.b),
                    neigh,
                )
            changes += stats.resolutions
            reused += stats.weights_reused
            recomputed += stats.weights_recomputed
    wall = time.perf_counter() - t0
    return {
        "alive": int(overlay.n),
        "changes": int(changes),
        "sat_total": float(overlay.total_satisfaction()),
        "weights_reused": int(reused),
        "weights_recomputed": int(recomputed),
        "churn_ms": 1e3 * wall,
        "ok": True,
    }


def _run_service(spec: GridSpec, cell: GridCell, tel=NULL) -> dict:
    """The long-lived ``lid-service`` engine: replay a churn workload.

    ``cell.churn`` is the trace length; workload shape, repair budget
    and differential-check cadence come from the spec's ``service_*``
    knobs.  A cell is healthy when the trace completes and every
    sampled differential check conforms (exactly, or within the
    documented truncation-debt bound in deferred-budget setups).
    """
    from repro.service import ServiceConfig, run_service

    config = ServiceConfig(
        n=cell.n,
        quota=cell.b,
        family=cell.family,
        seed=cell.seed,
        events=cell.churn,
        workload=spec.service_workload,
        backend=engine_backend(cell.engine),
        repair_budget=spec.service_budget,
        differential_every=spec.service_differential_every,
    )
    record = dict(run_service(config, telemetry=tel).report)
    # the cell coordinates already carry these
    for dup in ("engine", "family", "seed", "quota", "n0"):
        record.pop(dup, None)
    record["ok"] = bool(record["completed"] and record["differential_ok"])
    return record


def _run_resilient(spec: GridSpec, cell: GridCell, tel=NULL,
                   probe=None) -> dict:
    from repro.distsim.metrics import SimMetrics
    from repro.distsim.reliable import BackoffPolicy
    from repro.experiments.campaign import CampaignConfig
    from repro.experiments.campaign import run_cell as run_fault_cell

    fault = FaultSpec.parse(cell.fault)
    config = CampaignConfig(
        n=cell.n,
        density=spec.density if spec.density is not None else 0.15,
        quota=cell.b,
        loss_rates=(fault.loss,),
        crash_fracs=(fault.crash,),
        partition=(fault.partition,),
        byzantine_fracs=(fault.byzantine,),
        seeds=(cell.seed,),
        heartbeat_interval=spec.heartbeat_interval,
        suspect_after=spec.suspect_after,
        partition_start=spec.partition_start,
        backoff=BackoffPolicy(*spec.backoff) if spec.backoff else BackoffPolicy(),
    )
    metrics_out: dict = {}
    t0 = time.perf_counter()
    cc = run_fault_cell(config, fault.loss, fault.crash, fault.partition,
                        fault.byzantine, cell.seed,
                        telemetry=tel if tel is not NULL else None,
                        probe=probe, metrics_out=metrics_out)
    wall = time.perf_counter() - t0
    record = asdict(cc)
    # the coordinates already carry the fault model and seed
    for coord in ("loss", "crash_frac", "partitioned", "byzantine_frac", "seed"):
        record.pop(coord)
    record["satisfaction"] = float(record["satisfaction"])
    record["baseline_satisfaction"] = float(record["baseline_satisfaction"])
    record["degradation"] = float(cc.degradation)
    record["resilient_ms"] = 1e3 * wall
    record["ok"] = bool(cc.ok)
    sim_metrics = SimMetrics.from_dict(metrics_out)
    record.update(sim_metrics.kind_counters())
    record["dropped"] = sim_metrics.dropped
    record["duplicates_suppressed"] = sim_metrics.duplicates_suppressed
    record["max_depth"] = sim_metrics.max_depth
    return record


def _jsonable(value):
    """Coerce numpy scalars/containers so records survive the JSON store."""
    import numpy as np

    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    return value


def run_grid_cell(spec: GridSpec, cell: GridCell,
                  telemetry: bool = False) -> dict:
    """Run one cell and return its flat record (coordinates + metrics).

    With ``telemetry=True`` the cell runs instrumented — nested spans
    (``cell`` wrapping the engine's ``build_weights`` / ``sim_loop`` /
    ``extract``), a per-round convergence probe on protocol engines and
    a resource profile — and the session's JSONL records travel back
    under the transient ``"_telemetry"`` key (popped by the grid driver
    before the record is persisted; the deterministic record fields
    themselves are identical with telemetry on or off).
    """
    tel = Telemetry() if telemetry else NULL
    probe = ConvergenceProbe() if telemetry else None
    sampler = ResourceSampler().start() if telemetry else None
    with tel.span("cell"):
        if cell.engine == "resilient":
            metrics = _run_resilient(spec, cell, tel=tel, probe=probe)
        elif cell.engine == "lid-service":
            metrics = _run_service(spec, cell, tel=tel)
        elif cell.engine == "lid-truncated":
            metrics = _run_truncated(spec, cell, tel=tel, probe=probe)
        elif cell.churn:
            metrics = _run_churn(spec, cell, tel=tel)
        else:
            metrics = _run_static(spec, cell, tel=tel, probe=probe)
    record = _jsonable({**cell.coords(), **metrics})
    if telemetry:
        sampler.stop()
        record["_telemetry"] = session_records(
            {"cell": cell.cell_id, **record},
            spans=tel.records(),
            probes=probe.samples,
            resources=sampler.profile(events=record.get("events"),
                                      edges=record.get("m")),
        )
    return record


def _cell_job(
    spec: GridSpec,
    cell: GridCell,
    telemetry: bool = False,
    timeout: Optional[float] = None,
) -> dict:
    """Module-level shim so cells survive pickling to worker processes.

    With a ``timeout`` the cell runs under a worker-side wall-clock
    watchdog: ``SIGALRM``/``setitimer`` interrupts a hung cell and
    raises the picklable :class:`CellTimeout` back to the driver.  The
    alarm needs a main-thread POSIX process — elsewhere (Windows,
    worker threads) the watchdog degrades to an unguarded run rather
    than failing.
    """
    import signal
    import threading

    if (
        timeout is None
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return run_grid_cell(spec, cell, telemetry=telemetry)

    def _alarm(signum, frame):
        raise CellTimeout(
            f"cell {cell.cell_id} exceeded its {timeout:g}s budget"
        )

    old_handler = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return run_grid_cell(spec, cell, telemetry=telemetry)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old_handler)


def _timeout_record(cell: GridCell, retries: int, exc: CellTimeout) -> dict:
    """The persisted record for a cell that timed out twice."""
    return {
        **cell.coords(),
        "ok": False,
        "error": "timeout",
        "error_detail": str(exc),
        "retries": retries,
    }


def _pool_init() -> None:
    """Worker initializer: pay one-time costs once per process, not per cell.

    Spawn-safe (module-level, argument-free, import side effects only):
    compiles the sharded engine's numba wave kernel when numba is
    installed, so a grid over ``lid-sharded`` cells compiles once per
    worker instead of once per cell.  A no-op (microseconds) without
    numba.
    """
    from repro.core.sharded_lid import warm_jit_kernels

    warm_jit_kernels()


# ---------------------------------------------------------------------
# grid driver
# ---------------------------------------------------------------------


@dataclass
class GridRunResult:
    """All records of a grid run, in deterministic cell order."""

    spec: GridSpec
    records: list[dict]
    executed: int
    reused: int

    @property
    def ok(self) -> bool:
        return all(r["ok"] for r in self.records)

    @property
    def failures(self) -> list[dict]:
        return [r for r in self.records if not r["ok"]]


def run_grid(
    spec: GridSpec,
    store: "GridStore | str | Path | None" = None,
    workers: Optional[int] = None,
    progress: Optional[Callable[[GridCell, dict], None]] = None,
    telemetry: bool = False,
    cell_timeout: Optional[float] = None,
) -> GridRunResult:
    """Run every missing cell of ``spec``; reuse completed ones.

    Without a ``store`` the grid runs ephemerally in memory.  With one,
    each finished cell is persisted immediately (atomic rename), so a
    killed run loses at most the cells in flight; re-running the same
    spec completes only the gap.  ``workers > 1`` evaluates pending
    cells in a process pool; record order is the deterministic
    :meth:`~repro.experiments.gridspec.GridSpec.cells` order either way.

    ``progress`` receives ``(cell, record)`` for each *newly executed*
    cell as it completes (completion order, not cell order).

    ``telemetry=True`` instruments each executed cell (spans, probes,
    resource profile) and persists one ``telemetry/<cell_id>.jsonl``
    per cell next to its record.  Telemetry is a per-execution session:
    cells reused from a previous run keep whatever telemetry (if any)
    that run wrote.  The cell records themselves are unaffected — the
    spec hash, and therefore store identity, does not depend on it.

    ``cell_timeout`` (seconds) arms a per-cell hung-cell watchdog: a
    cell that exceeds the budget is killed by an in-worker alarm and
    retried exactly once; a second timeout persists an ``ok=False``
    record with ``error="timeout"``.  Executed cells record how many
    retries they needed under ``"retries"`` — a scheduling observable,
    excluded from the canonical aggregate like all non-metric fields.
    """
    if cell_timeout is not None and cell_timeout <= 0:
        raise ValueError(f"cell_timeout must be positive, got {cell_timeout}")
    if store is not None and not isinstance(store, GridStore):
        store = GridStore(store)
    if store is not None:
        store.prepare(spec)

    cells = spec.cells()
    done = store.done_ids() if store is not None else set()
    pending = [c for c in cells if c.cell_id not in done]

    by_id: dict[str, dict] = {}
    if store is not None:
        for cell in cells:
            if cell.cell_id in done:
                by_id[cell.cell_id] = store.load(cell.cell_id)

    def finish(cell: GridCell, record: dict) -> None:
        session = record.pop("_telemetry", None)
        by_id[cell.cell_id] = record
        if store is not None:
            store.save(cell.cell_id, record)
            if session is not None:
                store.save_telemetry(cell.cell_id, session)
        if progress is not None:
            progress(cell, record)

    if workers is not None and workers > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=workers,
                                 initializer=_pool_init) as pool:
            futures = {pool.submit(_cell_job, spec, c, telemetry, cell_timeout):
                       (c, 0) for c in pending}
            while futures:
                ready, _ = wait(futures, return_when=FIRST_COMPLETED)
                for fut in ready:
                    cell, attempts = futures.pop(fut)
                    try:
                        record = fut.result()
                    except CellTimeout as exc:
                        if attempts >= 1:
                            finish(cell, _timeout_record(cell, attempts, exc))
                        else:
                            retry = pool.submit(_cell_job, spec, cell,
                                                telemetry, cell_timeout)
                            futures[retry] = (cell, attempts + 1)
                        continue
                    record["retries"] = attempts
                    finish(cell, record)
    else:
        for cell in pending:
            attempts = 0
            while True:
                try:
                    record = _cell_job(spec, cell, telemetry, cell_timeout)
                except CellTimeout as exc:
                    if attempts >= 1:
                        finish(cell, _timeout_record(cell, attempts, exc))
                        break
                    attempts += 1
                    continue
                record["retries"] = attempts
                finish(cell, record)
                break

    records = [by_id[c.cell_id] for c in cells]
    return GridRunResult(spec=spec, records=records,
                         executed=len(pending), reused=len(cells) - len(pending))
