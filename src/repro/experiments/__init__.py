"""Experiment harness: instances, sweeps, ratios, reporting.

The benchmark files under ``benchmarks/`` are thin: they time the
algorithms with pytest-benchmark and delegate instance generation,
metric computation and table printing to this package so results stay
consistent between tests, benches and EXPERIMENTS.md.
"""

from repro.experiments.aggregate import (
    GridIncompleteError,
    collect_records,
    grid_status,
    render_report,
    summarise,
    write_report,
)
from repro.experiments.campaign import (
    CampaignCell,
    CampaignConfig,
    CampaignResult,
    effective_blocking_edges,
    run_campaign,
    run_cell,
)
from repro.experiments.grid import (
    GridRunResult,
    GridStore,
    StaleStoreError,
    run_grid,
    run_grid_cell,
)
from repro.experiments.gridspec import (
    ENGINES,
    PROFILES,
    FaultSpec,
    GridCell,
    GridSpec,
    engine_backend,
    load_spec,
)
from repro.experiments.instances import (
    FAMILIES,
    cyclic_roommates,
    family_instance,
    random_preference_instance,
    random_weighted_instance,
    topology_for_family,
)
from repro.experiments.ratios import satisfaction_ratio_record, weight_ratio_record
from repro.experiments.registry import EXPERIMENTS, Experiment, get_experiment
from repro.experiments.reporting import format_table, print_table, write_csv
from repro.experiments.runner import aggregate, sweep

__all__ = [
    "ENGINES",
    "PROFILES",
    "FaultSpec",
    "GridCell",
    "GridIncompleteError",
    "GridRunResult",
    "GridSpec",
    "GridStore",
    "StaleStoreError",
    "collect_records",
    "engine_backend",
    "grid_status",
    "load_spec",
    "render_report",
    "run_grid",
    "run_grid_cell",
    "summarise",
    "write_report",
    "CampaignCell",
    "CampaignConfig",
    "CampaignResult",
    "effective_blocking_edges",
    "run_campaign",
    "run_cell",
    "FAMILIES",
    "cyclic_roommates",
    "family_instance",
    "random_preference_instance",
    "random_weighted_instance",
    "topology_for_family",
    "satisfaction_ratio_record",
    "EXPERIMENTS",
    "Experiment",
    "get_experiment",
    "weight_ratio_record",
    "format_table",
    "print_table",
    "write_csv",
    "aggregate",
    "sweep",
]
