"""Declarative parameter-grid specifications for campaign-scale sweeps.

Every empirical claim in the repo — the Theorem 1/3 approximation
bounds, LID's message complexity, satisfaction under churn and faults —
is a point in an ``engine × graph family × n × b × churn × fault model
× seed`` grid.  A :class:`GridSpec` names one such grid declaratively
(as a frozen dataclass, or loaded from TOML) and is the unit of
content-addressing for the resumable result store in
:mod:`repro.experiments.grid`: the spec's canonical-JSON SHA-256 prefix
keys the on-disk store, so two runs of the same spec share completed
cells and a *changed* spec can never silently reuse stale ones.

Axes
----

- ``engines`` — which pipeline executes the cell: ``lic-reference`` /
  ``lic-fast`` (centralised Algorithm 2 on either backend),
  ``lid-reference`` / ``lid-fast`` (distributed Algorithm 1, simulator
  or round-batched engine) or ``resilient`` (the fault-tolerant
  runtime).  The *instance* of a cell is seeded independently of the
  engine axis, so engines are compared on identical inputs.
- ``families`` — named topology families (:data:`FAMILIES`).
- ``sizes`` / ``quotas`` — overlay size ``n`` and per-node quota ``b``.
- ``churn`` — number of join/leave events applied to a dynamic overlay
  (``0`` = static instance).
- ``faults`` — fault-model strings in a tiny DSL
  (:meth:`FaultSpec.parse`): ``"none"``, ``"loss=0.1"``,
  ``"loss=0.3+crash=0.05+partition+byz=0.1"`` …
- ``seeds`` — replications; the seed is the root of every cell RNG.
- ``max_rounds`` — LID round budgets swept by the ``lid-truncated``
  engine (the quality-vs-k curve of the shared truncation contract in
  :mod:`repro.core.truncation`); other engines skip the axis.

Not every coordinate combination is meaningful; :meth:`GridSpec.cells`
expands only the *compatible* subset under the documented rules:
faults run exclusively on the ``resilient`` engine (and the resilient
engine only on the ``er`` family, matching the fault campaign's
instance model), and churn runs exclusively on the churn-consuming
engines — the incremental-repair ``lic-*`` pipelines and the
long-lived ``lid-service`` (for which the churn count is the workload
trace length, so it requires churn > 0).
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Mapping, Optional

from repro.experiments.instances import FAMILIES

__all__ = [
    "CHURN_ENGINES",
    "ENGINES",
    "FaultSpec",
    "GridCell",
    "GridSpec",
    "PROFILES",
    "SERVICE_WORKLOADS",
    "engine_backend",
    "load_spec",
]

ENGINES = (
    "lic-reference",
    "lic-fast",
    "lid-reference",
    "lid-fast",
    "lid-sharded",
    "lid-service",
    "lid-truncated",
    "resilient",
)

#: engines that run the centralised (weights → LIC) pipeline
LIC_ENGINES = ("lic-reference", "lic-fast")
#: engines that run the distributed LID protocol
LID_ENGINES = ("lid-reference", "lid-fast", "lid-sharded")
#: engines that consume the churn axis (event-count interpretation)
CHURN_ENGINES = LIC_ENGINES + ("lid-service",)

#: workloads the lid-service engine accepts (mirrors
#: ``repro.service.events.WORKLOADS``; kept literal here so spec
#: validation never imports the service package — asserted equal in
#: tests/experiments/test_gridspec.py)
SERVICE_WORKLOADS = ("poisson", "flash", "diurnal", "storm")


def engine_backend(engine: str) -> str:
    """The ``reference``/``fast``/``sharded`` backend behind an engine name."""
    if engine == "resilient":
        return "reference"
    if engine == "lid-service":
        # the long-lived service defaults to the cached fast pipeline
        return "fast"
    if engine == "lid-truncated":
        # the truncated matching is engine-invariant (the shared
        # contract of repro.core.truncation), so the grid measures the
        # quality-vs-k curve on the cheapest engine
        return "fast"
    return engine.split("-", 1)[1]


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault model: loss × crash × partition × Byzantine.

    The string DSL keeps grid specs declarative (and TOML-friendly):
    ``"none"`` is the clean model; otherwise ``+``-joined terms, each
    either ``partition`` or ``key=value`` with ``key`` one of ``loss``
    (message-drop probability), ``crash`` (crashed fraction) and
    ``byz`` (Byzantine fraction).
    """

    loss: float = 0.0
    crash: float = 0.0
    partition: bool = False
    byzantine: float = 0.0

    def __post_init__(self):
        if not (0.0 <= self.loss < 1.0):
            raise ValueError(f"loss rate {self.loss} outside [0, 1)")
        if not (0.0 <= self.crash <= 1.0):
            raise ValueError(f"crash fraction {self.crash} outside [0, 1]")
        if not (0.0 <= self.byzantine <= 0.5):
            raise ValueError(f"byzantine fraction {self.byzantine} outside [0, 0.5]")

    @property
    def is_clean(self) -> bool:
        return not (self.loss or self.crash or self.partition or self.byzantine)

    def label(self) -> str:
        """Canonical DSL string (fixed term order, shortest round-trip
        float ``repr`` so ``parse(label())`` restores exact values)."""
        if self.is_clean:
            return "none"
        parts = []
        if self.loss:
            parts.append(f"loss={self.loss!r}")
        if self.crash:
            parts.append(f"crash={self.crash!r}")
        if self.partition:
            parts.append("partition")
        if self.byzantine:
            parts.append(f"byz={self.byzantine!r}")
        return "+".join(parts)

    @staticmethod
    def parse(text: str) -> "FaultSpec":
        """Parse the DSL; raises ``ValueError`` on unknown terms."""
        text = text.strip().lower()
        if text in ("", "none", "clean"):
            return FaultSpec()
        kwargs: dict = {}
        for term in text.split("+"):
            term = term.strip()
            if term == "partition":
                kwargs["partition"] = True
                continue
            key, sep, value = term.partition("=")
            if not sep:
                raise ValueError(
                    f"fault term {term!r} is neither 'partition' nor 'key=value'"
                )
            key = {"loss": "loss", "crash": "crash", "byz": "byzantine",
                   "byzantine": "byzantine"}.get(key.strip())
            if key is None:
                raise ValueError(
                    f"unknown fault key in {term!r}; known: loss, crash,"
                    " partition, byz"
                )
            if key in kwargs:
                raise ValueError(f"duplicate fault key in {text!r}")
            kwargs[key] = float(value)
        return FaultSpec(**kwargs)


@dataclass(frozen=True)
class GridCell:
    """One coordinate of an expanded grid (hashable, picklable)."""

    engine: str
    family: str
    n: int
    b: int
    churn: int
    fault: str
    seed: int
    #: round budget — set exactly for ``lid-truncated`` cells; ``None``
    #: everywhere else, keeping pre-truncation cell ids byte-stable
    max_rounds: Optional[int] = None

    @property
    def cell_id(self) -> str:
        """Deterministic, filename-safe cell identity."""
        fault = re.sub(r"[^0-9a-zA-Z]+", "", self.fault.replace("+", "-"))
        suffix = "" if self.max_rounds is None else f"_k{self.max_rounds}"
        return (
            f"{self.engine}_{self.family}_n{self.n}_b{self.b}"
            f"_c{self.churn}_{fault or 'none'}_s{self.seed}{suffix}"
        )

    def coords(self) -> dict:
        """The coordinate fields as a plain dict (record prefix)."""
        return {
            "engine": self.engine,
            "family": self.family,
            "n": self.n,
            "b": self.b,
            "churn": self.churn,
            "fault": self.fault,
            "seed": self.seed,
            "max_rounds": self.max_rounds,
        }


def _astuple(value, cast) -> tuple:
    if isinstance(value, (str, bytes)):
        raise TypeError(f"expected a sequence of values, got {value!r}")
    return tuple(cast(v) for v in value)


@dataclass(frozen=True)
class GridSpec:
    """A declarative sweep: the cross product of the axes below.

    ``density`` (absolute ER edge probability) or ``degree`` (expected
    degree: ``p = degree / n``) switch instance generation to the plain
    Erdős–Rényi :func:`~repro.experiments.instances
    .random_preference_instance`; both require ``families == ("er",)``.
    Without either, instances come from
    :func:`~repro.experiments.instances.family_instance` (expected
    degree ≈ 8 across families).

    ``measure_ratio`` additionally solves the exact eq.-1 optimum per
    cell (MILP — small ``n`` only) and records the Theorem-3 ratio;
    ``verify`` cross-checks every LID cell's matching against LIC on
    the same instance (Lemmas 4/6).

    The ``heartbeat_interval`` / ``suspect_after`` / ``partition_start``
    / ``backoff`` knobs parameterise the resilient engine exactly as
    :class:`~repro.experiments.campaign.CampaignConfig` does.
    """

    name: str
    engines: tuple[str, ...]
    families: tuple[str, ...] = ("er",)
    sizes: tuple[int, ...] = (30,)
    quotas: tuple[int, ...] = (2,)
    churn: tuple[int, ...] = (0,)
    faults: tuple[str, ...] = ("none",)
    seeds: tuple[int, ...] = (0,)
    #: round budgets swept by the ``lid-truncated`` engine (other
    #: engines ignore the axis); a "converged" row is spelled with a
    #: budget past every instance's quiescence round (e.g. ``1 << 30``)
    max_rounds: tuple[int, ...] = ()
    density: Optional[float] = None
    degree: Optional[float] = None
    measure_ratio: bool = False
    verify: bool = True
    heartbeat_interval: float = 1.0
    suspect_after: float = 5.0
    partition_start: float = 3.0
    backoff: Optional[tuple] = None
    service_workload: str = "poisson"
    service_budget: Optional[int] = None
    service_differential_every: int = 50

    def __post_init__(self):
        # normalise axis containers to tuples so specs hash and pickle
        object.__setattr__(self, "engines", _astuple(self.engines, str))
        object.__setattr__(self, "families", _astuple(self.families, str))
        object.__setattr__(self, "sizes", _astuple(self.sizes, int))
        object.__setattr__(self, "quotas", _astuple(self.quotas, int))
        object.__setattr__(self, "churn", _astuple(self.churn, int))
        object.__setattr__(self, "seeds", _astuple(self.seeds, int))
        object.__setattr__(self, "max_rounds", _astuple(self.max_rounds, int))
        if self.backoff is not None:
            object.__setattr__(self, "backoff", tuple(self.backoff))
        # canonicalise fault strings through the DSL parser
        object.__setattr__(
            self,
            "faults",
            tuple(FaultSpec.parse(f).label() for f in self.faults),
        )
        if not self.name or not re.fullmatch(r"[0-9a-zA-Z._-]+", self.name):
            raise ValueError(
                f"spec name {self.name!r} must be a non-empty filename-safe slug"
            )
        for e in self.engines:
            if e not in ENGINES:
                raise ValueError(f"unknown engine {e!r}; known: {ENGINES}")
        for f in self.families:
            if f not in FAMILIES:
                raise ValueError(f"unknown family {f!r}; known: {FAMILIES}")
        if not (self.engines and self.families and self.sizes and self.quotas
                and self.churn and self.faults and self.seeds):
            raise ValueError("every grid axis needs at least one value")
        if any(n < 2 for n in self.sizes):
            raise ValueError(f"sizes must be >= 2, got {self.sizes}")
        if any(b < 1 for b in self.quotas):
            raise ValueError(f"quotas must be >= 1, got {self.quotas}")
        if any(c < 0 for c in self.churn):
            raise ValueError(f"churn counts must be >= 0, got {self.churn}")
        if self.density is not None and self.degree is not None:
            raise ValueError("density and degree are mutually exclusive")
        if (self.density is not None or self.degree is not None) \
                and self.families != ("er",):
            raise ValueError(
                "density/degree specify an Erdős–Rényi edge probability:"
                f" families must be ('er',), got {self.families}"
            )
        if any(k < 0 for k in self.max_rounds):
            raise ValueError(
                f"max_rounds values must be >= 0, got {self.max_rounds}"
            )
        if "lid-truncated" in self.engines and not self.max_rounds:
            raise ValueError(
                "the lid-truncated engine sweeps the max_rounds axis:"
                " give max_rounds at least one round budget"
            )
        if self.max_rounds and "lid-truncated" not in self.engines:
            raise ValueError(
                "max_rounds is only consumed by the lid-truncated engine;"
                f" engines {self.engines} would silently ignore it"
            )
        if self.service_workload not in SERVICE_WORKLOADS:
            raise ValueError(
                f"unknown service workload {self.service_workload!r};"
                f" known: {SERVICE_WORKLOADS}"
            )
        if self.service_budget is not None and self.service_budget < 0:
            raise ValueError(
                f"service_budget must be >= 0, got {self.service_budget}"
            )
        if self.service_differential_every < 0:
            raise ValueError(
                "service_differential_every must be >= 0, got"
                f" {self.service_differential_every}"
            )

    # -- compatibility rules -------------------------------------------

    def compatible(self, cell: GridCell) -> bool:
        """Whether a raw cross-product coordinate is meaningful.

        Faults run only on the resilient engine; the resilient engine
        runs only on the ``er`` family with no churn; churn runs only on
        the churn-consuming engines (the incremental ``lic-*`` pipelines
        and the long-lived ``lid-service``, which reads the churn count
        as its workload-trace length and therefore *requires* churn).
        The ``max_rounds`` coordinate is set exactly on ``lid-truncated``
        cells (the only engine sweeping the round-budget axis), which
        are static: no churn, no faults.
        """
        if cell.fault != "none" and cell.engine != "resilient":
            return False
        if cell.engine == "resilient" and (cell.family != "er" or cell.churn):
            return False
        if cell.churn and cell.engine not in CHURN_ENGINES:
            return False
        if cell.engine == "lid-service" and not cell.churn:
            return False
        if (cell.max_rounds is not None) != (cell.engine == "lid-truncated"):
            return False
        return True

    def cells(self) -> list[GridCell]:
        """The compatible cells in deterministic sweep order."""
        out = []
        for engine in self.engines:
            budgets = self.max_rounds if engine == "lid-truncated" else (None,)
            for family in self.families:
                for n in self.sizes:
                    for b in self.quotas:
                        for churn in self.churn:
                            for fault in self.faults:
                                for seed in self.seeds:
                                    for k in budgets:
                                        cell = GridCell(engine, family, n, b,
                                                        churn, fault, seed,
                                                        max_rounds=k)
                                        if self.compatible(cell):
                                            out.append(cell)
        if not out:
            raise ValueError(
                f"grid {self.name!r} expands to zero compatible cells"
                " (see GridSpec.compatible)"
            )
        return out

    # -- content addressing --------------------------------------------

    def to_mapping(self) -> dict:
        """Canonical plain-data form (JSON/TOML friendly)."""
        out = {}
        for f in fields(self):
            v = getattr(self, f.name)
            out[f.name] = list(v) if isinstance(v, tuple) else v
        return out

    def spec_hash(self) -> str:
        """SHA-256 prefix of the canonical JSON — the store key.

        Any change to any field (axes, instance knobs, resilient
        parameters) changes the hash, so stored cells can never be
        reused across semantically different sweeps.
        """
        canon = json.dumps(self.to_mapping(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:12]

    @staticmethod
    def from_mapping(mapping: Mapping) -> "GridSpec":
        known = {f.name for f in fields(GridSpec)}
        unknown = set(mapping) - known
        if unknown:
            raise ValueError(
                f"unknown grid-spec keys {sorted(unknown)}; known: {sorted(known)}"
            )
        return GridSpec(**dict(mapping))

    @staticmethod
    def from_toml(path: "str | Path") -> "GridSpec":
        """Load a spec from a TOML file (requires Python ≥ 3.11).

        On 3.10 (no :mod:`tomllib` in the standard library) declarative
        specs are still fully available as dataclasses / mappings; only
        the TOML *file* front end is gated.
        """
        try:
            import tomllib
        except ImportError as exc:  # pragma: no cover - 3.10 only
            raise RuntimeError(
                "TOML grid specs need Python >= 3.11 (stdlib tomllib);"
                " construct a GridSpec directly or pass a profile name"
            ) from exc
        with open(path, "rb") as fh:
            return GridSpec.from_mapping(tomllib.load(fh))


def load_spec(source: "str | Path | Mapping | GridSpec") -> GridSpec:
    """Resolve a profile name, TOML path, mapping or spec to a GridSpec."""
    if isinstance(source, GridSpec):
        return source
    if isinstance(source, Mapping):
        return GridSpec.from_mapping(source)
    if str(source) in PROFILES:
        return PROFILES[str(source)]
    return GridSpec.from_toml(source)


#: Built-in sweep profiles.  ``smoke`` is the CI merge gate (seconds);
#: ``nightly`` is the scheduled medium-scale sweep; ``faults`` mirrors
#: the default fault campaign (`python -m repro campaign`).
PROFILES: dict[str, GridSpec] = {
    "smoke": GridSpec(
        name="smoke",
        engines=ENGINES,
        families=("er", "ba"),
        sizes=(30,),
        quotas=(2,),
        churn=(0, 6),
        faults=("none", "loss=0.2+crash=0.05"),
        seeds=(0, 1),
        max_rounds=(2, 1 << 30),
    ),
    "nightly": GridSpec(
        name="nightly",
        engines=ENGINES,
        families=("er", "geo", "ba"),
        sizes=(50, 100, 200),
        quotas=(2, 4),
        churn=(0, 20),
        faults=("none", "loss=0.1", "loss=0.3+crash=0.05",
                "loss=0.1+partition", "byz=0.1"),
        seeds=(0, 1, 2),
        max_rounds=(1, 2, 4, 8, 1 << 30),
    ),
    "truncation": GridSpec(
        name="truncation",
        engines=("lid-truncated",),
        families=("er", "geo"),
        sizes=(60,),
        quotas=(3,),
        max_rounds=(1, 2, 3, 4, 6, 8, 1 << 30),
        seeds=(0, 1),
    ),
    "faults": GridSpec(
        name="faults",
        engines=("resilient",),
        families=("er",),
        sizes=(60,),
        quotas=(3,),
        density=0.15,
        faults=tuple(
            FaultSpec(loss=lo, crash=cr, partition=pa, byzantine=by).label()
            for lo in (0.05, 0.15, 0.3)
            for cr in (0.0, 0.05)
            for pa in (False, True)
            for by in (0.0, 0.1)
        ),
        seeds=(0, 1),
    ),
}
