"""Reproducible instance suites for the experiments.

Three kinds of instances feed the benchmark harness:

- *preference instances* (PreferenceSystem): overlay scenarios and
  uniformly random preference systems,
- *weighted instances* (WeightTable + quotas): pure many-to-many
  maximum-weighted-matching inputs for the Theorem 2 experiments,
- *adversarial instances*: the canonical cyclic-preference families on
  which best-response dynamics oscillate (experiment F4).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.preferences import PreferenceSystem
from repro.core.weights import WeightTable
from repro.overlay.topology import (
    Topology,
    barabasi_albert,
    erdos_renyi,
    random_geometric,
    random_regular,
    watts_strogatz,
)
from repro.utils.rng import spawn_rng

__all__ = [
    "random_preference_instance",
    "topology_for_family",
    "family_instance",
    "random_weighted_instance",
    "cyclic_roommates",
    "FAMILIES",
]

FAMILIES = ("er", "geo", "ba", "ws", "reg")


def topology_for_family(family: str, n: int, rng: np.random.Generator) -> Topology:
    """A representative topology of each named family at size ``n``.

    Parameters are chosen to keep the expected degree ≈ 8 across
    families so size sweeps compare like with like.
    """
    if family == "er":
        return erdos_renyi(n, p=min(1.0, 8.0 / max(n - 1, 1)), rng=rng)
    if family == "geo":
        return random_geometric(n, radius=min(1.0, (8.0 / (np.pi * max(n, 1))) ** 0.5 * 1.8), rng=rng)
    if family == "ba":
        return barabasi_albert(n, m_attach=min(4, n - 1), rng=rng)
    if family == "ws":
        k = max(2, min(8, n - 1) - (min(8, n - 1) % 2))
        return watts_strogatz(n, k=k, beta=0.25, rng=rng)
    if family == "reg":
        d = 8 if (n * 8) % 2 == 0 and n > 8 else 4
        if d >= n:
            d = n - 1 - ((n - 1) % 2 == 1 and n % 2 == 1)
            d = max(1, d)
        return random_regular(n, d=d, rng=rng)
    raise KeyError(f"unknown family {family!r}; known: {FAMILIES}")


def random_preference_instance(
    n: int,
    p: float,
    quota: int | Sequence[int],
    seed: int,
) -> PreferenceSystem:
    """Erdős–Rényi graph with uniformly random preference lists.

    The standard random stable-roommates-style instance: each node
    ranks its neighbourhood in uniformly random order (independent
    across nodes), so preference cycles appear with high probability —
    the regime the paper targets.
    """
    rng = spawn_rng(seed, "random-pref", str(n), str(p))
    topo = erdos_renyi(n, p, rng)
    return _random_rankings(topo, quota, rng)


def _random_rankings(
    topo: Topology, quota: int | Sequence[int], rng: np.random.Generator
) -> PreferenceSystem:
    rankings = {}
    for i in range(topo.n):
        neigh = np.array(topo.adjacency[i], dtype=int)
        rng.shuffle(neigh)
        rankings[i] = [int(x) for x in neigh]
    return PreferenceSystem(rankings, quota)


def family_instance(
    family: str, n: int, quota: int | Sequence[int], seed: int
) -> PreferenceSystem:
    """Random-preference instance over a named topology family."""
    rng = spawn_rng(seed, "family", family, str(n))
    topo = topology_for_family(family, n, rng)
    return _random_rankings(topo, quota, rng)


def random_weighted_instance(
    n: int, p: float, seed: int, quota_range: tuple[int, int] = (1, 4)
) -> tuple[WeightTable, list[int]]:
    """Pure weighted-matching instance: ER graph, U(0,1] weights, random quotas."""
    rng = spawn_rng(seed, "weighted", str(n), str(p))
    topo = erdos_renyi(n, p, rng)
    weights = {
        (i, j): float(rng.uniform(1e-6, 1.0)) for i, j in topo.edges()
    }
    lo, hi = quota_range
    quotas = [int(rng.integers(lo, hi + 1)) for _ in range(n)]
    wt = WeightTable(weights, n)
    return wt, quotas


def cyclic_roommates(k: int, quota: int = 1) -> PreferenceSystem:
    """The canonical cyclic-preference ring on ``k ≥ 3`` nodes.

    Nodes ``0..k-1`` on a cycle, each also knowing its two ring
    neighbours, with rankings rotated so that every node prefers its
    clockwise successor to its predecessor.  For odd ``k`` with
    ``quota=1`` this is the classic stable-roommates counterexample
    family: no stable matching exists and best-response dynamics
    oscillate forever, while LID terminates unconditionally (Lemma 5) —
    the exact contrast of experiment F4.
    """
    if k < 3:
        raise ValueError(f"need k >= 3, got {k}")
    rankings = {
        i: [(i + 1) % k, (i - 1) % k] for i in range(k)
    }
    return PreferenceSystem(rankings, quota)
