"""Seeded fault-campaign harness for the resilient LID runtime.

The robustness claims in ``docs/robustness.md`` are quantified over a
*matrix* of fault configurations, not a single lucky run.  This module
sweeps that matrix deterministically: every cell is the cross product of
a loss rate, a crash fraction, a partition/heal toggle and a Byzantine
fraction, replicated over seeds, and every cell must

- **terminate** — every live honest node finishes;
- **stay safe** — the :class:`~repro.distsim.invariants.InvariantMonitor`
  records zero violations (quota, locality, duplicate locks, lock
  justification, final symmetry);
- **produce a valid matching** — mutual locks over live honest nodes
  pass :meth:`~repro.core.matching.Matching.validate`;
- **certify local optimality on the clean part** — restricted to
  *clean* nodes (live, honest, untouched by faults — see
  :meth:`~repro.core.resilient_lid.ResilientLidResult.clean_nodes`),
  the matching admits no weighted blocking edge.

Cells also report *degradation*: total satisfaction of the live honest
nodes under faults divided by the satisfaction the same node set earns
in the fault-free (LIC ≡ LID, Lemmas 4/6) matching.  Faults can only
hurt the nodes they touch, so this ratio is the honest price of the
fault configuration.

Used three ways: ``python -m repro campaign`` (CLI),
``benchmarks/bench_a2_robustness.py`` (the A2 experiment) and the
``chaos-smoke`` CI job (a single large adversarial cell as a merge
gate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.analysis import weighted_blocking_edges
from repro.core.lic import lic_matching
from repro.core.preferences import PreferenceSystem
from repro.core.resilient_lid import ResilientLidResult, run_resilient_lid
from repro.core.satisfaction import satisfaction_vector
from repro.core.weights import WeightTable, satisfaction_weights
from repro.distsim.failures import BernoulliLoss, CrashSchedule, PartitionSchedule
from repro.distsim.reliable import BackoffPolicy
from repro.experiments.instances import random_preference_instance
from repro.utils.rng import spawn_rng

__all__ = [
    "CampaignCell",
    "CampaignConfig",
    "CampaignResult",
    "effective_blocking_edges",
    "run_campaign",
    "run_cell",
]


@dataclass(frozen=True)
class CampaignConfig:
    """The fault matrix swept by :func:`run_campaign`.

    Cells are the cross product ``loss_rates x crash_fracs x
    partition x byzantine_fracs x seeds``.  Failure-detector and
    transport parameters are shared across cells; the partition window
    is sized so suspicion fires *during* the partition and the heal
    happens well inside the retransmit budget's span, which is the
    liveness precondition documented in ``docs/robustness.md``.
    """

    n: int = 60
    density: float = 0.15
    quota: int = 3
    loss_rates: tuple[float, ...] = (0.05, 0.15, 0.3)
    crash_fracs: tuple[float, ...] = (0.0, 0.05)
    partition: tuple[bool, ...] = (False, True)
    byzantine_fracs: tuple[float, ...] = (0.0, 0.1)
    seeds: tuple[int, ...] = (0, 1)
    heartbeat_interval: float = 1.0
    suspect_after: float = 5.0
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    partition_start: float = 3.0

    def __post_init__(self):
        if self.n < 2:
            raise ValueError(f"n must be >= 2, got {self.n}")
        for b in self.byzantine_fracs:
            if not (0.0 <= b <= 0.5):
                raise ValueError(f"byzantine fraction {b} outside [0, 0.5]")
        span = self.backoff.span()
        window = self.partition_window()
        if span is not None and span < window[1] - window[0]:
            raise ValueError(
                f"retransmit budget span {span:.1f} is shorter than the "
                f"partition window {window[1] - window[0]:.1f}: revocations "
                "could be abandoned before the heal, losing lock symmetry "
                "(see docs/robustness.md); raise BackoffPolicy.budget or "
                "shrink the window"
            )

    def partition_window(self) -> tuple[float, float]:
        """One partition/heal cycle: long enough for suspicion to fire."""
        start = self.partition_start
        return (start, start + self.suspect_after + 4.0 * self.heartbeat_interval)

    def cells(self) -> Iterable[tuple[float, float, bool, float, int]]:
        """Cell coordinates in deterministic sweep order."""
        for loss in self.loss_rates:
            for crash in self.crash_fracs:
                for part in self.partition:
                    for byz in self.byzantine_fracs:
                        for seed in self.seeds:
                            yield (loss, crash, part, byz, seed)

    def to_grid_spec(self, name: str = "fault-campaign") -> "GridSpec":
        """Lower the fault matrix to a resilient-engine grid spec.

        The fault axes become canonical fault-DSL strings in the same
        product order :meth:`cells` sweeps, so grid records map back to
        :class:`CampaignCell` positionally as well as by coordinates.
        """
        from repro.experiments.gridspec import FaultSpec, GridSpec

        faults = tuple(
            FaultSpec(loss=lo, crash=cr, partition=pa, byzantine=by).label()
            for lo in self.loss_rates
            for cr in self.crash_fracs
            for pa in self.partition
            for by in self.byzantine_fracs
        )
        return GridSpec(
            name=name,
            engines=("resilient",),
            families=("er",),
            sizes=(self.n,),
            quotas=(self.quota,),
            churn=(0,),
            faults=faults,
            seeds=tuple(self.seeds),
            density=self.density,
            heartbeat_interval=self.heartbeat_interval,
            suspect_after=self.suspect_after,
            partition_start=self.partition_start,
            backoff=(self.backoff.base, self.backoff.factor, self.backoff.cap,
                     self.backoff.jitter, self.backoff.budget),
        )


@dataclass
class CampaignCell:
    """Outcome of one cell of the fault matrix."""

    loss: float
    crash_frac: float
    partitioned: bool
    byzantine_frac: float
    seed: int
    terminated: bool
    violations: list[str]
    blocking_edges: int
    valid: bool
    live_honest: int
    clean: int
    matched_edges: int
    satisfaction: float
    baseline_satisfaction: float
    retransmissions: int
    events: int

    @property
    def ok(self) -> bool:
        """The cell's pass condition (gated by chaos-smoke CI)."""
        return (
            self.terminated
            and not self.violations
            and self.valid
            and self.blocking_edges == 0
        )

    @property
    def degradation(self) -> float:
        """Live-honest satisfaction relative to the fault-free matching."""
        if self.baseline_satisfaction <= 0.0:
            return 1.0
        return self.satisfaction / self.baseline_satisfaction

    def label(self) -> str:
        parts = [f"loss={self.loss:g}"]
        if self.crash_frac:
            parts.append(f"crash={self.crash_frac:g}")
        if self.partitioned:
            parts.append("partition")
        if self.byzantine_frac:
            parts.append(f"byz={self.byzantine_frac:g}")
        parts.append(f"seed={self.seed}")
        return " ".join(parts)


@dataclass
class CampaignResult:
    """All cells of a campaign plus aggregate pass/fail."""

    config: CampaignConfig
    cells: list[CampaignCell]

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.cells)

    @property
    def failures(self) -> list[CampaignCell]:
        return [c for c in self.cells if not c.ok]

    def worst_degradation(self) -> float:
        return min((c.degradation for c in self.cells), default=1.0)

    def rows(self) -> list[dict]:
        """Table rows for :func:`repro.experiments.reporting.print_table`."""
        return [
            {
                "cell": c.label(),
                "ok": "yes" if c.ok else "NO",
                "live": c.live_honest,
                "clean": c.clean,
                "edges": c.matched_edges,
                "degrade": f"{c.degradation:.3f}",
                "retx": c.retransmissions,
                "viol": len(c.violations),
            }
            for c in self.cells
        ]


def effective_blocking_edges(
    wt: WeightTable,
    quotas: Sequence[int],
    result: ResilientLidResult,
) -> list[tuple[int, int]]:
    """Weighted blocking edges of the matching, on the clean subgraph.

    The Lemma 4/6 no-blocking-edge certificate cannot hold verbatim
    under faults (a node whose partner crashed holds a wasted slot the
    restricted matching does not show), so it is evaluated where the
    claim actually applies: both endpoints *clean* (their protocol view
    equals the extracted matching) and neither endpoint withdrew the
    other (a withdrawn edge was severed by the failure detector, not
    declined by greedy choice).  On that subgraph the certificate is
    exact — any survivor is a genuine protocol bug.
    """
    clean = result.clean_nodes()
    blocked = []
    for i, j in weighted_blocking_edges(wt, quotas, result.matching):
        if i not in clean or j not in clean:
            continue
        if j in result.nodes[i].withdrawn or i in result.nodes[j].withdrawn:
            continue
        blocked.append((i, j))
    return blocked


def _fault_plan(config: CampaignConfig, crash_frac: float, partitioned: bool,
                byz_frac: float, seed: int, ps: PreferenceSystem):
    """Deterministically derive crash / partition / Byzantine layout."""
    n = ps.n
    rng = spawn_rng(seed, "campaign-plan", f"{crash_frac}", f"{byz_frac}",
                    "part" if partitioned else "nopart")
    ids = list(range(n))
    rng.shuffle(ids)
    n_byz = int(round(byz_frac * n))
    byz_ids = ids[:n_byz]
    modes = ("reject_all", "accept_all")
    byzantine = {b: modes[k % 2] for k, b in enumerate(byz_ids)}
    n_crash = int(round(crash_frac * n))
    crash_ids = ids[n_byz:n_byz + n_crash]
    crashes = None
    if crash_ids:
        times = 1.0 + 5.0 * rng.random(len(crash_ids))
        crashes = CrashSchedule(
            [(float(t), int(c)) for t, c in zip(times, crash_ids)]
        )
    partitions = None
    if partitioned:
        start, end = config.partition_window()
        half = ids[: n // 2]
        partitions = PartitionSchedule([(start, end, [half])])
    return byzantine, crashes, partitions


def run_cell(
    config: CampaignConfig,
    loss: float,
    crash_frac: float,
    partitioned: bool,
    byz_frac: float,
    seed: int,
    *,
    telemetry=None,
    probe=None,
    metrics_out: Optional[dict] = None,
) -> CampaignCell:
    """Run and judge a single cell of the fault matrix.

    ``telemetry`` / ``probe`` are forwarded to
    :func:`run_resilient_lid`.  When ``metrics_out`` is a dict it is
    filled with the run's :meth:`SimMetrics.to_dict` form (without the
    per-node counters) — the channel the grid runner uses to persist
    per-kind message counters without widening :class:`CampaignCell`.
    """
    ps = random_preference_instance(config.n, config.density, config.quota,
                                    seed=seed)
    wt = satisfaction_weights(ps)
    quotas = list(ps.quotas)
    byzantine, crashes, partitions = _fault_plan(
        config, crash_frac, partitioned, byz_frac, seed, ps
    )

    result = run_resilient_lid(
        wt,
        quotas,
        seed=seed,
        drop_filter=BernoulliLoss(loss) if loss > 0 else None,
        crashes=crashes,
        partitions=partitions,
        byzantine=byzantine,
        backoff=config.backoff,
        heartbeat_interval=config.heartbeat_interval,
        suspect_after=config.suspect_after,
        telemetry=telemetry,
        probe=probe,
    )
    if metrics_out is not None:
        metrics_out.update(result.metrics.to_dict(per_node=False))

    try:
        result.matching.validate(ps)
        valid = True
    except Exception:
        valid = False
    blocked = effective_blocking_edges(wt, quotas, result)

    # degradation: live honest satisfaction vs the fault-free matching
    live_honest = result.live_honest
    baseline = lic_matching(wt, quotas)
    adj_base = [baseline.connections(i) for i in range(ps.n)]
    adj_fault = [result.matching.connections(i) for i in range(ps.n)]
    vec_base = satisfaction_vector(ps, adj_base)
    vec_fault = satisfaction_vector(ps, adj_fault)
    sat_base = float(sum(vec_base[i] for i in live_honest))
    sat_fault = float(sum(vec_fault[i] for i in live_honest))

    return CampaignCell(
        loss=loss,
        crash_frac=crash_frac,
        partitioned=partitioned,
        byzantine_frac=byz_frac,
        seed=seed,
        terminated=result.terminated,
        violations=list(result.violations),
        blocking_edges=len(blocked),
        valid=valid,
        live_honest=len(live_honest),
        clean=len(result.clean_nodes()),
        matched_edges=len(result.matching.edges()),
        satisfaction=sat_fault,
        baseline_satisfaction=sat_base,
        retransmissions=result.metrics.retransmissions,
        events=result.metrics.events,
    )


def _cell_from_record(record: dict) -> CampaignCell:
    """Rehydrate a grid record (resilient engine) into a CampaignCell."""
    from repro.experiments.gridspec import FaultSpec

    fault = FaultSpec.parse(record["fault"])
    return CampaignCell(
        loss=fault.loss,
        crash_frac=fault.crash,
        partitioned=fault.partition,
        byzantine_frac=fault.byzantine,
        seed=record["seed"],
        terminated=record["terminated"],
        violations=list(record["violations"]),
        blocking_edges=record["blocking_edges"],
        valid=record["valid"],
        live_honest=record["live_honest"],
        clean=record["clean"],
        matched_edges=record["matched_edges"],
        satisfaction=record["satisfaction"],
        baseline_satisfaction=record["baseline_satisfaction"],
        retransmissions=record["retransmissions"],
        events=record["events"],
    )


def run_campaign(
    config: Optional[CampaignConfig] = None,
    progress=None,
    store=None,
    workers: Optional[int] = None,
) -> CampaignResult:
    """Sweep the full fault matrix; never raises on a failing cell.

    Since the grid migration this is a thin adapter over
    :func:`repro.experiments.grid.run_grid`: the fault matrix lowers to
    a resilient-engine :class:`~repro.experiments.gridspec.GridSpec`
    (:meth:`CampaignConfig.to_grid_spec`), which brings parallel
    execution (``workers``) and a resumable result store (``store``, a
    directory or :class:`~repro.experiments.grid.GridStore`) for free.

    ``progress`` is an optional callable receiving each finished
    :class:`CampaignCell` (the CLI uses it to stream the table); with a
    resumed store only newly executed cells stream.
    """
    config = config or CampaignConfig()
    from repro.experiments.grid import run_grid

    spec = config.to_grid_spec()
    grid_progress = None
    if progress is not None:
        def grid_progress(cell, record, _cb=progress):
            _cb(_cell_from_record(record))
    result = run_grid(spec, store=store, workers=workers,
                      progress=grid_progress)
    cells = [_cell_from_record(rec) for rec in result.records]
    return CampaignResult(config=config, cells=cells)
