"""Cross-backend differential engine.

The repo computes the same matching six ways — reference LIC, fast
LIC, reference LID (event simulator), fast LID (round-batched engine),
sharded LID (partitioned waves with boundary reconciliation) and
resilient LID (reliable channels, fault-free here) — and the
paper's lemmas say they must all agree: Lemmas 3–6 make every greedy
execution select the LIC edge set, and the fast engines are documented
bit-identical replays.  This module runs any instance through all of
them and diffs

- the **matching** (edge sets must be identical),
- the **satisfaction totals** (eq. 1, recomputed exactly by the
  oracles, must agree to float tolerance),
- the **message-count invariants** (reference LID and fast LID are
  bit-identical in PROP/REJ counts; resilient LID may differ — its
  transport is different — but its *matching* may not),

and feeds every pipeline's output through the oracle battery of
:mod:`repro.testing.oracles`.  Any discrepancy becomes a typed
:class:`Divergence`; :mod:`repro.testing.minimise` shrinks the instance
it occurred on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem
from repro.core.weights import WeightTable
from repro.testing.oracles import OracleReport, verify_matching

__all__ = [
    "PipelineRun",
    "Divergence",
    "DifferentialReport",
    "PIPELINES",
    "DEFAULT_PIPELINES",
    "REFERENCE_PIPELINE",
    "TRUNCATION_INF",
    "TRUNCATION_KS",
    "TRUNCATED_PIPELINES",
    "run_pipeline",
    "run_differential",
]

Edge = tuple[int, int]

# satisfaction totals across backends accumulate float error differently
SAT_TOL = 1e-8


@dataclass
class PipelineRun:
    """One backend's answer to one instance.

    ``weight_table`` is the eq.-9 table the pipeline actually used, so
    the oracles can check its consistency too; message counts are
    ``None`` for pipelines without a message model (LIC).
    """

    pipeline: str
    matching: Matching
    total_satisfaction: float
    prop_messages: Optional[int] = None
    rej_messages: Optional[int] = None
    profile: Optional[Sequence[float]] = None
    weight_table: Optional["WeightTable"] = None
    # round-truncated runs: the rank-based blocking-pair count (diffed
    # when both sides report one) and the diff group ("trunc@k1", ...)
    # — members of a group are diffed against the group's first-inserted
    # run instead of the global reference, because a k-truncated
    # matching legitimately differs from the converged one.
    blocking_pairs: Optional[int] = None
    diff_group: Optional[str] = None

    def edge_set(self) -> frozenset[Edge]:
        return self.matching.edge_set()


@dataclass(frozen=True)
class Divergence:
    """One disagreement between two pipelines (or pipeline vs oracle).

    ``kind`` ∈ {``matching``, ``satisfaction``, ``messages``,
    ``blocking-pairs``, ``oracle``}; ``detail`` carries the concrete
    diff (missing/extra edges, numeric gap, or the oracle violation
    text).
    """

    kind: str
    left: str
    right: str
    detail: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.left} vs {self.right} — {self.detail}"


@dataclass
class DifferentialReport:
    """Everything the engine learned about one instance."""

    runs: dict[str, PipelineRun] = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)
    oracle_reports: dict[str, OracleReport] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """No divergence and no oracle violation."""
        return not self.divergences

    def summary(self) -> str:
        if self.ok:
            return f"{len(self.runs)} pipelines agree"
        return "; ".join(str(d) for d in self.divergences[:5]) + (
            f" (+{len(self.divergences) - 5} more)" if len(self.divergences) > 5 else ""
        )


# ----------------------------------------------------------------------
# pipelines
# ----------------------------------------------------------------------


def _run_lic_reference(ps: PreferenceSystem, seed: int) -> PipelineRun:
    from repro.core.backend import get_backend

    be = get_backend("reference")
    wt = be.build_weights(ps)
    matching = be.lic(wt, ps.quotas)
    profile = be.satisfaction_profile(ps, matching)
    return PipelineRun(
        "lic-reference", matching, float(profile.sum()),
        profile=profile, weight_table=wt,
    )


def _run_lic_fast(ps: PreferenceSystem, seed: int) -> PipelineRun:
    from repro.core.backend import get_backend

    be = get_backend("fast")
    wt = be.build_weights(ps)
    matching = be.lic(wt, ps.quotas)
    profile = be.satisfaction_profile(ps, matching)
    return PipelineRun(
        "lic-fast", matching, float(profile.sum()),
        profile=profile, weight_table=wt,
    )


def _run_lid_reference(ps: PreferenceSystem, seed: int) -> PipelineRun:
    from repro.core.lid import run_lid
    from repro.core.weights import satisfaction_weights

    wt = satisfaction_weights(ps)
    res = run_lid(wt, ps.quotas, seed=seed)
    return PipelineRun(
        "lid-reference", res.matching,
        res.matching.total_satisfaction(ps),
        prop_messages=res.prop_messages, rej_messages=res.rej_messages,
        weight_table=wt,
    )


def _run_lid_fast(ps: PreferenceSystem, seed: int) -> PipelineRun:
    from repro.core.fast import satisfaction_weights_fast
    from repro.core.fast_lid import lid_matching_fast

    wt = satisfaction_weights_fast(ps)
    res = lid_matching_fast(wt, ps.quotas)
    return PipelineRun(
        "lid-fast", res.matching,
        res.matching.total_satisfaction(ps),
        prop_messages=res.prop_messages, rej_messages=res.rej_messages,
        weight_table=wt,
    )


def _run_lid_sharded(ps: PreferenceSystem, seed: int) -> PipelineRun:
    # shards=4 exercises boundary reconciliation on every non-trivial
    # instance; workers=0 keeps the pipeline deterministic and safe
    # inside pool workers.  For k > 1 the wave schedule differs from
    # the reference, so message counts are reported but NOT twinned
    # (the matching must still be identical — Lemmas 3–6).
    from repro.core.fast import satisfaction_weights_fast
    from repro.core.sharded_lid import sharded_lid_matching

    wt = satisfaction_weights_fast(ps)
    res = sharded_lid_matching(wt, ps.quotas, shards=4)
    return PipelineRun(
        "lid-sharded", res.matching,
        res.matching.total_satisfaction(ps),
        prop_messages=res.prop_messages, rej_messages=res.rej_messages,
        weight_table=wt,
    )


def _run_lid_resilient(ps: PreferenceSystem, seed: int) -> PipelineRun:
    from repro.core.resilient_lid import run_resilient_lid
    from repro.core.weights import satisfaction_weights

    wt = satisfaction_weights(ps)
    res = run_resilient_lid(wt, ps.quotas, seed=seed)
    return PipelineRun(
        "lid-resilient", res.matching,
        res.matching.total_satisfaction(ps),
        weight_table=wt,
    )


PIPELINES: dict[str, Callable[[PreferenceSystem, int], PipelineRun]] = {
    "lic-reference": _run_lic_reference,
    "lic-fast": _run_lic_fast,
    "lid-reference": _run_lid_reference,
    "lid-fast": _run_lid_fast,
    "lid-sharded": _run_lid_sharded,
    "lid-resilient": _run_lid_resilient,
}

DEFAULT_PIPELINES = tuple(PIPELINES)
REFERENCE_PIPELINE = "lic-reference"


# ----------------------------------------------------------------------
# round-truncated pipelines (registered AFTER DEFAULT_PIPELINES is
# frozen, so default sweeps are untouched)
# ----------------------------------------------------------------------

#: sentinel "∞" round budget — large enough that every battery instance
#: converges, so the truncation *code path* runs but must reproduce the
#: untruncated output exactly (these runs diff against the global
#: reference like any converged pipeline).
TRUNCATION_INF = 1 << 30

#: the k values of the truncation conformance battery, by label
TRUNCATION_KS: dict[str, int] = {"k1": 1, "k3": 3, "kinf": TRUNCATION_INF}


def _make_truncated_pipeline(engine: str, label: str, k: int):
    group = None if k == TRUNCATION_INF else f"trunc@{label}"
    name = f"lid-truncated-{engine}@{label}"

    def run(ps: PreferenceSystem, seed: int) -> PipelineRun:
        if engine == "resilient":
            from repro.baselines.verify import count_blocking_pairs
            from repro.core.resilient_lid import run_resilient_lid
            from repro.core.weights import satisfaction_weights

            wt = satisfaction_weights(ps)
            res = run_resilient_lid(wt, ps.quotas, seed=seed, max_rounds=k)
            return PipelineRun(
                name, res.matching,
                res.matching.total_satisfaction(ps),
                weight_table=wt,
                blocking_pairs=count_blocking_pairs(ps, res.matching),
                diff_group=group,
            )
        from repro.core.lid import solve_lid

        kwargs = {"shards": 3} if engine == "sharded" else {}
        res, wt = solve_lid(ps, seed=seed, backend=engine, max_rounds=k, **kwargs)
        return PipelineRun(
            name, res.matching,
            res.matching.total_satisfaction(ps),
            prop_messages=res.prop_messages, rej_messages=res.rej_messages,
            weight_table=wt,
            blocking_pairs=res.truncation.blocking_pairs,
            diff_group=group,
        )

    return run


# the reference engine registers first within each k so it becomes the
# group's diff reference (groups diff against their first-inserted run)
for _label, _k in TRUNCATION_KS.items():
    for _engine in ("reference", "fast", "sharded", "resilient"):
        PIPELINES[f"lid-truncated-{_engine}@{_label}"] = _make_truncated_pipeline(
            _engine, _label, _k
        )

#: every registered truncated pipeline name (not part of the defaults)
TRUNCATED_PIPELINES = tuple(n for n in PIPELINES if n.startswith("lid-truncated-"))

# pipeline pairs whose message statistics are documented bit-identical;
# the round-batched engine replays the reference schedule at every k,
# dropped in-flight wave included
_MESSAGE_TWINS = (("lid-reference", "lid-fast"),) + tuple(
    (f"lid-truncated-reference@{label}", f"lid-truncated-fast@{label}")
    for label in TRUNCATION_KS
)


def run_pipeline(
    name: "str | Callable[[PreferenceSystem, int], PipelineRun]",
    ps: PreferenceSystem,
    seed: int = 0,
) -> PipelineRun:
    """Execute one pipeline by registry name (or as a callable)."""
    fn = PIPELINES[name] if isinstance(name, str) else name
    return fn(ps, seed)


def _diff_runs(ref: PipelineRun, other: PipelineRun) -> list[Divergence]:
    out: list[Divergence] = []
    ref_edges, other_edges = ref.edge_set(), other.edge_set()
    if ref_edges != other_edges:
        missing = sorted(ref_edges - other_edges)
        extra = sorted(other_edges - ref_edges)
        out.append(Divergence(
            kind="matching", left=ref.pipeline, right=other.pipeline,
            detail=f"missing={missing[:6]} extra={extra[:6]}"
                   f" (|Δ|={len(missing) + len(extra)})",
        ))
    gap = abs(ref.total_satisfaction - other.total_satisfaction)
    if gap > SAT_TOL * max(1.0, abs(ref.total_satisfaction)):
        out.append(Divergence(
            kind="satisfaction", left=ref.pipeline, right=other.pipeline,
            detail=f"{ref.total_satisfaction:.12g} vs "
                   f"{other.total_satisfaction:.12g} (gap {gap:.3g})",
        ))
    if (
        ref.blocking_pairs is not None
        and other.blocking_pairs is not None
        and ref.blocking_pairs != other.blocking_pairs
    ):
        out.append(Divergence(
            kind="blocking-pairs", left=ref.pipeline, right=other.pipeline,
            detail=f"{ref.blocking_pairs} vs {other.blocking_pairs}",
        ))
    return out


def run_differential(
    ps: PreferenceSystem,
    seed: int = 0,
    pipelines: Optional[Sequence[str]] = None,
    extra_pipelines: Optional[dict[str, Callable[[PreferenceSystem, int], PipelineRun]]] = None,
    oracle_bounds: bool = False,
) -> DifferentialReport:
    """Run an instance through every pipeline and diff the outcomes.

    Parameters
    ----------
    pipelines:
        Registry names to run (default: all of :data:`DEFAULT_PIPELINES`).
    extra_pipelines:
        Additional named callables (the mutation harness injects its
        planted-bug pipelines here); they are diffed against the
        reference like any other.
    oracle_bounds:
        Forwarded to :func:`repro.testing.oracles.verify_matching` —
        also check the Theorem 1/3 bounds via the exact MILP optima
        (small instances only).
    """
    names = list(pipelines if pipelines is not None else DEFAULT_PIPELINES)
    report = DifferentialReport()
    fns: list[tuple[str, Callable[[PreferenceSystem, int], PipelineRun]]] = [
        (name, PIPELINES[name]) for name in names
    ]
    if extra_pipelines:
        fns.extend(extra_pipelines.items())

    for name, fn in fns:
        run = fn(ps, seed)
        run.pipeline = name  # registry name wins over the callable's label
        report.runs[name] = run
        # theorem bounds hold for the converged protocol only — a
        # k-truncated partial matching (diff_group set) is exempt
        oracle = verify_matching(
            ps, run.matching, wt=run.weight_table,
            profile=run.profile,
            bounds=oracle_bounds and run.diff_group is None,
        )
        report.oracle_reports[name] = oracle
        for violation in oracle.violations:
            report.divergences.append(Divergence(
                kind="oracle", left=name, right="oracle",
                detail=str(violation),
            ))

    ref_name = REFERENCE_PIPELINE if REFERENCE_PIPELINE in report.runs else next(iter(report.runs))
    ref = report.runs[ref_name]
    # truncated runs at the same k form a diff group: they must agree
    # with each other (and with the group's reference engine), but not
    # with the converged global reference
    group_refs: dict[str, PipelineRun] = {}
    for name, run in report.runs.items():
        if run.diff_group is not None and run.diff_group not in group_refs:
            group_refs[run.diff_group] = run
    for name, run in report.runs.items():
        target = ref if run.diff_group is None else group_refs[run.diff_group]
        if name != target.pipeline:
            report.divergences.extend(_diff_runs(target, run))

    for left, right in _MESSAGE_TWINS:
        a, b = report.runs.get(left), report.runs.get(right)
        if a is None or b is None:
            continue
        if (a.prop_messages, a.rej_messages) != (b.prop_messages, b.rej_messages):
            report.divergences.append(Divergence(
                kind="messages", left=left, right=right,
                detail=f"PROP {a.prop_messages} vs {b.prop_messages}, "
                       f"REJ {a.rej_messages} vs {b.rej_messages}",
            ))
    return report
