"""Counterexample minimisation and replayable repro files.

When the differential engine finds a divergence on some generated
instance, the raw instance is usually far bigger than the bug.
:func:`minimise_instance` greedily shrinks it while a caller-supplied
predicate ("still diverges") keeps holding, trying — in order of how
much each step removes —

1. **dropping nodes** (with renumbering, preserving relative order),
2. **dropping edges** (from both endpoints' preference lists),
3. **truncating preference lists** (dropping each list's bottom entry —
   the least-preferred neighbour — which is an edge drop chosen by
   rank rather than by edge id),
4. **lowering quotas** (``b_i → b_i - 1``, floor 1),

until a full pass makes no progress.  The result is a 1-minimal
instance: no single reduction step preserves the failure.

:class:`ConformanceRepro` packages the minimised instance with
everything needed to replay the failure deterministically — seed,
pipeline names, the planted mutation (if the divergence came from the
mutation-smoke harness) and the divergence kinds observed — and
round-trips through :mod:`repro.serialization` as a
``conformance_repro`` JSON document.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.core.preferences import PreferenceSystem
from repro.utils.validation import InvalidInstanceError

__all__ = [
    "ConformanceRepro",
    "minimise_instance",
    "repro_to_dict",
    "repro_from_dict",
    "save_repro",
    "load_repro",
]


@dataclass(frozen=True)
class ConformanceRepro:
    """A minimised failing instance plus the recipe to replay it.

    ``mutation`` names a planted bug from
    :data:`repro.testing.mutations.MUTATIONS` (``None`` for an organic
    divergence between real pipelines); ``divergence_kinds`` records the
    kinds observed at capture time so a replay can assert the failure
    reproduces *identically*, not just somehow.
    """

    instance: PreferenceSystem
    seed: int = 0
    pipelines: tuple[str, ...] = ()
    mutation: Optional[str] = None
    description: str = ""
    divergence_kinds: tuple[str, ...] = field(default_factory=tuple)


# ----------------------------------------------------------------------
# instance surgery
# ----------------------------------------------------------------------


def _rankings_of(ps: PreferenceSystem) -> dict[int, list[int]]:
    return {i: list(ps.preference_list(i)) for i in ps.nodes()}


def _rebuild(
    rankings: dict[int, list[int]], quotas: dict[int, int]
) -> Optional[PreferenceSystem]:
    """Construct a PreferenceSystem, or None when the edit left junk."""
    fixed = {i: max(1, q) for i, q in quotas.items()}
    try:
        return PreferenceSystem(rankings, fixed)
    except InvalidInstanceError:  # pragma: no cover - edits keep symmetry
        return None


def _without_node(ps: PreferenceSystem, v: int) -> Optional[PreferenceSystem]:
    if ps.n <= 1:
        return None
    remap = {old: new for new, old in enumerate(i for i in ps.nodes() if i != v)}
    rankings = {
        remap[i]: [remap[j] for j in ps.preference_list(i) if j != v]
        for i in ps.nodes()
        if i != v
    }
    quotas = {remap[i]: ps.quota(i) for i in ps.nodes() if i != v}
    return _rebuild(rankings, quotas)


def _without_edge(ps: PreferenceSystem, i: int, j: int) -> Optional[PreferenceSystem]:
    rankings = _rankings_of(ps)
    rankings[i] = [x for x in rankings[i] if x != j]
    rankings[j] = [x for x in rankings[j] if x != i]
    return _rebuild(rankings, {v: ps.quota(v) for v in ps.nodes()})


def _truncated(ps: PreferenceSystem, i: int) -> Optional[PreferenceSystem]:
    lst = ps.preference_list(i)
    if not lst:
        return None
    return _without_edge(ps, i, lst[-1])


def _lowered_quota(ps: PreferenceSystem, i: int) -> Optional[PreferenceSystem]:
    if ps.quota(i) <= 1:
        return None
    quotas = {v: ps.quota(v) for v in ps.nodes()}
    quotas[i] -= 1
    return _rebuild(_rankings_of(ps), quotas)


def minimise_instance(
    ps: PreferenceSystem,
    predicate: Callable[[PreferenceSystem], bool],
    max_steps: int = 10_000,
) -> PreferenceSystem:
    """Greedily shrink ``ps`` while ``predicate`` stays true.

    ``predicate(candidate)`` must return ``True`` when the candidate
    still exhibits the failure.  ``predicate(ps)`` itself must be true
    on entry (raises ``ValueError`` otherwise — a minimiser fed a
    passing instance would silently return it, hiding a harness bug).

    The search is deterministic: candidates are tried in a fixed order
    and the first accepted reduction restarts the pass, so the same
    input always minimises to the same output.
    """
    if not predicate(ps):
        raise ValueError("predicate does not hold on the initial instance")

    steps = 0
    progress = True
    while progress and steps < max_steps:
        progress = False

        def _try(candidate: Optional[PreferenceSystem]) -> bool:
            nonlocal steps
            if candidate is None:
                return False
            steps += 1
            return predicate(candidate)

        # pass 1: nodes, highest id first (cheapest renumbering churn)
        for v in reversed(range(ps.n)):
            candidate = _without_node(ps, v)
            if _try(candidate):
                ps = candidate
                progress = True
                break
        if progress:
            continue
        # pass 2: edges
        for e in ps.edges():
            candidate = _without_edge(ps, *e)
            if _try(candidate):
                ps = candidate
                progress = True
                break
        if progress:
            continue
        # pass 3: list truncation (bottom-of-list edges, by node)
        for i in range(ps.n):
            candidate = _truncated(ps, i)
            if _try(candidate):
                ps = candidate
                progress = True
                break
        if progress:
            continue
        # pass 4: quotas
        for i in range(ps.n):
            candidate = _lowered_quota(ps, i)
            if _try(candidate):
                ps = candidate
                progress = True
                break
    return ps


# ----------------------------------------------------------------------
# (de)serialisation — the dict halves live here; repro.serialization
# dispatches its "conformance_repro" type tag to these
# ----------------------------------------------------------------------


def repro_to_dict(repro: ConformanceRepro) -> dict:
    """Serialise a repro to a self-describing JSON-compatible dict."""
    from repro.serialization import to_dict

    return {
        "type": "conformance_repro",
        "instance": to_dict(repro.instance),
        "seed": int(repro.seed),
        "pipelines": list(repro.pipelines),
        "mutation": repro.mutation,
        "description": repro.description,
        "divergence_kinds": list(repro.divergence_kinds),
    }


def repro_from_dict(data: dict) -> ConformanceRepro:
    """Reconstruct a repro from :func:`repro_to_dict` output."""
    from repro.serialization import from_dict

    instance = from_dict(data["instance"])
    if not isinstance(instance, PreferenceSystem):
        raise ValueError(
            f"conformance repro embeds a {type(instance).__name__}, "
            "expected a preference_system"
        )
    return ConformanceRepro(
        instance=instance,
        seed=int(data.get("seed", 0)),
        pipelines=tuple(data.get("pipelines", ())),
        mutation=data.get("mutation"),
        description=data.get("description", ""),
        divergence_kinds=tuple(data.get("divergence_kinds", ())),
    )


def save_repro(repro: ConformanceRepro, path: "str | Path") -> None:
    """Write a repro file (JSON, via :mod:`repro.serialization`)."""
    from repro.serialization import save_json

    save_json(repro, path)


def load_repro(path: "str | Path") -> ConformanceRepro:
    """Load a repro file written by :func:`save_repro`."""
    from repro.serialization import load_json

    repro = load_json(path)
    if not isinstance(repro, ConformanceRepro):
        raise ValueError(f"{path} is not a conformance repro file")
    return repro
