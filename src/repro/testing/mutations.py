"""Planted-bug pipelines — the conformance engine's own smoke test.

A verifier that has never seen a failure proves nothing.  Each mutation
here wraps a real pipeline and plants one seeded, realistic bug — a
perturbed LIC weight, an asymmetric eq.-9 table, a dropped or forged
LID lock, an off-by-one quota, a mis-scored satisfaction profile — and
the mutation-smoke mode (:func:`repro.testing.conformance.mutation_smoke`)
asserts the differential engine + oracles catch **every** one of them.
If a future refactor weakens a check, the smoke run fails before the
weakened check can wave a real bug through.

Mutations are ordinary pipeline callables (``(ps, seed) → PipelineRun``)
registered in :data:`MUTATIONS`, so they plug into
:func:`repro.testing.differential.run_differential` via
``extra_pipelines`` and into replayable repro files by name.
"""

from __future__ import annotations

from typing import Callable

from repro.core.preferences import PreferenceSystem
from repro.core.weights import WeightTable
from repro.testing.differential import PipelineRun

__all__ = ["MUTATIONS", "mutant_pipeline"]


def _safe_total(matching, ps: PreferenceSystem) -> float:
    """Total satisfaction, surviving the mutant's own corruption.

    A forged non-E edge or an over-quota node makes eq. 1 undefined;
    the library rightly raises.  The mutant must still hand a run to
    the engine — the oracles, not an exception, are what should flag
    it — so score the corrupted matching as 0.
    """
    try:
        return matching.total_satisfaction(ps)
    except (KeyError, ValueError):
        return 0.0


def _mutant_lic_weight_jitter(ps: PreferenceSystem, seed: int) -> PipelineRun:
    """LIC weights: silently scale one edge's eq.-9 weight by 1.5.

    Models a drifting weight kernel; caught by the symmetric-weights
    oracle and, when the perturbed edge changes the greedy order, by a
    matching divergence.
    """
    from repro.core.lic import lic_matching
    from repro.core.weights import satisfaction_weights

    wt = satisfaction_weights(ps)
    weights = dict(wt.items())
    if weights:  # minimisation may shrink the instance edge-free
        victim = max(weights)  # deterministic: lexicographically last edge
        weights[victim] = weights[victim] * 1.5
    bad = WeightTable.from_trusted(weights, ps.n)
    matching = lic_matching(bad, ps.quotas)
    return PipelineRun(
        "mutant:lic-weight-jitter", matching,
        matching.total_satisfaction(ps), weight_table=bad,
    )


def _mutant_weights_asymmetric(ps: PreferenceSystem, seed: int) -> PipelineRun:
    """LIC weights: build w(i,j) from ΔS̄_i^j alone, dropping ΔS̄_j^i.

    Breaks the symmetry Lemma 5 needs; caught by the symmetric-weights
    oracle and by matching divergence.
    """
    from repro.core.lic import lic_matching
    from repro.core.satisfaction import delta_static

    weights = {(i, j): delta_static(ps, i, j) for i, j in ps.edges()}
    bad = WeightTable.from_trusted(weights, ps.n)
    matching = lic_matching(bad, ps.quotas)
    return PipelineRun(
        "mutant:weights-asymmetric", matching,
        matching.total_satisfaction(ps), weight_table=bad,
    )


def _mutant_lid_lock_drop(ps: PreferenceSystem, seed: int) -> PipelineRun:
    """LID locking: lose the heaviest locked edge after the run.

    Models a lock-release bug; caught as a matching divergence (the
    edge is present in every healthy pipeline).
    """
    from repro.core.fast import satisfaction_weights_fast
    from repro.core.fast_lid import lid_matching_fast

    wt = satisfaction_weights_fast(ps)
    res = lid_matching_fast(wt, ps.quotas)
    matching = res.matching.copy()
    edges = matching.edges()
    if edges:
        victim = max(edges, key=lambda e: wt.key(*e))
        matching.remove(*victim)
    return PipelineRun(
        "mutant:lid-lock-drop", matching,
        matching.total_satisfaction(ps),
        prop_messages=res.prop_messages, rej_messages=res.rej_messages,
        weight_table=wt,
    )


def _mutant_lid_lock_forge(ps: PreferenceSystem, seed: int) -> PipelineRun:
    """LID locking: forge a lock on a link that does not exist.

    Prefers a non-adjacent pair (edge-locality violation); on complete
    graphs falls back to force-adding an unmatched potential edge
    (quota violation or matching divergence).
    """
    from repro.core.lid import run_lid
    from repro.core.weights import satisfaction_weights

    wt = satisfaction_weights(ps)
    res = run_lid(wt, ps.quotas, seed=seed)
    matching = res.matching.copy()
    forged = None
    for i in range(ps.n):
        for j in range(i + 1, ps.n):
            if not ps.has_edge(i, j):
                forged = (i, j)
                break
        if forged:
            break
    if forged is None:
        forged = next(
            (e for e in ps.edges() if not matching.has_edge(*e)), None
        )
    if forged is not None:
        matching.add(*forged)
    return PipelineRun(
        "mutant:lid-lock-forge", matching,
        _safe_total(matching, ps),
        weight_table=wt,
    )


def _mutant_quota_inflate(ps: PreferenceSystem, seed: int) -> PipelineRun:
    """Quota handling: run LIC with every quota off by one (b_i + 1).

    The classic clamp-forgotten bug; caught by the quota oracle (nodes
    exceed b_i) and by matching divergence.
    """
    from repro.core.lic import lic_matching
    from repro.core.weights import satisfaction_weights

    wt = satisfaction_weights(ps)
    matching = lic_matching(wt, [q + 1 for q in ps.quotas])
    return PipelineRun(
        "mutant:quota-inflate", matching,
        _safe_total(matching, ps),
        weight_table=wt,
    )


def _mutant_quota_starve(ps: PreferenceSystem, seed: int) -> PipelineRun:
    """Quota handling: run LIC with quotas clamped one too low.

    Caught as a matching divergence whenever some node wanted its full
    quota (guaranteed on the smoke instances, which use b_i ≥ 2).
    """
    from repro.core.lic import lic_matching
    from repro.core.weights import satisfaction_weights

    wt = satisfaction_weights(ps)
    matching = lic_matching(wt, [max(1, q - 1) for q in ps.quotas])
    return PipelineRun(
        "mutant:quota-starve", matching,
        matching.total_satisfaction(ps), weight_table=wt,
    )


def _mutant_satisfaction_misscore(ps: PreferenceSystem, seed: int) -> PipelineRun:
    """Scoring: report the static profile (eq. 6) as the full one (eq. 1).

    Caught by the satisfaction oracle's exact recomputation whenever
    any node holds ≥ 2 connections (the dynamic term is then positive).
    """
    from repro.core.backend import get_backend

    be = get_backend("reference")
    wt = be.build_weights(ps)
    matching = be.lic(wt, ps.quotas)
    profile = be.satisfaction_profile(ps, matching, kind="static")
    return PipelineRun(
        "mutant:satisfaction-misscore", matching, float(profile.sum()),
        profile=profile, weight_table=wt,
    )


def _mutant_lid_truncation_off_by_one(ps: PreferenceSystem, seed: int) -> PipelineRun:
    """Round cap off by one: honour ``max_rounds=k`` by running k-1 waves.

    The classic ``<`` vs ``<=`` budget bug.  The mutant claims the k3
    truncation battery's budget (joining its diff group) but executes
    one wave less, so it misses the locks the last wave would have
    confirmed; caught as a matching (and blocking-pairs) divergence
    against the genuine truncated reference at the same k.
    """
    from repro.core.lid import solve_lid
    from repro.testing.differential import TRUNCATION_KS

    k = TRUNCATION_KS["k3"]
    res, wt = solve_lid(ps, seed=seed, backend="fast", max_rounds=max(0, k - 1))
    return PipelineRun(
        "mutant:lid-truncation-off-by-one", res.matching,
        res.matching.total_satisfaction(ps),
        prop_messages=res.prop_messages, rej_messages=res.rej_messages,
        weight_table=wt,
        blocking_pairs=res.truncation.blocking_pairs,
        diff_group="trunc@k3",
    )


MUTATIONS: dict[str, Callable[[PreferenceSystem, int], PipelineRun]] = {
    "lic-weight-jitter": _mutant_lic_weight_jitter,
    "weights-asymmetric": _mutant_weights_asymmetric,
    "lid-lock-drop": _mutant_lid_lock_drop,
    "lid-lock-forge": _mutant_lid_lock_forge,
    "lid-truncation-off-by-one": _mutant_lid_truncation_off_by_one,
    "quota-inflate": _mutant_quota_inflate,
    "quota-starve": _mutant_quota_starve,
    "satisfaction-misscore": _mutant_satisfaction_misscore,
}


def mutant_pipeline(name: str) -> Callable[[PreferenceSystem, int], PipelineRun]:
    """Look up a planted-bug pipeline by registry name."""
    try:
        return MUTATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown mutation {name!r}; known: {sorted(MUTATIONS)}"
        ) from None
