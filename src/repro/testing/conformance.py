"""The conformance engine behind ``python -m repro conformance``.

Three modes, composed by the CLI:

- :func:`conformance_sweep` — run a grid of generated instances
  (graph family × preference model × quota distribution, n up to the
  requested ceiling) through every backend pipeline and collect
  divergences / oracle violations.  Small cells additionally check the
  Theorem 1 (``½(1+1/b_max)``) and Theorem 3 (``¼(1+1/b_max)``) bounds
  against the exact MILP optima.
- :func:`mutation_smoke` — plant every seeded bug from
  :mod:`repro.testing.mutations` and assert the engine *catches* each
  one; the catching divergence is minimised and (optionally) written
  as a replayable repro file.
- :func:`replay_repro` — re-run a repro file deterministically and
  report whether the recorded divergence kinds reproduce exactly.

The smoke preset (sweep at ``n ≤ 300`` plus mutation smoke) is the
``conformance-smoke`` CI merge gate; it exits non-zero iff a divergence
or oracle violation is found on the real pipelines, or a planted bug
goes uncaught.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.core.preferences import PreferenceSystem
from repro.testing.differential import (
    DEFAULT_PIPELINES,
    TRUNCATED_PIPELINES,
    DifferentialReport,
    run_differential,
)
from repro.testing.minimise import (
    ConformanceRepro,
    minimise_instance,
    save_repro,
)
from repro.testing.mutations import MUTATIONS, mutant_pipeline
from repro.testing.strategies import InstanceSpec, generate_instance, spec_grid

__all__ = [
    "SweepCell",
    "SweepResult",
    "MutationOutcome",
    "MutationSmokeResult",
    "conformance_sweep",
    "mutation_bases",
    "mutation_smoke",
    "capture_repro",
    "replay_repro",
    "smoke_specs",
    "truncation_smoke_specs",
    "truncation_pipelines",
]

# exact-bound checks solve two MILPs per cell; keep them to small cells
BOUND_CHECK_MAX_N = 40


@dataclass
class SweepCell:
    """One instance's differential outcome inside a sweep."""

    spec: InstanceSpec
    report: DifferentialReport

    @property
    def ok(self) -> bool:
        return self.report.ok

    def row(self) -> dict:
        """Flat record for the CLI table."""
        return {
            "cell": self.spec.label(),
            "pipelines": len(self.report.runs),
            "divergences": len(self.report.divergences),
            "status": "ok" if self.ok else "FAIL",
        }


@dataclass
class SweepResult:
    """All cells of a differential sweep."""

    cells: list[SweepCell] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.cells)

    @property
    def failures(self) -> list[SweepCell]:
        return [c for c in self.cells if not c.ok]


@dataclass
class MutationOutcome:
    """Did the engine catch one planted bug — and on how small a case?"""

    mutation: str
    caught: bool
    divergence_kinds: tuple[str, ...] = ()
    repro: Optional[ConformanceRepro] = None
    repro_path: Optional[Path] = None


@dataclass
class MutationSmokeResult:
    """Outcome of planting every registered mutation."""

    outcomes: list[MutationOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every planted bug was caught."""
        return all(o.caught for o in self.outcomes)

    @property
    def missed(self) -> list[str]:
        return [o.mutation for o in self.outcomes if not o.caught]


def smoke_specs(max_n: int = 300, seeds: Sequence[int] = (0,)) -> list[InstanceSpec]:
    """The smoke sweep grid: broad small cells plus a few large ones.

    Small cells cross family × preference model × quota model; the
    large cells (``er``/``ba`` at ``max_n``) exercise the fast engines
    at a size where a batching bug could not hide.
    """
    specs = list(spec_grid(
        families=("er", "geo", "ba", "ws", "reg"),
        sizes=(20,),
        preference_models=("uniform", "shared"),
        quota_models=("constant", "degree"),
        seeds=seeds,
    ))
    specs += list(spec_grid(
        families=("er", "ba"),
        sizes=(60,),
        preference_models=("uniform", "distance"),
        quota_models=("constant", "uniform"),
        seeds=seeds,
    ))
    specs += [
        InstanceSpec(family="er", n=max_n, preference_model="uniform",
                     quota_model="constant", quota=3, seed=s)
        for s in seeds
    ]
    specs += [
        InstanceSpec(family="ba", n=max_n, preference_model="shared",
                     quota_model="uniform", quota=4, seed=s)
        for s in seeds
    ]
    return specs


def truncation_smoke_specs(
    max_n: int = 60, seeds: Sequence[int] = (0,)
) -> list[InstanceSpec]:
    """The k-differential battery: small cells across families.

    Sized for the ``truncation-smoke`` CI job — each cell runs every
    truncated pipeline at every registered k on top of the defaults, so
    the grid stays deliberately smaller than :func:`smoke_specs`.
    """
    specs = list(spec_grid(
        families=("er", "geo", "ba"),
        sizes=(20,),
        preference_models=("uniform", "shared"),
        quota_models=("constant",),
        seeds=seeds,
    ))
    specs += [
        InstanceSpec(family="er", n=max_n, preference_model="uniform",
                     quota_model="degree", quota=3, seed=s)
        for s in seeds
    ]
    specs += [
        InstanceSpec(family="ws", n=max_n, preference_model="shared",
                     quota_model="uniform", quota=4, seed=s)
        for s in seeds
    ]
    return specs


def truncation_pipelines() -> tuple[str, ...]:
    """Default + truncated pipelines — the k-differential pipeline set.

    The untruncated defaults ride along so the ``kinf`` runs (which
    exercise the truncation code path at a budget every instance
    converges within) are pinned against the genuine converged outputs.
    """
    return tuple(DEFAULT_PIPELINES) + tuple(TRUNCATED_PIPELINES)


def conformance_sweep(
    specs: Optional[Sequence[InstanceSpec]] = None,
    pipelines: Sequence[str] = DEFAULT_PIPELINES,
    bound_check_max_n: int = BOUND_CHECK_MAX_N,
    progress=None,
) -> SweepResult:
    """Differential-sweep every spec; oracle bounds on small cells only."""
    result = SweepResult()
    for spec in (specs if specs is not None else smoke_specs()):
        ps = generate_instance(spec)
        report = run_differential(
            ps, seed=spec.seed, pipelines=pipelines,
            oracle_bounds=ps.n <= bound_check_max_n,
        )
        result.cells.append(SweepCell(spec=spec, report=report))
        if progress is not None:
            progress(result.cells[-1])
    return result


# the instance every mutation is planted on: dense enough that all
# planted bugs manifest (quota 3 ≥ 2 so starvation bites, ≥ 2
# connections per node so the eq.-1 dynamic term is positive,
# non-complete so a forged non-edge exists, and > 3 convergence rounds
# so the off-by-one round cap loses a wave)
_MUTATION_SPEC = InstanceSpec(
    family="er", n=18, preference_model="uniform",
    quota_model="constant", quota=3, seed=0,
)

# planted bugs are diffed against the reference plus one fast pipeline —
# enough to witness every divergence kind without paying for all five
_MUTATION_BASE_PIPELINES = ("lic-reference", "lid-fast")

# mutations whose divergence only shows against a specific diff target
# override the default bases: the truncation mutant joins the k3 diff
# group, so the genuine truncated reference at k3 must be present
_MUTATION_BASES = {
    "lid-truncation-off-by-one": ("lic-reference", "lid-truncated-reference@k3"),
}


def mutation_bases(mutation: str) -> tuple[str, ...]:
    """Base pipelines a planted bug is diffed against."""
    return _MUTATION_BASES.get(mutation, _MUTATION_BASE_PIPELINES)


def _mutation_report(
    ps: PreferenceSystem, mutation: str, seed: int
) -> DifferentialReport:
    return run_differential(
        ps, seed=seed,
        pipelines=mutation_bases(mutation),
        extra_pipelines={f"mutant:{mutation}": mutant_pipeline(mutation)},
    )


def _mutant_divergences(report: DifferentialReport, mutation: str):
    tag = f"mutant:{mutation}"
    return [d for d in report.divergences if tag in (d.left, d.right)]


def mutation_smoke(
    mutations: Optional[Sequence[str]] = None,
    seed: int = 0,
    minimise: bool = True,
    out_dir: "str | Path | None" = None,
    progress=None,
) -> MutationSmokeResult:
    """Plant every registered bug and assert the engine catches it.

    With ``minimise=True`` each caught divergence is shrunk to a
    1-minimal instance; with ``out_dir`` set, each minimised failure is
    serialised as a replayable ``conformance_repro`` JSON file named
    after its mutation.
    """
    result = MutationSmokeResult()
    ps = generate_instance(_MUTATION_SPEC)
    for mutation in (mutations if mutations is not None else sorted(MUTATIONS)):
        report = _mutation_report(ps, mutation, seed)
        caught = bool(_mutant_divergences(report, mutation))
        outcome = MutationOutcome(mutation=mutation, caught=caught)
        if caught:
            repro = capture_repro(ps, mutation=mutation, seed=seed,
                                  minimise=minimise)
            outcome.repro = repro
            outcome.divergence_kinds = repro.divergence_kinds
            if out_dir is not None:
                path = Path(out_dir) / f"{mutation}.json"
                path.parent.mkdir(parents=True, exist_ok=True)
                save_repro(repro, path)
                outcome.repro_path = path
        result.outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    return result


def capture_repro(
    ps: PreferenceSystem,
    mutation: Optional[str] = None,
    seed: int = 0,
    pipelines: Optional[Sequence[str]] = None,
    minimise: bool = True,
) -> ConformanceRepro:
    """Shrink a diverging instance and package it as a repro.

    For ``mutation=None`` the divergence must exist between the real
    pipelines (an organic bug); otherwise the named planted bug is
    re-applied at every minimisation step.  ``pipelines`` defaults to
    the mutation's own base pipelines (or the shared default bases).
    """
    if pipelines is None:
        pipelines = (
            mutation_bases(mutation)
            if mutation is not None
            else _MUTATION_BASE_PIPELINES
        )

    def diverges(candidate: PreferenceSystem) -> bool:
        if mutation is not None:
            report = _mutation_report(candidate, mutation, seed)
            return bool(_mutant_divergences(report, mutation))
        return not run_differential(
            candidate, seed=seed, pipelines=pipelines
        ).ok

    minimal = minimise_instance(ps, diverges) if minimise else ps
    final = (
        _mutation_report(minimal, mutation, seed)
        if mutation is not None
        else run_differential(minimal, seed=seed, pipelines=pipelines)
    )
    kinds = tuple(sorted({d.kind for d in final.divergences}))
    label = f"planted bug {mutation!r}" if mutation else "organic divergence"
    return ConformanceRepro(
        instance=minimal,
        seed=seed,
        pipelines=tuple(pipelines),
        mutation=mutation,
        description=(
            f"{label}: n={minimal.n}, m={minimal.m}, "
            f"kinds={list(kinds)}"
        ),
        divergence_kinds=kinds,
    )


def replay_repro(repro: ConformanceRepro) -> tuple[bool, DifferentialReport]:
    """Re-run a repro; ``True`` iff the recorded outcome reproduces.

    A repro with recorded divergence kinds reproduces when the replay
    yields exactly those kinds; a clean repro (no kinds — a regression
    fixture) reproduces when the replay is clean too.
    """
    extra = (
        {f"mutant:{repro.mutation}": mutant_pipeline(repro.mutation)}
        if repro.mutation
        else None
    )
    pipelines = repro.pipelines or DEFAULT_PIPELINES
    report = run_differential(
        repro.instance, seed=repro.seed,
        pipelines=pipelines, extra_pipelines=extra,
    )
    kinds = tuple(sorted({d.kind for d in report.divergences}))
    return kinds == tuple(sorted(repro.divergence_kinds)), report
