"""Conformance subsystem: the repo's single source of correctness truth.

Four backends compute the paper's matching (reference LIC, fast LIC,
reference LID, fast LID) plus the resilient runtime; this package keeps
them honest:

- :mod:`repro.testing.strategies` — seeded instance generators (graph
  family × preference model × quota distribution) and the hypothesis
  strategies shared by the whole test suite;
- :mod:`repro.testing.oracles` — structured verifiers returning typed
  :class:`~repro.testing.oracles.Violation` records (quota, locality,
  mutual consistency, exact eq.-1/4/6/9 recomputation, Theorem 1/3
  bounds vs the exact optima);
- :mod:`repro.testing.differential` — the cross-backend engine that
  diffs matchings, satisfaction totals and message-count invariants;
- :mod:`repro.testing.minimise` — greedy counterexample shrinking and
  replayable ``conformance_repro`` files;
- :mod:`repro.testing.mutations` — seeded planted bugs proving the
  engine actually catches failures;
- :mod:`repro.testing.conformance` — the sweep / mutation-smoke /
  replay engine behind ``python -m repro conformance``.
"""

from repro.testing.conformance import (
    MutationSmokeResult,
    SweepResult,
    capture_repro,
    conformance_sweep,
    mutation_smoke,
    replay_repro,
)
from repro.testing.differential import (
    DEFAULT_PIPELINES,
    DifferentialReport,
    Divergence,
    PIPELINES,
    PipelineRun,
    run_differential,
    run_pipeline,
)
from repro.testing.minimise import (
    ConformanceRepro,
    load_repro,
    minimise_instance,
    save_repro,
)
from repro.testing.mutations import MUTATIONS, mutant_pipeline
from repro.testing.oracles import OracleReport, Violation, verify_matching
from repro.testing.strategies import (
    InstanceSpec,
    generate_instance,
    generate_weighted_instance,
    preference_systems,
    random_ps,
    spec_grid,
    weighted_instances,
)

__all__ = [
    "MutationSmokeResult",
    "SweepResult",
    "capture_repro",
    "conformance_sweep",
    "mutation_smoke",
    "replay_repro",
    "DEFAULT_PIPELINES",
    "DifferentialReport",
    "Divergence",
    "PIPELINES",
    "PipelineRun",
    "run_differential",
    "run_pipeline",
    "ConformanceRepro",
    "load_repro",
    "minimise_instance",
    "save_repro",
    "MUTATIONS",
    "mutant_pipeline",
    "OracleReport",
    "Violation",
    "verify_matching",
    "InstanceSpec",
    "generate_instance",
    "generate_weighted_instance",
    "preference_systems",
    "random_ps",
    "spec_grid",
    "weighted_instances",
]
