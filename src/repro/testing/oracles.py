"""Structured matching verifiers — the repo's single source of truth.

Every check re-derives its property from first principles (the paper's
equations, computed here with :class:`fractions.Fraction` where floats
could hide an error) instead of trusting library code, and reports
**typed violation records** rather than booleans, so a failing
conformance run says *what* broke, *where*, and by *how much*:

- :func:`check_quota` — feasibility ``c_i ≤ b_i`` (and ``b_i`` itself
  within ``|L_i|``);
- :func:`check_edge_locality` — every matched edge is a potential
  connection ``(i, j) ∈ E``;
- :func:`check_mutual_consistency` — the connection relation is
  symmetric (``j ∈ C_i ⇔ i ∈ C_j``), including raw per-node lock sets
  from distributed runs;
- :func:`check_satisfaction` — recomputes eq. 1 / eq. 6 per node in
  exact rational arithmetic and confirms both the matching's own
  accounting and the telescoping identity with eq. 4 (summing
  ``ΔS_i^j`` over the ordered connection list reproduces ``S_i``);
- :func:`check_symmetric_weights` — every eq.-9 weight equals
  ``ΔS̄_i^j + ΔS̄_j^i`` (exact rational reference) and the table is
  symmetric with a strict total order;
- :func:`check_theorem1_bound` / :func:`check_theorem3_bound` — the
  ``½(1+1/b_max)`` and ``¼(1+1/b_max)`` guarantees against the exact
  optima of :mod:`repro.baselines.exact` (small instances only — MILP).

:func:`verify_matching` composes the per-matching checks into one
:class:`OracleReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Mapping, Optional, Sequence

from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem
from repro.core.weights import WeightTable

__all__ = [
    "Violation",
    "OracleReport",
    "check_quota",
    "check_edge_locality",
    "check_mutual_consistency",
    "check_satisfaction",
    "check_symmetric_weights",
    "check_theorem1_bound",
    "check_theorem3_bound",
    "verify_matching",
]

# relative tolerance for float-vs-exact comparisons: the float pipeline
# accumulates a handful of rounding steps, the rational reference none
REL_TOL = 1e-9


@dataclass(frozen=True)
class Violation:
    """One broken invariant, pinned to the entity that broke it.

    Attributes
    ----------
    check:
        Which oracle found it (``quota``, ``edge-locality``, ...).
    subject:
        The node id, edge pair, or global scope the violation is about.
    message:
        Human-readable account with the observed and expected values.
    observed, expected:
        The numeric discrepancy when one exists (``None`` otherwise) —
        minimisation and reports sort on the gap.
    """

    check: str
    subject: object
    message: str
    observed: Optional[float] = None
    expected: Optional[float] = None

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"[{self.check}] {self.subject}: {self.message}"


@dataclass
class OracleReport:
    """Outcome of a verification pass: all violations, grouped on demand."""

    violations: list[Violation] = field(default_factory=list)
    checks_run: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every executed check passed."""
        return not self.violations

    def by_check(self) -> dict[str, list[Violation]]:
        """Violations grouped by the oracle that raised them."""
        out: dict[str, list[Violation]] = {}
        for v in self.violations:
            out.setdefault(v.check, []).append(v)
        return out

    def extend(self, other: "OracleReport") -> "OracleReport":
        """Merge another report into this one (returns self)."""
        self.violations.extend(other.violations)
        self.checks_run.extend(
            c for c in other.checks_run if c not in self.checks_run
        )
        return self

    def summary(self) -> str:
        """One line per check: pass/fail with violation counts."""
        grouped = self.by_check()
        parts = []
        for check in self.checks_run:
            n = len(grouped.get(check, []))
            parts.append(f"{check}: {'ok' if n == 0 else f'{n} violation(s)'}")
        return "; ".join(parts) if parts else "no checks run"


def _adjacency(
    ps: PreferenceSystem,
    matching: "Matching | Sequence[Iterable[int]] | Mapping[int, Iterable[int]]",
) -> list[set[int]]:
    """Normalise a matching-like object to per-node partner sets."""
    if isinstance(matching, Matching):
        return [set(matching.connections(i)) for i in range(matching.n)]
    if isinstance(matching, Mapping):
        return [set(matching.get(i, ())) for i in range(ps.n)]
    return [set(conns) for conns in matching]


def check_quota(ps: PreferenceSystem, matching) -> OracleReport:
    """Feasibility: ``c_i ≤ b_i`` for every node (eq. 2's constraint)."""
    report = OracleReport(checks_run=["quota"])
    adj = _adjacency(ps, matching)
    for i, conns in enumerate(adj):
        b = ps.quota(i)
        if len(conns) > b:
            report.violations.append(Violation(
                check="quota", subject=i,
                message=f"node {i} holds {len(conns)} connections, quota b_{i}={b}",
                observed=float(len(conns)), expected=float(b),
            ))
    return report


def check_edge_locality(ps: PreferenceSystem, matching) -> OracleReport:
    """Locality: every matched edge is a potential connection of ``E``."""
    report = OracleReport(checks_run=["edge-locality"])
    adj = _adjacency(ps, matching)
    for i, conns in enumerate(adj):
        for j in conns:
            if not (0 <= j < ps.n) or not ps.has_edge(i, j):
                report.violations.append(Violation(
                    check="edge-locality", subject=(min(i, j), max(i, j)),
                    message=f"matched edge ({i},{j}) is not in E",
                ))
    return report


def check_mutual_consistency(ps: PreferenceSystem, matching) -> OracleReport:
    """Symmetry: ``j ∈ C_i ⇔ i ∈ C_j`` (no one-sided locks)."""
    report = OracleReport(checks_run=["mutual-consistency"])
    adj = _adjacency(ps, matching)
    for i, conns in enumerate(adj):
        for j in conns:
            if not (0 <= j < len(adj)) or i not in adj[j]:
                report.violations.append(Violation(
                    check="mutual-consistency", subject=(i, j),
                    message=f"node {i} is connected to {j} but not vice versa",
                ))
    return report


def _exact_full_satisfaction(ps: PreferenceSystem, i: int, conns: set[int]) -> Fraction:
    """Eq. 1 in exact rationals (independent of repro.core.satisfaction)."""
    b, ell, c = ps.quota(i), ps.list_length(i), len(conns)
    if b == 0:
        return Fraction(0)
    rank_sum = sum(ps.rank(i, j) for j in conns)
    return (
        Fraction(c, b)
        + Fraction(c * (c - 1), 2 * b * ell)
        - Fraction(rank_sum, b * ell)
    )


def _exact_static_satisfaction(ps: PreferenceSystem, i: int, conns: set[int]) -> Fraction:
    """Eq. 6 in exact rationals."""
    b, ell, c = ps.quota(i), ps.list_length(i), len(conns)
    if b == 0:
        return Fraction(0)
    rank_sum = sum(ps.rank(i, j) for j in conns)
    return Fraction(c, b) - Fraction(rank_sum, b * ell)


def _close(a: float, b: float, tol: float = REL_TOL) -> bool:
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


def check_satisfaction(
    ps: PreferenceSystem,
    matching,
    profile: Optional[Sequence[float]] = None,
    kind: str = "full",
) -> OracleReport:
    """Recompute per-node satisfaction (eq. 1 / eq. 6) in exact arithmetic.

    Confirms three things per node: the claimed ``profile`` (when given,
    e.g. a backend's ``satisfaction_profile``) matches the exact value;
    the library's own eq.-1 accounting
    (:func:`repro.core.satisfaction.full_satisfaction`) matches; and,
    for ``kind="full"``, the eq.-4 telescoping identity — summing the
    library's ``ΔS_i^j`` increments over the ordered connection list
    (connection ranks ``Q_i = 0..c-1``) lands on eq. 1.
    """
    from repro.core.satisfaction import delta_full, full_satisfaction, static_satisfaction

    report = OracleReport(checks_run=["satisfaction"])
    adj = _adjacency(ps, matching)
    exact_fn = {"full": _exact_full_satisfaction, "static": _exact_static_satisfaction}[kind]
    library_fn = {"full": full_satisfaction, "static": static_satisfaction}[kind]
    for i, conns in enumerate(adj):
        if len(conns) > ps.quota(i):
            continue  # reported by check_quota; eq. 1 is undefined here
        if any(not ps.has_edge(i, j) for j in conns):
            continue  # reported by check_edge_locality; rank is undefined
        exact = exact_fn(ps, i, conns)
        if profile is not None and not _close(float(profile[i]), float(exact)):
            report.violations.append(Violation(
                check="satisfaction", subject=i,
                message=f"claimed S_{i}={float(profile[i]):.12g} but eq. {'1' if kind == 'full' else '6'} "
                        f"gives {float(exact):.12g}",
                observed=float(profile[i]), expected=float(exact),
            ))
        library = library_fn(ps, i, conns)
        if not _close(library, float(exact)):
            report.violations.append(Violation(
                check="satisfaction", subject=i,
                message=f"library scores S_{i}={library:.12g} but the exact "
                        f"rational recomputation gives {float(exact):.12g}",
                observed=library, expected=float(exact),
            ))
        if kind == "full" and ps.quota(i) > 0:
            # eq. 4 telescope over C_i in preference order (Q_i(j) = index)
            ordered = sorted(conns, key=lambda j: ps.rank(i, j))
            telescoped = sum(
                delta_full(ps, i, j, q) for q, j in enumerate(ordered)
            )
            if not _close(telescoped, float(exact)):
                report.violations.append(Violation(
                    check="satisfaction", subject=i,
                    message=f"eq.-4 increments sum to {telescoped:.12g} "
                            f"but eq. 1 gives {float(exact):.12g}",
                    observed=telescoped, expected=float(exact),
                ))
    return report


def check_symmetric_weights(
    ps: PreferenceSystem, wt: WeightTable
) -> OracleReport:
    """Eq.-9 consistency: ``w(i,j) = ΔS̄_i^j + ΔS̄_j^i``, exact reference.

    Also asserts the table covers exactly ``E`` and that edge keys form
    a strict total order (the device the greedy algorithms rely on).
    """
    report = OracleReport(checks_run=["symmetric-weights"])
    table_edges = set(wt.edges())
    ps_edges = set(ps.edges())
    for e in sorted(ps_edges - table_edges):
        report.violations.append(Violation(
            check="symmetric-weights", subject=e,
            message=f"potential connection {e} missing from the weight table",
        ))
    for e in sorted(table_edges - ps_edges):
        report.violations.append(Violation(
            check="symmetric-weights", subject=e,
            message=f"weight table contains {e} which is not in E",
        ))
    for i, j in sorted(table_edges & ps_edges):
        exact = (
            Fraction(ps.list_length(i) - ps.rank(i, j), ps.list_length(i) * ps.quota(i))
            + Fraction(ps.list_length(j) - ps.rank(j, i), ps.list_length(j) * ps.quota(j))
        )
        got = wt.weight(i, j)
        if not _close(got, float(exact)):
            report.violations.append(Violation(
                check="symmetric-weights", subject=(i, j),
                message=f"w({i},{j})={got:.12g} but eq. 9 gives {float(exact):.12g}",
                observed=got, expected=float(exact),
            ))
        if wt.weight(j, i) != got:  # symmetric lookup must agree
            report.violations.append(Violation(
                check="symmetric-weights", subject=(i, j),
                message=f"asymmetric lookup: w({i},{j})={got} != w({j},{i})={wt.weight(j, i)}",
            ))
    keys = [wt.key(i, j) for i, j in table_edges]
    if len(set(keys)) != len(keys):  # pragma: no cover - keys embed edge ids
        report.violations.append(Violation(
            check="symmetric-weights", subject="*",
            message="edge keys are not a strict total order (duplicate keys)",
        ))
    return report


def check_theorem1_bound(
    ps: PreferenceSystem, optimum: Optional[float] = None
) -> OracleReport:
    """Theorem 1: the exact max-weight matching under eq.-9 weights earns
    at least ``½(1+1/b_max)`` of the exact satisfaction optimum.

    Solves both MILPs (pass ``optimum`` to reuse a cached satisfaction
    optimum) — small instances only.
    """
    from repro.baselines.exact import (
        max_weight_bmatching_milp,
        optimal_satisfaction,
    )
    from repro.core.analysis import theorem1_bound
    from repro.core.weights import satisfaction_weights

    report = OracleReport(checks_run=["theorem1-bound"])
    wt = satisfaction_weights(ps)
    weight_opt = max_weight_bmatching_milp(wt, ps.quotas)
    achieved = weight_opt.total_satisfaction(ps)
    opt = optimal_satisfaction(ps) if optimum is None else float(optimum)
    bound = theorem1_bound(ps.b_max)
    if achieved + REL_TOL * max(1.0, opt) < bound * opt:
        report.violations.append(Violation(
            check="theorem1-bound", subject="*",
            message=f"weight-optimal matching earns {achieved:.12g} satisfaction, "
                    f"below {bound:.4g} x OPT={opt:.12g}",
            observed=achieved, expected=bound * opt,
        ))
    return report


def check_theorem3_bound(
    ps: PreferenceSystem, matching, optimum: Optional[float] = None
) -> OracleReport:
    """Theorem 3: a LIC/LID output earns ≥ ``¼(1+1/b_max)`` of optimum."""
    from repro.baselines.exact import optimal_satisfaction
    from repro.core.analysis import theorem3_bound

    report = OracleReport(checks_run=["theorem3-bound"])
    adj = _adjacency(ps, matching)
    achieved = float(sum(
        _exact_full_satisfaction(ps, i, conns)
        for i, conns in enumerate(adj)
        if len(conns) <= ps.quota(i)
    ))
    opt = optimal_satisfaction(ps) if optimum is None else float(optimum)
    bound = theorem3_bound(ps.b_max)
    if achieved + REL_TOL * max(1.0, opt) < bound * opt:
        report.violations.append(Violation(
            check="theorem3-bound", subject="*",
            message=f"greedy matching earns {achieved:.12g} satisfaction, "
                    f"below {bound:.4g} x OPT={opt:.12g}",
            observed=achieved, expected=bound * opt,
        ))
    return report


def verify_matching(
    ps: PreferenceSystem,
    matching,
    wt: Optional[WeightTable] = None,
    profile: Optional[Sequence[float]] = None,
    bounds: bool = False,
) -> OracleReport:
    """Run the full oracle battery against one matching.

    Parameters
    ----------
    matching:
        A :class:`Matching`, a per-node partner-set sequence, or a
        mapping node → partners (raw lock sets from distributed runs).
    wt:
        When given, also check eq.-9 consistency of the weight table.
    profile:
        When given, also check a backend's claimed per-node satisfaction
        against the exact recomputation.
    bounds:
        When ``True``, additionally solve the exact optima and check the
        Theorem 1 and Theorem 3 guarantees (MILP — keep instances small).
    """
    report = OracleReport()
    report.extend(check_quota(ps, matching))
    report.extend(check_edge_locality(ps, matching))
    report.extend(check_mutual_consistency(ps, matching))
    report.extend(check_satisfaction(ps, matching, profile=profile))
    if wt is not None:
        report.extend(check_symmetric_weights(ps, wt))
    if bounds:
        from repro.baselines.exact import optimal_satisfaction

        opt = optimal_satisfaction(ps)
        report.extend(check_theorem1_bound(ps, optimum=opt))
        report.extend(check_theorem3_bound(ps, matching, optimum=opt))
    return report
