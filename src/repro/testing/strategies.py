"""Shared instance generators for the conformance subsystem and tests.

One module is the single source of generated instances for the whole
repo, replacing the per-file hypothesis strategies that used to live in
``tests/conftest.py`` (and its copies):

- **seeded generators** — :class:`InstanceSpec` plus
  :func:`generate_instance` build a :class:`PreferenceSystem` from the
  cross product *graph family × preference model × quota distribution*,
  fully determined by the spec (same spec ⇒ same instance).  The
  conformance sweep (:mod:`repro.testing.conformance`) iterates a grid
  of specs; benchmarks can reuse them for reproducible corpora.
- **hypothesis strategies** — :func:`preference_systems` and
  :func:`weighted_instances`, the property-testing strategies every
  test file imports from here.  They are defined lazily so importing
  this module (e.g. from the CLI) does not require hypothesis.

The generators deliberately cover the quota edge cases the oracles care
about: ``b_i = |L_i|`` (saturating quotas), ``b_i = 1``, isolated
nodes (empty preference lists, quota normalised to 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.preferences import PreferenceSystem
from repro.core.weights import WeightTable
from repro.experiments.instances import FAMILIES, topology_for_family
from repro.utils.rng import spawn_rng

__all__ = [
    "InstanceSpec",
    "PREFERENCE_MODELS",
    "QUOTA_MODELS",
    "generate_instance",
    "generate_weighted_instance",
    "spec_grid",
    "random_ps",
    "preference_systems",
    "weighted_instances",
]

PREFERENCE_MODELS = ("uniform", "shared", "distance")
QUOTA_MODELS = ("constant", "uniform", "degree", "one")


@dataclass(frozen=True)
class InstanceSpec:
    """A fully seeded recipe for one generated instance.

    Attributes
    ----------
    family:
        Graph family (``er``/``geo``/``ba``/``ws``/``reg``, see
        :data:`repro.experiments.instances.FAMILIES`).
    n:
        Number of nodes.
    preference_model:
        How nodes rank their neighbourhoods: ``uniform`` (independent
        random permutations — the paper's default regime, preference
        cycles whp), ``shared`` (a global desirability score plus
        private noise — correlated lists), ``distance`` (rank by
        distance between random latent positions — metric lists).
    quota_model:
        ``constant`` (every node ``b_i = quota``), ``uniform``
        (``b_i ~ U{1..quota}``), ``degree`` (``b_i = |L_i|`` — the
        saturating edge case), ``one`` (``b_i = 1``, classic stable
        roommates).
    quota:
        The quota parameter consumed by ``quota_model``.
    seed:
        Master seed; all randomness is spawned from it.
    """

    family: str = "er"
    n: int = 30
    preference_model: str = "uniform"
    quota_model: str = "constant"
    quota: int = 3
    seed: int = 0

    def label(self) -> str:
        """Compact cell label for reports (``er/n=30/uniform/constant-3/s0``)."""
        return (
            f"{self.family}/n={self.n}/{self.preference_model}/"
            f"{self.quota_model}-{self.quota}/s{self.seed}"
        )


def _rank_neighbourhoods(
    adjacency: Sequence[Sequence[int]],
    model: str,
    rng: np.random.Generator,
) -> dict[int, list[int]]:
    n = len(adjacency)
    if model == "uniform":
        rankings = {}
        for i in range(n):
            neigh = np.array(adjacency[i], dtype=int)
            rng.shuffle(neigh)
            rankings[i] = [int(x) for x in neigh]
        return rankings
    if model == "shared":
        desirability = rng.uniform(0.0, 1.0, n)
        return {
            i: sorted(
                adjacency[i],
                key=lambda j: (-(desirability[j] + 0.25 * rng.uniform()), j),
            )
            for i in range(n)
        }
    if model == "distance":
        pos = rng.uniform(0.0, 1.0, (n, 2))
        return {
            i: sorted(
                adjacency[i],
                key=lambda j: (float(np.linalg.norm(pos[i] - pos[j])), j),
            )
            for i in range(n)
        }
    raise ValueError(f"unknown preference model {model!r}; known: {PREFERENCE_MODELS}")


def _draw_quotas(
    adjacency: Sequence[Sequence[int]],
    model: str,
    quota: int,
    rng: np.random.Generator,
) -> list[int]:
    degs = [max(len(a), 1) for a in adjacency]
    if model == "constant":
        return [quota] * len(adjacency)
    if model == "uniform":
        return [int(rng.integers(1, quota + 1)) for _ in adjacency]
    if model == "degree":
        return degs  # clamped to |L_i| by PreferenceSystem anyway
    if model == "one":
        return [1] * len(adjacency)
    raise ValueError(f"unknown quota model {model!r}; known: {QUOTA_MODELS}")


def generate_instance(spec: InstanceSpec) -> PreferenceSystem:
    """Materialise the instance a spec describes (deterministic)."""
    if spec.family not in FAMILIES:
        raise ValueError(f"unknown family {spec.family!r}; known: {FAMILIES}")
    rng = spawn_rng(spec.seed, "conformance", spec.family, str(spec.n),
                    spec.preference_model, spec.quota_model, str(spec.quota))
    topo = topology_for_family(spec.family, spec.n, rng)
    rankings = _rank_neighbourhoods(topo.adjacency, spec.preference_model, rng)
    quotas = _draw_quotas(topo.adjacency, spec.quota_model, spec.quota, rng)
    return PreferenceSystem(rankings, quotas)


def generate_weighted_instance(
    spec: InstanceSpec,
) -> tuple[WeightTable, list[int]]:
    """A pure weighted instance over the spec's topology (U(0,1] weights)."""
    rng = spawn_rng(spec.seed, "conformance-weighted", spec.family, str(spec.n))
    topo = topology_for_family(spec.family, spec.n, rng)
    weights = {(i, j): float(rng.uniform(1e-6, 1.0)) for i, j in topo.edges()}
    quotas = _draw_quotas(topo.adjacency, spec.quota_model, spec.quota, rng)
    return WeightTable(weights, topo.n), quotas


def spec_grid(
    families: Sequence[str] = ("er", "ba"),
    sizes: Sequence[int] = (20, 60),
    preference_models: Sequence[str] = ("uniform", "shared"),
    quota_models: Sequence[str] = ("constant", "degree"),
    quota: int = 3,
    seeds: Sequence[int] = (0,),
) -> Iterator[InstanceSpec]:
    """The cross-product grid of specs swept by the conformance engine."""
    for family in families:
        for n in sizes:
            for pref in preference_models:
                for qm in quota_models:
                    for seed in seeds:
                        yield InstanceSpec(
                            family=family, n=n, preference_model=pref,
                            quota_model=qm, quota=quota, seed=seed,
                        )


def random_ps(
    n: int, p: float, quota, seed: int, ensure_edges: bool = False
) -> PreferenceSystem:
    """Random ER graph with uniformly random rankings (quick test helper).

    Kept signature-compatible with the helper that used to live in
    ``tests/conftest.py``; prefer :func:`generate_instance` for anything
    that wants family/model coverage.
    """
    rng = np.random.default_rng(seed)
    adj: dict[int, list[int]] = {i: [] for i in range(n)}
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                adj[i].append(j)
                adj[j].append(i)
    if ensure_edges and not any(adj.values()) and n >= 2:
        adj[0].append(1)
        adj[1].append(0)
    rankings = {}
    for i in range(n):
        neigh = list(adj[i])
        rng.shuffle(neigh)
        rankings[i] = neigh
    return PreferenceSystem(rankings, quota)


# ----------------------------------------------------------------------
# hypothesis strategies (lazy: importing this module never needs
# hypothesis; calling the strategies does)
# ----------------------------------------------------------------------

_strategies: dict[str, object] = {}


def _build_strategies():
    """Define the composite strategies once, on first use."""
    from hypothesis import strategies as st

    @st.composite
    def preference_systems(draw, min_n=2, max_n=8, max_quota=3):
        """Hypothesis strategy: small random preference systems.

        Edge set and ranking permutations are derived from drawn
        integers so instances are fully determined by the draw
        (reproducible shrinking).
        """
        n = draw(st.integers(min_n, max_n))
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        included = draw(
            st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs))
        )
        adj: dict[int, list[int]] = {i: [] for i in range(n)}
        for (i, j), keep in zip(pairs, included):
            if keep:
                adj[i].append(j)
                adj[j].append(i)
        rankings = {}
        for i in range(n):
            rankings[i] = draw(st.permutations(adj[i])) if adj[i] else []
        quotas = [
            draw(st.integers(1, max_quota)) if adj[i] else 1 for i in range(n)
        ]
        return PreferenceSystem(rankings, quotas)

    @st.composite
    def weighted_instances(draw, min_n=2, max_n=8, max_quota=3):
        """Hypothesis strategy: (WeightTable, quotas) with positive weights."""
        n = draw(st.integers(min_n, max_n))
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        included = draw(
            st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs))
        )
        weights = {}
        for (i, j), keep in zip(pairs, included):
            if keep:
                weights[(i, j)] = draw(
                    st.floats(min_value=0.01, max_value=10.0, allow_nan=False)
                )
        quotas = [draw(st.integers(1, max_quota)) for _ in range(n)]
        return WeightTable(weights, n), quotas

    _strategies["preference_systems"] = preference_systems
    _strategies["weighted_instances"] = weighted_instances


def preference_systems(min_n=2, max_n=8, max_quota=3):
    """Hypothesis strategy for small :class:`PreferenceSystem` instances."""
    if not _strategies:
        _build_strategies()
    return _strategies["preference_systems"](min_n=min_n, max_n=max_n, max_quota=max_quota)


def weighted_instances(min_n=2, max_n=8, max_quota=3):
    """Hypothesis strategy for small ``(WeightTable, quotas)`` instances."""
    if not _strategies:
        _build_strategies()
    return _strategies["weighted_instances"](min_n=min_n, max_n=max_n, max_quota=max_quota)
