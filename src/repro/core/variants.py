"""Algorithm variants from the paper's future-work agenda (§7).

The conclusion sketches three research directions; this module provides
concrete, testable instantiations of two of them (the third — churn —
lives in :mod:`repro.overlay.churn`):

1. *"variations of the algorithm that can give minimum satisfaction
   guarantees individually to each collaborating peer"* —
   :func:`two_phase_lid`: a reservation scheme that first matches a
   rank-truncated overlay (everyone competes only for mutually top-ranked
   partners, with reduced quotas) and then fills residual quota by plain
   LID on the remaining graph.  The first phase can only award
   high-static-value edges, which lifts the per-node *minimum*
   satisfaction on contention-heavy instances (measured in bench A3/F1
   companions), at a small cost in total satisfaction.

2. *"achieve a better approximation ratio"* (exploration) —
   :func:`alpha_weight_table`: a generalised weight family
   ``w_α(i,j) = (1 - R_i(j)/ℓ_i)^α / b_i + (1 - R_j(i)/ℓ_j)^α / b_j``.
   ``α = 1`` recovers eq. 9; larger ``α`` emphasises top ranks.  The
   ablation bench sweeps α and shows eq. 9 is the right trade-off for
   the *total* satisfaction objective while large α trades total for
   minimum satisfaction.

Both variants return ordinary :class:`~repro.core.matching.Matching`
objects, so every certificate in :mod:`repro.core.analysis` applies.
"""

from __future__ import annotations

from repro.core.lic import lic_matching
from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem
from repro.core.weights import WeightTable, satisfaction_weights

__all__ = ["two_phase_lid", "alpha_weight_table"]


def two_phase_lid(ps: PreferenceSystem, top_fraction: float = 0.5) -> Matching:
    """Reservation variant: protect each node's top-ranked opportunities.

    Phase 1 restricts the overlay to edges ``(i, j)`` where *both*
    endpoints rank each other within their top ``⌈top_fraction · ℓ⌉``
    preferences, and runs greedy matching with reduced quotas
    ``⌈top_fraction · b_i⌉``.  Phase 2 runs greedy on all remaining
    edges with the residual quotas.  The union is returned.

    Uses the (LID-equivalent) LIC executor for both phases; the result
    is therefore reproducible distributedly by running LID twice.
    """
    if not (0.0 < top_fraction <= 1.0):
        raise ValueError(f"top_fraction must be in (0, 1], got {top_fraction}")
    wt = satisfaction_weights(ps)

    def top_k(i: int) -> int:
        ell = ps.list_length(i)
        return max(1, int(-(-top_fraction * ell // 1))) if ell else 0  # ceil

    phase1_edges = {
        (i, j): wt.weight(i, j)
        for i, j in ps.edges()
        if ps.rank(i, j) < top_k(i) and ps.rank(j, i) < top_k(j)
    }
    reduced_quotas = [
        max(1, -(-int(ps.quota(i) * top_fraction) // 1)) if ps.quota(i) else 0
        for i in ps.nodes()
    ]
    # phase 1 on the mutual-top subgraph
    m1 = (
        lic_matching(WeightTable(phase1_edges, ps.n), reduced_quotas)
        if phase1_edges
        else Matching(ps.n)
    )
    # phase 2 on everything else with residual quota
    residual = [ps.quota(i) - m1.degree(i) for i in ps.nodes()]
    phase2_edges = {
        (i, j): wt.weight(i, j)
        for i, j in ps.edges()
        if not m1.has_edge(i, j)
    }
    combined = m1.copy()
    if phase2_edges:
        m2 = lic_matching(
            WeightTable(phase2_edges, ps.n),
            [max(0, r) for r in residual],
        )
        for i, j in m2.edges():
            combined.add(i, j)
    combined.validate(ps)
    return combined


def alpha_weight_table(ps: PreferenceSystem, alpha: float) -> WeightTable:
    """Generalised eq.-9 weights with rank-emphasis exponent ``alpha``.

    ``alpha=1`` is exactly eq. 9 (up to float rounding).  The ablation
    bench (A1 companion) sweeps ``alpha`` to show how the weight design
    trades total against minimum satisfaction.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    weights = {}
    for i, j in ps.edges():
        wi = (1.0 - ps.rank(i, j) / ps.list_length(i)) ** alpha / ps.quota(i)
        wj = (1.0 - ps.rank(j, i) / ps.list_length(j)) ** alpha / ps.quota(j)
        weights[(i, j)] = wi + wj
    return WeightTable(weights, ps.n)
