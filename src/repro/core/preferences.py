"""Problem model of the paper (Section 2): graphs with preference lists.

A peer-to-peer overlay is an undirected graph ``G(V, E)``.  Each node ``i``
keeps a *preference list* ``L_i``: a strict ranking of its entire
neighbourhood ``Γ_i``.  The rank function ``R_i(j)`` gives the position of
neighbour ``j`` in ``i``'s list, with ``R_i(.) ∈ {0, 1, ..., |L_i|-1}`` and
``0`` denoting the most desirable neighbour.  Each node also carries a
connection quota ``b_i ≤ |L_i|``: the maximum number of matched
connections it may hold at any time.

:class:`PreferenceSystem` is the immutable instance object consumed by
every algorithm in the library (LID, LIC, exact solvers, baselines).
Nodes are integers ``0..n-1``; callers with richer peer objects map
through :mod:`repro.overlay.builder`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.utils.validation import InvalidInstanceError

__all__ = ["PreferenceSystem"]


class PreferenceSystem:
    """An instance of the generalised stable roommates / b-matching model.

    Parameters
    ----------
    rankings:
        ``rankings[i]`` is the full preference list of node ``i``: a
        sequence of neighbour ids in strictly decreasing desirability
        (index 0 = most preferred).  The induced adjacency must be
        symmetric: ``j in rankings[i]`` iff ``i in rankings[j]``.
    quotas:
        ``quotas[i] = b_i``.  Accepts a mapping, a sequence, or a single
        int applied uniformly.  Following the paper, values larger than
        ``|L_i|`` are clamped to ``|L_i|`` ("we are assuming b_i ≤ |L_i|,
        otherwise we can easily take b_i = |L_i|").  Quotas must be
        >= 1 except for isolated nodes, whose quota is 0.

    Notes
    -----
    The object is treated as immutable after construction; all algorithm
    state lives elsewhere.  Rankings are stored as tuples and rank lookup
    tables are precomputed, so ``rank(i, j)`` is O(1).
    """

    __slots__ = ("_rankings", "_ranks", "_quotas", "_edges", "_n")

    def __init__(
        self,
        rankings: Mapping[int, Sequence[int]] | Sequence[Sequence[int]],
        quotas: Mapping[int, int] | Sequence[int] | int,
    ):
        if isinstance(rankings, Mapping):
            items = dict(rankings)
        else:
            items = {i: list(lst) for i, lst in enumerate(rankings)}
        if not items:
            raise InvalidInstanceError("instance must contain at least one node")
        nodes = sorted(items)
        if nodes != list(range(len(nodes))):
            raise InvalidInstanceError(
                f"nodes must be consecutive integers 0..n-1, got {nodes[:10]}..."
            )
        self._n = len(nodes)
        self._rankings: tuple[tuple[int, ...], ...] = tuple(
            tuple(int(j) for j in items[i]) for i in nodes
        )
        self._validate_rankings()
        self._quotas = self._normalise_quotas(quotas)
        self._ranks: tuple[dict[int, int], ...] = tuple(
            {j: r for r, j in enumerate(lst)} for lst in self._rankings
        )
        self._edges: tuple[tuple[int, int], ...] = tuple(
            sorted(
                (i, j) for i in range(self._n) for j in self._rankings[i] if i < j
            )
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_scores(
        cls,
        adjacency: Mapping[int, Iterable[int]] | Sequence[Iterable[int]],
        score: Callable[[int, int], float],
        quotas: Mapping[int, int] | Sequence[int] | int,
    ) -> "PreferenceSystem":
        """Build preference lists by ranking each neighbourhood by a score.

        ``score(i, j)`` is node ``i``'s private suitability value for
        neighbour ``j`` — higher is better.  Ties are broken by neighbour
        id (ascending) so construction is deterministic.
        """
        if isinstance(adjacency, Mapping):
            adj = {i: list(v) for i, v in adjacency.items()}
        else:
            adj = {i: list(v) for i, v in enumerate(adjacency)}
        rankings = {
            i: sorted(neigh, key=lambda j: (-score(i, j), j)) for i, neigh in adj.items()
        }
        return cls(rankings, quotas)

    def _normalise_quotas(
        self, quotas: Mapping[int, int] | Sequence[int] | int
    ) -> tuple[int, ...]:
        if isinstance(quotas, bool):
            raise InvalidInstanceError("quotas must be int-valued, got bool")
        if isinstance(quotas, int):
            values = [quotas] * self._n
        elif isinstance(quotas, Mapping):
            missing = [i for i in range(self._n) if i not in quotas]
            if missing:
                raise InvalidInstanceError(f"quotas missing for nodes {missing[:10]}")
            values = [int(quotas[i]) for i in range(self._n)]
        else:
            values = [int(q) for q in quotas]
            if len(values) != self._n:
                raise InvalidInstanceError(
                    f"quota sequence has length {len(values)}, expected {self._n}"
                )
        out = []
        for i, q in enumerate(values):
            deg = len(self._rankings[i])
            if deg == 0:
                out.append(0)
                continue
            if q < 1:
                raise InvalidInstanceError(f"quota of node {i} must be >= 1, got {q}")
            out.append(min(q, deg))
        return tuple(out)

    def _validate_rankings(self) -> None:
        for i, lst in enumerate(self._rankings):
            seen = set()
            for j in lst:
                if j == i:
                    raise InvalidInstanceError(f"node {i} ranks itself")
                if not (0 <= j < self._n):
                    raise InvalidInstanceError(f"node {i} ranks unknown node {j}")
                if j in seen:
                    raise InvalidInstanceError(f"node {i} ranks node {j} twice")
                seen.add(j)
        # symmetry: preference lists must cover exactly the neighbourhood
        neigh_sets = [set(lst) for lst in self._rankings]
        for i, s in enumerate(neigh_sets):
            for j in s:
                if i not in neigh_sets[j]:
                    raise InvalidInstanceError(
                        f"adjacency asymmetric: {i} ranks {j} but {j} does not rank {i}"
                    )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes ``|V|``."""
        return self._n

    @property
    def m(self) -> int:
        """Number of undirected edges ``|E|``."""
        return len(self._edges)

    def nodes(self) -> range:
        """Iterable of node ids ``0..n-1``."""
        return range(self._n)

    def edges(self) -> tuple[tuple[int, int], ...]:
        """All undirected edges as ``(i, j)`` with ``i < j``."""
        return self._edges

    def neighbors(self, i: int) -> tuple[int, ...]:
        """Neighbourhood ``Γ_i`` in preference order (best first)."""
        return self._rankings[i]

    def preference_list(self, i: int) -> tuple[int, ...]:
        """Alias of :meth:`neighbors` matching the paper's ``L_i``."""
        return self._rankings[i]

    def degree(self, i: int) -> int:
        """Degree ``d_i`` (also the preference-list length ``|L_i|``)."""
        return len(self._rankings[i])

    def list_length(self, i: int) -> int:
        """``|L_i|`` — identical to degree, kept for formula readability."""
        return len(self._rankings[i])

    def rank(self, i: int, j: int) -> int:
        """Rank ``R_i(j)`` of neighbour ``j`` in node ``i``'s list (0 = best)."""
        try:
            return self._ranks[i][j]
        except KeyError:
            raise KeyError(f"node {j} is not a neighbour of node {i}") from None

    def quota(self, i: int) -> int:
        """Connection quota ``b_i``."""
        return self._quotas[i]

    @property
    def quotas(self) -> tuple[int, ...]:
        """All quotas as a tuple indexed by node id."""
        return self._quotas

    @property
    def b_max(self) -> int:
        """Maximum quota ``b_max`` over all nodes (1 if all nodes isolated)."""
        return max(self._quotas, default=1) or 1

    def has_edge(self, i: int, j: int) -> bool:
        """Whether ``(i, j)`` is a potential connection in ``E``."""
        return j in self._ranks[i]

    def top(self, i: int, k: int) -> tuple[int, ...]:
        """Node ``i``'s ``k`` most preferred neighbours."""
        return self._rankings[i][:k]

    # ------------------------------------------------------------------
    # structural analysis
    # ------------------------------------------------------------------

    def preference_cycles_digraph(self) -> dict[tuple[int, int], list[tuple[int, int]]]:
        """Directed "pivot" graph whose cycles are preference cycles.

        Vertices are directed edges ``(u, i)`` of ``G``.  There is an arc
        ``(u, i) -> (i, v)`` whenever node ``i`` strictly prefers ``v`` to
        ``u``.  A directed cycle in this graph corresponds exactly to a
        cyclic sequence of nodes ``n_0, ..., n_{k-1}`` in which every node
        prefers its successor to its predecessor — the destabilising
        structure of Gai et al. [3] and the communication cycle ruled out
        by Lemma 5 for symmetric weights.
        """
        arcs: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for i in range(self._n):
            lst = self._rankings[i]
            # v appears before u in lst  <=>  i prefers v to u
            for pos_u, u in enumerate(lst):
                arcs[(u, i)] = [(i, v) for v in lst[:pos_u]]
        return arcs

    def is_acyclic(self) -> bool:
        """Check the acyclic-preferences condition of Gai et al. [3].

        Returns ``True`` when no preference cycle exists, i.e. there is no
        node sequence ``n_0, ..., n_{k-1}`` (k >= 3, cyclically) where each
        ``n_i`` strictly prefers ``n_{i+1}`` to ``n_{i-1}``.  Acyclicity is
        the condition under which best-response b-matching dynamics are
        guaranteed to stabilise; the paper's LID sidesteps it entirely via
        symmetric weights.
        """
        arcs = self.preference_cycles_digraph()
        # iterative three-colour DFS over the pivot digraph
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {v: WHITE for v in arcs}
        for root in arcs:
            if colour[root] != WHITE:
                continue
            stack: list[tuple[tuple[int, int], int]] = [(root, 0)]
            colour[root] = GREY
            while stack:
                v, idx = stack[-1]
                out = arcs[v]
                if idx < len(out):
                    stack[-1] = (v, idx + 1)
                    w = out[idx]
                    c = colour[w]
                    if c == GREY:
                        return False
                    if c == WHITE:
                        colour[w] = GREY
                        stack.append((w, 0))
                else:
                    colour[v] = BLACK
                    stack.pop()
        return True

    # ------------------------------------------------------------------
    # dunder / misc
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PreferenceSystem):
            return NotImplemented
        return self._rankings == other._rankings and self._quotas == other._quotas

    def __hash__(self) -> int:
        return hash((self._rankings, self._quotas))

    def __repr__(self) -> str:
        return f"PreferenceSystem(n={self._n}, m={self.m}, b_max={self.b_max})"

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __len__(self) -> int:
        return self._n
