"""Resilient LID: Algorithm 1 on reliable channels with failure detection.

The paper's §7 asks how the greedy strategy copes with unreliable and
adversarial conditions.  :class:`~repro.core.lid.LidNode` answers the
narrow question (i.i.d. loss) with a timer-retransmission wrapper; this
module answers the broad one.  :class:`ResilientLidNode` runs the same
greedy protocol on top of :class:`~repro.distsim.reliable.ReliableNode`
— per-link sequence numbers, ACKs, capped exponential backoff with
seeded jitter, duplicate suppression — and adds a heartbeat failure
detector so the protocol survives **crashes and partitions**, not just
loss:

- every *pending* peer (an outstanding, unanswered proposal) is
  *watched*; a peer silent beyond ``suspect_after`` is **suspected**:
  the proposal is released as if rejected, the peer is *withdrawn*
  (never re-proposed), and the node re-proposes down its weight list —
  exactly the recovery the issue's termination argument needs, because
  an unanswered proposal is the only thing that blocks a LID node;
- a suspected peer may in fact be alive behind a partition and may
  have locked the edge from the crossing proposal, so suspicion also
  sends a reliable **revocation** (a ``REJ`` to the suspected peer): a
  node receiving ``REJ`` from a locked partner releases the lock,
  withdraws the partner and re-proposes.  Symmetry of the lock relation
  over live honest nodes is thereby restored as soon as the partition
  heals within the retransmit budget's window
  (:meth:`~repro.distsim.reliable.BackoffPolicy.span`);
- while a node deliberates it heartbeats the peers awaiting its
  decision (its unanswered approachers), so a slow-but-live node is
  not mistaken for a dead one.

Guarantees (made precise in ``docs/robustness.md``, enforced per-run by
:class:`~repro.distsim.invariants.InvariantMonitor` and swept by the
fault campaign):

- *safety*, unconditionally: quota is never exceeded, locks stay on
  overlay links, no pair locks twice, and the extracted matching
  (mutual locks over live nodes) is feasible;
- *termination*, whenever every fault eventually manifests as silence
  (crash), a heal, or delivery within the budget: every live honest
  node finishes;
- *optimality on the clean part*: restricted to live honest nodes
  whose neighbourhood was untouched by faults, the matching has no
  weighted blocking edge — faults only degrade the nodes they touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.core.lid import PROP, REJ
from repro.core.matching import Matching
from repro.core.truncation import TruncationReport, validate_max_rounds
from repro.distsim.failures import (
    CrashSchedule,
    LinkFlap,
    PartitionSchedule,
    compose_drops,
)
from repro.distsim.invariants import InvariantMonitor
from repro.distsim.metrics import SimMetrics
from repro.distsim.network import LatencyModel, Network
from repro.distsim.reliable import BackoffPolicy, ReliableNode
from repro.distsim.scheduler import Simulator
from repro.distsim.tracing import Trace
from repro.telemetry.spans import Telemetry
from repro.core.weights import WeightTable
from repro.utils.rng import spawn_rng

__all__ = [
    "ResilientLidNode",
    "ResilientLidResult",
    "run_resilient_lid",
    "make_byzantine_resilient",
]


class ResilientLidNode(ReliableNode):
    """One LID participant on reliable channels with failure detection.

    Protocol state mirrors :class:`~repro.core.lid.LidNode` (the paper's
    ``U_i`` / ``P_i`` / ``A_i`` / ``K_i`` sets plus the weight-list scan
    position); the differences are confined to fault handling:

    - proposals and rejections travel via :meth:`rsend` (reliable), so
      there is no ``payload == "retry"`` duplicate-PROP special case —
      the transport suppresses duplicates before the protocol sees them;
    - :attr:`withdrawn` records peers released by suspicion or
      revocation; they are skipped by the candidate scan and refused
      (``REJ``) if they come back after a heal;
    - a finished node stays polite (it never hard-terminates) so it can
      keep ACKing retransmissions and answering stray proposals — the
      run ends by queue quiescence, as in the lossy A2 configuration.
    """

    def __init__(
        self,
        weight_list: Sequence[int],
        quota: int,
        backoff: Optional[BackoffPolicy] = None,
        heartbeat_interval: Optional[float] = 2.0,
        suspect_after: Optional[float] = 10.0,
        rng=None,
    ):
        super().__init__(
            backoff=backoff,
            heartbeat_interval=heartbeat_interval,
            suspect_after=suspect_after,
            rng=rng,
        )
        self.weight_list: list[int] = list(weight_list)
        self.quota = int(quota)
        # protocol sets (paper names)
        self.unresolved: set[int] = set()   # U_i
        self.proposed: set[int] = set()     # P_i
        self.approachers: set[int] = set()  # A_i
        self.locked: set[int] = set()       # K_i
        self.withdrawn: set[int] = set()    # peers released by fault handling
        self._pos = 0
        self.finished = False
        # statistics
        self.props_sent = 0
        self.rejs_sent = 0
        self.anomalies = 0
        self.released_locks = 0
        self.post_finish_releases = 0
        self.unreachable_peers = 0

    # -- protocol --------------------------------------------------------

    def on_start(self) -> None:
        self.unresolved = set(self.weight_list)
        self.start_monitoring()
        self._process()

    def on_datagram(self, src: int, kind: str, payload) -> None:
        if kind == PROP:
            if src in self.withdrawn:
                # a suspected peer resurfaced after a heal: we already
                # re-proposed elsewhere, so refuse firmly (and finally)
                self.rsend(src, REJ)
                self.rejs_sent += 1
                return
            if src in self.locked:
                # transport dedup means this is not a retransmission —
                # only a Byzantine peer re-proposes a locked edge
                self.anomalies += 1
                return
            if self.finished:
                self.rsend(src, REJ)
                self.rejs_sent += 1
                return
            self.approachers.add(src)
            self._process()
        elif kind == REJ:
            if src in self.locked:
                # revocation: the partner suspected us during a fault
                # and released the edge; mirror the release
                self._release(src)
                return
            if src in self.withdrawn:
                return  # their revoke crossing ours — already resolved
            if src not in self.unresolved:
                self.anomalies += 1  # duplicate/Byzantine REJ
                return
            self.unresolved.discard(src)
            self.proposed.discard(src)
            self.approachers.discard(src)
            self.unwatch(src)
            self._process()
        else:
            self.anomalies += 1

    def on_peer_suspected(self, peer: int) -> None:
        """A pending peer went silent: release, revoke, re-propose."""
        self.abandon(peer)  # stop retrying the data it never ACKed
        self.withdrawn.add(peer)
        if peer in self.locked:  # defensive: watched peers are never locked
            self.locked.discard(peer)
            self.released_locks += 1
        self.proposed.discard(peer)
        self.unresolved.discard(peer)
        self.approachers.discard(peer)
        # Revoke: if the peer is alive behind a partition and locked the
        # crossing proposal, it must release too.  Reliable, so the
        # notice survives a heal within the backoff budget's window.
        self.rsend(peer, REJ)
        self.rejs_sent += 1
        if not self.finished:
            self._process()

    def on_delivery_failed(self, dst: int, kind: str, payload) -> None:
        """Retransmit budget exhausted — the peer is unreachable."""
        self.unreachable_peers += 1
        if (
            kind == PROP
            and not self.finished
            and dst in self.proposed
            and dst not in self.locked
        ):
            # the proposal can never be answered; release it like a
            # suspicion (no revocation — it would fail the same way)
            self.unwatch(dst)
            self.suspected.add(dst)
            self.withdrawn.add(dst)
            self.proposed.discard(dst)
            self.unresolved.discard(dst)
            self.approachers.discard(dst)
            self._process()

    def on_raw_message(self, src: int, kind: str, payload) -> None:
        self.anomalies += 1  # nothing legitimate bypasses the transport

    def heartbeat_targets(self) -> frozenset[int]:
        if self.finished:
            return frozenset()
        # peers awaiting our decision must not mistake deliberation for death
        return frozenset(self.approachers - self.locked)

    def keep_monitoring(self) -> bool:
        return not self.finished

    # -- internals -------------------------------------------------------

    def _release(self, src: int) -> None:
        """Drop a locked edge on the partner's revocation."""
        self.locked.discard(src)
        self.proposed.discard(src)
        self.unresolved.discard(src)
        self.approachers.discard(src)
        self.withdrawn.add(src)
        self.released_locks += 1
        if self.finished:
            # the freed slot stays empty: our final REJs already told
            # every other neighbour "no", and reopening would need a
            # renegotiation protocol (see docs/robustness.md)
            self.post_finish_releases += 1
            return
        self._process()

    def _outstanding(self) -> set[int]:
        return self.proposed - self.locked

    def _propose(self, j: int) -> None:
        self.proposed.add(j)
        self.rsend(j, PROP)
        self.props_sent += 1
        self.watch(j)

    def _top_up(self) -> bool:
        sent = False
        while len(self.proposed) < self.quota:
            j = self._next_candidate()
            if j is None:
                break
            self._propose(j)
            sent = True
        return sent

    def _next_candidate(self) -> Optional[int]:
        while self._pos < len(self.weight_list):
            j = self.weight_list[self._pos]
            if j in self.unresolved and j not in self.proposed:
                self._pos += 1
                return j
            self._pos += 1
        return None

    def _try_lock(self) -> bool:
        ready = self._outstanding() & self.approachers
        for v in ready:
            self.locked.add(v)
            self.approachers.discard(v)
            self.unresolved.discard(v)
            self.unwatch(v)
        return bool(ready)

    def _process(self) -> None:
        if self.finished:
            return
        changed = True
        while changed:
            changed = self._try_lock()
            changed = self._top_up() or changed
        if not self._outstanding():
            self._finish()

    def _finish(self) -> None:
        self.finished = True
        for v in self.weight_list:  # deterministic broadcast order
            if v in self.unresolved:
                self.rsend(v, REJ)
                self.rejs_sent += 1
        self.unresolved.clear()
        self.approachers.clear()
        # stay polite: the transport still owes ACKs and late answers


def make_byzantine_resilient(node: ResilientLidNode, mode: str = "reject_all"):
    """Corrupt a resilient node's *protocol* layer, keeping its transport.

    The transport stays honest (ACKs, duplicate suppression) so honest
    peers are attacked at the matching level, not starved by retries —
    the adversary model of the paper's §7 discussion.

    Modes mirror :func:`repro.distsim.failures.make_byzantine`:
    ``reject_all`` answers every proposal with ``REJ`` and proposes to
    nobody; ``accept_all`` proposes to every neighbour regardless of
    quota and "locks" whatever answers, never sending a rejection.
    """
    if mode == "reject_all":
        def on_start() -> None:
            node.unresolved = set()

        def on_datagram(src: int, kind: str, payload) -> None:
            if kind == PROP:
                node.rsend(src, REJ)

        node.on_start = on_start
        node.on_datagram = on_datagram
        node._byzantine = ("reject_all", None)
        return node
    if mode == "accept_all":
        def on_start() -> None:
            for j in node.weight_list:
                node.rsend(j, PROP)

        def on_datagram(src: int, kind: str, payload) -> None:
            if kind == PROP:
                node.locked.add(src)  # hoards connections, ignores quota

        node.on_start = on_start
        node.on_datagram = on_datagram
        node._byzantine = ("accept_all", None)
        return node
    raise ValueError(f"unknown byzantine mode {mode!r}")


@dataclass
class ResilientLidResult:
    """Outcome of a resilient LID run under fault injection.

    ``matching`` holds the **mutual** locks between live honest nodes —
    the live-subgraph matching every safety claim quantifies over.
    ``violations`` aggregates the runtime monitor's findings plus the
    final symmetry sweep; an empty list is the pass condition of every
    fault-campaign cell.
    """

    matching: Matching
    metrics: SimMetrics
    nodes: list
    live: frozenset[int]
    honest: frozenset[int]
    terminated: bool
    violations: list[str] = field(default_factory=list)
    suspected_edges: frozenset[tuple[int, int]] = frozenset()
    asymmetric_locks: int = 0
    late_messages: int = 0
    monitor: Optional[InvariantMonitor] = None
    truncation: Optional[TruncationReport] = None

    @property
    def live_honest(self) -> frozenset[int]:
        """Nodes that are both live (never crashed) and protocol-abiding."""
        return self.live & self.honest

    @property
    def ok(self) -> bool:
        """Terminated with zero invariant violations."""
        return self.terminated and not self.violations

    def clean_nodes(self) -> frozenset[int]:
        """Live honest nodes whose final state faults did not degrade.

        A node is *clean* when it finished, released no lock after
        finishing, and every lock it holds is with a live honest
        partner — i.e. its protocol view coincides with the extracted
        live-subgraph matching.  The no-weighted-blocking-edge
        certificate is exact on clean pairs (see ``docs/robustness.md``).
        """
        out = set()
        for i in self.live_honest:
            node = self.nodes[i]
            if not node.finished or node.post_finish_releases:
                continue
            if any(j not in self.live_honest for j in node.locked):
                continue
            out.add(i)
        return frozenset(out)


def _extract_mutual(nodes, live_honest: frozenset[int]) -> tuple[Matching, int]:
    """Mutual locks among live honest nodes; counts one-sided leftovers."""
    matching = Matching(len(nodes))
    asymmetric = 0
    for i in sorted(live_honest):
        for j in nodes[i].locked:
            if j not in live_honest:
                continue
            if i in nodes[j].locked:
                if i < j:
                    matching.add(i, j)
            else:
                asymmetric += 1
    return matching, asymmetric


def run_resilient_lid(
    wt: WeightTable,
    quotas: Sequence[int],
    *,
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    fifo: bool = True,
    drop_filter=None,
    partitions: Optional[PartitionSchedule] = None,
    flaps: Iterable[LinkFlap] = (),
    crashes: Optional[CrashSchedule] = None,
    byzantine: Optional[Mapping[int, str]] = None,
    backoff: Optional[BackoffPolicy] = None,
    heartbeat_interval: float = 2.0,
    suspect_after: float = 10.0,
    monitor: "bool | InvariantMonitor" = True,
    strict: bool = False,
    trace: Optional[Trace] = None,
    queue: str = "auto",
    max_events: Optional[int] = None,
    max_time: Optional[float] = None,
    max_rounds: Optional[int] = None,
    telemetry=None,
    probe=None,
) -> ResilientLidResult:
    """Execute resilient LID under an arbitrary fault configuration.

    Composes the loss filter, partition schedule and link flaps into the
    network, installs crash control events, wraps Byzantine nodes, wires
    the invariant monitor into the simulator and runs to quiescence.
    Termination of live honest nodes is *checked and reported*, not
    assumed — a cell of the fault campaign asserts ``result.ok``.

    Parameters beyond :func:`repro.core.lid.run_lid`'s: ``partitions`` /
    ``flaps`` / ``crashes`` (failure schedules; the drop-filter halves
    are composed automatically), ``byzantine`` (node id → mode),
    ``backoff`` (transport retransmission policy),
    ``heartbeat_interval`` / ``suspect_after`` (failure detector), and
    ``monitor`` (``True``, ``False`` or a pre-built
    :class:`InvariantMonitor`; ``strict`` makes the first violation
    raise at the offending delivery).

    ``telemetry`` / ``probe`` behave exactly as in
    :func:`repro.core.lid.run_lid`: phases are attributed to
    ``build_weights`` / ``sim_loop`` / ``extract`` (same buckets as the
    other engines), and the convergence probe samples node state at
    virtual-time ticks without perturbing the run.  Under faults the
    probe trajectory shows degradation and repair — e.g.
    ``outstanding_props`` spiking across a partition.
    """
    n = wt.n
    if len(quotas) != n:
        raise ValueError(f"quotas length {len(quotas)} != n={n}")
    # The round budget is counted on the reliable-transport clock: under
    # unit latency protocol wave r's deliveries land at virtual time r
    # plus at most a few ULPs of FIFO tie-break skew (ACK traffic sent
    # in the same instant on the same channel pushes a datagram's
    # delivery to ``nextafter`` times), so the horizon sits at the
    # midpoint of the inter-wave gap: every wave-k delivery is in,
    # every wave-(k+1) delivery is out, and fault-free truncated runs
    # are bit-identical to the reference truncated run.
    max_rounds = validate_max_rounds(max_rounds)
    if max_rounds is not None:
        if max_time is not None:
            raise ValueError(
                "max_rounds and max_time are mutually exclusive: max_rounds"
                " is the round-budget spelling of the same virtual-time"
                " horizon"
            )
        max_time = max_rounds + 0.5
    byzantine = dict(byzantine or {})
    for b in byzantine:
        if not (0 <= b < n):
            raise ValueError(f"byzantine id {b} out of range for n={n}")
    policy = backoff if backoff is not None else BackoffPolicy()
    if policy.budget is None and (crashes is not None and crashes.crashes):
        raise ValueError(
            "an unlimited retransmit budget cannot quiesce once a node "
            "crashes (its peers retry forever); give BackoffPolicy a "
            "finite budget"
        )

    tel = telemetry if telemetry is not None else Telemetry()
    mark = tel.mark()
    with tel.span("build_weights"):
        nodes = [
            ResilientLidNode(
                wt.weight_list(i),
                quotas[i],
                backoff=policy,
                heartbeat_interval=heartbeat_interval,
                suspect_after=suspect_after,
                rng=spawn_rng(seed, "resilient-jitter", str(i)),
            )
            for i in range(n)
        ]
        for b, mode in byzantine.items():
            make_byzantine_resilient(nodes[b], mode)
        honest = frozenset(range(n)) - frozenset(byzantine)

        flaps = list(flaps)
        drop = compose_drops(drop_filter, partitions, *flaps)
        network = Network(
            n,
            latency=latency,
            fifo=fifo,
            links=wt.edges(),
            drop_filter=drop,
            seed=seed,
        )
        if monitor is True:
            mon: Optional[InvariantMonitor] = InvariantMonitor(
                quotas,
                [set(wt.neighbors(i)) for i in range(n)],
                honest=honest,
                strict=strict,
            )
        elif monitor is False:
            mon = None
        else:
            mon = monitor
        sim = Simulator(network, nodes, trace=trace, queue=queue, monitor=mon)
        if crashes is not None:
            crashes.install(sim)
        if partitions is not None:
            partitions.install(sim)
        for flap in flaps:
            flap.install(sim)

    with tel.span("sim_loop"):
        metrics = sim.run(max_events=max_events, max_time=max_time, probe=probe)

    with tel.span("extract"):
        live = frozenset(i for i in range(n) if not nodes[i].crashed)
        live_honest = live & honest
        terminated = all(nodes[i].finished for i in live_honest)
        if mon is not None:
            mon.at_quiescence(sim)
            violations = list(mon.violations)
        else:
            violations = []

        matching, asymmetric = _extract_mutual(nodes, live_honest)
        suspected_edges = frozenset(
            (i, j) if i < j else (j, i)
            for i in range(n)
            for j in nodes[i].withdrawn
            if i in honest
        )
        truncation = TruncationReport(
            max_rounds=max_rounds,
            rounds=int(metrics.end_time),
            converged=(sim.pending_events() == 0),
            released_locks=asymmetric,
        )
    metrics.phase_seconds = tel.phase_seconds(since=mark)
    return ResilientLidResult(
        matching=matching,
        metrics=metrics,
        nodes=nodes,
        live=live,
        honest=honest,
        terminated=terminated,
        violations=violations,
        suspected_edges=suspected_edges,
        asymmetric_locks=asymmetric,
        late_messages=sim.late_messages,
        monitor=mon,
        truncation=truncation,
    )
