"""Execution-backend selector: ``"reference"`` / ``"fast"`` / ``"sharded"``.

The library keeps interchangeable execution paths for the paper's
pipeline (eq.-9 weights → LIC edge selection → satisfaction scoring):

- ``reference`` — the readable scalar implementations
  (:func:`repro.core.weights.satisfaction_weights`,
  :func:`repro.core.lic.lic_matching`,
  :meth:`repro.core.matching.Matching.satisfaction_vector`),
- ``fast`` — the array-backed kernels of :mod:`repro.core.fast`
  (:class:`~repro.core.fast.FastInstance`,
  :func:`~repro.core.fast.lic_matching_fast`,
  :func:`~repro.core.fast.satisfaction_profile_fast`) plus the
  round-batched LID engine of :mod:`repro.core.fast_lid`,
- ``sharded`` — the fast kernels with LID executed by the partitioned
  engine of :mod:`repro.core.sharded_lid` (per-shard wave loops with
  boundary reconciliation, optional ``multiprocessing`` workers and
  numba compilation).

Both produce the same results — bit-identical weights and identical
edge sets (see ``docs/performance.md``) — so callers pick purely on
instance size.  :func:`get_backend` is the one switch threaded through
:func:`repro.core.lic.solve_modified_bmatching`,
:class:`repro.overlay.churn.DynamicOverlay`,
:func:`repro.experiments.runner.sweep` and the ``python -m repro`` CLI.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.fast import (
    FastInstance,
    lic_matching_fast,
    satisfaction_profile_fast,
    satisfaction_weights_fast,
)
from repro.core.fast_lid import FastLidResult, lid_matching_fast
from repro.core.lic import lic_matching
from repro.core.lid import LidResult, run_lid
from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem
from repro.core.weights import WeightTable, satisfaction_weights

__all__ = [
    "Backend",
    "BACKENDS",
    "ShardedBackend",
    "get_backend",
    "resolve_backend_name",
]


class Backend:
    """One execution path of the weights → LIC → satisfaction pipeline.

    Subclasses provide the four pipeline stages; algorithms take a
    backend (or a backend *name*) and stay agnostic of which path runs.
    """

    name: str = "abstract"

    def build_weights(self, ps: PreferenceSystem) -> WeightTable:
        """Eq.-9 weight table of a preference system."""
        raise NotImplementedError

    def lic(self, wt: WeightTable, quotas: Sequence[int]) -> Matching:
        """Algorithm 2 on an explicit weight table."""
        raise NotImplementedError

    def lid(
        self,
        wt: WeightTable,
        quotas: Sequence[int],
        seed: int = 0,
        telemetry=None,
        probe=None,
        max_rounds: "int | None" = None,
    ) -> "LidResult | FastLidResult":
        """Algorithm 1 (default channels) on an explicit weight table.

        Both backends execute the faithful reliable-FIFO-unit-latency
        schedule: ``reference`` event by event through the simulator,
        ``fast`` via the round-batched engine — identical matching and
        message statistics (``seed`` only varies channel randomness,
        which the default channels do not have).  ``telemetry`` /
        ``probe`` (see :mod:`repro.telemetry`) are honoured by both
        paths, and a probed trajectory is bit-identical between them.
        ``max_rounds`` runs the round-truncated almost-stable variant
        under the shared contract of :mod:`repro.core.truncation` —
        the identical feasible partial matching on every backend.
        """
        raise NotImplementedError

    def solve(self, ps: PreferenceSystem) -> Matching:
        """End-to-end: eq.-9 weights + LIC, returning only the matching."""
        raise NotImplementedError

    def satisfaction_profile(
        self, ps: PreferenceSystem, matching: Matching, kind: str = "full"
    ) -> np.ndarray:
        """Per-node eq.-1 / eq.-6 satisfaction of a matching."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"Backend({self.name!r})"


class ReferenceBackend(Backend):
    """The scalar reference path (readable, O(per-edge Python))."""

    name = "reference"

    def build_weights(self, ps: PreferenceSystem) -> WeightTable:
        return satisfaction_weights(ps)

    def lic(self, wt: WeightTable, quotas: Sequence[int]) -> Matching:
        return lic_matching(wt, quotas)

    def lid(
        self,
        wt: WeightTable,
        quotas: Sequence[int],
        seed: int = 0,
        telemetry=None,
        probe=None,
        max_rounds: "int | None" = None,
    ) -> LidResult:
        return run_lid(wt, quotas, seed=seed, telemetry=telemetry, probe=probe,
                       max_rounds=max_rounds)

    def solve(self, ps: PreferenceSystem) -> Matching:
        return lic_matching(satisfaction_weights(ps), ps.quotas)

    def satisfaction_profile(
        self, ps: PreferenceSystem, matching: Matching, kind: str = "full"
    ) -> np.ndarray:
        return np.asarray(matching.satisfaction_vector(ps, kind), dtype=np.float64)


class FastBackend(Backend):
    """The array-backed path (NumPy lowering, vectorised kernels)."""

    name = "fast"

    def build_weights(self, ps: PreferenceSystem) -> WeightTable:
        return satisfaction_weights_fast(ps)

    def lic(self, wt: WeightTable, quotas: Sequence[int]) -> Matching:
        return lic_matching_fast(wt, quotas)

    def lid(
        self,
        wt: WeightTable,
        quotas: Sequence[int],
        seed: int = 0,
        telemetry=None,
        probe=None,
        max_rounds: "int | None" = None,
    ) -> FastLidResult:
        return lid_matching_fast(wt, quotas, telemetry=telemetry, probe=probe,
                                 max_rounds=max_rounds)

    def solve(self, ps: PreferenceSystem) -> Matching:
        return lic_matching_fast(FastInstance.from_preference_system(ps))

    def satisfaction_profile(
        self, ps: PreferenceSystem, matching: Matching, kind: str = "full"
    ) -> np.ndarray:
        return satisfaction_profile_fast(ps, matching, kind)


class ShardedBackend(FastBackend):
    """The scale-out path: fast kernels + the sharded LID engine.

    Identical to :class:`FastBackend` for weights / LIC / satisfaction
    (those kernels are already vectorised); :meth:`lid` runs
    :func:`repro.core.sharded_lid.sharded_lid_matching` — the identical
    matching for any shard count (the locked edge set is
    schedule-invariant), with ``shards=1`` bit-identical to the fast
    engine.  The default configuration (``shards=4, workers=0, jit
    auto``) is deterministic and safe inside worker pools (no nested
    multiprocessing); pass ``workers>0`` for in-engine parallelism.
    """

    name = "sharded"

    def __init__(self, shards: int = 4, workers: int = 0, jit: "bool | None" = None):
        self.shards = int(shards)
        self.workers = int(workers)
        self.jit = jit

    def lid(
        self,
        wt: WeightTable,
        quotas: Sequence[int],
        seed: int = 0,
        telemetry=None,
        probe=None,
        max_rounds: "int | None" = None,
    ):
        from repro.core.sharded_lid import sharded_lid_matching

        return sharded_lid_matching(
            wt,
            quotas,
            shards=self.shards,
            workers=self.workers,
            jit=self.jit,
            max_rounds=max_rounds,
            telemetry=telemetry,
            probe=probe,
        )


BACKENDS: dict[str, Backend] = {
    be.name: be for be in (ReferenceBackend(), FastBackend(), ShardedBackend())
}


def resolve_backend_name(name: "str | Backend") -> str:
    """Validate a backend name (or instance) and return the canonical name.

    String names are case/whitespace-insensitive so values arriving from
    CLI flags or environment variables resolve without ceremony.
    """
    if isinstance(name, Backend):
        return name.name
    if not isinstance(name, str):
        raise TypeError(f"backend must be a name or Backend, got {type(name).__name__}")
    canonical = name.strip().lower()
    if canonical not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
        )
    return canonical


def get_backend(name: "str | Backend" = "reference") -> Backend:
    """Look up a backend by name; passing a :class:`Backend` is a no-op."""
    if isinstance(name, Backend):
        return name
    return BACKENDS[resolve_backend_name(name)]
