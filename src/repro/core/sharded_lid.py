"""Sharded LID engine: per-shard wave loops with boundary reconciliation.

:func:`repro.core.fast_lid.lid_matching_fast` replays Algorithm 1 as
synchronous PROP/REJ waves over one flat-array state machine; its wave
loop is a single Python thread, which caps the engine near ``n ≈ 10^5``.
This module is the scale-out path of ROADMAP item 2: partition the
lowered :class:`~repro.core.fast.FastInstance` into ``k`` contiguous
node shards, run the *same* wave loop per shard (optionally inside
``multiprocessing`` workers, optionally numba-compiled), and reconcile
the cut-edge traffic between rounds through an int-packed mailbox.

Why sharding is exact
---------------------

The locally-heaviest-edge rule is *local*: a node's transition on a
delivery depends only on its own slot state, and every message sent in
round ``r`` is delivered in round ``r + 1`` regardless of which shard
the receiver lives in.  A sharded wave therefore executes a legal
unit-latency synchronous schedule of the very same protocol — only the
*within-round* delivery order differs from the reference heap order.
By Lemmas 3–6 the locked edge set is invariant under any schedule (it
is exactly the LIC edge set), so the **matching is identical** to
``run_lid`` / ``lid_matching_fast`` for every ``k``; per-node message
*statistics* are order-sensitive and may legitimately differ for
``k > 1``.  With ``k = 1`` the mailbox is the identity and the engine
replays ``lid_matching_fast`` **bit-identically**, message statistics
included (pinned in ``tests/core/test_sharded_lid.py``).

Messages stay single ints (``receiver << SH | receiver_slot << 1 |
is_rej`` — the exact :mod:`~repro.core.fast_lid` code), so cross-shard
delivery is an array split (``searchsorted`` over the shard bounds)
plus a concatenate: no object hops, no per-message routing table.

Execution substrates
--------------------

- ``workers=0`` (default) — all shards step in-process, one after the
  other.  Deterministic, zero IPC; what the grid runner and the
  conformance pipelines use.
- ``workers>0`` — shards live in persistent ``multiprocessing``
  workers (fork where available, else spawn); the driver broadcasts
  each round's inboxes and concatenates the returned outboxes.  The
  result is *identical* to the serial executor: parallelism only moves
  where the per-shard computation runs.
- ``jit`` — ``None`` ("auto") compiles the per-shard wave kernel with
  numba when it is importable; ``True`` requests it (falling back with
  a warning when numba is absent — an optional dependency, see
  ``pyproject.toml``); ``False`` forces the pure-Python list kernel.
  The array kernel is a plain function (`_wave_kernel_arrays`), so the
  interpreted and compiled paths are literally the same code object —
  the differential tests pin the list and array kernels bit-identical
  to each other without needing numba installed.

Partitioning balances *directed slots* (work), not node counts: shard
boundaries are placed by ``searchsorted`` on the CSR offsets so each
shard owns ≈ ``2m / k`` slots.  See ``docs/performance.md`` for the
boundary-reconciliation cost model and when to prefer
``backend="fast"`` vs ``backend="sharded"``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional, Sequence

import numpy as np

from repro.core.fast import FastInstance, _coerce_instance
from repro.core.fast_lid import FastLidResult, _directed_layout
from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem
from repro.core.truncation import TruncationReport, validate_max_rounds
from repro.core.weights import WeightTable
from repro.distsim.metrics import SimMetrics
from repro.telemetry.probes import ProbeSample
from repro.telemetry.spans import Telemetry
from repro.utils.validation import ProtocolError

__all__ = [
    "NUMBA_AVAILABLE",
    "ShardedLidResult",
    "partition_nodes",
    "sharded_lid_matching",
    "warm_jit_kernels",
]

PROP = "PROP"
REJ = "REJ"

# per-slot protocol flag bits — identical to core.fast_lid
IN, PR, AP, LK = 1, 2, 4, 8
_INV_IN = 0xFF ^ IN

try:  # pragma: no cover - exercised only when numba is installed
    import numba as _numba  # noqa: F401

    NUMBA_AVAILABLE = True
except ImportError:
    NUMBA_AVAILABLE = False

_JIT_KERNEL = None


# ---------------------------------------------------------------------
# wave kernels
# ---------------------------------------------------------------------


def _wave_kernel_arrays(
    inbox,
    st,
    finished,
    room,
    n_out,
    cursor,
    props,
    rejs,
    received,
    packed,
    end,
    out,
    node_lo,
    slot_lo,
    sh,
    rmask,
):
    """One shard wave over typed arrays (numba-compilable, plain-Python runnable).

    State arrays are *local* to the shard (``st``/``packed``/``end``
    indexed by ``global_slot - slot_lo``, per-node arrays by
    ``global_node - node_lo``); message codes stay global.  Emitted
    codes land in ``out`` (preallocated: a slot sends at most one PROP
    and one REJ over its lifetime, so ``2 * local_slots`` bounds any
    wave).  Returns ``(emitted, late, delivered_prop, delivered_rej)``.

    The transition logic is line-for-line the
    :func:`~repro.core.fast_lid.lid_matching_fast` inner loop; the list
    kernel below and this function are pinned bit-identical by
    ``tests/core/test_sharded_lid.py``.
    """
    n_emit = 0
    late = 0
    dp = 0
    dr = 0
    for idx in range(inbox.shape[0]):
        code = inbox[idx]
        j = (code >> sh) - node_lo
        if finished[j] != 0:
            late += 1
            continue
        r = ((code >> 1) & rmask) - slot_lo
        v = st[r]
        received[j] += 1
        if code & 1:  # REJ on slot r's edge
            dr += 1
            st[r] = v & _INV_IN
            if v & PR:
                room[j] += 1
                n_out[j] -= 1
        else:  # PROP on slot r's edge
            dp += 1
            if v & (PR | LK) == PR:
                st[r] = (v | AP | LK) & _INV_IN
                n_out[j] -= 1
            else:
                st[r] = v | AP
        rm = room[j]
        if rm > 0:
            p = cursor[j]
            end_j = end[j]
            while rm > 0 and p < end_j:
                v = st[p]
                if v & (IN | PR) == IN:
                    rm -= 1
                    n_out[j] += 1
                    props[j] += 1
                    out[n_emit] = packed[p]
                    n_emit += 1
                    if v & AP:
                        st[p] = (v | PR | LK) & _INV_IN
                        n_out[j] -= 1
                    else:
                        st[p] = v | PR
                p += 1
            cursor[j] = p
            room[j] = rm
        if n_out[j] == 0:
            finished[j] = 1
            sent = 0
            for t in range(cursor[j], end[j]):
                v = st[t]
                if v & IN:
                    st[t] = v & _INV_IN
                    sent += 1
                    out[n_emit] = packed[t] | 1
                    n_emit += 1
            rejs[j] += sent
    return n_emit, late, dp, dr


def _get_jit_kernel():
    """The numba-compiled array kernel (compiled once per process)."""
    global _JIT_KERNEL
    if _JIT_KERNEL is None:
        from numba import njit

        _JIT_KERNEL = njit(cache=True)(_wave_kernel_arrays)
    return _JIT_KERNEL


def warm_jit_kernels() -> bool:
    """Compile the numba wave kernel now; ``False`` when numba is absent.

    Worker-pool initializers call this so compilation happens **once
    per worker process** instead of once per task (see
    :func:`repro.experiments.grid.run_grid`); it is spawn-safe (a plain
    module-level function with no arguments) and a cheap no-op without
    numba.
    """
    if not NUMBA_AVAILABLE:
        return False
    kernel = _get_jit_kernel()
    z8 = np.zeros(0, dtype=np.uint8)
    z = np.zeros(0, dtype=np.int64)
    kernel(z, z8, z8, z, z, z, z, z, z, z, z, z, 0, 0, 1, 1)
    return True


def _wave_kernel_list(state, inbox):
    """One shard wave over lists/bytearray — the no-numba hot path.

    Same transitions as :func:`_wave_kernel_arrays` but on the list /
    bytearray layout of :func:`~repro.core.fast_lid.lid_matching_fast`
    (CPython list indexing is ~3x faster than scalar ndarray indexing,
    which is what keeps the graceful fallback fast).  Returns
    ``(out_list, late, delivered_prop, delivered_rej)``.
    """
    st = state.st
    finished = state.finished
    room = state.room
    n_out = state.n_out
    cursor = state.cursor
    props = state.props
    rejs = state.rejs
    received = state.received
    packed_l = state.packed_l
    end_l = state.end_l
    node_lo = state.node_lo
    slot_lo = state.slot_lo
    sh = state.sh
    rmask = state.rmask
    out: list[int] = []
    append = out.append
    late = 0
    dp = 0
    dr = 0
    for code in inbox:
        j = (code >> sh) - node_lo
        if finished[j]:
            late += 1
            continue
        r = ((code >> 1) & rmask) - slot_lo
        v = st[r]
        received[j] += 1
        if code & 1:
            dr += 1
            st[r] = v & _INV_IN
            if v & PR:
                room[j] += 1
                n_out[j] -= 1
        else:
            dp += 1
            if v & (PR | LK) == PR:
                st[r] = (v | AP | LK) & _INV_IN
                n_out[j] -= 1
            else:
                st[r] = v | AP
        rm = room[j]
        if rm:
            p = cursor[j]
            end_j = end_l[j]
            while rm and p < end_j:
                v = st[p]
                if v & (IN | PR) == IN:
                    rm -= 1
                    n_out[j] += 1
                    props[j] += 1
                    append(packed_l[p])
                    if v & AP:
                        st[p] = (v | PR | LK) & _INV_IN
                        n_out[j] -= 1
                    else:
                        st[p] = v | PR
                p += 1
            cursor[j] = p
            room[j] = rm
        if n_out[j] == 0:
            finished[j] = 1
            sent = 0
            for t in range(cursor[j], end_l[j]):
                v = st[t]
                if v & IN:
                    st[t] = v & _INV_IN
                    sent += 1
                    append(packed_l[t] | 1)
            rejs[j] += sent
    return out, late, dp, dr


# ---------------------------------------------------------------------
# shard state
# ---------------------------------------------------------------------


class _ShardCore:
    """One shard's protocol state plus its kernel dispatch.

    Lives either in the driver process (serial executor) or inside a
    persistent ``multiprocessing`` worker; built from the picklable
    ``init`` payload of :func:`_shard_init` either way, so serial and
    parallel runs start from byte-identical state.
    """

    def __init__(self, init: dict):
        self.node_lo = int(init["node_lo"])
        self.node_hi = int(init["node_hi"])
        self.slot_lo = int(init["slot_lo"])
        self.sh = int(init["sh"])
        self.rmask = int(init["rmask"])
        self.bounds = init["bounds"]  # node boundaries of ALL shards
        self.kernel_mode = init["kernel_mode"]  # "list" | "arrays" | "jit"
        self.owner_local = init["owner_local"]  # int64[slots] for sampling
        self.quota_sum = int(init["quota_sum"])
        self.wave_seconds = 0.0
        self.processed = 0
        self.late = 0
        n_slots = len(init["st"])
        if self.kernel_mode == "list":
            self.st = bytearray(init["st"].tobytes())
            self.finished = bytearray(init["finished"].tobytes())
            self.room = init["room"].tolist()
            self.n_out = init["n_out"].tolist()
            self.cursor = init["cursor"].tolist()
            self.props = init["props"].tolist()
            self.rejs = init["rejs"].tolist()
            self.received = init["received"].tolist()
            self.packed_l = init["packed"].tolist()
            self.end_l = init["end"].tolist()
            self._kernel = None
            self._out = None
        else:
            self.st = np.ascontiguousarray(init["st"])
            self.finished = np.ascontiguousarray(init["finished"])
            self.room = np.ascontiguousarray(init["room"])
            self.n_out = np.ascontiguousarray(init["n_out"])
            self.cursor = np.ascontiguousarray(init["cursor"])
            self.props = np.ascontiguousarray(init["props"])
            self.rejs = np.ascontiguousarray(init["rejs"])
            self.received = np.ascontiguousarray(init["received"])
            self.packed = np.ascontiguousarray(init["packed"])
            self.end = np.ascontiguousarray(init["end"])
            self._out = np.empty(2 * n_slots + 1, dtype=np.int64)
            self._kernel = (
                _get_jit_kernel()
                if self.kernel_mode == "jit"
                else _wave_kernel_arrays
            )

    # -- one synchronous round ----------------------------------------

    def wave(self, inbox: np.ndarray):
        """Process this round's deliveries; split the sends per shard.

        Returns ``(outs, late, delivered_prop, delivered_rej)`` where
        ``outs[d]`` holds the codes destined for shard ``d`` in emit
        order — the concatenation the driver performs is the whole
        inter-shard reconciliation.
        """
        t0 = perf_counter()
        if self.kernel_mode == "list":
            out_list, late, dp, dr = _wave_kernel_list(self, inbox.tolist())
            out = np.asarray(out_list, dtype=np.int64)
        else:
            n_emit, late, dp, dr = self._kernel(
                inbox,
                self.st,
                self.finished,
                self.room,
                self.n_out,
                self.cursor,
                self.props,
                self.rejs,
                self.received,
                self.packed,
                self.end,
                self._out,
                self.node_lo,
                self.slot_lo,
                self.sh,
                self.rmask,
            )
            out = self._out[: int(n_emit)]
        receivers = out >> self.sh
        dest = np.searchsorted(self.bounds, receivers, side="right") - 1
        outs = [out[dest == d].copy() for d in range(len(self.bounds) - 1)]
        self.processed += int(dp) + int(dr)
        self.late += int(late)
        self.wave_seconds += perf_counter() - t0
        return outs, int(late), int(dp), int(dr)

    # -- probe sampling ------------------------------------------------

    def sample(self) -> tuple[int, int, int, int, int, int]:
        """Deterministic aggregate state: the shard's probe contribution."""
        if self.kernel_mode == "list":
            st = np.frombuffer(bytes(self.st), dtype=np.uint8)
            finished = sum(self.finished)
            outstanding = sum(self.n_out)
            props = sum(self.props)
            rejs = sum(self.rejs)
        else:
            st = self.st
            finished = int(np.count_nonzero(self.finished))
            outstanding = int(self.n_out.sum())
            props = int(self.props.sum())
            rejs = int(self.rejs.sum())
        lk_mask = (st & LK) != 0
        locks = int(np.count_nonzero(lk_mask))
        n_local = self.node_hi - self.node_lo
        matched = 0
        if locks and n_local:
            matched = int(
                np.count_nonzero(
                    np.bincount(self.owner_local[lk_mask], minlength=n_local)
                )
            )
        return locks, matched, int(finished), int(outstanding), int(props), int(rejs)

    # -- end of run ----------------------------------------------------

    def finalize(self) -> dict:
        """Final per-shard arrays + counters, for global reassembly."""
        if self.kernel_mode == "list":
            st = np.frombuffer(bytes(self.st), dtype=np.uint8)
            finished = np.frombuffer(bytes(self.finished), dtype=np.uint8)
            props = np.asarray(self.props, dtype=np.int64)
            rejs = np.asarray(self.rejs, dtype=np.int64)
            received = np.asarray(self.received, dtype=np.int64)
        else:
            st = self.st
            finished = self.finished
            props = self.props
            rejs = self.rejs
            received = self.received
        return {
            "st": st,
            "finished": finished,
            "props": props,
            "rejs": rejs,
            "received": received,
            "processed": self.processed,
            "late": self.late,
            "wave_seconds": self.wave_seconds,
        }


def _shard_init(
    s: int,
    bounds: np.ndarray,
    start: np.ndarray,
    owner: np.ndarray,
    packed: np.ndarray,
    st0: np.ndarray,
    fin0: np.ndarray,
    room0: np.ndarray,
    n_out0: np.ndarray,
    cursor0: np.ndarray,
    props0: np.ndarray,
    rejs0: np.ndarray,
    quota: np.ndarray,
    sh: int,
    rmask: int,
    kernel_mode: str,
) -> dict:
    """The picklable state slice shard ``s`` starts from."""
    nlo, nhi = int(bounds[s]), int(bounds[s + 1])
    slo, shi = int(start[nlo]), int(start[nhi])
    return {
        "node_lo": nlo,
        "node_hi": nhi,
        "slot_lo": slo,
        "sh": sh,
        "rmask": rmask,
        "bounds": bounds,
        "kernel_mode": kernel_mode,
        "owner_local": owner[slo:shi] - nlo,
        "quota_sum": int(quota[nlo:nhi].sum()),
        "st": st0[slo:shi],
        "finished": fin0[nlo:nhi],
        "room": room0[nlo:nhi],
        "n_out": n_out0[nlo:nhi],
        "cursor": cursor0[nlo:nhi] - slo,
        "props": props0[nlo:nhi],
        "rejs": rejs0[nlo:nhi],
        "received": np.zeros(nhi - nlo, dtype=np.int64),
        "packed": packed[slo:shi],
        "end": start[nlo + 1 : nhi + 1] - slo,
    }


# ---------------------------------------------------------------------
# executors
# ---------------------------------------------------------------------


class _SerialExecutor:
    """All shards step in the driver process (deterministic default)."""

    def __init__(self, inits: Sequence[dict]):
        self.cores = [_ShardCore(init) for init in inits]

    def wave(self, inboxes):
        return [core.wave(inboxes[s]) for s, core in enumerate(self.cores)]

    def sample(self):
        return [core.sample() for core in self.cores]

    def finalize(self):
        return [core.finalize() for core in self.cores]

    def close(self):
        pass


def _worker_main(conn, inits: dict) -> None:
    """Persistent shard worker: build cores once, then serve waves.

    ``inits`` maps shard index -> init payload; building the cores here
    (not in the parent) is what makes numba compilation happen once per
    worker process, and keeps fork/spawn behaviour identical.
    """
    cores = {s: _ShardCore(init) for s, init in inits.items()}
    try:
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "wave":
                conn.send({s: cores[s].wave(inbox) for s, inbox in msg[1].items()})
            elif cmd == "sample":
                conn.send({s: core.sample() for s, core in cores.items()})
            elif cmd == "finalize":
                conn.send({s: core.finalize() for s, core in cores.items()})
            else:  # "stop"
                break
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown races
        pass
    finally:
        conn.close()


class _MPExecutor:
    """Shards distributed round-robin over persistent worker processes.

    Uses the ``fork`` start method where available (worker start is
    milliseconds and inherits the imported interpreter); ``spawn``
    elsewhere.  Every payload is a plain pickle over a ``Pipe`` — the
    compact int codes make a round's mailbox a few MB even at
    ``n = 10^6``.
    """

    def __init__(self, inits: Sequence[dict], workers: int):
        import multiprocessing as mp

        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(method)
        k = len(inits)
        workers = max(1, min(int(workers), k))
        self.assignment: list[list[int]] = [[] for _ in range(workers)]
        for s in range(k):
            self.assignment[s % workers].append(s)
        self.conns = []
        self.procs = []
        try:
            for w, shard_ids in enumerate(self.assignment):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child, {s: inits[s] for s in shard_ids}),
                    daemon=True,
                )
                proc.start()
                child.close()
                self.conns.append(parent)
                self.procs.append(proc)
        except Exception:
            self.close()
            raise
        self.k = k

    def _gather(self, messages) -> list:
        for conn, msg in zip(self.conns, messages):
            conn.send(msg)
        merged: dict[int, object] = {}
        for conn in self.conns:
            merged.update(conn.recv())
        return [merged[s] for s in range(self.k)]

    def wave(self, inboxes):
        return self._gather(
            [
                ("wave", {s: inboxes[s] for s in shard_ids})
                for shard_ids in self.assignment
            ]
        )

    def sample(self):
        return self._gather([("sample",)] * len(self.conns))

    def finalize(self):
        return self._gather([("finalize",)] * len(self.conns))

    def close(self):
        for conn in self.conns:
            try:
                conn.send(("stop",))
                conn.close()
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for proc in self.procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()


# ---------------------------------------------------------------------
# partitioning
# ---------------------------------------------------------------------


def partition_nodes(start: np.ndarray, shards: int) -> np.ndarray:
    """Contiguous node boundaries balancing *directed slots* per shard.

    ``start`` is the ``n + 1`` CSR offset array of
    :func:`~repro.core.fast_lid._directed_layout`; the cut before shard
    ``s`` is placed at the first node whose cumulative slot count
    reaches ``s * 2m / k``, so every shard owns ≈ equal protocol work
    regardless of degree skew.  Contiguity keeps a shard's slots one
    array slice — no gather/scatter on the hot path — and makes
    receiver→shard routing a ``searchsorted`` over ``k + 1`` ints.

    Returns ``bounds`` with ``k + 1`` entries (``bounds[0] = 0``,
    ``bounds[k] = n``); empty shards are legal (``k > n``, or heavily
    skewed degree distributions).
    """
    n = len(start) - 1
    k = max(1, int(shards))
    total = int(start[-1])
    targets = (np.arange(1, k, dtype=np.int64) * total) // k
    cuts = np.searchsorted(start, targets, side="left")
    bounds = np.empty(k + 1, dtype=np.int64)
    bounds[0] = 0
    bounds[-1] = n
    bounds[1:-1] = np.clip(cuts, 0, n)
    np.maximum.accumulate(bounds, out=bounds)
    return bounds


# ---------------------------------------------------------------------
# result
# ---------------------------------------------------------------------


@dataclass
class ShardedLidResult(FastLidResult):
    """A :class:`~repro.core.fast_lid.FastLidResult` plus shard metadata.

    Attributes
    ----------
    shards:
        Number of shards the run was partitioned into.
    jit:
        Whether the numba-compiled kernel actually ran (``False`` under
        the graceful pure-Python fallback).
    cut_messages:
        Messages delivered across a shard boundary (0 for ``k = 1``) —
        the traffic the inter-shard mailbox reconciled.
    reconcile_seconds:
        Driver wall-clock spent splitting/concatenating mailboxes (the
        non-parallel fraction of the round loop).
    shard_stats:
        One dict per shard: ``shard`` / ``nodes`` / ``slots`` /
        ``processed`` / ``late`` / ``props_sent`` / ``rejs_sent`` /
        ``locks`` (all deterministic) plus ``wave_ms`` (wall-clock).
        The skew between shards' ``processed`` counts is what
        ``telemetry report --full`` surfaces via per-shard spans.
    """

    shards: int = 1
    jit: bool = False
    cut_messages: int = 0
    reconcile_seconds: float = 0.0
    shard_stats: list = field(default_factory=list)


# ---------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------


def _resolve_kernel_mode(jit: Optional[bool], _kernel: Optional[str]) -> str:
    if _kernel is not None:
        if _kernel not in ("list", "arrays", "jit"):
            raise ValueError(f"unknown kernel override {_kernel!r}")
        if _kernel == "jit" and not NUMBA_AVAILABLE:
            raise ValueError("kernel='jit' requires numba")
        return _kernel
    if jit is False:
        return "list"
    if jit is True and not NUMBA_AVAILABLE:
        warnings.warn(
            "jit=True requested but numba is not installed; falling back to"
            " the pure-Python shard kernel (pip install 'repro[jit]')",
            RuntimeWarning,
            stacklevel=3,
        )
        return "list"
    return "jit" if NUMBA_AVAILABLE else "list"


def sharded_lid_matching(
    src: "FastInstance | PreferenceSystem | WeightTable",
    quotas: Optional[Sequence[int]] = None,
    *,
    shards: int = 4,
    workers: int = 0,
    jit: Optional[bool] = None,
    max_events: Optional[int] = None,
    max_rounds: Optional[int] = None,
    telemetry=None,
    probe=None,
    _kernel: Optional[str] = None,
) -> ShardedLidResult:
    """LID as per-shard synchronous waves with mailbox reconciliation.

    Produces the **identical matching** to ``run_lid`` /
    ``lid_matching_fast`` for every shard count (the locked edge set is
    schedule-invariant, Lemmas 3–6) and is **bit-identical** to
    ``lid_matching_fast`` — message statistics included — for
    ``shards=1``.  Conformance-gated via the ``lid-sharded`` pipeline
    of :mod:`repro.testing.differential`.

    Parameters
    ----------
    src, quotas:
        As :func:`~repro.core.fast_lid.lid_matching_fast`.
    shards:
        Partition width ``k`` (clamped to ``[1, n]``).  The shard count
        — not the worker count — determines the execution schedule, so
        results are a deterministic function of ``(instance, shards)``.
    workers:
        ``0`` steps every shard in-process; ``> 0`` runs shards inside
        that many persistent ``multiprocessing`` workers (clamped to
        ``shards``), returning the identical result in parallel
        wall-time.
    jit:
        ``None`` auto-selects the numba kernel when importable;
        ``True`` requests it (graceful fallback + ``RuntimeWarning``
        when numba is missing); ``False`` forces the list kernel.
    max_events:
        Hang-detector budget over processed deliveries (same default
        policy as the fast engine).
    max_rounds:
        Round-truncated mode: cap the global reconciliation waves at
        this many rounds and extract only the mutual locks (see
        :mod:`repro.core.truncation`).  The cap is applied on the
        *global* round clock — every shard stops after the same wave —
        so the truncated matching stays shard-count-invariant, exactly
        like the converged one.  ``None`` runs to convergence,
        byte-identical to before.
    telemetry, probe:
        As the fast engine; additionally records one ``partition`` span,
        a per-shard ``shard<i>`` span plus a ``reconcile`` span under
        ``sim_loop``, and probe samples that aggregate all shards with
        the exact fast-engine tick convention (bit-identical trajectory
        for ``shards=1``).
    _kernel:
        Test hook: force ``"list"`` / ``"arrays"`` (the interpreted
        array kernel) / ``"jit"`` regardless of ``jit``/numba.
    """
    max_rounds = validate_max_rounds(max_rounds)
    tel = telemetry if telemetry is not None else Telemetry()
    mark = tel.mark()
    kernel_mode = _resolve_kernel_mode(jit, _kernel)

    with tel.span("build_weights"):
        fi = _coerce_instance(src, quotas)
        n, m = fi.n, fi.m
        if quotas is None:
            quota = fi.quota
        else:
            quota = np.asarray([int(q) for q in quotas], dtype=np.int64)
            if quota.shape != (n,):
                raise ValueError(f"quotas length {len(quotas)} != n={n}")

        start, nbr, rev, owner = _directed_layout(fi)
        deg = np.diff(start)

        # ---- round 0 (global, vectorised — identical to fast_lid) ----
        eff = np.minimum(quota, deg)
        slot_pos = np.arange(2 * m, dtype=np.int64) - start[owner]
        prop0 = slot_pos < eff[owner]
        fin0 = eff <= 0
        rej0 = fin0[owner]

        rbits = (2 * m).bit_length()
        sh = rbits + 1
        rmask = (1 << rbits) - 1
        packed = (nbr << sh) | (rev << 1)
        cur0 = (packed | rej0)[prop0 | rej0]

        st0 = (
            np.where(rej0, 0, IN) | np.where(prop0, PR, 0)
        ).astype(np.uint8)
        fin0_u8 = fin0.astype(np.uint8)
        room0 = quota - eff
        n_out0 = eff.copy()
        cursor0 = start[:-1] + eff
        props0 = eff.copy()
        rejs0 = np.where(fin0, deg, 0)

        if max_events is None:
            max_events = 1000 + 500 * n + 50 * len(cur0)
    total_quota = int(quota.sum())

    with tel.span("partition"):
        bounds = partition_nodes(start, min(int(shards), max(n, 1)))
        k = len(bounds) - 1
        slot_bounds = start[bounds]
        inits = [
            _shard_init(
                s, bounds, start, owner, packed, st0, fin0_u8, room0,
                n_out0, cursor0, props0, rejs0, quota, sh, rmask, kernel_mode,
            )
            for s in range(k)
        ]
        if workers and k > 1:
            executor = _MPExecutor(inits, workers)
        else:
            executor = _SerialExecutor(inits)

        # split the round-0 burst by receiver shard (order-preserving)
        recv0 = cur0 >> sh
        dest0 = np.searchsorted(bounds, recv0, side="right") - 1
        inboxes = [cur0[dest0 == d] for d in range(k)]

    def _merged_sample(tick: float, parts) -> ProbeSample:
        locks = sum(p[0] for p in parts)
        return ProbeSample(
            t=float(tick),
            locks=locks,
            matched_nodes=sum(p[1] for p in parts),
            finished_nodes=sum(p[2] for p in parts),
            outstanding_props=sum(p[3] for p in parts),
            props_sent=sum(p[4] for p in parts),
            rejs_sent=sum(p[5] for p in parts),
            quota_fill=(locks / total_quota) if total_quota else 0.0,
        )

    probe_tick = 0.0
    rounds = 0
    events = 0
    processed = 0
    late_total = 0
    delivered_prop = 0
    delivered_rej = 0
    max_depth = 0
    cut_messages = 0
    reconcile_s = 0.0
    try:
        with tel.span("sim_loop"):
            pending = int(sum(len(b) for b in inboxes))
            while pending:
                if max_rounds is not None and rounds >= max_rounds:
                    break  # round budget spent: drop the in-flight wave
                if probe is not None and rounds + 1 >= probe_tick:
                    parts = executor.sample()
                    while rounds + 1 >= probe_tick:
                        probe.record(_merged_sample(probe_tick, parts))
                        probe_tick += probe.interval
                rounds += 1
                events += pending
                results = executor.wave(inboxes)
                t0 = perf_counter()
                delivered_before = delivered_prop + delivered_rej
                for s, (_, late, dp, dr) in enumerate(results):
                    late_total += late
                    delivered_prop += dp
                    delivered_rej += dr
                nxt = []
                for d in range(k):
                    parts_d = [results[s][0][d] for s in range(k)]
                    cut_messages += sum(
                        len(p) for s, p in enumerate(parts_d) if s != d
                    )
                    nonempty = [p for p in parts_d if len(p)]
                    if len(nonempty) == 1:
                        nxt.append(nonempty[0])
                    elif nonempty:
                        nxt.append(np.concatenate(nonempty))
                    else:
                        nxt.append(cur0[:0])
                inboxes = nxt
                reconcile_s += perf_counter() - t0
                if delivered_prop + delivered_rej > delivered_before:
                    max_depth = rounds
                processed = delivered_prop + delivered_rej
                if processed > max_events:
                    raise ProtocolError(
                        f"sharded LID exceeded {max_events} deliveries"
                        " without quiescing; likely a protocol bug (Lemma 5"
                        " guarantees termination)"
                    )
                pending = int(sum(len(b) for b in inboxes))
            if probe is not None:
                probe.record(_merged_sample(probe_tick, executor.sample()))

            finals = executor.finalize()
            for s, fin in enumerate(finals):
                tel.add_span(f"shard{s}", fin["wave_seconds"])
            tel.add_span("reconcile", reconcile_s)
    finally:
        executor.close()

    with tel.span("extract"):
        st_all = np.concatenate([f["st"] for f in finals]) if m else st0
        finished_all = np.concatenate([f["finished"] for f in finals])
        props_arr = np.concatenate([f["props"] for f in finals])
        rejs_arr = np.concatenate([f["rejs"] for f in finals])
        received_arr = np.concatenate([f["received"] for f in finals])

        released = 0
        if max_rounds is None:
            if not finished_all.all():
                bad = int(np.flatnonzero(finished_all == 0)[0])
                raise ProtocolError(
                    f"node {bad} did not finish (Lemma 5 violated?)"
                )
            lk = (st_all & LK) != 0
            if m and not np.array_equal(lk, lk[rev]):
                s_ = int(np.flatnonzero(lk != lk[rev])[0])
                i_, j_ = int(owner[s_]), int(nbr[s_])
                raise ProtocolError(
                    f"asymmetric lock: {i_} locked {j_} but not vice versa"
                )
        else:
            # truncated: release one-sided locks, keep the mutual ones
            # (same contract as the fast engine — see core.truncation)
            lk_raw = (st_all & LK) != 0
            lk = lk_raw & lk_raw[rev]
            released = int(np.count_nonzero(lk_raw & ~lk))
        half = lk & (owner < nbr)
        matching = Matching.from_trusted_arrays(n, owner[half], nbr[half])

        metrics = SimMetrics()
        total_props = int(props_arr.sum())
        total_rejs = int(rejs_arr.sum())
        if total_props:
            metrics.sent_by_kind[PROP] = total_props
        if total_rejs:
            metrics.sent_by_kind[REJ] = total_rejs
        if delivered_prop:
            metrics.delivered_by_kind[PROP] = delivered_prop
        if delivered_rej:
            metrics.delivered_by_kind[REJ] = delivered_rej
        sent_arr = props_arr + rejs_arr
        nz = np.flatnonzero(sent_arr)
        metrics.sent_by_node.update(
            dict(zip(nz.tolist(), sent_arr[nz].tolist()))
        )
        nz_r = np.flatnonzero(received_arr)
        metrics.received_by_node.update(
            dict(zip(nz_r.tolist(), received_arr[nz_r].tolist()))
        )
        metrics.events = events
        metrics.end_time = float(rounds)
        metrics.max_depth = max_depth

        shard_stats = []
        for s, fin in enumerate(finals):
            nlo, nhi = int(bounds[s]), int(bounds[s + 1])
            shard_stats.append(
                {
                    "shard": s,
                    "nodes": nhi - nlo,
                    "slots": int(slot_bounds[s + 1] - slot_bounds[s]),
                    "processed": int(fin["processed"]),
                    "late": int(fin["late"]),
                    "props_sent": int(fin["props"].sum()),
                    "rejs_sent": int(fin["rejs"].sum()),
                    "locks": int(((fin["st"] & LK) != 0).sum()),
                    "wave_ms": 1e3 * fin["wave_seconds"],
                }
            )
    metrics.phase_seconds = tel.phase_seconds(since=mark)
    return ShardedLidResult(
        matching=matching,
        metrics=metrics,
        props_sent=props_arr,
        rejs_sent=rejs_arr,
        late_messages=late_total,
        truncation=TruncationReport(
            max_rounds=max_rounds,
            rounds=rounds,
            converged=(pending == 0),
            released_locks=released,
        ),
        shards=k,
        jit=(kernel_mode == "jit"),
        cut_messages=cut_messages,
        reconcile_seconds=reconcile_s,
        shard_stats=shard_stats,
    )
