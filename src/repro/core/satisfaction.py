"""Node satisfaction — the paper's optimisation metric (Section 3).

Given node ``i`` with preference list ``L_i`` (length ``ℓ_i``), quota
``b_i`` and an ordered connection list ``C_i`` (``c_i = |C_i| ≤ b_i``,
ordered by decreasing preference), the paper defines (eq. 1)::

    S_i = c_i / b_i  +  c_i (c_i - 1) / (2 b_i ℓ_i)  -  Σ_{j∈C_i} R_i(j) / (b_i ℓ_i)

``S_i ∈ [0, 1]``; it is maximal (``= b_i / b_i = 1``) exactly when the
node is connected to its top ``b_i`` ranked neighbours.

The per-edge *satisfaction increase* of adding ``j`` as the
``(c_i+1)``-th best connection (``Q_i(j) = c_i``) is (eq. 4)::

    ΔS_i^j = (1 - R_i(j)/ℓ_i) / b_i  +  Q_i(j) / (b_i ℓ_i)
             '------ static -------'   '----- dynamic -----'

Discarding the execution-varying dynamic term yields the *static*
variants (eq. 5 / eq. 6) used to build edge weights::

    ΔS̄_i^j = (1 - R_i(j)/ℓ_i) / b_i
    S̄_i    = c_i / b_i - Σ_{j∈C_i} R_i(j) / (b_i ℓ_i)

Lemma 1 proves ``S̄_i / S_i``-style optimisation loses at most a factor
``½ (1 + 1/b_max)``; :func:`lemma1_worst_case` reproduces the tight
construction (connections drawn from the bottom of the list).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.preferences import PreferenceSystem

__all__ = [
    "delta_full",
    "delta_static",
    "connection_list",
    "full_satisfaction",
    "static_satisfaction",
    "static_dynamic_split",
    "satisfaction_vector",
    "total_satisfaction",
    "lemma1_worst_case",
    "lemma1_bound",
]


def delta_static(ps: PreferenceSystem, i: int, j: int) -> float:
    """Static satisfaction increase ``ΔS̄_i^j`` (eq. 5).

    Depends only on the rank of ``j`` in ``i``'s preference list; this is
    the execution-independent part used to construct edge weights (eq. 9).
    """
    ell = ps.list_length(i)
    return (1.0 - ps.rank(i, j) / ell) / ps.quota(i)


def delta_full(ps: PreferenceSystem, i: int, j: int, q: int) -> float:
    """Full satisfaction increase ``ΔS_i^j`` (eq. 4).

    Parameters
    ----------
    q:
        The connection rank ``Q_i(j)``: the number of connections of ``i``
        that it prefers to ``j`` in the final connection list
        (``0 ≤ q ≤ b_i - 1``).
    """
    ell = ps.list_length(i)
    b = ps.quota(i)
    if not (0 <= q < b):
        raise ValueError(f"connection rank q={q} out of range [0, {b})")
    return (1.0 - ps.rank(i, j) / ell) / b + q / (b * ell)


def connection_list(ps: PreferenceSystem, i: int, connections: Iterable[int]) -> list[int]:
    """Order ``connections`` of node ``i`` by decreasing preference (``C_i``).

    The returned list index of ``j`` is its connection rank ``Q_i(j)``.
    """
    return sorted(connections, key=lambda j: ps.rank(i, j))


def full_satisfaction(ps: PreferenceSystem, i: int, connections: Iterable[int]) -> float:
    """Satisfaction ``S_i`` of node ``i`` (eq. 1).

    ``connections`` is any iterable of the matched neighbours of ``i``
    (order irrelevant — eq. 1 only involves the rank multiset).  Isolated
    nodes (quota 0) score 0.
    """
    conns = list(connections)
    b = ps.quota(i)
    if b == 0:
        if conns:
            raise ValueError(f"isolated node {i} cannot have connections")
        return 0.0
    c = len(conns)
    if c > b:
        raise ValueError(f"node {i} has {c} connections, quota is {b}")
    ell = ps.list_length(i)
    rank_sum = sum(ps.rank(i, j) for j in conns)
    return c / b + c * (c - 1) / (2.0 * b * ell) - rank_sum / (b * ell)


def static_satisfaction(ps: PreferenceSystem, i: int, connections: Iterable[int]) -> float:
    """Modified satisfaction ``S̄_i`` (eq. 6) — the static part only."""
    conns = list(connections)
    b = ps.quota(i)
    if b == 0:
        if conns:
            raise ValueError(f"isolated node {i} cannot have connections")
        return 0.0
    c = len(conns)
    if c > b:
        raise ValueError(f"node {i} has {c} connections, quota is {b}")
    ell = ps.list_length(i)
    rank_sum = sum(ps.rank(i, j) for j in conns)
    return c / b - rank_sum / (b * ell)


def static_dynamic_split(
    ps: PreferenceSystem, i: int, connections: Iterable[int]
) -> tuple[float, float]:
    """Split ``S_i = S_i^s + S_i^d`` (eq. 7) into static and dynamic sums.

    Returns ``(S_i^s, S_i^d)``.  ``S_i^s`` equals
    :func:`static_satisfaction` and ``S_i^d = c_i (c_i - 1) / (2 b_i ℓ_i)``
    because the connection ranks ``Q_i(j)`` enumerate ``0..c_i-1``.
    """
    conns = list(connections)
    s_static = static_satisfaction(ps, i, conns)
    b = ps.quota(i)
    if b == 0:
        return 0.0, 0.0
    c = len(conns)
    ell = ps.list_length(i)
    s_dynamic = c * (c - 1) / (2.0 * b * ell)
    return s_static, s_dynamic


def satisfaction_vector(
    ps: PreferenceSystem,
    adjacency: Sequence[Iterable[int]],
    kind: str = "full",
) -> np.ndarray:
    """Per-node satisfaction array for a matching given as adjacency lists.

    Parameters
    ----------
    adjacency:
        ``adjacency[i]`` iterates over the matched neighbours of node ``i``
        (e.g. ``Matching.connections``).
    kind:
        ``"full"`` for eq. 1, ``"static"`` for eq. 6.
    """
    fn = {"full": full_satisfaction, "static": static_satisfaction}[kind]
    return np.array([fn(ps, i, adjacency[i]) for i in ps.nodes()], dtype=float)


def total_satisfaction(
    ps: PreferenceSystem,
    adjacency: Sequence[Iterable[int]],
    kind: str = "full",
) -> float:
    """Total satisfaction ``Σ_i S_i`` — the paper's network-wide objective."""
    return float(satisfaction_vector(ps, adjacency, kind).sum())


def lemma1_worst_case(b: int, ell: int) -> tuple[float, float]:
    """The tight construction in the proof of Lemma 1.

    A node with quota ``b`` and list length ``ell`` whose ``b``
    connections are the *bottom* ``b`` entries of its preference list
    (ranks ``ell-b .. ell-1``).  Returns ``(S^s, S^d)``; the paper derives
    ``S^s = (b+1)/(2 ell)`` and ``S^d = (b-1)/(2 ell)``, so that
    ``S^s / (S^s + S^d) = ½ (1 + 1/b)`` — the worst-case relative value of
    the static part (eq. 8).
    """
    if not (1 <= b <= ell):
        raise ValueError(f"need 1 <= b <= ell, got b={b}, ell={ell}")
    s_static = sum((1.0 - r / ell) / b for r in range(ell - b, ell))
    s_dynamic = sum(q / (b * ell) for q in range(b))
    return s_static, s_dynamic


def lemma1_bound(b: int) -> float:
    """The Lemma 1 guarantee ``½ (1 + 1/b)`` for quota ``b``."""
    if b < 1:
        raise ValueError(f"quota must be >= 1, got {b}")
    return 0.5 * (1.0 + 1.0 / b)
