"""Certificates and ratio computations for the paper's guarantees.

The test-suite and benchmark harness never *trust* an algorithm's
output: every claimed property is re-checked by an independent
certifier from this module.

- :func:`greedy_certificate` — the final-state characterisation of
  Lemmas 4/6: an edge was correctly left unselected iff some endpoint
  filled its quota with strictly heavier edges.  Equivalently, the
  matching admits no *weighted blocking edge*; this is also exactly
  stability with respect to the weight lists, which is why the induced
  b-matching "always converges regardless of the original problem"
  (Section 5).
- :func:`approximation_ratio` and the bound constants of Theorems 1–3.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.matching import Matching
from repro.core.weights import WeightTable

__all__ = [
    "weighted_blocking_edges",
    "greedy_certificate",
    "approximation_ratio",
    "theorem1_bound",
    "theorem2_bound",
    "theorem3_bound",
    "jain_fairness",
    "gini_coefficient",
]

Edge = tuple[int, int]


def weighted_blocking_edges(
    wt: WeightTable, quotas: Sequence[int], matching: Matching
) -> list[Edge]:
    """Edges that *block* the matching with respect to edge keys.

    An unmatched edge ``(i, j)`` blocks when both endpoints would take
    it: endpoint ``v`` takes it if ``v`` has residual quota, or its
    lightest matched edge has a smaller key than ``(i, j)``.  A greedy
    (LIC/LID) output has no blocking edges — this is the checkable form
    of Lemma 4 / Lemma 6.
    """

    def wants(v: int, u: int) -> bool:
        conns = matching.connections(v)
        if len(conns) < quotas[v]:
            return True
        key = wt.key(v, u)
        return any(wt.key(v, c) < key for c in conns)

    out = []
    for i, j in wt.edges():
        if not matching.has_edge(i, j) and wants(i, j) and wants(j, i):
            out.append((i, j))
    return out


def greedy_certificate(
    wt: WeightTable, quotas: Sequence[int], matching: Matching
) -> bool:
    """Whether ``matching`` is a fixpoint of locally-heaviest selection.

    True iff the matching is feasible w.r.t. ``quotas`` and has no
    weighted blocking edge.  Every LIC/LID output must pass; the
    certificate is also *sufficient* for the ½ weight bound (the
    standard charging argument of Theorem 2 only uses this property).
    """
    for v in range(wt.n):
        if matching.degree(v) > quotas[v]:
            return False
    for i, j in matching.edges():
        if not wt.has_edge(i, j):
            return False
    return not weighted_blocking_edges(wt, quotas, matching)


def approximation_ratio(achieved: float, optimum: float) -> float:
    """``achieved / optimum`` with the 0/0 convention of a perfect score.

    Used for both weight ratios (vs. the exact max-weight b-matching)
    and satisfaction ratios (vs. the exact maximising-satisfaction
    b-matching).
    """
    if optimum == 0.0:
        return 1.0
    return achieved / optimum


def theorem1_bound(b_max: int) -> float:
    """Theorem 1: ``½ (1 + 1/b_max)`` — modified vs. original objective."""
    if b_max < 1:
        raise ValueError(f"b_max must be >= 1, got {b_max}")
    return 0.5 * (1.0 + 1.0 / b_max)


def theorem2_bound() -> float:
    """Theorem 2: ``½`` — LIC/LID weight vs. optimal matching weight."""
    return 0.5


def theorem3_bound(b_max: int) -> float:
    """Theorem 3: ``¼ (1 + 1/b_max)`` — LID satisfaction vs. optimum."""
    if b_max < 1:
        raise ValueError(f"b_max must be >= 1, got {b_max}")
    return 0.25 * (1.0 + 1.0 / b_max)


def jain_fairness(values) -> float:
    """Jain's fairness index of a non-negative allocation.

    ``(Σx)² / (n · Σx²) ∈ [1/n, 1]``; 1 means perfectly even.  Used by
    the distribution experiments to compare how evenly the algorithms
    spread satisfaction — relevant to the paper's future-work question
    of *individual* satisfaction guarantees (§7).
    """
    import numpy as np

    x = np.asarray(list(values), dtype=float)
    if x.size == 0:
        return 1.0
    if (x < -1e-12).any():
        raise ValueError("fairness indices need non-negative values")
    denom = float((x**2).sum())
    if denom == 0.0:
        return 1.0
    return float(x.sum() ** 2 / (x.size * denom))


def gini_coefficient(values) -> float:
    """Gini coefficient of a non-negative allocation (0 = perfectly even)."""
    import numpy as np

    x = np.sort(np.asarray(list(values), dtype=float))
    if x.size == 0 or x.sum() == 0.0:
        return 0.0
    if (x < -1e-12).any():
        raise ValueError("fairness indices need non-negative values")
    n = x.size
    cum = np.cumsum(x)
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)
