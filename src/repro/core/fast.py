"""Vectorised kernels for large instances.

The scalar implementations in :mod:`repro.core.satisfaction` and
:mod:`repro.core.weights` are the readable reference; profiling
(HPC-guide workflow: make it work → make it right → measure) shows the
per-node Python loops dominate beyond a few thousand nodes.  This
module provides NumPy formulations of the two hot kernels —

- :func:`edge_weight_arrays` / :func:`satisfaction_weights_fast` —
  eq.-9 weights for all edges in one vectorised pass,
- :func:`satisfaction_profile_fast` — per-node eq.-1 / eq.-6
  satisfaction for a whole matching via ``np.add.at`` scatter sums,

each tested element-for-element against the scalar reference and
benchmarked in ``bench_p1_vectorised_kernels.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem
from repro.core.weights import WeightTable

__all__ = [
    "edge_weight_arrays",
    "satisfaction_weights_fast",
    "satisfaction_profile_fast",
]


def _instance_arrays(ps: PreferenceSystem):
    """Edge-indexed arrays (i, j, R_i(j), R_j(i)) and node arrays (ℓ, b)."""
    edges = ps.edges()
    m = len(edges)
    i_arr = np.empty(m, dtype=np.int64)
    j_arr = np.empty(m, dtype=np.int64)
    ri = np.empty(m, dtype=np.float64)
    rj = np.empty(m, dtype=np.float64)
    for k, (i, j) in enumerate(edges):
        i_arr[k] = i
        j_arr[k] = j
        ri[k] = ps.rank(i, j)
        rj[k] = ps.rank(j, i)
    ell = np.array([max(ps.list_length(v), 1) for v in ps.nodes()], dtype=np.float64)
    b = np.array([max(ps.quota(v), 1) for v in ps.nodes()], dtype=np.float64)
    return i_arr, j_arr, ri, rj, ell, b


def edge_weight_arrays(ps: PreferenceSystem):
    """Vectorised eq.-9 weights.

    Returns ``(i, j, w)`` arrays over the canonical edge list of ``ps``
    (``i < j``).  ``w[k] = (1 - R_i(j)/ℓ_i)/b_i + (1 - R_j(i)/ℓ_j)/b_j``.
    """
    i_arr, j_arr, ri, rj, ell, b = _instance_arrays(ps)
    w = (1.0 - ri / ell[i_arr]) / b[i_arr] + (1.0 - rj / ell[j_arr]) / b[j_arr]
    return i_arr, j_arr, w


def satisfaction_weights_fast(ps: PreferenceSystem) -> WeightTable:
    """Drop-in replacement for :func:`repro.core.weights.satisfaction_weights`.

    Identical output table; the weight computation is vectorised (the
    residual cost is the dict the :class:`WeightTable` API requires).
    """
    i_arr, j_arr, w = edge_weight_arrays(ps)
    weights = {
        (int(i), int(j)): float(wk) for i, j, wk in zip(i_arr, j_arr, w)
    }
    return WeightTable(weights, ps.n)


def satisfaction_profile_fast(
    ps: PreferenceSystem, matching: Matching, kind: str = "full"
) -> np.ndarray:
    """Vectorised per-node satisfaction of a matching.

    Equivalent to :meth:`Matching.satisfaction_vector`; scatter-adds the
    matched-edge rank contributions with ``np.add.at`` instead of
    iterating per node.
    """
    if kind not in ("full", "static"):
        raise ValueError(f"kind must be 'full' or 'static', got {kind!r}")
    n = ps.n
    counts = np.zeros(n, dtype=np.float64)
    rank_sums = np.zeros(n, dtype=np.float64)
    edges = matching.edges()
    if edges:
        i_arr = np.empty(len(edges), dtype=np.int64)
        j_arr = np.empty(len(edges), dtype=np.int64)
        ri = np.empty(len(edges), dtype=np.float64)
        rj = np.empty(len(edges), dtype=np.float64)
        for k, (i, j) in enumerate(edges):
            i_arr[k] = i
            j_arr[k] = j
            ri[k] = ps.rank(i, j)
            rj[k] = ps.rank(j, i)
        np.add.at(counts, i_arr, 1.0)
        np.add.at(counts, j_arr, 1.0)
        np.add.at(rank_sums, i_arr, ri)
        np.add.at(rank_sums, j_arr, rj)
    ell = np.array([max(ps.list_length(v), 1) for v in ps.nodes()], dtype=np.float64)
    b_true = np.array([ps.quota(v) for v in ps.nodes()], dtype=np.float64)
    b = np.maximum(b_true, 1.0)
    out = counts / b - rank_sums / (b * ell)
    if kind == "full":
        out = out + counts * (counts - 1.0) / (2.0 * b * ell)
    # isolated nodes (quota 0) score 0 by definition
    out[b_true == 0] = 0.0
    return out
